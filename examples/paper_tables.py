"""Regenerate the paper's static tables and figures (E1, E3, E4, E5).

These require no simulation and print instantly; the measured tables come
from ``risc1-experiments e6 e7 e8 e9 e10 e11`` (or the benchmark suite).

Run:  python examples/paper_tables.py
"""

from repro.experiments import (
    e1_characteristics,
    e3_instruction_set,
    e4_formats,
    e5_register_windows,
)

for module in (e1_characteristics, e3_instruction_set, e4_formats):
    print(module.run().render())
    print()

print(e4_formats.render_figure())
print(e5_register_windows.render_figure())
