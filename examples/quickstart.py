"""Quickstart: assemble and run a RISC I program, then compile some C.

Run:  python examples/quickstart.py
"""

from repro.asm import assemble, disassemble_program
from repro.cc import compile_program
from repro.cc.driver import run_compiled
from repro.core import CPU

# ---------------------------------------------------------------- assembly
SOURCE = """
; sum the integers 1..10 and print the result
main:
    add  r2, r0, #0        ; total
    add  r3, r0, #1        ; i
loop:
    add  r2, r2, r3
    add  r3, r3, #1
    cmp  r3, #11
    jne  loop
    nop                     ; delayed jump: this slot always executes
    puti r2
    halt
"""

program = assemble(SOURCE)
print("=== disassembly ===")
print(disassemble_program(program))

cpu = CPU()
cpu.load(program)
result = cpu.run()
print("\n=== run ===")
print(f"output      : {result.output!r}")
print(result.stats.summary())

# ------------------------------------------------------------------- mini-C
C_SOURCE = """
int square(int x) { return x * x; }
int main() {
    int total = 0;
    for (int i = 1; i <= 5; i++) total += square(i);
    putint(total);
    return 0;
}
"""

print("\n=== mini-C on RISC I ===")
compiled = compile_program(C_SOURCE, target="risc1")
run = run_compiled(compiled)
print(f"output    : {run.output!r}   (1+4+9+16+25 = 55)")
print(f"code size : {compiled.code_size} bytes")
print(f"cycles    : {run.stats.cycles} ({run.stats.cycles * 400 / 1000:.1f} us at 400 ns)")
