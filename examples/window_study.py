"""Design-space study: how many register windows does a workload need?

Reproduces the analysis behind the paper's eight-window decision: run each
benchmark once with call tracing, replay the trace against hypothetical
register files of 2..16 windows, and report the overflow rate and the
total spill traffic.  Deep recursion (Ackermann) is deliberately included
as the pathological case the paper acknowledges.

Run:  python examples/window_study.py
"""

from repro.analysis.windows import sweep
from repro.experiments import common

WORKLOADS = ("towers", "qsort", "sed", "puzzle_subscript", "ackermann")
WINDOW_COUNTS = (2, 3, 4, 6, 8, 12, 16)

print(f"{'program':<18} {'calls':>7} {'depth':>6}  " +
      "  ".join(f"{w:>3}w" for w in WINDOW_COUNTS))
print("-" * 78)
for name in WORKLOADS:
    cpu, _ = common.traced_run(name, "default")
    stats = sweep(cpu.call_trace, WINDOW_COUNTS)
    rates = "  ".join(f"{100 * s.overflow_rate:4.0f}" for s in stats)
    print(f"{name:<18} {stats[0].calls:>7} {stats[0].max_depth:>6}  {rates}")

print("""
Reading: cells are the percentage of calls that overflow the register
file.  Ordinary programs stop overflowing by 6-8 windows — the paper's
design point — while unbounded recursion keeps thrashing any finite file
(the spills then behave like a conventional calling convention's saves).
""")

# spill traffic view for one program
name = "towers"
cpu, _ = common.traced_run(name, "default")
print(f"spill traffic for {name!r} (registers written to memory):")
for stats in sweep(cpu.call_trace, WINDOW_COUNTS):
    bar = "#" * int(60 * stats.registers_spilled / (16 * stats.calls or 1))
    print(f"  {stats.num_windows:>2} windows: {stats.registers_spilled:>6} regs {bar}")
