"""Register windows in action: the paper's central mechanism.

Shows (1) the physical overlap map, (2) parameter passing through the
overlap with zero memory traffic, and (3) what happens when recursion
exceeds the register file — overflow trap, spill traffic, and how the
overflow rate depends on the number of windows.

Run:  python examples/register_windows.py
"""

from repro.asm import assemble
from repro.core import CPU
from repro.experiments.e5_register_windows import render_figure

print(render_figure())

# -------------------------------------------------- calls through the overlap
SOURCE = """
main:
    add  r10, r0, #20       ; argument 0 -> my LOW
    add  r11, r0, #22       ; argument 1
    call add2
    nop
    puti r10                 ; result came back through the overlap
    halt
add2:
    add  r26, r26, r27       ; my HIGH *is* the caller's LOW
    ret
    nop
"""

cpu = CPU()
cpu.load(assemble(SOURCE))
result = cpu.run()
print("=== parameter passing through the overlap ===")
print(f"output                : {result.output!r}")
print(f"data memory references: {result.stats.data_references} "
      "(the call itself touched memory zero times)")

# --------------------------------------------- deep recursion vs. window count
RECURSIVE = """
main:
    add r10, r0, #40
    call sum                 ; sum(n) = n + sum(n-1)
    nop
    puti r10
    halt
sum:
    cmp r26, r0
    jne recurse
    nop
    add r26, r0, #0
    ret
    nop
recurse:
    sub r10, r26, #1
    call sum
    nop
    add r26, r10, r26
    ret
    nop
"""

print("\n=== recursion depth 41 vs. register-file size ===")
print(f"{'windows':>8} {'overflows':>10} {'spilled regs':>13} {'cycles':>8}")
for windows in (2, 4, 8, 16):
    cpu = CPU(num_windows=windows)
    cpu.load(assemble(RECURSIVE))
    result = cpu.run()
    assert result.output == str(sum(range(41)))
    print(
        f"{windows:>8} {result.stats.window_overflows:>10} "
        f"{result.stats.spilled_registers:>13} {result.stats.cycles:>8}"
    )
print("\n(output is sum(0..40) = 820 in every case; only the cost changes)")
