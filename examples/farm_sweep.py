"""The simulation farm in a nutshell: run one benchmark sweep twice.

The first sweep compiles and simulates every job; the second finds every
artifact in the content-addressed cache and recomputes nothing.  The
same machinery backs ``risc1-experiments --jobs N``.
"""

import tempfile

from repro.farm import ArtifactCache, run_sweep, sweep_jobs

jobs = sweep_jobs(workloads=["towers", "sed"], scale="default")
print(f"sweep: {len(jobs)} jobs over 2 workloads x 2 targets (+ IR profiles)")
for job in jobs:
    print(f"  {job.describe()}  key={job.key[:12]}...")

with tempfile.TemporaryDirectory() as root:
    cold = run_sweep(jobs, workers=2, cache=ArtifactCache(root))
    print(f"\ncold run : {cold.summary()}")
    warm = run_sweep(jobs, workers=2, cache=ArtifactCache(root))
    print(f"warm run : {warm.summary()}")
    assert warm.counts["computed"] == 0
    print("\nwarm-cache sweep recomputed nothing — every artifact was a hit")
