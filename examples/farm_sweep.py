"""The simulation farm in a nutshell: one client, one sweep run twice.

``FarmClient`` is the farm's single submission surface — the first sweep
forks a persistent worker pool, compiles and simulates every job; the
second finds every artifact in the content-addressed cache and
recomputes nothing.  Individual jobs submit the same way (``submit``
returns a future).  The same machinery backs ``risc1-experiments
--jobs N`` and ``python -m repro.farm serve``.
"""

import tempfile

from repro.farm import ArtifactCache, FarmClient, JobSpec, sweep_jobs

jobs = sweep_jobs(workloads=["towers", "sed"], scale="default")
print(f"sweep: {len(jobs)} jobs over 2 workloads x 2 targets (+ IR profiles)")
for job in jobs:
    print(f"  {job.describe()}  key={job.key[:12]}...")

with tempfile.TemporaryDirectory() as root:
    with FarmClient(workers=2, cache=ArtifactCache(root)) as client:
        cold = client.sweep(jobs)
        print(f"\ncold run : {cold.summary()}")
        warm = client.sweep(jobs)
        print(f"warm run : {warm.summary()}")
        assert warm.counts["computed"] == 0

        # single-job submission: a JobSpec in the NAME[:ARG] grammar
        future = client.submit(JobSpec(workload="sed:REPS=2"))
        result = future.result(timeout=120)
        print(f"\nsed:REPS=2 -> exit {result.exit_code}, "
              f"{future.status().metrics['instructions']} instructions")

    print("\nwarm-cache sweep recomputed nothing — every artifact was a hit")
