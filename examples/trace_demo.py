"""Watch the machine run: instruction-level trace of a call through the
register windows.

Prints every executed instruction with its register effects and window
rotations — the clearest way to *see* the paper's parameter-passing
mechanism work.

Run:  python examples/trace_demo.py
"""

from repro.asm import assemble
from repro.core import CPU
from repro.core.trace import trace_run

SOURCE = """
main:
    add  r10, r0, #6        ; outgoing argument (LOW)
    add  r11, r0, #7
    call mul_add
    nop
    puti r10
    halt r10
mul_add:
    add  r16, r26, r27       ; incoming arguments (HIGH), local scratch
    sll  r17, r26, #2
    add  r26, r16, r17       ; result back through the overlap
    ret
    nop
"""

cpu = CPU()
cpu.load(assemble(SOURCE))
trace = trace_run(cpu)

print("   idx  address     instruction                   effects")
print("-" * 78)
print(trace.render())
print()
assert trace.result is not None
print(f"output: {trace.result.output!r}   "
      f"window rotations: {trace.window_rotations()}")
print("""
Things to notice:
 * 'call' rotates the window AFTER its delay slot ([w0->w1] appears on
   the slot's line), so the argument moves above it run in the caller;
 * the callee reads r26/r27 without any memory traffic — those are
   physically the caller's r10/r11;
 * the result lands in the callee's r26 and is read as the caller's r10.
""")
