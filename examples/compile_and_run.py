"""One program, two machines: the paper's comparison methodology in 40 lines.

Compiles the Towers of Hanoi for RISC I and for the VAX-like CISC
baseline, runs both simulators, and prints the code-size and time
comparison — the same numbers experiment E8/E9 tabulate for the full
suite.

Run:  python examples/compile_and_run.py
"""

from repro.cc import compile_program
from repro.cc.driver import run_compiled

SOURCE = """
int moves = 0;

void hanoi(int n, int from, int to, int via) {
    if (n == 0) return;
    hanoi(n - 1, from, via, to);
    moves++;
    hanoi(n - 1, via, to, from);
}

int main() {
    hanoi(12, 1, 3, 2);
    putint(moves);
    return 0;
}
"""

rows = []
for target, clock_ns in (("risc1", 400.0), ("cisc", 200.0)):
    compiled = compile_program(SOURCE, target=target)
    result = run_compiled(compiled)
    assert result.output == str(2**12 - 1)
    rows.append(
        {
            "machine": "RISC I" if target == "risc1" else "VAX-like",
            "bytes": compiled.code_size,
            "instructions": result.stats.instructions,
            "cycles": result.stats.cycles,
            "ms": result.stats.cycles * clock_ns / 1e6,
            "data refs": result.stats.data_references,
        }
    )

header = f"{'machine':<10} {'bytes':>6} {'insts':>9} {'cycles':>9} {'ms':>8} {'data refs':>10}"
print(header)
print("-" * len(header))
for row in rows:
    print(
        f"{row['machine']:<10} {row['bytes']:>6} {row['instructions']:>9} "
        f"{row['cycles']:>9} {row['ms']:>8.2f} {row['data refs']:>10}"
    )

risc, vax = rows
print(
    f"\nRISC I executes {risc['instructions'] / vax['instructions']:.1f}x the "
    f"instructions\nyet finishes {vax['ms'] / risc['ms']:.1f}x sooner — "
    f"and makes {vax['data refs'] / max(risc['data refs'], 1):.0f}x fewer data references.\n"
    "That asymmetry is the whole paper."
)
