"""Benchmark harness for E3 — Table III: the instruction set — plus an
encode/decode throughput microbenchmark."""

import random

from repro.experiments import e3_instruction_set
from repro.isa.encoding import Instruction, decode, encode
from repro.isa.opcodes import Category, Opcode


def test_e3_table(benchmark, scale, capsys):
    table = benchmark(e3_instruction_set.run, scale)
    with capsys.disabled():
        print("\n" + table.render())

    assert len(table.rows) == 31
    categories = table.column("category")
    assert categories.count(Category.ARITH.value) == 12
    assert categories.count(Category.MEMORY.value) == 8
    assert categories.count(Category.CONTROL.value) == 7
    assert categories.count(Category.MISC.value) == 4


def test_e3_decode_throughput(benchmark):
    rng = random.Random(42)
    words = [
        encode(
            Instruction.short(
                Opcode.ADD, dest=rng.randrange(32), rs1=rng.randrange(32),
                s2=rng.randrange(-4096, 4096), imm=True,
            )
        )
        for _ in range(512)
    ]

    def decode_all():
        for word in words:
            decode(word)

    benchmark(decode_all)
