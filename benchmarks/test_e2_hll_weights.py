"""Benchmark harness for E2 — Table II: weighted HLL statement cost."""

from conftest import once

from repro.experiments import e2_hll_weights


def test_e2_call_dominates_when_weighted(benchmark, scale, capsys):
    table = once(benchmark, e2_hll_weights.run, scale)
    with capsys.disabled():
        print("\n" + table.render())

    rows = {row[0]: row for row in table.rows}
    call = rows["call"]
    # the paper's motivating observation: procedure calls are a modest
    # share of executed statements...
    executed_share = call[1]
    assert executed_share < 25.0
    # ...but amplify more than any other statement class once weighted by
    # memory references
    amplifications = {name: row[4] for name, row in rows.items()}
    assert max(amplifications, key=amplifications.get) == "call"
    assert call[3] > 2 * executed_share  # memref-weighted share >= 2x raw
