"""Benchmark harness for E15 — compiler quality headroom."""

from conftest import once

from repro.experiments import e15_hand_code


def test_e15_hand_code(benchmark, scale, capsys):
    table = once(benchmark, e15_hand_code.run, scale)
    with capsys.disabled():
        print("\n" + table.render())

    compiled = next(row for row in table.rows if row[0] == "compiled (rcc)")
    hand = next(row for row in table.rows if row[0] == "hand-optimized")
    cycles = table.headers.index("cycles")
    calls = table.headers.index("calls")
    refs = table.headers.index("data refs")

    # hand optimization pays, but by a bounded factor: the compiler is
    # honest 1981-simple, not a strawman
    speedup = compiled[cycles] / hand[cycles]
    assert 1.2 <= speedup <= 3.0
    # tail-recursion elimination halves the calls exactly
    assert hand[calls] * 2 == compiled[calls]
    # the global-register counter removes almost all data traffic
    assert hand[refs] < compiled[refs] / 3
