"""Benchmark harness for E16 — dynamic instruction mix."""

from conftest import once

from repro.experiments import e16_instruction_mix


def test_e16_instruction_mix(benchmark, scale, capsys):
    table = once(benchmark, e16_instruction_mix.run, scale)
    with capsys.disabled():
        print("\n" + table.render())

    suite = next(row for row in table.rows if row[0] == "SUITE")
    arith = suite[table.headers.index("arith/logic")]
    memory = suite[table.headers.index("load/store")]
    control = suite[table.headers.index("control")]
    loads = suite[table.headers.index("loads")]
    stores = suite[table.headers.index("stores")]

    # the published RISC workload profile: register ops dominate, memory
    # operations are a minority, control transfers are frequent
    assert arith > 40.0
    assert 3.0 < memory < 35.0
    assert 10.0 < control < 45.0
    assert loads >= stores  # reads outnumber writes in compiled C
    # every row sums to ~100 across the four categories
    for row in table.rows:
        total = sum(row[i] for i in range(1, 5))
        assert abs(total - 100.0) < 0.5, row[0]
