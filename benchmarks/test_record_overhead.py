"""Benchmark harness for the execution recorder's overhead.

Runs towers and qsort on the RISC I simulator three ways — the plain
fast-engine run (recording off), :func:`repro.obs.record.record_run` at
the default checkpoint interval, and recording at a dense interval (one
checkpoint per ~tenth of the run, the worst case a debugger session
would realistically configure) — and emits ``BENCH_record.json``.

Two load-bearing assertions:

* recording *off* is the unchanged hot path — its throughput must stay
  within environment-variance range of the committed
  ``engine_speed_baseline.json`` fast-engine number (the snapshot API is
  methods on the CPU, not code in the step loop);
* recording *on* at the default interval must stay within 2x of the
  untraced throughput, because the recorder drives the same fast engine
  in interval-sized chunks and only pays one ``snapshot()`` (a zlib pass
  over memory) per checkpoint.
"""

import json
import pathlib
import time

from repro.cc.driver import compile_program
from repro.core.cpu import CPU
from repro.farm.jobs import workload_source
from repro.obs.record import DEFAULT_INTERVAL, record_run

WORKLOADS = ("towers", "qsort")
REPEATS = 5

#: recording-off throughput vs the committed cross-machine baseline; the
#: wide band absorbs host differences, while still catching an accidental
#: hot-loop regression (those show up as 3-7x, not 2x)
MIN_BASELINE_RATIO = 0.5

#: recording-on at the default interval vs recording-off (the criterion)
MAX_RECORD_SLOWDOWN = 2.0


def _plain_steps_per_s(program):
    best = 0.0
    for _ in range(REPEATS):
        cpu = CPU()
        cpu.load(program)
        started = time.perf_counter()
        result = cpu.run(max_steps=500_000_000, record=False)
        elapsed = time.perf_counter() - started
        assert result.exit_code == 0
        best = max(best, result.instructions / elapsed)
    return best


def _recorded_steps_per_s(program, interval):
    best = 0.0
    checkpoints = 0
    for _ in range(REPEATS):
        started = time.perf_counter()
        recording = record_run(CPU(), program, interval=interval, record=False)
        elapsed = time.perf_counter() - started
        assert recording.outcome["outcome"] == "halt"
        best = max(best, recording.steps / elapsed)
        checkpoints = len(recording.checkpoints)
    return best, checkpoints


def test_record_overhead(scale, capsys, bench_json):
    baseline_path = pathlib.Path(__file__).parent / "engine_speed_baseline.json"
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))

    results = {"scale": scale, "repeats": REPEATS, "workloads": {}}
    for name in WORKLOADS:
        program = compile_program(workload_source(name, scale)).program
        plain = _plain_steps_per_s(program)
        recorded, checkpoints = _recorded_steps_per_s(program, DEFAULT_INTERVAL)
        # dense: ~10 checkpoints over the run, the realistic worst case
        cpu = CPU()
        cpu.load(program)
        steps = cpu.run(record=False).instructions
        dense_interval = max(1000, steps // 10)
        dense, dense_checkpoints = _recorded_steps_per_s(program, dense_interval)
        numbers = {
            "plain_steps_per_s": round(plain),
            "recorded_steps_per_s": round(recorded),
            "record_slowdown": round(plain / recorded, 3),
            "checkpoints": checkpoints,
            "dense_interval": dense_interval,
            "dense_steps_per_s": round(dense),
            "dense_slowdown": round(plain / dense, 3),
            "dense_checkpoints": dense_checkpoints,
        }
        committed = baseline.get("workloads", {}).get(name)
        if committed:
            numbers["baseline_fast_steps_per_s"] = committed["fast_steps_per_s"]
            numbers["vs_baseline"] = round(plain / committed["fast_steps_per_s"], 3)
        results["workloads"][name] = numbers

    bench_json("BENCH_record.json", results)
    with capsys.disabled():
        print("\n" + json.dumps(results, indent=2))

    for name, numbers in results["workloads"].items():
        # recording off: the unchanged hot path, within variance of baseline
        if "vs_baseline" in numbers:
            assert numbers["vs_baseline"] >= MIN_BASELINE_RATIO, (name, numbers)
        # recording on (default interval): within 2x of untraced throughput
        assert numbers["record_slowdown"] <= MAX_RECORD_SLOWDOWN, (name, numbers)
