"""Benchmark harness for E9 — benchmark execution time (the headline table)."""

from conftest import once

from repro.experiments import e9_exec_time


def test_e9_execution_time(benchmark, scale, capsys):
    table = once(benchmark, e9_exec_time.run, scale)
    with capsys.disabled():
        print("\n" + table.render())

    program_rows = [row for row in table.rows if row[0] != "geometric mean"]
    mean_row = next(row for row in table.rows if row[0] == "geometric mean")
    vax_col = table.headers.index("VAX/RISC")
    m68k_col = table.headers.index("68K/RISC")
    z8k_col = table.headers.index("Z8K/RISC")

    # the paper's headline: RISC I is the fastest machine overall despite
    # its 2x slower clock
    assert mean_row[vax_col] > 1.3
    assert mean_row[m68k_col] > 1.0
    assert mean_row[z8k_col] > 1.0
    # and it wins on (essentially) every individual program
    wins = sum(1 for row in program_rows if row[vax_col] > 1.0)
    assert wins >= len(program_rows) - 1
    # the biggest wins are on call-heavy programs
    assert table.cell("towers", "VAX/RISC") > table.cell("qsort", "VAX/RISC")
