"""Load benchmark for the farm's HTTP front door (``repro.farm serve``).

Boots the server in-process (its own event loop on a background thread),
then opens over a thousand truly concurrent client connections — a
duplicate-heavy mix of ``POST /jobs``, ``GET /status``, ``GET /healthz``
and malformed specs — and emits ``BENCH_serve.json``.

The gates mirror the deployment contract:

* zero 5xx responses under load (malformed specs get structured 400s);
* in-flight dedupe holds: duplicate specs never re-dispatch, so each
  unique spec compiles/executes exactly once on the pool;
* a SIGTERM-style drain afterwards finishes everything in flight.
"""

import asyncio
import json
import threading

from conftest import once

from repro.farm import serve as farm_serve

#: total simultaneous client connections (the ISSUE floor is 1000)
CLIENTS = 1100

#: the duplicate-heavy spec mix; each unique spec must run exactly once
UNIQUE_SPECS = [
    {"workload": "towers", "kind": "execute"},
    {"workload": "towers", "kind": "compile"},
    {"workload": "sed", "kind": "execute"},
    {"workload": "sed:REPS=2", "kind": "execute"},
    {"workload": "qsort", "kind": "execute", "target": "cisc"},
    {"workload": "string_search_e", "kind": "ir"},
]

BAD_SPEC = {"workload": "not_a_workload"}


def _start_server(workers: int):
    """Run ``serve`` on a daemon thread; returns (server, loop, thread, holder)."""
    started = threading.Event()
    holder = {}

    def ready(server):
        holder["server"] = server
        holder["loop"] = server._server.get_loop()
        started.set()

    def runner():
        holder["summary"] = asyncio.run(
            farm_serve.run(port=0, workers=workers, ready=ready)
        )

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(60), "serve did not come up"
    return holder["server"], holder["loop"], thread, holder


def _http(method: str, path: str, payload=None) -> bytes:
    body = json.dumps(payload).encode() if payload is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: farm\r\n"
        f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


async def _one_client(host: str, port: int, request: bytes):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(request)
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        body = await reader.readexactly(length)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    return status, body


async def _fire(host: str, port: int, requests: list[bytes]):
    return await asyncio.gather(
        *(_one_client(host, port, request) for request in requests)
    )


def _request_mix() -> tuple[list[bytes], dict]:
    requests, counts = [], {"posts": 0, "bad_posts": 0, "gets": 0}
    for i in range(CLIENTS):
        if i % 9 == 7:
            requests.append(_http("GET", "/status"))
            counts["gets"] += 1
        elif i % 9 == 8:
            requests.append(_http("GET", "/healthz"))
            counts["gets"] += 1
        elif i % 37 == 17:
            requests.append(_http("POST", "/jobs", BAD_SPEC))
            counts["bad_posts"] += 1
        else:
            spec = UNIQUE_SPECS[i % len(UNIQUE_SPECS)]
            requests.append(_http("POST", "/jobs", spec))
            counts["posts"] += 1
    return requests, counts


def test_serve_load(benchmark, tmp_path, capsys, bench_json, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    workers = 2
    server, loop, thread, holder = _start_server(workers)
    host, port = server.host, server.port

    requests, counts = _request_mix()

    def _run(requests_subset):
        inner = asyncio.new_event_loop()
        try:
            return inner.run_until_complete(_fire(host, port, requests_subset))
        finally:
            inner.close()

    import time

    t0 = time.perf_counter()
    responses = once(benchmark, _run, requests)
    wall_s = time.perf_counter() - t0

    by_class = {}
    for status, _ in responses:
        by_class[status // 100] = by_class.get(status // 100, 0) + 1

    # every unique spec finishes; ?wait= long-polls until terminal
    keys = sorted(
        {json.loads(body)["key"] for status, body in responses if status == 202}
    )
    finals = _run([_http("GET", f"/jobs/{key}?wait=60") for key in keys])
    terminal = [json.loads(body) for _, body in finals]

    status_doc = json.loads(_run([_http("GET", "/status")])[0][1])
    server_counters = status_doc["server"]

    # graceful drain, exactly what SIGTERM does
    loop.call_soon_threadsafe(server.request_shutdown)
    thread.join(120)
    assert not thread.is_alive(), "serve did not drain"

    results = {
        "clients": CLIENTS,
        "workers": workers,
        "unique_specs": len(UNIQUE_SPECS),
        **counts,
        "wall_s": round(wall_s, 4),
        "requests_per_s": round(CLIENTS / max(wall_s, 1e-9), 1),
        "http_2xx": by_class.get(2, 0),
        "http_4xx": by_class.get(4, 0),
        "http_5xx": by_class.get(5, 0),
        "specs_dispatched": server_counters["specs_dispatched"],
        "deduped": server_counters["deduped_inflight"]
        + server_counters["deduped_registry"],
        "dedupe_hit_rate": server_counters["dedupe_hit_rate"],
        "drain_ok": holder["summary"]["ok"],
    }
    bench_json("BENCH_serve.json", results)
    with capsys.disabled():
        print("\n" + json.dumps(results, indent=2))

    assert by_class.get(5, 0) == 0, f"5xx under load: {by_class}"
    assert server_counters["server_errors"] == 0
    assert by_class.get(4, 0) == counts["bad_posts"]
    assert by_class.get(2, 0) == CLIENTS - counts["bad_posts"]
    # dedupe: every duplicate POST was answered without re-dispatch, so the
    # pool compiled/executed each unique spec exactly once
    assert server_counters["specs_dispatched"] == len(UNIQUE_SPECS)
    assert results["deduped"] == counts["posts"] - len(UNIQUE_SPECS)
    assert results["dedupe_hit_rate"] > 0
    assert len(keys) == len(UNIQUE_SPECS)
    for doc in terminal:
        assert doc["state"] == "done", doc
        assert doc["status"] in ("computed", "hit"), doc
    assert holder["summary"]["ok"]
