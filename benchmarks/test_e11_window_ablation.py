"""Benchmark harness for E11 — the register-window ablation."""

from conftest import once

from repro.experiments import e11_window_ablation


def test_e11_window_ablation(benchmark, scale, capsys):
    table = once(benchmark, e11_window_ablation.run, scale)
    with capsys.disabled():
        print("\n" + table.render())

    density_col = table.headers.index("calls/1k insts")
    s4 = table.headers.index("save 4 regs")
    s8 = table.headers.index("save 8 regs")
    s12 = table.headers.index("save 12 regs")

    for row in table.rows:
        # the projection must be monotone in the saved-register count
        assert row[s4] <= row[s8] <= row[s12], row[0]

    # windows pay off on call-dense programs...
    call_heavy = [row for row in table.rows if row[density_col] > 20]
    assert call_heavy, "need at least one call-dense benchmark"
    for row in call_heavy:
        if row[0] == "ackermann":
            continue  # pathological recursion already thrashes the windows
        assert row[s8] > 1.5, row[0]
    # ...and are nearly free to lack on straight-line code
    loop_heavy = next(row for row in table.rows if row[0] == "string_search_e")
    assert loop_heavy[s8] < 1.1
