"""Regenerate the checked-in seed ledger (``records.jsonl``).

The seed pins the *architectural* ground truth for the CI
``ledger-regressions`` job: one record per seed workload with the full
stats a correct simulator must reproduce — on any host, under either
engine.  CI copies the seed into a fresh ledger root, appends live runs,
and ``obs ledger diff`` between a live run and its seed record must be
clean.

Timing fields are deliberately nulled (a checked-in steps/s from one
machine would poison the rolling regression baseline on every other
machine), and so are the host/git stamps, which would otherwise churn on
every regeneration.  Rerun after any toolchain change that legitimately
shifts the stats:

    PYTHONPATH=src python benchmarks/ledger_seed/regenerate.py
"""

from pathlib import Path

SEED_WORKLOADS = ("towers:10", "qsort")


def main() -> None:
    from repro.cc.driver import compile_program, run_compiled
    from repro.obs.ledger import Ledger, make_record
    from repro.workloads import ALL_WORKLOADS, parse_workload_spec

    root = Path(__file__).parent
    records_path = root / "records.jsonl"
    records_path.unlink(missing_ok=True)
    (root / "index.jsonl").unlink(missing_ok=True)
    ledger = Ledger(root)
    for spec in SEED_WORKLOADS:
        name, overrides = parse_workload_spec(spec)
        compiled = compile_program(
            ALL_WORKLOADS[name].source(**overrides), filename=f"{name}.c"
        )
        result = run_compiled(compiled, engine="fast")
        record = make_record(result, engine="fast", workload=spec, scale="default", source="seed")
        record["timestamp"] = 0.0
        record["host"] = {}
        record["git_sha"] = None
        del record["run_id"]  # recomputed by append() over the final content
        run_id = ledger.append(record)
        print(f"{spec}: {result.instructions} instructions, seed record {run_id}")
    (root / "index.jsonl").unlink(missing_ok=True)  # records.jsonl is the truth


if __name__ == "__main__":
    main()
