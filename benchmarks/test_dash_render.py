"""Benchmark harness for the operator console's render path.

Builds a ledger with many synthetic trajectories, then times the two
things the console does per refresh: assembling a
:class:`~repro.obs.console.ConsoleSnapshot` from the ledger and
rendering the full dashboard page from it.  Emits ``BENCH_dash.json``.
Both paths sit on a 2-second default refresh interval, so they must stay
far under it — the assertion bound is deliberately generous (CI machines
are noisy), the JSON artifact is the trend to watch.
"""

import json
import time

from repro.obs.console import ConsoleProvider
from repro.obs.dash import render_dashboard
from repro.obs.ledger import LEDGER_SCHEMA_VERSION, Ledger

TRAJECTORIES = 24
RUNS_PER_TRAJECTORY = 40
REPEATS = 5


def _seed(root) -> Ledger:
    ledger = Ledger(root)
    for t in range(TRAJECTORIES):
        for seq in range(RUNS_PER_TRAJECTORY):
            ledger.append(
                {
                    "schema": LEDGER_SCHEMA_VERSION,
                    "timestamp": 1000.0 + t * 1000 + seq,
                    "source": "bench",
                    "workload": f"wl{t:02d}",
                    "scale": "default",
                    "machine": "risc1",
                    "engine": "fast",
                    "exit_code": 0,
                    "output_sha": "00" * 8,
                    "stats": {"instructions": 1000 + seq},
                    "steps_per_s": 1000.0
                    + (seq % 7) * 10
                    # every third trajectory craters ~40% on its last run
                    - (400 if seq == RUNS_PER_TRAJECTORY - 1 and t % 3 == 0 else 0),
                    "run_id": f"{t:04x}{seq:012x}",
                }
            )
    return ledger


def _best(fn):
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_dash_render(tmp_path, capsys, bench_json):
    provider = ConsoleProvider(_seed(tmp_path / "ledger"))
    snapshot_s = _best(provider.snapshot)
    snapshot = provider.snapshot()
    render_s = _best(lambda: render_dashboard(snapshot))
    page = render_dashboard(snapshot)

    results = {
        "trajectories": TRAJECTORIES,
        "runs": TRAJECTORIES * RUNS_PER_TRAJECTORY,
        "repeats": REPEATS,
        "snapshot_ms": round(snapshot_s * 1000.0, 3),
        "render_ms": round(render_s * 1000.0, 3),
        "page_bytes": len(page),
        "regressions_flagged": len(snapshot.regressions),
    }
    bench_json("BENCH_dash.json", results)
    with capsys.disabled():
        print("\n" + json.dumps(results, indent=2))

    assert f'data-trajectories="{TRAJECTORIES}"' in page
    assert results["regressions_flagged"] > 0  # the seeded craters are seen
    # one refresh must fit comfortably inside the 2 s default interval
    assert snapshot_s + render_s < 2.0
