"""Benchmark harness for the predecoded execution engine.

Runs the paper's hanoi (``towers``) and ``qsort`` workloads on the RISC I
simulator under both engines — the reference ``step()`` loop and the
predecoded fast path — with tracing off and with full tracing, and emits
``BENCH_speed.json``.

The load-bearing numbers are the tracing-off speedups: the fast engine
exists to make the experiment/farm hot path cheap, and it must deliver at
least 3x instructions/second there.  With tracing on the engine drops to
its exact per-step loop (event timestamps must match the reference bit
for bit), which still must not be slower than the reference loop.

CI compares ``BENCH_speed.json`` against the committed
``benchmarks/engine_speed_baseline.json`` and flags (non-blocking) any
>20% fast-engine throughput drop.
"""

import json
import time

from repro.cc.driver import compile_program
from repro.core.cpu import CPU
from repro.farm.jobs import workload_source
from repro.obs import Tracer

WORKLOADS = ("towers", "qsort")
REPEATS = 5
MIN_SPEEDUP = 3.0


def _steps_per_s(program, engine, traced):
    best = 0.0
    for _ in range(REPEATS):
        cpu = CPU(tracer=Tracer() if traced else None)
        cpu.load(program)
        started = time.perf_counter()
        result = cpu.run(max_steps=500_000_000, engine=engine)
        elapsed = time.perf_counter() - started
        assert result.exit_code == 0
        best = max(best, result.instructions / elapsed)
    return best


def test_engine_speed(scale, capsys, bench_json):
    from repro.obs.ledger import ledger_context

    results = {"scale": scale, "repeats": REPEATS, "workloads": {}}
    for name in WORKLOADS:
        program = compile_program(workload_source(name, scale)).program
        with ledger_context(workload=name, scale=scale):
            reference = _steps_per_s(program, "reference", traced=False)
            fast = _steps_per_s(program, "fast", traced=False)
            reference_traced = _steps_per_s(program, "reference", traced=True)
            fast_traced = _steps_per_s(program, "fast", traced=True)
        results["workloads"][name] = {
            "reference_steps_per_s": round(reference),
            "fast_steps_per_s": round(fast),
            "speedup": round(fast / reference, 2),
            "reference_traced_steps_per_s": round(reference_traced),
            "fast_traced_steps_per_s": round(fast_traced),
            "traced_speedup": round(fast_traced / reference_traced, 2),
        }

    bench_json("BENCH_speed.json", results)
    with capsys.disabled():
        print("\n" + json.dumps(results, indent=2))

    for name, numbers in results["workloads"].items():
        # the acceptance bar: >= 3x with tracing off ...
        assert numbers["speedup"] >= MIN_SPEEDUP, (name, numbers)
        # ... and no regression with tracing on (0.9 absorbs timer noise)
        assert numbers["traced_speedup"] >= 0.9, (name, numbers)
