"""Benchmark harness for the observability layer's hot-path cost.

Runs quicksort on the RISC I simulator four ways — no tracer, a tracer
that wants no kinds, call-flow tracing, and full per-instruction tracing
— and emits ``BENCH_obs.json``.  The load-bearing number is the
*disabled* overhead: machines resolve their tracer once at construction,
so leaving observability off must cost (almost) nothing in the step
loop.
"""

import json
import time

from repro.cc.driver import compile_program
from repro.core.cpu import CPU
from repro.farm.jobs import workload_source
from repro.obs import FLOW_KINDS, Tracer

WORKLOAD = "qsort"
REPEATS = 5


def _steps_per_s(program, make_tracer):
    best = 0.0
    for _ in range(REPEATS):
        cpu = CPU(tracer=make_tracer())
        cpu.load(program)
        started = time.perf_counter()
        result = cpu.run(max_steps=500_000_000)
        elapsed = time.perf_counter() - started
        assert result.exit_code == 0
        best = max(best, result.instructions / elapsed)
    return best


def test_obs_overhead(scale, capsys, bench_json):
    program = compile_program(workload_source(WORKLOAD, scale)).program

    baseline = _steps_per_s(program, lambda: None)
    disabled = _steps_per_s(program, lambda: Tracer(kinds=frozenset()))
    flow = _steps_per_s(program, lambda: Tracer(kinds=FLOW_KINDS))
    full = _steps_per_s(program, lambda: Tracer())

    def pct(rate):
        return round((baseline - rate) / baseline * 100.0, 2)

    results = {
        "workload": WORKLOAD,
        "scale": scale,
        "repeats": REPEATS,
        "baseline_steps_per_s": round(baseline),
        "disabled_tracer_steps_per_s": round(disabled),
        "flow_tracing_steps_per_s": round(flow),
        "full_tracing_steps_per_s": round(full),
        "disabled_overhead_pct": pct(disabled),
        "flow_overhead_pct": pct(flow),
        "full_overhead_pct": pct(full),
    }
    bench_json("BENCH_obs.json", results)
    with capsys.disabled():
        print("\n" + json.dumps(results, indent=2))

    # the acceptance bar: a constructed-but-silent tracer stays within 5%
    # of the no-tracer path (both take the same cached-boolean fast path)
    assert disabled >= 0.95 * baseline, results
