"""Benchmark harness for E10 — delay-slot utilization."""

from conftest import once

from repro.experiments import e10_delay_slots


def test_e10_delay_slots(benchmark, scale, capsys):
    table = once(benchmark, e10_delay_slots.run, scale)
    with capsys.disabled():
        print("\n" + table.render())

    fill_col = table.headers.index("fill rate %")
    insts_col = table.headers.index("insts saved %")
    cycles_col = table.headers.index("cycles saved %")

    fill_rates = [row[fill_col] for row in table.rows]
    # the optimizer fills a substantial fraction of slots overall
    assert sum(fill_rates) / len(fill_rates) > 35.0
    for row in table.rows:
        # filling slots can only help (never executes extra work)
        assert row[insts_col] >= 0.0, row[0]
        assert row[cycles_col] >= 0.0, row[0]
    # call-heavy code benefits most in executed instructions
    assert table.cell("ackermann", "insts saved %") > 5.0
