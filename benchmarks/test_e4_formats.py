"""Benchmark harness for E4 — Figure: instruction formats."""

from repro.experiments import e4_formats


def test_e4_formats(benchmark, scale, capsys):
    table = benchmark(e4_formats.run, scale)
    with capsys.disabled():
        print("\n" + table.render())
        print(e4_formats.render_figure())

    assert table.column("total bits") == [32, 32]
    short_fields = table.cell("short", "fields")
    assert "s2:13" in short_fields and "opcode:7" in short_fields
    assert "y:19" in table.cell("long", "fields")
