"""Benchmark harness for E6 — window overflow rate vs. window count."""

from conftest import once

from repro.experiments import e6_window_overflow


def test_e6_overflow_rates(benchmark, scale, capsys):
    table = once(benchmark, e6_window_overflow.run, scale)
    with capsys.disabled():
        print("\n" + table.render())

    window_columns = [h for h in table.headers if h.endswith("win")]
    for row in table.rows:
        rates = [row[table.headers.index(col)] for col in window_columns]
        # overflow rate must fall monotonically as windows are added
        assert all(a >= b for a, b in zip(rates, rates[1:])), row[0]
        # with 2 windows every call spills
        assert rates[0] == 100.0

    # the paper's design point: 8 windows suffice for ordinary programs
    # (deep recursion like Ackermann is the acknowledged pathological case)
    for name in ("towers", "qsort", "puzzle_subscript", "sed"):
        assert table.cell(name, "8 win") < 5.0
    assert table.cell("ackermann", "8 win") > 10.0  # the pathological case
