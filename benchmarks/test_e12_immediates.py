"""Benchmark harness for E12 — the 13-bit immediate design rationale."""

from conftest import once

from repro.experiments import e12_immediates


def test_e12_immediates(benchmark, scale, capsys):
    table = once(benchmark, e12_immediates.run, scale)
    with capsys.disabled():
        print("\n" + table.render())

    all_row = next(row for row in table.rows if row[0] == "ALL")
    small = all_row[table.headers.index("<=5 bits %")]
    fits = all_row[table.headers.index("<=13 bits %")]
    ldhi = all_row[table.headers.index("LDHI escapes")]
    immediates = all_row[table.headers.index("immediates")]

    # the design-rationale claims: constants are overwhelmingly tiny, the
    # 13-bit field covers everything the compiler emits inline, and the
    # LDHI escape is rare relative to immediate use
    assert small > 70.0
    assert fits == 100.0
    assert ldhi < 0.25 * immediates

    # dynamically, LDHI is a small fraction of executed instructions
    for row in table.rows:
        if row[0] in ("ALL",):
            continue
        assert row[table.headers.index("LDHI executed %")] < 12.0, row[0]
