"""Benchmark harnesses for the extension ablations E13 (memory latency)
and E14 (overflow handler policy)."""

from conftest import once

from repro.experiments import e13_memory_latency, e14_spill_policy


def test_e13_memory_latency(benchmark, scale, capsys):
    table = once(benchmark, e13_memory_latency.run, scale)
    with capsys.disabled():
        print("\n" + table.render())

    mean_row = next(row for row in table.rows if row[0] == "geometric mean")
    ratios = mean_row[1:]
    # once memory is slower than the RISC cycle (the 400ns entry onward),
    # RISC I's lead must widen monotonically: it makes fewer data
    # references per unit of work
    beyond_crossover = ratios[1:]
    assert beyond_crossover == sorted(beyond_crossover)
    assert beyond_crossover[-1] > beyond_crossover[0]
    # and RISC I stays ahead at every latency
    assert min(ratios) > 1.0


def test_e14_spill_policy(benchmark, scale, capsys):
    table = once(benchmark, e14_spill_policy.run, scale)
    with capsys.disabled():
        print("\n" + table.render())

    for row in table.rows:
        traps = row[1:4]
        # larger batches always mean fewer (or equal) overflow traps
        assert traps[0] >= traps[1] >= traps[2], row[0]

    # thrashing recursion on a small file benefits in cycles from batching...
    ack_small = next(row for row in table.rows if row[0] == "ackermann/4w")
    assert min(ack_small[5], ack_small[6]) < ack_small[4]
    # ...while a well-behaved program pays for over-spilling
    towers = next(row for row in table.rows if row[0] == "towers/4w")
    assert towers[4] <= towers[5] <= towers[6]  # demand policy wins
