"""Benchmark harness for the source-level profiler's cost.

Runs quicksort on both simulated machines with profiling off and on and
emits ``BENCH_profile.json``.  Two numbers matter:

* the **off** path must stay within noise of the no-tracer baseline
  (same cached-boolean fast path PR 2's BENCH_obs harness guards); and
* the **on** path shows what a streaming :class:`ProfilingTracer` costs —
  it folds every retire/call/ret into histograms with no Event
  allocation, so it should beat full ring-buffer tracing.
"""

import json
import time

from repro.cc.driver import compile_program, run_compiled
from repro.farm.jobs import workload_source
from repro.obs.profile import ProfileBuilder, ProfilingTracer
from repro.obs.symbols import Symbolizer

WORKLOAD = "qsort"
REPEATS = 3


def _steps_per_s(compiled, make_tracer):
    best = 0.0
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = run_compiled(compiled, max_steps=500_000_000, tracer=make_tracer())
        elapsed = time.perf_counter() - started
        assert result.exit_code == 0
        best = max(best, result.instructions / elapsed)
    return best


def test_profile_overhead(scale, capsys, bench_json):
    results = {"workload": WORKLOAD, "scale": scale, "repeats": REPEATS}
    for target in ("risc1", "cisc"):
        compiled = compile_program(
            workload_source(WORKLOAD, scale), target=target, filename=f"{WORKLOAD}.c"
        )
        symbolizer = Symbolizer(compiled.program)
        off = _steps_per_s(compiled, lambda: None)
        on = _steps_per_s(
            compiled, lambda: ProfilingTracer(ProfileBuilder(symbolizer))
        )
        results[target] = {
            "profiling_off_steps_per_s": round(off),
            "profiling_on_steps_per_s": round(on),
            "profiling_overhead_pct": round((off - on) / off * 100.0, 2),
        }

    bench_json("BENCH_profile.json", results)
    with capsys.disabled():
        print("\n" + json.dumps(results, indent=2))

    # profiling must actually profile, and the off path must not regress:
    # both targets keep a sane ratio (generous bound — CI machines are noisy)
    for target in ("risc1", "cisc"):
        assert results[target]["profiling_on_steps_per_s"] > 0
        assert results[target]["profiling_overhead_pct"] < 95.0, results
