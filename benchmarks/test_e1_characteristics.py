"""Benchmark harness for E1 — Table I: processor characteristics."""

from repro.experiments import e1_characteristics


def test_e1_table(benchmark, scale, capsys):
    table = benchmark(e1_characteristics.run, scale)
    with capsys.disabled():
        print("\n" + table.render())

    # the paper's claim: RISC I needs an order of magnitude less control
    assert table.cell("RISC I", "instructions") == 31
    assert table.cell("RISC I", "decode entries") < table.cell("VAX-like", "decode entries")
    assert table.cell("RISC I", "microcode") == "none"
    machines = table.column("machine")
    assert machines == ["RISC I", "VAX-like", "M68000", "Z8002"]
