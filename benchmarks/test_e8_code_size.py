"""Benchmark harness for E8 — benchmark program size."""

from conftest import once

from repro.experiments import e8_code_size


def test_e8_code_size(benchmark, scale, capsys):
    table = once(benchmark, e8_code_size.run, scale)
    with capsys.disabled():
        print("\n" + table.render())

    program_rows = [row for row in table.rows if row[0] != "geometric mean"]
    mean_row = next(row for row in table.rows if row[0] == "geometric mean")
    vax_ratio = mean_row[table.headers.index("VAX/RISC")]

    # the paper's shape: CISC code is denser, but not absurdly so —
    # RISC I's fixed 32-bit instructions cost roughly 1.3-2x VAX bytes
    assert 0.45 <= vax_ratio <= 0.9
    for row in program_rows:
        assert row[table.headers.index("VAX/RISC")] < 1.0, row[0]
        assert row[table.headers.index("68K/RISC")] < 1.0, row[0]
        assert row[table.headers.index("Z8K/RISC")] < 1.0, row[0]
    # the 16-bit machines are denser than the VAX-like machine on average
    assert mean_row[table.headers.index("68K/RISC")] < vax_ratio
