"""Benchmark harness for E5 — Figure: overlapped register windows."""

from repro.experiments import e5_register_windows
from repro.isa.registers import physical_index


def test_e5_overlap_figure(benchmark, scale, capsys):
    table = benchmark(e5_register_windows.run, scale)
    with capsys.disabled():
        print("\n" + e5_register_windows.render_figure())

    # the load-bearing cell: A's LOW physical span equals B's HIGH span
    assert table.cell("r10-r15 LOW", "proc A (w0)") == table.cell(
        "r26-r31 HIGH", "proc B (w1)"
    )
    assert table.cell("r10-r15 LOW", "proc B (w1)") == table.cell(
        "r26-r31 HIGH", "proc C (w2)"
    )
    # globals identical everywhere
    globals_row = [table.cell("r0-r9 GLOBAL", c) for c in table.headers[1:]]
    assert len(set(globals_row)) == 1


def test_e5_mapping_throughput(benchmark):
    def map_all():
        for window in range(8):
            for reg in range(32):
                physical_index(window, reg)

    benchmark(map_all)
