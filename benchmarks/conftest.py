"""Shared fixtures for the benchmark harnesses.

``REPRO_SCALE=bench`` switches every harness to the paper-scale workload
parameters (slower); the default keeps CI-friendly sizes.  Ratios and
qualitative outcomes are stable across scales.
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "default")


def once(benchmark, fn, *args, **kwargs):
    """Run a heavyweight simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
