"""Shared fixtures for the benchmark harnesses.

``REPRO_SCALE=bench`` switches every harness to the paper-scale workload
parameters (slower); the default keeps CI-friendly sizes.  Ratios and
qualitative outcomes are stable across scales.

Every ``BENCH_*.json`` goes through :func:`write_bench_json`, which
stamps ``schema_version``, git sha, host and toolchain fingerprints —
the same stamp ledger records carry — so bench files are joinable with
``.repro-ledger`` records.  The autouse session fixture tags any machine
run recorded during a bench session (``$REPRO_LEDGER`` opt-in) with
``source="bench"``.
"""

import json
import os
import pathlib

import pytest

#: Bump on any backwards-incompatible BENCH_*.json envelope change.
BENCH_SCHEMA_VERSION = 1


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "default")


def once(benchmark, fn, *args, **kwargs):
    """Run a heavyweight simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def write_bench_json(path, payload: dict) -> dict:
    """Write one ``BENCH_*.json``, stamped to be joinable with the ledger.

    The stamp (``schema_version``, ``git_sha``, ``host``, ``toolchain``)
    is spread first so a harness cannot accidentally shadow its own
    results — the payload's keys win on collision.
    """
    from repro.obs.ledger import environment_stamp

    document = {"schema_version": BENCH_SCHEMA_VERSION, **environment_stamp(), **payload}
    target = pathlib.Path(path)
    target.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return document


@pytest.fixture(scope="session")
def bench_json():
    """The shared stamped-JSON writer, as a fixture."""
    return write_bench_json


@pytest.fixture(autouse=True, scope="session")
def _bench_ledger_source():
    """Tag ledger records appended during a bench session as bench runs."""
    from repro.obs.ledger import ledger_context

    with ledger_context(source="bench"):
        yield
