"""Benchmark harness for the uarch pipeline model's cost.

Runs quicksort on the RISC I simulator three ways — no pipeline model,
one probe (the default ``bht2/full`` configuration), and the full
five-probe experiment sweep — and emits ``BENCH_pipeline.json``.  The
load-bearing number is the *disabled* path: ``run(uarch=None)`` attaches
nothing, so the fast engine keeps its batched loop and throughput must
stay within noise of the plain run.  The probe factors are informational
(measuring forces the exact per-step loop plus Python accounting per
retire, so a real slowdown is expected and recorded, not asserted).
"""

import json
import time

from repro.cc.driver import compile_program
from repro.core.cpu import CPU
from repro.farm.jobs import workload_source
from repro.uarch import UarchConfig, standard_sweep

WORKLOAD = "qsort"
REPEATS = 5


def _steps_per_s(program, uarch):
    best = 0.0
    for _ in range(REPEATS):
        cpu = CPU()
        cpu.load(program)
        started = time.perf_counter()
        result = cpu.run(max_steps=500_000_000, uarch=uarch)
        elapsed = time.perf_counter() - started
        assert result.exit_code == 0
        best = max(best, result.instructions / elapsed)
    return best


def _sweep_steps_per_s(program):
    from repro.uarch import run_with_pipeline

    best = 0.0
    for _ in range(REPEATS):
        cpu = CPU()
        cpu.load(program)
        started = time.perf_counter()
        result, stats = run_with_pipeline(
            cpu, standard_sweep(), max_steps=500_000_000
        )
        elapsed = time.perf_counter() - started
        assert result.exit_code == 0
        assert len(stats) == 5
        best = max(best, result.instructions / elapsed)
    return best


def test_pipeline_overhead(scale, capsys, bench_json):
    program = compile_program(workload_source(WORKLOAD, scale)).program

    baseline = _steps_per_s(program, None)
    off = _steps_per_s(program, None)  # second sample of the same path
    one_probe = _steps_per_s(program, UarchConfig())
    sweep = _sweep_steps_per_s(program)

    results = {
        "workload": WORKLOAD,
        "scale": scale,
        "repeats": REPEATS,
        "baseline_steps_per_s": round(baseline),
        "uarch_off_steps_per_s": round(off),
        "uarch_one_probe_steps_per_s": round(one_probe),
        "uarch_sweep5_steps_per_s": round(sweep),
        "uarch_off_overhead_pct": round((baseline - off) / baseline * 100.0, 2),
        "one_probe_slowdown_x": round(baseline / one_probe, 2),
        "sweep5_slowdown_x": round(baseline / sweep, 2),
    }
    bench_json("BENCH_pipeline.json", results)
    with capsys.disabled():
        print("\n" + json.dumps(results, indent=2))

    # the acceptance bar: uarch=None attaches nothing, so the fast
    # engine's batched loop must stay within noise of the plain run
    assert off >= 0.90 * baseline, results
    # sanity: the probes actually measured something
    assert one_probe > 0 and sweep > 0
