"""Benchmark harness for E7 — procedure-call cost on each machine."""

from conftest import once

from repro.experiments import e7_call_cost


def test_e7_call_cost(benchmark, scale, capsys):
    table = once(benchmark, e7_call_cost.run, scale)
    with capsys.disabled():
        print("\n" + table.render())

    windows = table.rows[0]
    vax = table.rows[-1]
    conventional_8 = next(r for r in table.rows if "save 8" in r[0])

    refs = table.headers.index("data refs")
    time_ns = table.headers.index("time (ns)")

    # register windows: almost no memory traffic per call
    assert windows[refs] <= 2.0
    # VAX CALLS/RET: well over a dozen memory references
    assert vax[refs] >= 12.0
    # the windowed call is the fastest of the three conventions
    assert windows[time_ns] < conventional_8[time_ns]
    assert windows[time_ns] < vax[time_ns]
    # and the conventional projection scales with saved registers
    times = [r[time_ns] for r in table.rows[1:4]]
    assert times == sorted(times)
