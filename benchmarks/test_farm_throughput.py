"""Benchmark harness for the simulation farm itself.

Measures an E8/E9-style sweep (compile + execute on both targets, plus IR
profiles) four ways — cold vs. warm cache, serial vs. parallel — and
emits ``BENCH_farm.json`` with the wall times and speedups so farm
regressions show up as numbers, not vibes.
"""

import json

from conftest import once

from repro.farm.cache import ArtifactCache
from repro.farm.jobs import sweep_jobs
from repro.farm.scheduler import run_sweep

#: a representative slice of the paper's grid: call-heavy, loop-heavy, mixed
WORKLOADS = ["towers", "sed", "qsort"]
PARALLEL_WORKERS = 4


def _sweep(cache_root, workers, scale):
    report = run_sweep(
        sweep_jobs(workloads=WORKLOADS, scale=scale),
        workers=workers,
        cache=ArtifactCache(cache_root),
    )
    assert report.counts["failed"] == 0
    return report


def test_farm_throughput(benchmark, scale, tmp_path, capsys, bench_json):
    serial_root = tmp_path / "serial"
    parallel_root = tmp_path / "parallel"

    cold_serial = _sweep(serial_root, 1, scale)
    warm_serial = _sweep(serial_root, 1, scale)
    cold_parallel = once(benchmark, _sweep, parallel_root, PARALLEL_WORKERS, scale)
    warm_parallel = _sweep(parallel_root, PARALLEL_WORKERS, scale)

    # a warm cache means zero recomputes, and it must be much cheaper
    assert warm_serial.counts["computed"] == 0
    assert warm_parallel.counts["computed"] == 0
    assert warm_serial.wall_s < cold_serial.wall_s

    results = {
        "workloads": WORKLOADS,
        "scale": scale,
        "jobs": len(cold_serial.outcomes),
        "workers": PARALLEL_WORKERS,
        "cold_serial_s": round(cold_serial.wall_s, 4),
        "warm_serial_s": round(warm_serial.wall_s, 4),
        "cold_parallel_s": round(cold_parallel.wall_s, 4),
        "warm_parallel_s": round(warm_parallel.wall_s, 4),
        "parallel_mode": cold_parallel.mode,
        "warm_speedup": round(cold_serial.wall_s / max(warm_serial.wall_s, 1e-9), 2),
        "parallel_speedup": round(
            cold_serial.wall_s / max(cold_parallel.wall_s, 1e-9), 2
        ),
    }
    bench_json("BENCH_farm.json", results)
    with capsys.disabled():
        print("\n" + json.dumps(results, indent=2))
