"""Benchmark harness for the simulation farm itself.

Measures an E8/E9-style sweep (compile + execute on both targets, plus IR
profiles) four ways — cold vs. warm cache, serial vs. parallel — and
emits ``BENCH_farm.json`` with the wall times and speedups so farm
regressions show up as numbers, not vibes.

The parallel legs run through one persistent :class:`FarmClient` per
configuration, so the numbers measure the worker pool as deployed:
forked once, toolchain preloaded, batched dispatch.  The speedup floor
is core-aware — a host with fewer cores than workers cannot speed up by
forking, so there the gate only guards against the pool *regressing*
serial throughput.
"""

import json
import os

from conftest import once

from repro.farm.api import FarmClient
from repro.farm.cache import ArtifactCache
from repro.farm.jobs import sweep_jobs
from repro.farm.pool import default_batch_size

#: a representative slice of the paper's grid: call-heavy, loop-heavy, mixed
WORKLOADS = ["towers", "sed", "qsort"]
PARALLEL_WORKERS = 4


def _sweep(cache_root, workers, scale):
    with FarmClient(workers=workers, cache=ArtifactCache(cache_root)) as client:
        report = client.sweep(sweep_jobs(workloads=WORKLOADS, scale=scale))
    assert report.counts["failed"] == 0
    return report


def test_farm_throughput(benchmark, scale, tmp_path, capsys, bench_json):
    serial_root = tmp_path / "serial"
    parallel_root = tmp_path / "parallel"

    cold_serial = _sweep(serial_root, 1, scale)
    warm_serial = _sweep(serial_root, 1, scale)
    cold_parallel = once(benchmark, _sweep, parallel_root, PARALLEL_WORKERS, scale)
    warm_parallel = _sweep(parallel_root, PARALLEL_WORKERS, scale)

    # a warm cache means zero recomputes, and it must be much cheaper
    assert warm_serial.counts["computed"] == 0
    assert warm_parallel.counts["computed"] == 0
    assert warm_serial.wall_s < cold_serial.wall_s

    cpu_count = os.cpu_count() or 1
    jobs = len(cold_serial.outcomes)
    speedup_cold = cold_serial.wall_s / max(cold_parallel.wall_s, 1e-9)
    speedup_warm = warm_serial.wall_s / max(warm_parallel.wall_s, 1e-9)
    # Full fan-out needs the cores to back it; otherwise forking can only
    # add overhead, so the gate is "parallel must not badly regress serial".
    speedup_floor = 3.0 if min(PARALLEL_WORKERS, cpu_count) >= 4 else 0.7

    results = {
        "workloads": WORKLOADS,
        "scale": scale,
        "jobs": jobs,
        "workers": PARALLEL_WORKERS,
        "cpu_count": cpu_count,
        "batch_size": default_batch_size(jobs, PARALLEL_WORKERS),
        "cold_serial_s": round(cold_serial.wall_s, 4),
        "warm_serial_s": round(warm_serial.wall_s, 4),
        "cold_parallel_s": round(cold_parallel.wall_s, 4),
        "warm_parallel_s": round(warm_parallel.wall_s, 4),
        "parallel_mode": cold_parallel.mode,
        "warm_speedup": round(cold_serial.wall_s / max(warm_serial.wall_s, 1e-9), 2),
        "parallel_speedup": round(speedup_cold, 2),
        "parallel_speedup_cold": round(speedup_cold, 2),
        "parallel_speedup_warm": round(speedup_warm, 2),
        "parallel_speedup_floor": speedup_floor,
    }
    bench_json("BENCH_farm.json", results)
    with capsys.disabled():
        print("\n" + json.dumps(results, indent=2))

    assert cold_parallel.mode == "parallel"
    assert speedup_cold >= speedup_floor, (
        f"cold parallel sweep at {speedup_cold:.2f}x vs serial "
        f"(floor {speedup_floor}x on {cpu_count} cores)"
    )
