"""Unit tests for the delay-slot optimizer, plus semantics tests showing
filled slots execute correctly on the simulator."""

from repro.asm import assemble
from repro.cc.delay import DelayStats, optimize
from repro.core import CPU


def lines_of(text: str) -> list[str]:
    return [line.strip() for line in text.splitlines() if line.strip()]


class TestPeephole:
    def test_jump_to_next_removed(self):
        source = "\n".join([
            "main:",
            "    add r2, r0, #1",
            "    jmp next",
            "    nop",
            "next:",
            "    halt r2",
        ])
        optimized, stats = optimize(source)
        assert stats.jumps_to_next_removed == 1
        assert "jmp" not in optimized

    def test_unconditional_jump_takes_preceding_instruction(self):
        source = "\n".join([
            "main:",
            "    add r2, r0, #1",
            "    add r3, r0, #2",
            "    jmp away",
            "    nop",
            "    add r4, r0, #3",
            "away:",
            "    halt r2",
        ])
        optimized, stats = optimize(source)
        assert stats.jump_slots_filled == 1
        body = lines_of(optimized)
        jump_at = next(i for i, l in enumerate(body) if l.startswith("jmp"))
        assert body[jump_at + 1].startswith("add r3")  # moved into the slot

    def test_candidate_feeding_compare_not_moved(self):
        source = "\n".join([
            "main:",
            "    add r2, r0, #1",
            "    sub! r0, r2, #1",
            "    jeq away",
            "    nop",
            "away:",
            "    halt r2",
        ])
        optimized, stats = optimize(source)
        body = lines_of(optimized)
        jump_at = next(i for i, l in enumerate(body) if l.startswith("jeq"))
        assert body[jump_at + 1] == "nop"

    def test_labelled_candidate_not_moved(self):
        source = "\n".join([
            "main:",
            "target:",
            "    add r3, r0, #2",
            "    jmp target",
            "    nop",
        ])
        optimized, stats = optimize(source)
        body = lines_of(optimized)
        # the candidate is a jump target: it must not move, but the
        # target-copy fallback may duplicate it into the slot
        assert "add r3, r0, #2" in body[body.index("target:") + 1]

    def test_call_slot_takes_argument_move(self):
        source = "\n".join([
            "main:",
            "    add r2, r0, #0",
            "    add r10, r0, #5",
            "    call f",
            "    nop",
            "    halt r10",
            "f:",
            "    ret",
            "    nop",
        ])
        optimized, stats = optimize(source)
        assert stats.call_slots_filled == 1
        body = lines_of(optimized)
        call_at = next(i for i, l in enumerate(body) if l.startswith("call"))
        assert body[call_at + 1].startswith("add r10")

    def test_existing_delay_slot_never_stolen(self):
        source = "\n".join([
            "main:",
            "    call f",
            "    add r10, r0, #1",  # already f's delay slot (pre-filled)
            "    sub! r0, r10, #1",
            "    jeq away",
            "    nop",
            "away:",
            "    halt r10",
            "f:",
            "    ret",
            "    nop",
        ])
        optimized, stats = optimize(source)
        body = lines_of(optimized)
        call_at = next(i for i, l in enumerate(body) if l.startswith("call"))
        assert body[call_at + 1].startswith("add r10")  # still in place

    def test_stats_properties(self):
        stats = DelayStats(jump_slots=4, jump_slots_filled=2, call_slots=2,
                           call_slots_filled=1, ret_slots=2, ret_slots_filled=2)
        assert stats.total_slots == 8
        assert stats.total_filled == 5
        assert abs(stats.fill_rate - 5 / 8) < 1e-9

    def test_empty_module(self):
        optimized, stats = optimize("")
        assert stats.total_slots == 0


class TestFilledSlotsExecuteCorrectly:
    """The optimizer's output must behave identically when simulated."""

    def run_both(self, source: str) -> tuple[int, int]:
        raw_cpu = CPU()
        raw_cpu.load(assemble(source))
        raw = raw_cpu.run()
        optimized, _ = optimize(source)
        opt_cpu = CPU()
        opt_cpu.load(assemble(optimized))
        opt = opt_cpu.run()
        return raw.exit_code, opt.exit_code

    def test_loop_with_back_edge(self):
        source = "\n".join([
            "main:",
            "    add r2, r0, #0",
            "    add r3, r0, #0",
            "loop:",
            "    cmp r3, #10",
            "    jge done",
            "    nop",
            "    add r2, r2, r3",
            "    add r3, r3, #1",
            "    jmp loop",
            "    nop",
            "done:",
            "    halt r2",
        ])
        raw, optimized = self.run_both(source)
        assert raw == optimized == sum(range(10))

    def test_call_chain_with_argument_moves(self):
        source = "\n".join([
            "main:",
            "    add r10, r0, #3",
            "    call triple",
            "    nop",
            "    halt r10",
            "triple:",
            "    add r16, r26, r26",
            "    add r26, r16, r26",
            "    ret",
            "    nop",
        ])
        raw, optimized = self.run_both(source)
        assert raw == optimized == 9
