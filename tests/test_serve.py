"""The farm's HTTP front door: endpoints, dedupe, structured errors, drain.

Most tests run the server in-process (its own event loop on a daemon
thread, serial client — no forked workers needed to exercise the HTTP
contract).  The SIGTERM test boots the real ``python -m repro.farm
serve`` subprocess and asserts the drain behaviour end to end: in-flight
work finishes, the summary line is printed, exit code 0.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.farm import serve as farm_serve

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture()
def server(tmp_path, monkeypatch):
    """An in-process serial-mode server; yields (server, base_url)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    started = threading.Event()
    holder = {}

    def ready(srv):
        holder["server"] = srv
        holder["loop"] = srv._server.get_loop()
        started.set()

    def runner():
        holder["summary"] = asyncio.run(
            farm_serve.run(port=0, workers=1, ready=ready)
        )

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(60), "serve did not come up"
    srv = holder["server"]
    yield srv, f"http://{srv.host}:{srv.port}", holder
    try:
        holder["loop"].call_soon_threadsafe(srv.request_shutdown)
    except RuntimeError:
        pass  # a test already drained the server and its loop is closed
    thread.join(60)
    assert not thread.is_alive()


def _request(base, method, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestEndpoints:
    def test_healthz(self, server):
        _, base, _ = server
        code, body = _request(base, "GET", "/healthz")
        assert code == 200
        assert body == {"ok": True, "draining": False}

    def test_submit_then_get(self, server):
        _, base, _ = server
        code, body = _request(base, "POST", "/jobs", {"workload": "towers"})
        assert code == 202
        assert body["schema"] == 1
        assert body["spec"]["workload"] == "towers"
        key = body["key"]
        code, status = _request(base, "GET", f"/jobs/{key}?wait=60")
        assert code == 200
        assert status["state"] == "done"
        assert status["status"] in ("computed", "hit")
        assert status["metrics"]["instructions"] > 0

    def test_batch_submission(self, server):
        _, base, _ = server
        code, body = _request(
            base, "POST", "/jobs",
            {"jobs": [{"workload": "towers"}, {"workload": "towers", "kind": "ir"}]},
        )
        assert code == 202
        assert len(body["jobs"]) == 2
        assert body["jobs"][0]["key"] != body["jobs"][1]["key"]

    def test_duplicate_specs_dispatch_once(self, server):
        srv, base, _ = server
        for _ in range(3):
            code, body = _request(base, "POST", "/jobs", {"workload": "sed"})
            assert code == 202
        assert srv.counters["specs_dispatched"] == 1
        deduped = (
            srv.counters["deduped_inflight"] + srv.counters["deduped_registry"]
        )
        assert deduped == 2
        assert body["deduped"] is True
        code, status_doc = _request(base, "GET", "/status")
        assert status_doc["server"]["dedupe_hit_rate"] > 0

    def test_unknown_job_is_404(self, server):
        _, base, _ = server
        code, body = _request(base, "GET", "/jobs/definitely-not-a-key")
        assert code == 404
        assert "error" in body

    def test_unknown_route_is_404(self, server):
        _, base, _ = server
        code, _ = _request(base, "GET", "/nope")
        assert code == 404

    def test_status_counters(self, server):
        srv, base, _ = server
        _request(base, "POST", "/jobs", {"workload": "towers"})
        code, body = _request(base, "GET", "/status")
        assert code == 200
        assert body["server"]["requests"] >= 2
        assert body["client"]["mode"] == "serial"
        assert body["server"]["server_errors"] == 0


class TestStructuredErrors:
    def test_bad_workload_is_structured_400(self, server):
        _, base, _ = server
        code, body = _request(base, "POST", "/jobs", {"workload": "not_real"})
        assert code == 400
        assert body["error"]["field"] == "workload"
        assert "not_real" in body["error"]["message"]
        assert "Traceback" not in json.dumps(body)

    def test_bad_param_grammar_is_structured_400(self, server):
        _, base, _ = server
        code, body = _request(base, "POST", "/jobs", {"workload": "sed:NOPE=3"})
        assert code == 400
        assert body["error"]["field"] == "workload"

    def test_unknown_field_is_structured_400(self, server):
        _, base, _ = server
        code, body = _request(
            base, "POST", "/jobs", {"workload": "towers", "workers": 4}
        )
        assert code == 400
        assert body["error"]["field"] == "workers"

    def test_malformed_json_body_is_400(self, server):
        _, base, _ = server
        request = urllib.request.Request(
            base + "/jobs", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=30)
        assert exc.value.code == 400

    def test_non_object_payload_is_400(self, server):
        _, base, _ = server
        code, body = _request(base, "POST", "/jobs", ["towers"])
        assert code == 400
        assert "error" in body


class TestInlineSource:
    """POST /jobs with fuzz-generated inline source (the ``source`` field)."""

    GOOD = "int main(void) { putint(6 * 7); return 0; }\n"
    BAD = "int main(void) { return undeclared_variable; }\n"

    def test_good_source_runs_end_to_end(self, server):
        _, base, _ = server
        code, body = _request(
            base, "POST", "/jobs",
            {"workload": "fuzz-demo", "source": self.GOOD},
        )
        assert code == 202
        code, status = _request(base, "GET", f"/jobs/{body['key']}?wait=60")
        assert code == 200
        assert status["state"] == "done"
        assert status["metrics"]["exit_code"] == 0

    def test_uncompilable_source_is_structured_400(self, server):
        srv, base, _ = server
        code, body = _request(
            base, "POST", "/jobs",
            {"workload": "fuzz-bad", "source": self.BAD},
        )
        assert code == 400
        assert body["error"]["field"] == "source"
        assert "does not compile" in body["error"]["message"]
        assert "Traceback" not in json.dumps(body)
        assert srv.counters["server_errors"] == 0

    def test_uncompilable_source_mid_batch_is_400_not_500(self, server):
        # a fuzz campaign POSTing a batch where one program fails RCC:
        # the whole POST must answer a structured 400, never a 500/hang
        srv, base, _ = server
        code, body = _request(
            base, "POST", "/jobs",
            {"jobs": [
                {"workload": "towers"},
                {"workload": "fuzz-bad", "source": self.BAD},
                {"workload": "qsort"},
            ]},
        )
        assert code == 400
        assert body["error"]["field"] == "source"
        assert srv.counters["server_errors"] == 0
        assert srv.counters["bad_requests"] == 1

    def test_empty_source_is_structured_400(self, server):
        _, base, _ = server
        code, body = _request(
            base, "POST", "/jobs", {"workload": "x", "source": "   "}
        )
        assert code == 400
        assert body["error"]["field"] == "source"

    def test_non_string_source_is_structured_400(self, server):
        _, base, _ = server
        code, body = _request(
            base, "POST", "/jobs", {"workload": "x", "source": 42}
        )
        assert code == 400
        assert body["error"]["field"] == "source"


class TestStreaming:
    def test_stream_emits_ndjson_until_terminal(self, server):
        _, base, _ = server
        code, body = _request(base, "POST", "/jobs", {"workload": "towers"})
        key = body["key"]
        with urllib.request.urlopen(
            f"{base}/jobs/{key}?stream=1&wait=60", timeout=60
        ) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == "application/x-ndjson"
            lines = [json.loads(line) for line in response.read().splitlines()]
        assert lines, "stream produced no snapshots"
        assert lines[-1]["state"] == "done"
        assert all(snapshot["key"] == key for snapshot in lines)


def _read_http_response(fp):
    """One framed HTTP response off a raw socket file: (code, headers, body)."""
    status_line = fp.readline()
    if not status_line:
        return None, {}, None
    code = int(status_line.split()[1])
    headers = {}
    while True:
        line = fp.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = fp.read(int(headers.get("content-length", 0)))
    return code, headers, json.loads(body) if body else None


class TestKeepAlive:
    """HTTP/1.1 persistent connections: many requests over one socket."""

    def _connect(self, server):
        srv, _base, _holder = server
        sock = socket.create_connection((srv.host, srv.port), timeout=30)
        return sock, sock.makefile("rb")

    def test_two_requests_share_one_connection(self, server):
        srv, _base, _ = server
        sock, fp = self._connect(server)
        try:
            sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            code, headers, body = _read_http_response(fp)
            assert code == 200 and body["ok"] is True
            assert headers["connection"] == "keep-alive"
            sock.sendall(b"GET /status HTTP/1.1\r\nHost: x\r\n\r\n")
            code, headers, body = _read_http_response(fp)
            assert code == 200 and "server" in body
            assert headers["connection"] == "keep-alive"
        finally:
            sock.close()

    def test_post_then_get_on_one_connection(self, server):
        sock, fp = self._connect(server)
        try:
            payload = json.dumps({"workload": "towers"}).encode()
            sock.sendall(
                b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(payload)).encode() + b"\r\n\r\n"
                + payload
            )
            code, _headers, body = _read_http_response(fp)
            assert code == 202
            key = body["key"]
            sock.sendall(
                f"GET /jobs/{key}?wait=60 HTTP/1.1\r\nHost: x\r\n\r\n".encode()
            )
            code, _headers, body = _read_http_response(fp)
            assert code == 200
            assert body["state"] == "done"
        finally:
            sock.close()

    def test_connection_close_is_honored(self, server):
        sock, fp = self._connect(server)
        try:
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
            )
            code, headers, _body = _read_http_response(fp)
            assert code == 200
            assert headers["connection"] == "close"
            assert fp.read() == b""  # server closed after the response
        finally:
            sock.close()

    def test_http10_without_keep_alive_closes(self, server):
        sock, fp = self._connect(server)
        try:
            sock.sendall(b"GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n")
            code, headers, _body = _read_http_response(fp)
            assert code == 200
            assert headers["connection"] == "close"
            assert fp.read() == b""
        finally:
            sock.close()

    def test_requests_counter_counts_requests_not_connections(self, server):
        srv, _base, _ = server
        before = srv.counters["requests"]
        sock, fp = self._connect(server)
        try:
            for _ in range(3):
                sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                code, _headers, _body = _read_http_response(fp)
                assert code == 200
        finally:
            sock.close()
        assert srv.counters["requests"] == before + 3

    def test_status_reports_operator_fields(self, server):
        _, base, _ = server
        code, body = _request(base, "GET", "/status")
        assert code == 200
        server_doc = body["server"]
        assert server_doc["uptime_s"] >= 0
        assert server_doc["jobs_in_flight"] == 0
        assert server_doc["open_connections"] >= 0
        assert body["client"]["workers"] == 1


class TestDrain:
    def test_sigterm_drains_in_flight_jobs(self, tmp_path):
        env = dict(
            os.environ,
            PYTHONPATH=REPO_SRC,
            REPRO_CACHE_DIR=str(tmp_path / "cache"),
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.farm", "serve", "--port", "0",
             "--jobs", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
            cwd=str(tmp_path),
        )
        try:
            boot = json.loads(proc.stdout.readline())["serving"]
            base = f"http://{boot['host']}:{boot['port']}"
            code, body = _request(base, "POST", "/jobs", {"workload": "qsort"})
            assert code == 202
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 0, f"serve exited {proc.returncode}: {err}"
        drained = json.loads(out.strip().splitlines()[-1])["drained"]
        assert drained["ok"] is True
        assert drained["incomplete"] == 0

    def test_draining_server_rejects_new_posts(self, server):
        srv, base, holder = server
        holder["loop"].call_soon_threadsafe(srv.request_shutdown)
        # the loop processes the shutdown callback before the next request
        deadline = 50
        while not srv.draining and deadline:
            deadline -= 1
            import time

            time.sleep(0.1)
        assert srv.draining
