"""Tests for the RISC I software multiply/divide runtime routines.

These routines (shift-add multiply, normalizing restoring division) are
the price RISC I pays for having no multiply hardware; their correctness
across sign combinations and extreme values is load-bearing for every
benchmark result.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cc.driver import compile_program, run_compiled

INT_MIN = -(1 << 31)
INT_MAX = (1 << 31) - 1


def compute(expr_source: str) -> int:
    """Run ``main`` returning the expression via identity calls so the
    compiler cannot constant-fold anything."""
    compiled = compile_program(expr_source, target="risc1")
    return run_compiled(compiled).exit_code


def binop(op: str, a: int, b: int) -> int:
    source = f"""
    int id(int x) {{ return x; }}
    int main() {{ return id({a}) {op} id({b}); }}
    """
    return compute(source)


def wrap32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & 0x80000000 else value


class TestMultiply:
    CASES = [
        (0, 0), (1, 1), (7, 9), (-7, 9), (7, -9), (-7, -9),
        (INT_MAX, 1), (1, INT_MAX), (INT_MAX, 2), (46341, 46341),
        (INT_MIN, 1), (65536, 65536), (-1, -1),
    ]

    @pytest.mark.parametrize("a,b", CASES)
    def test_multiply(self, a, b):
        assert binop("*", a, b) == wrap32(a * b)

    @settings(max_examples=15, deadline=None)
    @given(a=st.integers(-(1 << 15), 1 << 15), b=st.integers(-(1 << 15), 1 << 15))
    def test_multiply_property(self, a, b):
        assert binop("*", a, b) == wrap32(a * b)


class TestDivide:
    CASES = [
        (0, 1), (1, 1), (45, 7), (-45, 7), (45, -7), (-45, -7),
        (INT_MAX, 1), (INT_MAX, INT_MAX), (INT_MAX, 2),
        (1, INT_MAX), (6, 7), (65535, 256), (100000, 3),
    ]

    @pytest.mark.parametrize("a,b", CASES)
    def test_divide_truncates_toward_zero(self, a, b):
        assert binop("/", a, b) == int(a / b)

    @pytest.mark.parametrize("a,b", CASES)
    def test_modulo_sign_follows_dividend(self, a, b):
        assert binop("%", a, b) == a - int(a / b) * b

    @settings(max_examples=15, deadline=None)
    @given(
        a=st.integers(-(1 << 30), 1 << 30),
        b=st.integers(-(1 << 15), 1 << 15).filter(lambda v: v != 0),
    )
    def test_division_identity_property(self, a, b):
        """(a/b)*b + a%b == a, the C-semantics identity."""
        q = binop("/", a, b)
        r = binop("%", a, b)
        assert q == int(a / b)
        assert q * b + r == a

    def test_normalization_does_not_break_big_dividends(self):
        # top bit set in the dividend: the byte/bit normalization pre-loops
        # must fall straight through
        assert binop("/", INT_MAX, 3) == INT_MAX // 3
        assert binop("%", INT_MAX, 3) == INT_MAX % 3


class TestShiftSemantics:
    def test_right_shift_is_arithmetic_on_risc(self):
        assert binop(">>", -256, 4) == -16

    def test_shift_counts_masked(self):
        # C leaves >>32 undefined; both backends mask the count to 5 bits,
        # and the test pins that choice so the targets agree
        risc = binop("<<", 1, 33)
        source = """
        int id(int x) { return x; }
        int main() { return id(1) << id(33); }
        """
        cisc = run_compiled(compile_program(source, target="cisc")).exit_code
        assert risc == cisc == 2
