"""The unified Machine protocol and RunResult schema, against both CPUs.

Every test here is parametrized over the two simulated processors: the
point of ``repro.core.api`` is that the machines are interchangeable
behind one surface, and this suite is where that interchangeability is
enforced.
"""

import pytest

from repro.baselines.vax.cpu import VaxCPU, VaxExecutionResult
from repro.cc.driver import compile_program
from repro.core.api import (
    DEFAULT_MAX_STEPS,
    Machine,
    MachineHalted,
    RunResult,
    StepLimitExceeded,
    resolve_max_steps,
)
from repro.core.cpu import CPU, ExecutionResult
from repro.machine.traps import Trap
from repro.obs import FLOW_KINDS, EventKind, Tracer

TARGETS = ["risc1", "cisc"]
MACHINES = {"risc1": CPU, "cisc": VaxCPU}

FIB = """
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { putint(fib(10)); return 0; }
"""


def fresh_machine(target, **kwargs):
    cpu = MACHINES[target](**kwargs)
    cpu.load(compile_program(FIB, target=target).program)
    return cpu


class TestProtocolSurface:
    @pytest.mark.parametrize("target", TARGETS)
    def test_machines_satisfy_protocol(self, target):
        cpu = MACHINES[target]()
        assert isinstance(cpu, Machine)
        assert cpu.name == target

    @pytest.mark.parametrize("target", TARGETS)
    def test_run_returns_unified_result(self, target):
        result = fresh_machine(target).run(max_steps=20_000_000)
        assert type(result) is RunResult
        assert result.machine == target
        assert result.exit_code == 0
        assert result.output == "55"
        # the uniform accessors work without knowing the stats class
        assert result.cycles > 0
        assert result.instructions > 0
        assert result.data_references >= 0

    @pytest.mark.parametrize("target", TARGETS)
    def test_step_and_halted(self, target):
        cpu = fresh_machine(target)
        assert not cpu.halted
        with pytest.raises(MachineHalted) as excinfo:
            for _ in range(20_000_000):
                cpu.step()
        assert cpu.halted
        assert excinfo.value.code == 0
        assert cpu.exit_code == 0

    @pytest.mark.parametrize("target", TARGETS)
    def test_load_resets_halted(self, target):
        cpu = fresh_machine(target)
        cpu.run(max_steps=20_000_000)
        assert cpu.halted
        cpu.load(compile_program(FIB, target=target).program)
        assert not cpu.halted
        assert cpu.exit_code is None


class TestStepLimit:
    @pytest.mark.parametrize("target", TARGETS)
    def test_tiny_budget_raises(self, target):
        cpu = fresh_machine(target)
        with pytest.raises(StepLimitExceeded) as excinfo:
            cpu.run(max_steps=10)
        assert excinfo.value.limit == 10

    @pytest.mark.parametrize("target", TARGETS)
    def test_limit_is_still_a_trap(self, target):
        # pre-unification callers catch Trap with this message; keep both
        with pytest.raises(Trap, match="instruction limit"):
            fresh_machine(target).run(max_instructions=10)

    def test_resolve_max_steps(self):
        assert resolve_max_steps(None, None) == DEFAULT_MAX_STEPS
        assert resolve_max_steps(123, None) == 123
        assert resolve_max_steps(None, 456) == 456
        assert resolve_max_steps(789, 789) == 789
        with pytest.raises(TypeError):
            resolve_max_steps(1, 2)


class TestResultSchema:
    @pytest.mark.parametrize("target", TARGETS)
    def test_round_trip(self, target):
        result = fresh_machine(target).run(max_steps=20_000_000)
        payload = result.to_dict()
        assert payload["schema"] == 2
        assert payload["machine"] == target
        rebuilt = RunResult.from_dict(payload)
        assert rebuilt == result
        assert type(rebuilt.stats) is type(result.stats)

    @pytest.mark.parametrize("target", TARGETS)
    def test_legacy_payload_needs_default_machine(self, target):
        payload = fresh_machine(target).run(max_steps=20_000_000).to_dict()
        del payload["machine"]  # schema-1 artifacts have no tag
        with pytest.raises(KeyError):
            RunResult.from_dict(payload)
        rebuilt = RunResult.from_dict(payload, default_machine=target)
        assert rebuilt.machine == target


class TestDeprecationShims:
    SHIMS = {"risc1": ExecutionResult, "cisc": VaxExecutionResult}

    @pytest.mark.parametrize("target", TARGETS)
    def test_shim_warns_and_is_a_run_result(self, target):
        real = fresh_machine(target).run(max_steps=20_000_000)
        with pytest.warns(DeprecationWarning):
            shim = self.SHIMS[target](real.exit_code, real.stats, real.output)
        assert isinstance(shim, RunResult)
        assert (shim.machine, shim.exit_code, shim.output) == (target, 0, "55")

    @pytest.mark.parametrize("target", TARGETS)
    def test_shim_from_dict_loads_untagged_payloads(self, target):
        payload = fresh_machine(target).run(max_steps=20_000_000).to_dict()
        del payload["machine"]
        rebuilt = self.SHIMS[target].from_dict(payload)
        assert rebuilt.machine == target


class TestTracedRuns:
    @pytest.mark.parametrize("target", TARGETS)
    def test_call_events_balance(self, target):
        tracer = Tracer(kinds=FLOW_KINDS)
        result = fresh_machine(target, tracer=tracer).run(max_steps=20_000_000)
        assert result.exit_code == 0
        counts = tracer.counts()
        assert counts["call"] == counts["ret"] > 100  # fib(10) recursion
        # timestamps never go backwards on the simulated timeline
        stamps = [event.ts for event in tracer.events]
        assert stamps == sorted(stamps)

    def test_overflow_between_call_and_ret(self):
        # with only 2 windows, the fib recursion must spill: the paper's
        # CALL -> WINDOW_OVERFLOW -> ... -> WINDOW_UNDERFLOW -> RET story
        tracer = Tracer(kinds=FLOW_KINDS)
        fresh_machine("risc1", num_windows=2, tracer=tracer).run(max_steps=20_000_000)
        kinds = [event.kind for event in tracer.events]
        assert EventKind.WINDOW_OVERFLOW in kinds
        assert EventKind.WINDOW_UNDERFLOW in kinds
        first_overflow = kinds.index(EventKind.WINDOW_OVERFLOW)
        # the overflow is caused by a call, so a CALL precedes it...
        assert EventKind.CALL in kinds[:first_overflow]
        # ...and the window refills before the matching returns finish
        assert kinds.index(EventKind.WINDOW_UNDERFLOW) < len(kinds) - 1
        last_ret = [e for e in tracer.events if e.kind is EventKind.RET][-1]
        assert last_ret.data["depth"] <= 1  # the recursion fully unwound

    @pytest.mark.parametrize("target", TARGETS)
    def test_run_accepts_tracer_argument(self, target):
        cpu = fresh_machine(target)
        tracer = Tracer(kinds={EventKind.RETIRE})
        result = cpu.run(max_steps=20_000_000, tracer=tracer)
        assert tracer.counts()["retire"] == result.instructions
