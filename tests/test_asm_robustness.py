"""Robustness tests: malformed assembly input must fail with a clean
AssemblerError (with a line number), never an internal exception."""

import pytest
from hypothesis import given, strategies as st

from repro.asm.assembler import AssemblerError, assemble
from repro.baselines.vax.assembler import VaxAssemblerError, assemble_vax

GARBAGE_LINES = [
    "add",
    "add r1",
    "add r1, r2",
    "add r1 r2 r3",
    "add r1, r2, r3, r4",
    "ldl r1, (r2",
    "ldl r1, r2)",
    "stl r1, 8(r99)",
    "jmp",
    "jeq 8(r1, r2)",
    "set r1",
    ".word",
    ".byte 1 2 3 xyz",
    ".ascii no-quotes",
    ".space -q",
    ".align",
    "ldhi r1, r2, r3",
    "call 1, 2, 3",
    "putpsw #1",
    "cmp r1",
]


class TestRiscAssemblerErrors:
    @pytest.mark.parametrize("line", GARBAGE_LINES)
    def test_garbage_line_raises_assembler_error(self, line):
        with pytest.raises(AssemblerError):
            assemble(f"main: nop\n {line}\n halt")

    @given(
        text=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            min_size=1,
            max_size=40,
        )
    )
    def test_fuzzed_line_never_crashes_internally(self, text):
        source = f"main: nop\n{text}\n halt"
        try:
            assemble(source)
        except AssemblerError:
            pass  # the only acceptable failure mode

    def test_immediate_out_of_range(self):
        with pytest.raises(AssemblerError):
            assemble("main: add r1, r0, #5000\n halt")

    def test_branch_out_of_range(self):
        # a relative jump further than the 19-bit field can reach
        filler = "\n".join("    nop" for _ in range(150_000))
        source = f"main: jmp far\n nop\n{filler}\nfar: halt"
        with pytest.raises(AssemblerError):
            assemble(source)


class TestVaxAssemblerErrors:
    VAX_GARBAGE = [
        "movl",
        "movl r1",
        "movl r1, r2, r3",
        "addl3 r1, r2",
        "movl (r99), r1",
        "calls main",
        "brw",
        "unknownop r1, r2",
        "movl 8(, r1",
    ]

    @pytest.mark.parametrize("line", VAX_GARBAGE)
    def test_garbage_raises(self, line):
        with pytest.raises(VaxAssemblerError):
            assemble_vax(f"__start:\n {line}\n halt\n")

    @given(
        text=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            min_size=1,
            max_size=40,
        )
    )
    def test_fuzzed_line_never_crashes_internally(self, text):
        source = f"__start:\n{text}\n halt\n"
        try:
            assemble_vax(source)
        except VaxAssemblerError:
            pass

    def test_undefined_symbol(self):
        with pytest.raises(VaxAssemblerError, match="undefined"):
            assemble_vax("__start:\n movl @#missing, r1\n halt\n")

    def test_duplicate_label(self):
        with pytest.raises(VaxAssemblerError, match="duplicate"):
            assemble_vax("__start:\n__start:\n halt\n")
