"""Tests for the IR interpreter (the compiler-correctness oracle)."""

import pytest

from repro.cc.driver import compile_to_ir
from repro.cc.errors import CompileError
from repro.cc.irvm import run_ir


def run(source: str):
    return run_ir(compile_to_ir(source))


class TestBasics:
    def test_exit_code(self):
        assert run("int main() { return 42; }").exit_code == 42

    def test_output(self):
        result = run('int main() { putint(7); putchar(10); puts("hi"); return 0; }')
        assert result.output == "7\nhi"

    def test_globals_and_strings(self):
        source = """
        int x = 5;
        char *msg = "ok";
        int main() { puts(msg); return x; }
        """
        result = run(source)
        assert result.output == "ok" and result.exit_code == 5

    def test_negative_global_initializer(self):
        assert run("int x = -9; int main() { return x; }").exit_code == -9

    def test_arrays_have_real_addresses(self):
        source = """
        int a[4];
        int main() {
            int *p = a + 2;
            *p = 77;
            return a[2];
        }
        """
        assert run(source).exit_code == 77

    def test_recursion_restores_stack(self):
        source = """
        int depth(int n) {
            int local[8];
            local[0] = n;
            if (n == 0) return 0;
            return local[0] + depth(n - 1);
        }
        int main() { return depth(50); }
        """
        assert run(source).exit_code == sum(range(51))

    def test_division_by_zero_raises(self):
        source = "int id(int x) { return x; } int main() { return 1 / id(0); }"
        with pytest.raises(CompileError, match="division by zero"):
            run(source)


class TestDynamicProfile:
    def test_statement_markers_counted(self):
        source = """
        int f(int n) { return n; }
        int main() {
            int total = 0;
            for (int i = 0; i < 10; i++) total += f(i);
            return total;
        }
        """
        counts = run(source).counts
        assert counts.ops["stmt:loop"] == 11  # 10 iterations + final test
        assert counts.ops["stmt:call"] == 10
        assert counts.ops["stmt:return"] >= 11

    def test_op_counts_by_kind(self):
        source = """
        int a[4];
        int main() {
            a[0] = 1;
            a[1] = a[0] * 3;
            return a[1];
        }
        """
        counts = run(source).counts
        assert counts.ops["store:4"] == 2
        assert counts.ops["load:4"] >= 2
        assert counts.ops["binop:*"] == 1

    def test_call_depth_tracked(self):
        source = """
        int down(int n) { if (n == 0) return 0; return down(n - 1); }
        int main() { return down(9); }
        """
        counts = run(source).counts
        assert counts.max_depth == 11  # main + 10 nested frames
        assert counts.calls == 11
