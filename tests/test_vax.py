"""Tests for the VAX-like baseline: assembler, addressing modes, flags,
and the CALLS/RET procedure linkage."""

import pytest

from repro.baselines.vax.assembler import VaxAssemblerError, assemble_vax, parse_operand
from repro.baselines.vax.cpu import VaxCPU
from repro.baselines.vax.isa import INSTRUCTIONS
from repro.baselines.vax.timing import VaxTiming


def run(source, **kwargs):
    cpu = VaxCPU(**kwargs)
    cpu.load(assemble_vax(source))
    return cpu, cpu.run(max_instructions=2_000_000)


HALT = "movl r0, @#0x7F00000C"


class TestOperandParsing:
    CASES = {
        "#5": ("literal", 5),
        "#100": ("immediate", 100),
        "#-3": ("immediate", -3),
        "r5": ("register", 5),
        "sp": ("register", 14),
        "(r3)": ("deferred", 3),
        "(r3)+": ("autoinc", 3),
        "-(sp)": ("autodec", 14),
        "8(fp)": ("disp", 8),
        "-4(fp)": ("disp", -4),
        "@#0x1000": ("absolute", 0x1000),
    }

    @pytest.mark.parametrize("text,expected", CASES.items())
    def test_operand_kinds(self, text, expected):
        kind, value = expected
        operand = parse_operand(text, 1)
        assert operand.kind == kind
        if kind in ("literal", "immediate", "disp", "absolute"):
            assert operand.value == value
        elif kind != "symbol":
            assert operand.reg == value

    def test_symbols(self):
        assert parse_operand("main", 1).kind == "symbol"
        assert parse_operand("@#main", 1).symbol == "main"
        assert parse_operand("#main", 1).kind == "immediate"

    def test_bad_operand(self):
        with pytest.raises(VaxAssemblerError):
            parse_operand("12(34)", 1)


class TestVariableLengthEncoding:
    def sizes(self, line):
        prog = assemble_vax(f"__start:\n    {line}\n    halt\n")
        return prog.code_size - 1  # minus the trailing HALT byte

    def test_short_literal_is_one_byte(self):
        # opcode + spec(1) + reg spec(1) = 3
        assert self.sizes("movl #5, r1") == 3

    def test_immediate_is_five_bytes(self):
        # opcode + spec+imm32(5) + reg(1) = 7
        assert self.sizes("movl #100, r1") == 7

    def test_displacement_width_scales(self):
        assert self.sizes("movl 4(fp), r1") == 4       # disp8
        assert self.sizes("movl 400(fp), r1") == 5     # disp16
        assert self.sizes("movl 70000(fp), r1") == 7   # disp32

    def test_three_operand_arithmetic(self):
        assert self.sizes("addl3 r1, r2, r3") == 4


class TestExecution:
    def test_movl_and_halt_code(self):
        _, result = run(f"__start:\n    movl #42, r0\n    {HALT}\n")
        assert result.exit_code == 42

    def test_memory_operands_and_three_address(self):
        source = f"""
        __start:
            movl #7, @#x
            movl #8, @#y
            addl3 @#x, @#y, r0
            {HALT}
        .data
        x: .long 0
        y: .long 0
        """
        _, result = run(source)
        assert result.exit_code == 15

    def test_subl3_operand_order(self):
        # SUBL3 sub, min, dif: dif = min - sub
        _, result = run(f"__start:\n    subl3 #3, #10, r0\n    {HALT}\n")
        assert result.exit_code == 7

    def test_divl3_truncates(self):
        _, result = run(f"__start:\n    divl3 #7, #-45, r0\n    {HALT}\n")
        assert result.exit_code == -6

    def test_divide_by_zero_traps(self):
        from repro.machine.traps import Trap

        with pytest.raises(Trap):
            run(f"__start:\n    divl3 #0, #1, r0\n    {HALT}\n")

    def test_autoincrement_walks_memory(self):
        source = f"""
        __start:
            moval @#table, r1
            clrl r0
            addl2 (r1)+, r0
            addl2 (r1)+, r0
            addl2 (r1)+, r0
            {HALT}
        .data
        table: .long 10, 20, 30
        """
        _, result = run(source)
        assert result.exit_code == 60

    def test_push_pop_with_autodec_autoinc(self):
        source = f"""
        __start:
            movl #99, -(sp)
            movl (sp)+, r0
            {HALT}
        """
        _, result = run(source)
        assert result.exit_code == 99

    def test_byte_conversions(self):
        source = f"""
        __start:
            movl #0xFF, @#cell
            movzbl @#cell+3, r1      ; big-endian: low byte is at +3
            cvtbl @#cell+3, r2
            subl3 r2, r1, r0         ; 255 - (-1) = 256
            {HALT}
        .data
        cell: .long 0
        """
        _, result = run(source)
        assert result.exit_code == 256

    def test_branches_signed_and_unsigned(self):
        source = f"""
        __start:
            movl #-1, r1
            cmpl r1, #1
            blss signed_ok           ; -1 < 1 signed
            movl #1, r0
            {HALT}
        signed_ok:
            cmpl r1, #1
            blssu bad                ; 0xFFFFFFFF is not < 1 unsigned
            movl #77, r0
            {HALT}
        bad:
            movl #2, r0
            {HALT}
        """
        _, result = run(source)
        assert result.exit_code == 77

    def test_ashl_both_directions(self):
        _, result = run(f"__start:\n    ashl #4, #3, r0\n    {HALT}\n")
        assert result.exit_code == 48
        _, result = run(f"__start:\n    ashl #-2, #-64, r0\n    {HALT}\n")
        assert result.exit_code == -16


class TestCallsRet:
    PROGRAM = f"""
    __start:
        pushl #5
        pushl #7
        calls #2, add2
        {HALT}
    add2:
        .entry 0x000C            ; saves r2, r3
        movl 4(ap), r2           ; first argument
        addl3 8(ap), r2, r0
        ret
    """

    def test_arguments_via_ap(self):
        _, result = run(self.PROGRAM)
        assert result.exit_code == 12

    def test_stack_restored_after_ret(self):
        cpu, _ = run(self.PROGRAM)
        assert cpu.regs[14] == cpu._stack_top  # SP back where it started

    def test_saved_registers_restored(self):
        source = f"""
        __start:
            movl #111, r2
            calls #0, clobber
            movl r2, r0
            {HALT}
        clobber:
            .entry 0x0004        ; saves r2
            movl #999, r2
            ret
        """
        _, result = run(source)
        assert result.exit_code == 111

    def test_calls_generates_memory_traffic(self):
        cpu, result = run(self.PROGRAM)
        # mask read + pushes + pops: the expensive linkage the paper targets
        assert result.stats.call_linkage_refs >= 12

    def test_nested_frames(self):
        source = f"""
        __start:
            pushl #4
            calls #1, outer
            {HALT}
        outer:
            .entry 0x0004
            movl 4(ap), r2
            pushl r2
            calls #1, inner
            addl2 r2, r0
            ret
        inner:
            .entry 0
            addl3 4(ap), #10, r0
            ret
        """
        _, result = run(source)
        assert result.exit_code == 18  # (4 + 10) + 4


class TestTiming:
    def test_microcoded_cpi_profile(self):
        """The baseline must behave like a ~10-CPI microcoded machine."""
        source = f"""
        __start:
            clrl r0
            movl #200, r1
        loop:
            addl2 #1, r0
            addl2 @#mem, r2
            decl r1
            bneq loop
            {HALT}
        .data
        mem: .long 3
        """
        _, result = run(source)
        cpi = result.stats.cycles / result.stats.instructions
        # a register-heavy loop sits at the cheap end of the microcoded
        # range; compiled benchmark code measures ~9 CPI (see the suite
        # test below)
        assert 3.0 <= cpi <= 16.0

    def test_compiled_code_cpi_matches_780_profile(self):
        from repro.cc.driver import compile_program, run_compiled

        source = """
        int a[64];
        int main() {
            for (int i = 0; i < 64; i++) a[i] = i * 3;
            int total = 0;
            for (int i = 0; i < 64; i++) total += a[i];
            putint(total);
            return 0;
        }
        """
        result = run_compiled(compile_program(source, target="cisc"))
        cpi = result.stats.cycles / result.stats.instructions
        assert 7.0 <= cpi <= 14.0  # the VAX-11/780's published ballpark

    def test_timing_is_configurable(self):
        fast = VaxTiming(cycle_ns=100.0)
        assert fast.nanoseconds(10) == 1000.0
        default = VaxTiming()
        assert default.milliseconds(5000) == 1.0

    def test_all_instructions_have_timing_kind(self):
        timing = VaxTiming()
        for info in INSTRUCTIONS.values():
            assert info.kind in timing.base_cycles, info.mnemonic
