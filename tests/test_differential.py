"""Differential testing: three executors, one semantics.

Hypothesis generates random (but well-defined) mini-C programs; each must
produce identical output on the RISC I simulator, the VAX-like simulator,
and the IR interpreter, and match a Python evaluation of the same
expression.  This is the strongest correctness net over the whole
compiler + simulators stack.
"""

from hypothesis import given, settings, strategies as st

from repro.cc.driver import compile_program, run_compiled
from repro.cc.irvm import run_ir

WORD = 0xFFFFFFFF


def wrap(value: int) -> int:
    value &= WORD
    return value - (1 << 32) if value & 0x80000000 else value


# -- random expression generator ----------------------------------------------------
#
# Expressions are built as (python_value, c_source) pairs over three
# variables with known values, avoiding divide-by-zero and undefined
# shifts by construction.

_VARS = {"a": 13, "b": -7, "c": 100}


def _leaf(draw):
    choice = draw(st.integers(0, 3))
    if choice < 3:
        name = draw(st.sampled_from(sorted(_VARS)))
        return _VARS[name], name
    value = draw(st.integers(-5000, 5000))
    if value < 0:
        return value, f"(0 - {-value})"  # avoid double unary-minus tokens
    return value, str(value)


def _expr(draw, depth: int):
    if depth == 0:
        return _leaf(draw)
    kind = draw(st.integers(0, 8))
    if kind == 0:
        return _leaf(draw)
    left_value, left_src = _expr(draw, depth - 1)
    right_value, right_src = _expr(draw, depth - 1)
    if kind in (1, 2):
        op = draw(st.sampled_from(["+", "-", "*"]))
        value = {
            "+": wrap(left_value + right_value),
            "-": wrap(left_value - right_value),
            "*": wrap(left_value * right_value),
        }[op]
        return value, f"({left_src} {op} {right_src})"
    if kind == 3:
        if right_value == 0:
            return left_value, left_src
        op = draw(st.sampled_from(["/", "%"]))
        q = int(left_value / right_value)
        value = q if op == "/" else left_value - q * right_value
        return wrap(value), f"({left_src} {op} {right_src})"
    if kind == 4:
        op = draw(st.sampled_from(["&", "|", "^"]))
        value = {
            "&": (left_value & WORD) & (right_value & WORD),
            "|": (left_value & WORD) | (right_value & WORD),
            "^": (left_value & WORD) ^ (right_value & WORD),
        }[op]
        return wrap(value), f"({left_src} {op} {right_src})"
    if kind == 5:
        shift = draw(st.integers(0, 12))
        op = draw(st.sampled_from(["<<", ">>"]))
        if op == "<<":
            value = wrap((left_value & WORD) << shift)
        else:
            value = wrap(left_value) >> shift
        return wrap(value), f"({left_src} {op} {shift})"
    if kind == 6:
        op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
        value = int(
            {
                "==": left_value == right_value,
                "!=": left_value != right_value,
                "<": left_value < right_value,
                "<=": left_value <= right_value,
                ">": left_value > right_value,
                ">=": left_value >= right_value,
            }[op]
        )
        return value, f"({left_src} {op} {right_src})"
    if kind == 7:
        op = draw(st.sampled_from(["&&", "||"]))
        if op == "&&":
            value = int(bool(left_value) and bool(right_value))
        else:
            value = int(bool(left_value) or bool(right_value))
        return value, f"({left_src} {op} {right_src})"
    # unary
    op = draw(st.sampled_from(["-", "~", "!"]))
    value = {"-": wrap(-left_value), "~": wrap(~left_value), "!": int(not left_value)}[op]
    return value, f"({op}{left_src})"


@st.composite
def expression(draw, depth=3):
    return _expr(draw, depth)


def run_everywhere(source: str) -> list[str]:
    outputs = []
    for target in ("risc1", "cisc"):
        compiled = compile_program(source, target=target)
        outputs.append(run_compiled(compiled, max_instructions=5_000_000).output)
    outputs.append(run_ir(compile_program(source, target="risc1").ir).output)
    return outputs


@settings(max_examples=40, deadline=None)
@given(expression())
def test_expression_agreement(pair):
    expected, source_expr = pair
    source = f"""
    int id(int x) {{ return x; }}
    int main() {{
        int a = id({_VARS['a']});
        int b = id({_VARS['b']});
        int c = id({_VARS['c']});
        putint({source_expr});
        return 0;
    }}
    """
    outputs = run_everywhere(source)
    assert outputs[0] == outputs[1] == outputs[2] == str(expected), source_expr


@settings(max_examples=15, deadline=None)
@given(
    values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=12),
    threshold=st.integers(-500, 500),
)
def test_loop_and_array_agreement(values, threshold):
    """A random array-walking program with branches and accumulation."""
    n = len(values)
    inits = "\n        ".join(
        f"data[{i}] = {v if v >= 0 else f'0 - {-v}'};" for i, v in enumerate(values)
    )
    source = f"""
    int data[16];
    int main() {{
        {inits}
        int above = 0;
        int total = 0;
        for (int i = 0; i < {n}; i++) {{
            if (data[i] > {threshold if threshold >= 0 else f'0 - {-threshold}'}) {{
                above++;
            }} else {{
                total += data[i];
            }}
        }}
        putint(above); putchar(' '); putint(total);
        return 0;
    }}
    """
    expected_above = sum(1 for v in values if v > threshold)
    expected_total = sum(v for v in values if v <= threshold)
    outputs = run_everywhere(source)
    assert outputs[0] == outputs[1] == outputs[2] == f"{expected_above} {expected_total}"
