"""Fast smoke tests for the experiment harnesses.

The heavyweight measured experiments (E6-E11) run fully under
``pytest benchmarks/``; here we verify the cheap ones end-to-end and the
expensive ones on a single reduced configuration, so a plain
``pytest tests/`` still exercises every experiment code path.
"""

from repro.analysis.windows import sweep
from repro.experiments import (
    common,
    e1_characteristics,
    e3_instruction_set,
    e4_formats,
    e5_register_windows,
)


class TestStaticExperiments:
    def test_e1(self):
        table = e1_characteristics.run()
        assert table.cell("RISC I", "instructions") == 31
        assert "RISC I" in table.render()

    def test_e3(self):
        table = e3_instruction_set.run()
        assert len(table.rows) == 31
        mnemonics = table.column("instruction")
        for expected in ("ADD", "LDHI", "CALL", "RET", "GETPSW"):
            assert expected in mnemonics

    def test_e4(self):
        table = e4_formats.run()
        assert table.column("total bits") == [32, 32]
        figure = e4_formats.render_figure()
        assert "opcode(7)" in figure

    def test_e5(self):
        table = e5_register_windows.run()
        assert table.cell("r10-r15 LOW", "proc A (w0)") == "p26..p31"
        assert "overlap check" in e5_register_windows.render_figure()


class TestCommonPlumbing:
    def test_compiled_is_cached(self):
        first = common.compiled("towers", "risc1", "default")
        second = common.compiled("towers", "risc1", "default")
        assert first is second

    def test_executed_verifies_output(self):
        result = common.executed("towers", "risc1", "default")
        assert result.exit_code == 0

    def test_ir_profile(self):
        profile = common.ir_profile("towers", "default")
        assert profile.counts.calls > 1000

    def test_traced_run_produces_trace(self):
        cpu, _ = common.traced_run("towers", "default")
        assert cpu.call_trace
        kinds = {event for event, _ in cpu.call_trace}
        assert kinds == {"call", "ret"}

    def test_bench_scale_changes_source(self):
        small = common.workload_source("towers", "default")
        big = common.workload_source("towers", "bench")
        assert small != big

    def test_clock_helpers(self):
        assert common.risc_ms(2500) == 1.0
        assert common.cisc_ms(5000) == 1.0


class TestMiniMeasuredExperiment:
    def test_window_sweep_on_real_trace(self):
        """A single-program, reduced version of E6."""
        cpu, _ = common.traced_run("towers", "default")
        stats = sweep(cpu.call_trace, (2, 8))
        assert stats[0].overflow_rate == 1.0
        assert stats[1].overflow_rate < 0.05


class TestCli:
    def test_cli_static_experiments(self, capsys):
        from repro.experiments.cli import main

        assert main(["e3", "e4"]) == 0
        out = capsys.readouterr().out
        assert "31 instructions" in out or "RISC I" in out

    def test_cli_metrics_out(self, tmp_path, capsys):
        import json

        from repro.experiments.cli import main

        out = tmp_path / "metrics.json"
        assert main(["e9", "--metrics-out", str(out)]) == 0
        capsys.readouterr()
        snapshot = json.loads(out.read_text(encoding="utf-8"))
        # e9 simulates runs on both machines; their counters must land here
        assert any(name.startswith("risc1.") for name in snapshot)
        assert snapshot["risc1.runs"]["value"] >= 1

    def test_cli_rejects_unknown(self):
        import pytest

        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["e99"])
