"""Tests of the RISC I simulator's instruction semantics and timing."""

import pytest

from repro.asm.assembler import assemble
from repro.core.cpu import CPU, to_signed
from repro.machine.traps import Trap, TrapKind


def run(source, windows=8, **kwargs):
    cpu = CPU(num_windows=windows, **kwargs)
    cpu.load(assemble(source))
    result = cpu.run(max_instructions=5_000_000)
    return cpu, result


def run_expr(body):
    """Run a fragment that leaves its result in r2, halt with that value."""
    cpu, result = run(f"main:\n{body}\n halt r2")
    return result.exit_code


class TestArithmetic:
    def test_add(self):
        assert run_expr(" add r2, r0, #7\n add r2, r2, #8") == 15

    def test_sub_and_negative_results(self):
        assert run_expr(" add r2, r0, #5\n sub r2, r2, #9") == -4

    def test_subr_reverses(self):
        assert run_expr(" add r1, r0, #3\n subr r2, r1, #10") == 7

    def test_logical_ops(self):
        assert run_expr(" add r1, r0, #0xF0\n and r2, r1, #0x3C") == 0x30
        assert run_expr(" add r1, r0, #0xF0\n or r2, r1, #0x0F") == 0xFF
        assert run_expr(" add r1, r0, #0xFF\n xor r2, r1, #0x0F") == 0xF0

    def test_shifts(self):
        assert run_expr(" add r1, r0, #1\n sll r2, r1, #4") == 16
        assert run_expr(" add r1, r0, #256\n srl r2, r1, #4") == 16
        assert run_expr(" sub r1, r0, #16\n sra r2, r1, #2") == -4
        assert run_expr(" sub r1, r0, #16\n srl r2, r1, #28") == 15

    def test_add_with_carry_chain(self):
        # 0xFFFFFFFF + 1 = 0 carry 1; then 0 + 0 + carry = 1
        source = """
        main:
            sub  r1, r0, #1
            add! r2, r1, #1
            addc r2, r0, #0
            halt r2
        """
        _, result = run(source)
        assert result.exit_code == 1

    def test_subtract_carry_means_no_borrow(self):
        # 5 - 3 sets carry (no borrow); SUBC then subtracts nothing extra.
        source = """
        main:
            add  r1, r0, #5
            sub! r2, r1, #3
            subc r2, r2, #0
            halt r2
        """
        _, result = run(source)
        assert result.exit_code == 2

    def test_ldhi_builds_high_bits(self):
        assert run_expr(" ldhi r2, #1") == 1 << 13

    def test_set_pseudo_full_word(self):
        assert run_expr(" set r2, #0x12345678") == 0x12345678
        assert run_expr(" set r2, #-1") == -1


class TestMemoryInstructions:
    def test_word_round_trip(self):
        source = """
        main:
            set  r2, #0x00C0FFEE
            stl  r2, 0(r1)
            ldl  r3, 0(r1)
            halt r3
        """
        _, result = run(source)
        assert result.exit_code == 0x00C0FFEE

    def test_byte_sign_extension(self):
        source = """
        main:
            add  r2, r0, #0xFF
            stb  r2, 0(r1)
            ldbs r3, 0(r1)
            halt r3
        """
        _, result = run(source)
        assert result.exit_code == -1

    def test_byte_zero_extension(self):
        source = """
        main:
            add  r2, r0, #0xFF
            stb  r2, 0(r1)
            ldbu r3, 0(r1)
            halt r3
        """
        _, result = run(source)
        assert result.exit_code == 255

    def test_short_variants(self):
        source = """
        main:
            set  r2, #0x8001
            sts  r2, 0(r1)
            ldss r3, 0(r1)
            ldsu r4, 0(r1)
            sub  r5, r4, r3
            halt r5
        """
        _, result = run(source)
        assert result.exit_code == 0x10000

    def test_misaligned_access_traps(self):
        with pytest.raises(Trap) as excinfo:
            run("main: ldl r2, 2(r0)\n halt")
        assert excinfo.value.kind is TrapKind.ALIGNMENT

    def test_data_segment_access(self):
        source = """
        main:
            set r2, value
            ldl r3, 0(r2)
            halt r3
        .data
        value: .word 4242
        """
        _, result = run(source)
        assert result.exit_code == 4242


class TestControlFlow:
    def test_delay_slot_always_executes(self):
        """The instruction after a taken jump executes (delayed jump)."""
        source = """
        main:
            add r2, r0, #0
            jmp target
            add r2, r2, #1      ; delay slot: must execute
            add r2, r2, #100    ; skipped
        target:
            halt r2
        """
        _, result = run(source)
        assert result.exit_code == 1

    def test_untaken_conditional_falls_through(self):
        source = """
        main:
            cmp r0, r0
            jne elsewhere
            nop
            halt r0
        elsewhere:
            add r2, r0, #9
            halt r2
        """
        _, result = run(source)
        assert result.exit_code == 0

    def test_conditional_signed_vs_unsigned(self):
        # -1 < 1 signed, but 0xFFFFFFFF > 1 unsigned
        source = """
        main:
            sub r1, r0, #1
            add r2, r0, #1
            cmp r1, r2
            jlt signed_ok
            nop
            halt r0
        signed_ok:
            cmp r1, r2
            jhi unsigned_ok
            nop
            halt r0
        unsigned_ok:
            add r3, r0, #1
            halt r3
        """
        _, result = run(source)
        assert result.exit_code == 1

    def test_loop_counts(self):
        source = """
        main:
            add r2, r0, #0
            add r3, r0, #10
        loop:
            add r2, r2, #1
            cmp r2, r3
            jne loop
            nop
            halt r2
        """
        _, result = run(source)
        assert result.exit_code == 10

    def test_indirect_jump(self):
        source = """
        main:
            set r2, target
            jmp (r2)
            nop
            halt r0
        target:
            add r3, r0, #5
            halt r3
        """
        _, result = run(source)
        assert result.exit_code == 5

    def test_call_passes_args_through_window(self):
        source = """
        main:
            add r10, r0, #20    ; arg 0 in LOW
            add r11, r0, #22    ; arg 1
            call add2
            nop
            halt r10            ; result back in caller LOW r10
        add2:
            add r26, r26, r27   ; HIGH regs are the incoming args
            ret
            nop
        """
        _, result = run(source)
        assert result.exit_code == 42

    def test_callee_locals_do_not_clobber_caller(self):
        source = """
        main:
            add r16, r0, #123   ; caller local
            call f
            nop
            halt r16
        f:
            add r16, r0, #999   ; callee local, different window
            ret
            nop
        """
        _, result = run(source)
        assert result.exit_code == 123

    def test_recursion_with_window_overflow(self):
        """Recursive sum(n) = n + sum(n-1) deeper than the register file."""
        source = """
        main:
            add r10, r0, #30
            call sum
            nop
            halt r10
        sum:
            cmp r26, r0
            jne recurse
            nop
            add r26, r0, #0
            ret
            nop
        recurse:
            sub r10, r26, #1
            call sum
            nop
            add r26, r10, r26
            ret
            nop
        """
        cpu, result = run(source, windows=4)
        assert result.exit_code == sum(range(31))
        assert result.stats.window_overflows > 0
        assert result.stats.window_overflows == result.stats.window_underflows

    def test_overflow_count_depends_on_windows(self):
        source = """
        main:
            add r10, r0, #30
            call sum
            nop
            halt r10
        sum:
            cmp r26, r0
            jne recurse
            nop
            add r26, r0, #0
            ret
            nop
        recurse:
            sub r10, r26, #1
            call sum
            nop
            add r26, r10, r26
            ret
            nop
        """
        _, few = run(source, windows=2)
        _, many = run(source, windows=16)
        assert few.stats.window_overflows > many.stats.window_overflows


class TestTimingAndStats:
    def test_alu_is_one_cycle_memory_is_two(self):
        source = """
        main:
            add r2, r0, #1
            stl r2, 0(r1)
            ldl r3, 0(r1)
            halt r3
        """
        _, result = run(source)
        # add(1) + stl(2) + ldl(2) + halt pseudo: ldhi(1)+add(1)+stl(2) = 9
        assert result.stats.cycles == 9

    def test_instruction_mix_recorded(self):
        _, result = run("main: add r2, r0, #1\n ldl r3, 0(r1)\n halt")
        from repro.isa.opcodes import Category

        mix = result.stats.by_category
        assert mix[Category.MEMORY] >= 2  # the ldl plus the halt store

    def test_stats_summary_renders(self):
        _, result = run("main: halt")
        text = result.stats.summary()
        assert "instructions executed" in text
        assert "CPI" in text

    def test_call_trace_collection(self):
        source = """
        main:
            call f
            nop
            halt
        f:  ret
            nop
        """
        cpu, _ = run(source, trace_calls=True)
        assert cpu.call_trace == [("call", 2), ("ret", 1)]


class TestIOAndHalt:
    def test_putc_output(self):
        source = """
        main:
            add r2, r0, #'H'
            putc r2
            add r2, r0, #'i'
            putc r2
            halt
        """
        _, result = run(source)
        assert result.output == "Hi"

    def test_puti_signed(self):
        source = """
        main:
            sub r2, r0, #42
            puti r2
            halt
        """
        _, result = run(source)
        assert result.output == "-42"

    def test_halt_code(self):
        _, result = run("main: add r2, r0, #7\n halt r2")
        assert result.exit_code == 7

    def test_instruction_limit_traps(self):
        cpu = CPU()
        cpu.load(assemble("main: jmp main\n nop"))
        with pytest.raises(Trap, match="instruction limit"):
            cpu.run(max_instructions=100)


class TestMisc:
    def test_to_signed(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x7FFFFFFF) == 0x7FFFFFFF
        assert to_signed(0x80000000) == -(1 << 31)

    def test_getpsw_putpsw_round_trip(self):
        source = """
        main:
            cmp r0, r0          ; set Z
            getpsw r2
            cmp r0, #1          ; clear Z... (0-1 != 0)
            putpsw r2           ; restore Z
            jeq good
            nop
            halt r0
        good:
            add r3, r0, #1
            halt r3
        """
        _, result = run(source)
        assert result.exit_code == 1

    def test_gtlpc_returns_previous_pc(self):
        source = """
        main:
            nop
            gtlpc r2
            halt r2
        """
        _, result = run(source)
        # gtlpc executes at entry+4; the last completed pc was entry (0x1000).
        assert result.exit_code == 0x1000
