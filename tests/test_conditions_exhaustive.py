"""Exhaustive tests of the 16 jump conditions.

Every condition is checked two ways: directly against
:func:`repro.isa.conditions.cond_holds` over all 16 condition-code
states, and end-to-end on the simulator by comparing pairs of integers
with every conditional-jump mnemonic.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.core import CPU
from repro.isa.conditions import COND_MNEMONICS, Cond, ConditionCodes, cond_holds

#: reference semantics for each condition, over (z, n, c, v)
REFERENCE = {
    Cond.NOP: lambda z, n, c, v: False,
    Cond.ALW: lambda z, n, c, v: True,
    Cond.EQ: lambda z, n, c, v: z,
    Cond.NE: lambda z, n, c, v: not z,
    Cond.MI: lambda z, n, c, v: n,
    Cond.PL: lambda z, n, c, v: not n,
    Cond.V: lambda z, n, c, v: v,
    Cond.NV: lambda z, n, c, v: not v,
    Cond.LT: lambda z, n, c, v: n != v,
    Cond.GE: lambda z, n, c, v: n == v,
    Cond.GT: lambda z, n, c, v: not z and n == v,
    Cond.LE: lambda z, n, c, v: z or n != v,
    Cond.HI: lambda z, n, c, v: c and not z,
    Cond.LOS: lambda z, n, c, v: not c or z,
    Cond.HISC: lambda z, n, c, v: c,
    Cond.LONC: lambda z, n, c, v: not c,
}


def test_all_16_conditions_against_reference():
    for cond in Cond:
        for z, n, c, v in itertools.product((False, True), repeat=4):
            cc = ConditionCodes(z=z, n=n, c=c, v=v)
            assert cond_holds(cond, cc) == REFERENCE[cond](z, n, c, v), (
                cond,
                (z, n, c, v),
            )


def test_every_condition_has_a_unique_mnemonic():
    assert len(COND_MNEMONICS) == 16
    assert len(set(COND_MNEMONICS.values())) == 16


#: signed/unsigned comparison semantics per jump mnemonic after CMP a, b
COMPARE_SEMANTICS = {
    "jeq": lambda a, b, ua, ub: a == b,
    "jne": lambda a, b, ua, ub: a != b,
    "jlt": lambda a, b, ua, ub: a < b,
    "jle": lambda a, b, ua, ub: a <= b,
    "jgt": lambda a, b, ua, ub: a > b,
    "jge": lambda a, b, ua, ub: a >= b,
    "jlo": lambda a, b, ua, ub: ua < ub,
    "jlos": lambda a, b, ua, ub: ua <= ub,
    "jhi": lambda a, b, ua, ub: ua > ub,
    "jhs": lambda a, b, ua, ub: ua >= ub,
    "jmi": lambda a, b, ua, ub: a - b < 0 or (a - b) & 0xFFFFFFFF >= 0x80000000,
    "jpl": lambda a, b, ua, ub: not (a - b < 0 or (a - b) & 0xFFFFFFFF >= 0x80000000),
}

INTERESTING = [-(1 << 31), -(1 << 16), -2, -1, 0, 1, 2, (1 << 16), (1 << 31) - 1]


def _taken(mnemonic: str, a: int, b: int) -> bool:
    source = f"""
    main:
        set r2, #{a}
        set r3, #{b}
        cmp r2, r3
        {mnemonic} yes
        nop
        halt r0
    yes:
        add r4, r0, #1
        halt r4
    """
    cpu = CPU()
    cpu.load(assemble(source))
    return cpu.run().exit_code == 1


@pytest.mark.parametrize("mnemonic", sorted(set(COMPARE_SEMANTICS) - {"jmi", "jpl"}))
def test_comparison_jumps_on_interesting_pairs(mnemonic):
    reference = COMPARE_SEMANTICS[mnemonic]
    for a in INTERESTING:
        for b in INTERESTING:
            ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
            assert _taken(mnemonic, a, b) == reference(a, b, ua, ub), (mnemonic, a, b)


@settings(max_examples=20, deadline=None)
@given(
    mnemonic=st.sampled_from(["jeq", "jne", "jlt", "jge", "jhi", "jlos"]),
    a=st.integers(-(1 << 31), (1 << 31) - 1),
    b=st.integers(-(1 << 31), (1 << 31) - 1),
)
def test_comparison_jumps_property(mnemonic, a, b):
    reference = COMPARE_SEMANTICS[mnemonic]
    ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
    assert _taken(mnemonic, a, b) == reference(a, b, ua, ub)
