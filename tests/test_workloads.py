"""The full verified workload matrix.

Every benchmark program must produce its Python-reference output on all
three executors.  This is the gate that makes the E8/E9 comparison tables
trustworthy: a benchmark that computes the wrong answer measures nothing.
"""

import pytest

from repro.cc.driver import compile_program, run_compiled
from repro.cc.irvm import run_ir
from repro.workloads import ALL_WORKLOADS, BENCHMARK_SUITE, Workload


class TestRegistry:
    def test_suite_inventory(self):
        # the paper's table has eleven programs; call_overhead is E7's extra
        assert len(BENCHMARK_SUITE) == 11
        assert "call_overhead" not in BENCHMARK_SUITE
        assert len(ALL_WORKLOADS) == 12

    def test_categories_cover_the_design_space(self):
        categories = {w.category for w in ALL_WORKLOADS.values()}
        assert categories == {"call-heavy", "loop-heavy", "mixed"}

    def test_param_substitution(self):
        workload = ALL_WORKLOADS["towers"]
        source = workload.source(DISKS=5)
        assert "int PARAM_DISKS = 5;" in source

    def test_unknown_param_rejected(self):
        with pytest.raises(KeyError):
            ALL_WORKLOADS["towers"].source(NOPE=1)

    def test_bench_params_differ_from_defaults(self):
        for workload in ALL_WORKLOADS.values():
            assert workload.bench_params != workload.default_params, workload.name


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
class TestVerifiedExecution:
    def test_ir_oracle(self, name):
        workload = ALL_WORKLOADS[name]
        compiled = compile_program(workload.source(), target="risc1")
        assert run_ir(compiled.ir).output == workload.expected_output()

    def test_risc1(self, name):
        workload = ALL_WORKLOADS[name]
        compiled = compile_program(workload.source(), target="risc1")
        result = run_compiled(compiled, max_instructions=100_000_000)
        assert result.output == workload.expected_output()
        assert result.exit_code == 0

    def test_cisc(self, name):
        workload = ALL_WORKLOADS[name]
        compiled = compile_program(workload.source(), target="cisc")
        result = run_compiled(compiled, max_instructions=100_000_000)
        assert result.output == workload.expected_output()
        assert result.exit_code == 0


class TestReferenceSelfConsistency:
    """The Python oracles themselves must satisfy basic sanity relations."""

    def test_towers_matches_closed_form(self):
        assert ALL_WORKLOADS["towers"].expected_output(DISKS=7) == "127\n"

    def test_ackermann_known_values(self):
        assert ALL_WORKLOADS["ackermann"].expected_output(M=2, N=2) == "7\n"
        assert ALL_WORKLOADS["ackermann"].expected_output(M=3, N=3) == "61\n"

    def test_queens_known_values(self):
        assert ALL_WORKLOADS["puzzle_subscript"].expected_output(N=8) == "92\n"
        assert ALL_WORKLOADS["puzzle_pointer"].expected_output(N=8) == "92\n"

    def test_qsort_scales(self):
        small = ALL_WORKLOADS["qsort"].expected_output(N=50)
        large = ALL_WORKLOADS["qsort"].expected_output(N=400)
        assert small.startswith("1 ") and large.startswith("1 ")
        assert small != large
