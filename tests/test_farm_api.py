"""The unified submission API: specs, statuses, futures, the client.

``repro.farm.api`` is the farm's one front door — everything here is
contract: the versioned JSON round-trips the HTTP server and manifests
rely on, structured validation errors (never tracebacks), in-flight
dedupe, and the ``run_sweep`` deprecation shim's exact compatibility.
"""

import warnings

import pytest

from repro.core.api import RunResult
from repro.farm.api import (
    API_SCHEMA_VERSION,
    FarmClient,
    JobFailed,
    JobSpec,
    JobStatus,
    SpecError,
    shared_client,
)
from repro.farm.cache import ArtifactCache
from repro.farm.jobs import execute_job, sweep_jobs
from repro.farm.scheduler import run_sweep


class TestJobSpec:
    def test_round_trips_through_json_dict(self):
        spec = JobSpec(workload="towers", kind="execute", target="risc1")
        payload = spec.to_dict()
        assert payload["schema"] == API_SCHEMA_VERSION
        assert JobSpec.from_dict(payload) == spec

    def test_spec_grammar_reaches_the_job_key(self):
        plain = JobSpec(workload="sed").to_job()
        tuned = JobSpec(workload="sed:REPS=2").to_job()
        assert plain.key != tuned.key
        assert tuned.params == (("REPS", 2),)
        # overriding a parameter to its default value shares the artifact
        assert JobSpec(workload="sed:REPS=5").to_job().key == plain.key

    def test_from_job_rebuilds_the_spec_string(self):
        job = JobSpec(workload="sed:REPS=2", kind="execute").to_job()
        spec = JobSpec.from_job(job)
        assert spec.workload == "sed:REPS=2"
        assert spec.to_job().key == job.key

    def test_unknown_workload_is_a_spec_error(self):
        with pytest.raises(SpecError) as exc:
            JobSpec(workload="not_a_workload").validate()
        payload = exc.value.payload
        assert payload["error"]["field"] == "workload"
        assert "not_a_workload" in payload["error"]["message"]

    @pytest.mark.parametrize(
        "field,value",
        [("kind", "transmogrify"), ("target", "pdp11"), ("scale", "enormous")],
    )
    def test_bad_enum_fields_are_spec_errors(self, field, value):
        spec = JobSpec(workload="towers", **{field: value})
        with pytest.raises(SpecError) as exc:
            spec.validate()
        assert exc.value.payload["error"]["field"] == field
        assert exc.value.payload["error"]["value"] == value

    def test_from_dict_rejects_unknown_fields_and_schemas(self):
        with pytest.raises(SpecError) as exc:
            JobSpec.from_dict({"workload": "towers", "color": "red"})
        assert exc.value.payload["error"]["field"] == "color"
        with pytest.raises(SpecError):
            JobSpec.from_dict({"workload": "towers", "schema": 99})
        with pytest.raises(SpecError):
            JobSpec.from_dict(["towers"])
        with pytest.raises(SpecError):
            JobSpec.from_dict({"workload": "towers", "max_instructions": "lots"})


class TestJobStatus:
    def test_round_trips(self):
        status = JobStatus(
            key="ab" * 32,
            state="done",
            status="computed",
            wall_s=1.25,
            worker="pool:0",
            metrics={"cycles": 42},
        )
        payload = status.to_dict()
        assert payload["schema"] == API_SCHEMA_VERSION
        assert JobStatus.from_dict(payload) == status


class TestFarmClient:
    def test_serial_submit_returns_value(self, tmp_path):
        with FarmClient(workers=1, cache=ArtifactCache(tmp_path)) as client:
            future = client.submit(JobSpec(workload="towers"))
            result = future.result(timeout=120)
        assert isinstance(result, RunResult)
        status = future.status()
        assert status.state == "done"
        assert status.status == "computed"
        assert status.worker == "serial"
        assert status.metrics["instructions"] > 0

    def test_submit_accepts_spec_strings_and_raw_jobs(self, tmp_path):
        with FarmClient(workers=1, cache=ArtifactCache(tmp_path)) as client:
            by_string = client.submit("towers")
            by_job = client.submit(execute_job("towers", "risc1"))
        assert by_string.job.key == by_job.job.key

    def test_completed_duplicate_is_a_cache_hit(self, tmp_path):
        with FarmClient(workers=1, cache=ArtifactCache(tmp_path)) as client:
            first = client.submit("towers")
            first.result(timeout=120)
            second = client.submit("towers")
            second.result(timeout=120)
        assert first.status().status == "computed"
        assert second.status().status == "hit"

    def test_pool_submit_dedupes_in_flight(self, tmp_path):
        with FarmClient(workers=2, cache=ArtifactCache(tmp_path)) as client:
            first = client.submit("towers")
            second = client.submit("towers")  # still in flight: same future
            assert second is first
            assert client.dedupe_hits == 1
            assert first.result(timeout=120).exit_code == 0
        assert first.status().deduped

    def test_failed_job_raises_job_failed(self, tmp_path, monkeypatch):
        # an impossible instruction budget makes the run fail deterministically
        with FarmClient(workers=1, cache=ArtifactCache(tmp_path)) as client:
            spec = JobSpec(workload="towers", max_instructions=1)
            future = client.submit(spec)
            with pytest.raises(JobFailed) as exc:
                future.result(timeout=120)
        assert exc.value.status.state == "failed"
        assert exc.value.status.error

    def test_invalid_spec_raises_before_submission(self, tmp_path):
        with FarmClient(workers=1, cache=ArtifactCache(tmp_path)) as client:
            with pytest.raises(SpecError):
                client.submit(JobSpec(workload="towers", kind="nope"))

    def test_closed_client_refuses_submissions(self, tmp_path):
        client = FarmClient(workers=1, cache=ArtifactCache(tmp_path))
        client.close()
        with pytest.raises(RuntimeError):
            client.submit("towers")

    def test_status_payload_shape(self, tmp_path):
        with FarmClient(workers=1, cache=ArtifactCache(tmp_path)) as client:
            client.submit("towers").result(timeout=120)
            payload = client.status()
        assert payload["mode"] == "serial"
        assert payload["workers"] == 1
        assert payload["cache"]["stores"] >= 1


class TestSweepShim:
    def test_run_sweep_warns_and_matches_client_sweep(self, tmp_path):
        jobs = sweep_jobs(workloads=["towers"], targets=["risc1"])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = run_sweep(jobs, workers=1, cache=ArtifactCache(tmp_path / "a"))
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        ), "run_sweep must emit DeprecationWarning"
        with FarmClient(workers=1, cache=ArtifactCache(tmp_path / "b")) as client:
            direct = client.sweep(jobs)
        assert shim.mode == direct.mode == "serial"
        assert {o.key: o.metrics for o in shim.outcomes} == {
            o.key: o.metrics for o in direct.outcomes
        }

    def test_shim_writes_manifest_like_before(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        jobs = [execute_job("towers", "risc1")]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            run_sweep(jobs, workers=1, cache=cache)
        assert (cache.root / "runs.jsonl").exists()


class TestSharedClient:
    def test_shared_client_is_process_wide_and_grows(self):
        first = shared_client()
        assert shared_client() is first
        bigger = shared_client(workers=max(first.workers, 1))
        assert bigger.workers >= first.workers
