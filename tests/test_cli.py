"""Tests for the four command-line tools."""

import pytest

from repro.asm.cli import main as asm_main
from repro.cc.cli import main as cc_main
from repro.core.cli import main as run_main


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(
        """
main:
    add r2, r0, #6
    add r2, r2, #1
    puti r2
    halt r2
"""
    )
    return str(path)


@pytest.fixture
def c_file(tmp_path):
    path = tmp_path / "prog.rc"
    path.write_text(
        """
int main() {
    putint(6 * 7);
    return 0;
}
"""
    )
    return str(path)


class TestAsmCli:
    def test_assemble(self, asm_file, capsys):
        assert asm_main([asm_file]) == 0
        out = capsys.readouterr().out
        assert "entry" in out and "code" in out

    def test_disassemble_listing(self, asm_file, capsys):
        assert asm_main([asm_file, "--disassemble"]) == 0
        out = capsys.readouterr().out
        assert "main:" in out and "add r2, r0, #6" in out

    def test_error_reporting(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("main:\n frobnicate r1\n")
        assert asm_main([str(bad)]) == 1
        assert "unknown mnemonic" in capsys.readouterr().err


class TestRunCli:
    def test_run_program(self, asm_file, capsys):
        code = run_main([asm_file])
        assert code == 7
        assert capsys.readouterr().out == "7"

    def test_stats_flag(self, asm_file, capsys):
        run_main([asm_file, "--stats"])
        captured = capsys.readouterr()
        assert "instructions executed" in captured.err

    def test_window_option(self, asm_file):
        assert run_main([asm_file, "--windows", "2"]) == 7


class TestCcCli:
    def test_compile_and_run(self, c_file, capsys):
        code = cc_main([c_file, "--run"])
        assert code == 0
        assert "42" in capsys.readouterr().out

    def test_emit_assembly(self, c_file, capsys):
        assert cc_main([c_file, "-S"]) == 0
        out = capsys.readouterr().out
        assert "main:" in out and ".text" in out

    def test_emit_ir(self, c_file, capsys):
        assert cc_main([c_file, "--ir"]) == 0
        assert "func main" in capsys.readouterr().out

    def test_cisc_target(self, c_file, capsys):
        code = cc_main([c_file, "--target", "cisc", "--run"])
        assert code == 0
        assert "42" in capsys.readouterr().out

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.rc"
        bad.write_text("int main() { return undefined_thing; }")
        assert cc_main([str(bad)]) == 1
        assert "undefined" in capsys.readouterr().err
