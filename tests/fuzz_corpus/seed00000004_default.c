/* fuzz divergence: seed=4 profile=default
 * signature: risc-ref-vs-vax-ref|exit_code,output,output_sha
 * minimized: yes (hand-tightened from the delta-debugged repro)
 *
 * RISC I (and the IR interpreter) returned 36; the VAX backend returned
 * -4 with different console output.  Root cause: ciscgen's variable-count
 * shift lowering negated the raw 32-bit count before VAX ashl read it as
 * a signed byte, so counts outside [0, 127] (here -5, and any value with
 * bit 5+ set) changed both shift magnitude and direction instead of
 * being masked to 5 bits like the RISC I shifter.  Fixed by masking the
 * count with `andl3 #31` before negation (and `& 31` on the constant
 * path).  The cross-check in tests/test_engine_diff.py keeps this file
 * green forever.
 */
int c = -5;

int main(void) {
    int x = -1;
    putint(x >> c);
    putint(x << c);
    putint(12345 >> c);
    return 0;
}
