"""Smoke tests: every example script must run to completion and print
its headline result.  Examples are documentation that executes; a broken
example is a broken README."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

EXPECTATIONS = {
    "quickstart.py": ["55", "code size"],
    "register_windows.py": ["820", "windows"],
    "compile_and_run.py": ["RISC I", "VAX-like", "the whole paper"],
    "window_study.py": ["towers", "ackermann"],
    "paper_tables.py": ["31 instructions", "opcode(7)"],
    "trace_demo.py": ["window rotations: 2"],
    "farm_sweep.py": ["cold run", "warm run", "recomputed nothing"],
}


@pytest.mark.parametrize("script", sorted(EXPECTATIONS))
def test_example_runs(script):
    buffer = io.StringIO()
    argv = sys.argv
    try:
        sys.argv = [script]
        with redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = argv
    output = buffer.getvalue()
    for fragment in EXPECTATIONS[script]:
        assert fragment in output, f"{script}: missing {fragment!r}"


def test_every_example_has_a_smoke_test():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(EXPECTATIONS)
