"""Tests for the register-window visibility map."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.registers import (
    GLOBAL_REGS,
    HIGH_REGS,
    LOCAL_REGS,
    LOW_REGS,
    NUM_WINDOWS,
    REGS_PER_WINDOW,
    TOTAL_PHYSICAL_REGS,
    RegisterClass,
    classify_register,
    physical_index,
    total_physical_regs,
)


class TestClassification:
    def test_partition_is_complete_and_disjoint(self):
        seen = []
        for reg in range(32):
            seen.append(classify_register(reg))
        assert seen.count(RegisterClass.GLOBAL) == 10
        assert seen.count(RegisterClass.LOW) == 6
        assert seen.count(RegisterClass.LOCAL) == 10
        assert seen.count(RegisterClass.HIGH) == 6

    def test_boundaries(self):
        assert classify_register(9) is RegisterClass.GLOBAL
        assert classify_register(10) is RegisterClass.LOW
        assert classify_register(15) is RegisterClass.LOW
        assert classify_register(16) is RegisterClass.LOCAL
        assert classify_register(25) is RegisterClass.LOCAL
        assert classify_register(26) is RegisterClass.HIGH

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            classify_register(32)
        with pytest.raises(ValueError):
            classify_register(-1)


class TestPhysicalMapping:
    def test_paper_design_has_138_registers(self):
        assert TOTAL_PHYSICAL_REGS == 138
        assert total_physical_regs(8) == 138

    def test_globals_shared_across_windows(self):
        for window in range(NUM_WINDOWS):
            for reg in GLOBAL_REGS:
                assert physical_index(window, reg) == reg

    def test_overlap_invariant_caller_low_is_callee_high(self):
        """The paper's key property: caller r10+i aliases callee r26+i."""
        for window in range(NUM_WINDOWS):
            callee = (window + 1) % NUM_WINDOWS
            for i in range(6):
                assert physical_index(window, LOW_REGS.start + i) == physical_index(
                    callee, HIGH_REGS.start + i
                )

    def test_locals_are_private(self):
        """No window's LOCAL register aliases any other window's register."""
        owners = {}
        for window in range(NUM_WINDOWS):
            for reg in LOCAL_REGS:
                slot = physical_index(window, reg)
                assert slot not in owners, f"alias: {owners.get(slot)} vs {(window, reg)}"
                owners[slot] = (window, reg)

    def test_within_window_no_aliasing(self):
        for window in range(NUM_WINDOWS):
            slots = [physical_index(window, reg) for reg in range(32)]
            assert len(set(slots)) == 32

    @given(
        window=st.integers(min_value=0, max_value=7),
        reg=st.integers(min_value=0, max_value=31),
    )
    def test_mapping_in_bounds(self, window, reg):
        slot = physical_index(window, reg)
        assert 0 <= slot < TOTAL_PHYSICAL_REGS

    @given(windows=st.integers(min_value=2, max_value=16))
    def test_overlap_holds_for_any_window_count(self, windows):
        for window in range(windows):
            callee = (window + 1) % windows
            for i in range(6):
                low = physical_index(window, 10 + i, windows)
                high = physical_index(callee, 26 + i, windows)
                assert low == high

    def test_total_size_formula(self):
        for windows in (2, 4, 8, 16):
            assert total_physical_regs(windows) == 10 + 16 * windows

    def test_regs_per_window_matches_spill_unit(self):
        assert REGS_PER_WINDOW == 16
