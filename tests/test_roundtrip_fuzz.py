"""Property-based encode/decode/disassemble/assemble round trips.

Driven by the fuzzer's canonical instruction generator
(:mod:`repro.fuzz.instructions`): for every opcode in Table III, a
canonical random instruction must survive

* ``encode -> decode -> encode`` bit-identically, and
* ``encode -> disassemble(pc) -> assemble -> encode`` bit-identically —
  i.e. the disassembler's text is always valid assembler input naming
  the same word.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm.assembler import assemble
from repro.asm.disasm import disassemble
from repro.fuzz.instructions import (
    ROUND_TRIP_PC,
    arith_opcodes,
    iter_instructions,
    random_instruction,
)
from repro.isa.encoding import Instruction, decode, encode
from repro.isa.opcodes import ALL_OPCODES, Opcode


def reassemble(text: str, pc: int = ROUND_TRIP_PC) -> int:
    """Assemble a single disassembled instruction placed at ``pc``."""
    program = assemble(f"_start:\n  {text}\n", code_base=pc)
    return int.from_bytes(program.segments[0].data[:4], "big")


def round_trip(inst: Instruction) -> None:
    word = encode(inst)
    assert decode(word) == inst, f"decode not inverse of encode for {inst}"
    assert encode(decode(word)) == word
    text = disassemble(word, pc=ROUND_TRIP_PC)
    word2 = reassemble(text)
    assert word2 == word, (
        f"{inst.opcode.name}: {text!r} reassembled to {word2:#010x}, "
        f"expected {word:#010x} ({disassemble(word2, pc=ROUND_TRIP_PC)!r})"
    )


@pytest.mark.parametrize("opcode", ALL_OPCODES, ids=lambda op: op.name)
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_every_opcode_round_trips(opcode, data):
    rng = random.Random(data.draw(st.integers(0, 2**32 - 1)))
    round_trip(random_instruction(rng, opcode))


def test_seeded_stream_round_trips_and_is_deterministic():
    a = list(iter_instructions(1234, per_opcode=16))
    b = list(iter_instructions(1234, per_opcode=16))
    assert a == b, "iter_instructions must be a pure function of its seed"
    assert {inst.opcode for inst in a} == set(ALL_OPCODES)
    for inst in a:
        round_trip(inst)


def test_scc_only_generated_where_meaningful():
    alu = set(arith_opcodes())
    assert len(alu) == 12
    for inst in iter_instructions(7, per_opcode=32):
        if inst.scc:
            assert inst.opcode in alu


class TestRegressionForms:
    """Specific forms the round trip used to lose (fixed alongside the fuzzer)."""

    def test_register_indexed_load(self):
        # imm=0 loads index by register; used to disassemble as "5(r2)"
        inst = Instruction.short(Opcode.LDL, dest=3, rs1=2, s2=5, imm=False)
        assert "(r2)r5" in disassemble(encode(inst))
        round_trip(inst)

    def test_register_indexed_store_and_jump(self):
        round_trip(Instruction.short(Opcode.STB, dest=7, rs1=4, s2=9, imm=False))
        round_trip(Instruction.short(Opcode.JMP, dest=12, rs1=1, s2=2, imm=False))

    def test_call_with_explicit_link_register(self):
        # the assembler used to force dest=31, rejecting "call r5, ..."
        round_trip(Instruction.short(Opcode.CALL, dest=5, rs1=2, s2=-8, imm=True))
        round_trip(Instruction.short(Opcode.CALL, dest=0, rs1=3, s2=4, imm=False))

    def test_callr_with_explicit_link_register(self):
        round_trip(Instruction.long(Opcode.CALLR, dest=5, y=-64))

    def test_ldhi_negative_y(self):
        # used to render as "#0x7xxxx" which failed the 19-bit range check
        round_trip(Instruction.long(Opcode.LDHI, dest=1, y=-1))
        round_trip(Instruction.long(Opcode.LDHI, dest=2, y=-(1 << 18)))

    def test_ret_with_register_s2(self):
        # the register-s2 return form used to be unparseable
        inst = Instruction.short(Opcode.RET, dest=0, rs1=31, s2=6, imm=False)
        assert disassemble(encode(inst)).endswith("r31, r6")
        round_trip(inst)
        round_trip(Instruction.short(Opcode.RETINT, dest=0, rs1=30, s2=3, imm=False))

    def test_plain_forms_unchanged(self):
        # the common assembler-authored spellings still mean the same bits
        assert reassemble("ldl r4, 8(r1)") == encode(
            Instruction.short(Opcode.LDL, dest=4, rs1=1, s2=8, imm=True)
        )
        assert reassemble("call r31, 0(r2)") == reassemble("call (r2)") == reassemble("call r2")
        assert reassemble("ret") == encode(
            Instruction.short(Opcode.RET, dest=0, rs1=31, s2=8, imm=True)
        )
