"""Tests for the execution tracer and the VAX disassembler, plus
property-based round-trip tests over the full RISC I instruction set."""

from hypothesis import given, strategies as st

from repro.asm import assemble, disassemble
from repro.baselines.vax.assembler import assemble_vax
from repro.baselines.vax.disasm import disassemble_one, disassemble_vax_program
from repro.cc.driver import compile_program
from repro.core import CPU
from repro.core.trace import trace_run
from repro.isa.conditions import Cond
from repro.isa.encoding import Instruction, S2_MAX, S2_MIN, Y_MAX, Y_MIN, encode
from repro.isa.opcodes import ALL_OPCODES, Format, Opcode, opcode_info


class TestTracer:
    SOURCE = """
    main:
        add r10, r0, #5
        call double
        nop
        puti r10
        halt r10
    double:
        add r26, r26, r26
        ret
        nop
    """

    def trace(self):
        cpu = CPU()
        cpu.load(assemble(self.SOURCE))
        return trace_run(cpu)

    def test_trace_completes_with_result(self):
        trace = self.trace()
        assert trace.result is not None
        assert trace.result.exit_code == 10
        assert trace.result.output == "10"

    def test_register_writes_recorded(self):
        trace = self.trace()
        first = trace.entries[0]
        assert first.text.startswith("add r10")
        assert (10, 0, 5) in first.reg_writes

    def test_window_rotations_visible(self):
        trace = self.trace()
        assert trace.window_rotations() == 2  # one call, one return

    def test_render(self):
        text = self.trace().render(limit=3)
        assert "0x00001000" in text
        assert "more)" in text

    def test_trace_matches_plain_run(self):
        cpu_a = CPU()
        cpu_a.load(assemble(self.SOURCE))
        plain = cpu_a.run()
        trace = self.trace()
        assert trace.result.exit_code == plain.exit_code
        assert trace.result.stats.instructions == plain.stats.instructions
        assert trace.result.stats.cycles == plain.stats.cycles


class TestVaxDisassembler:
    ROUND_TRIP_LINES = [
        "movl #5, r1",
        "movl #100, r1",
        "movl 4(ap), r2",
        "movl -8(fp), r2",
        "addl3 r1, r2, r3",
        "subl2 #1, r4",
        "pushl (r2)+",
        "movl r3, -(sp)",
        "clrl r0",
        "mnegl r1, r2",
        "ashl #4, r1, r2",
        "cmpl r1, r2",
        "ret",
        "halt",
    ]

    def test_round_trip(self):
        for line in self.ROUND_TRIP_LINES:
            program = assemble_vax(f"__start:\n    {line}\n    halt\n")
            code = next(s for s in program.segments if s.name == "code")
            text, consumed = disassemble_one(code.data, 0, program.entry)
            reassembled = assemble_vax(f"__start:\n    {text}\n    halt\n")
            recode = next(s for s in reassembled.segments if s.name == "code")
            assert recode.data[:consumed] == code.data[:consumed], line

    def test_compiled_program_listing(self):
        compiled = compile_program(
            "int add2(int a, int b) { return a + b; } int main() { return add2(1, 2); }",
            target="cisc",
        )
        listing = disassemble_vax_program(compiled.program)
        assert "main:" in listing and "add2:" in listing
        assert ".entry" in listing
        assert "calls" in listing
        assert "ret" in listing

    def test_unknown_byte_rendered_as_data(self):
        text, consumed = disassemble_one(b"\xff", 0, 0)
        assert consumed == 1 and ".byte" in text


class TestRiscDisassemblerProperty:
    @given(
        opcode=st.sampled_from(
            [o for o in ALL_OPCODES if opcode_info(o).format is Format.SHORT]
        ),
        dest=st.integers(0, 31),
        rs1=st.integers(0, 31),
        imm=st.booleans(),
        data=st.data(),
    )
    def test_every_short_instruction_disassembles(self, opcode, dest, rs1, imm, data):
        s2 = data.draw(
            st.integers(S2_MIN, S2_MAX) if imm else st.integers(0, 31)
        )
        if opcode is Opcode.JMP:
            dest = data.draw(st.sampled_from([int(c) for c in Cond]))
        word = encode(Instruction.short(opcode, dest=dest, rs1=rs1, s2=s2, imm=imm))
        text = disassemble(word)
        assert text and "<" not in text

    @given(
        opcode=st.sampled_from(
            [o for o in ALL_OPCODES if opcode_info(o).format is Format.LONG]
        ),
        dest=st.integers(0, 31),
        y=st.integers(Y_MIN, Y_MAX),
    )
    def test_every_long_instruction_disassembles(self, opcode, dest, y):
        word = encode(Instruction.long(opcode, dest=dest, y=y))
        assert disassemble(word, pc=0x1000)


class TestCliTrace:
    def test_run_cli_trace_flag(self, tmp_path, capsys):
        from repro.core.cli import main

        path = tmp_path / "t.s"
        path.write_text("main:\n add r2, r0, #3\n halt r2\n")
        code = main([str(path), "--trace", "10"])
        assert code == 3
        captured = capsys.readouterr()
        assert "add r2, r0, #3" in captured.err
