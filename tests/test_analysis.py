"""Tests for the analysis tools: tables, window replay, call cost,
estimators and the conventional-call model."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.callcost import conventional_cost, measure
from repro.analysis.report import Table, geometric_mean
from repro.analysis.windows import replay, sweep
from repro.baselines.conventional import ConventionalCallModel
from repro.baselines.estimators import M68000, Z8002
from repro.cc.driver import compile_program
from repro.cc.irvm import run_ir
from repro.core.stats import ExecutionStats


class TestTable:
    def make(self):
        table = Table("T", ["name", "x", "y"])
        table.add_row("a", 1, 2.5)
        table.add_row("b", 3, 4.0)
        return table

    def test_cell_and_column(self):
        table = self.make()
        assert table.cell("a", "y") == 2.5
        assert table.column("x") == [1, 3]

    def test_render_contains_everything(self):
        table = self.make()
        table.add_note("hello")
        text = table.render()
        assert "T" in text and "2.50" in text and "note: hello" in text

    def test_row_arity_checked(self):
        table = self.make()
        with pytest.raises(ValueError):
            table.add_row("c", 1)

    def test_missing_row_key(self):
        with pytest.raises(KeyError):
            self.make().cell("zz", "x")

    def test_geometric_mean(self):
        assert abs(geometric_mean([2.0, 8.0]) - 4.0) < 1e-9
        assert geometric_mean([]) == 0.0


class TestWindowReplay:
    def balanced_trace(self, depth):
        trace = [("call", d) for d in range(2, depth + 2)]
        trace += [("ret", d) for d in range(depth, 0, -1)]
        return trace

    def test_shallow_trace_never_overflows(self):
        stats = replay(self.balanced_trace(5), num_windows=8)
        assert stats.overflows == 0
        assert stats.max_depth == 6

    def test_deep_trace_overflows(self):
        stats = replay(self.balanced_trace(20), num_windows=4)
        assert stats.overflows == 20 - (4 - 1) + 1  # beyond capacity
        assert stats.underflows == stats.overflows
        assert stats.registers_spilled == 16 * stats.overflows

    def test_matches_cpu_register_file(self):
        """Replaying a real CPU trace reproduces the CPU's own counts."""
        from repro.asm import assemble
        from repro.core import CPU

        source = """
        main:
            add r10, r0, #25
            call sum
            nop
            halt r10
        sum:
            cmp r26, r0
            jne recurse
            nop
            add r26, r0, #0
            ret
            nop
        recurse:
            sub r10, r26, #1
            call sum
            nop
            add r26, r10, r26
            ret
            nop
        """
        cpu = CPU(num_windows=4, trace_calls=True)
        cpu.load(assemble(source))
        result = cpu.run()
        stats = replay(cpu.call_trace, num_windows=4)
        assert stats.overflows == result.stats.window_overflows
        assert stats.underflows == result.stats.window_underflows

    def test_sweep_monotone(self):
        trace = self.balanced_trace(12)
        rates = [s.overflow_rate for s in sweep(trace, (2, 4, 8, 16))]
        assert rates == sorted(rates, reverse=True)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            replay([], num_windows=1)
        with pytest.raises(ValueError):
            replay([("jump", 1)], num_windows=4)

    @given(depth=st.integers(1, 60), windows=st.sampled_from([2, 4, 8, 16]))
    def test_balance_property(self, depth, windows):
        stats = replay(self.balanced_trace(depth), num_windows=windows)
        assert stats.calls == stats.returns == depth
        assert stats.overflows == stats.underflows
        # a monotone descent overflows once the W-1 resident frames fill
        expected = depth - (windows - 1) + 1 if depth >= windows - 1 else 0
        assert stats.overflows == expected


class TestCallCost:
    def test_windows_vs_calls(self):
        windows = measure("risc1")
        vax = measure("cisc")
        assert windows.data_refs < 3
        assert vax.data_refs > 10
        assert windows.nanoseconds < vax.nanoseconds

    def test_conventional_scales_with_saved_registers(self):
        costs = [conventional_cost(n).cycles for n in (4, 8, 12)]
        assert costs == sorted(costs)
        assert conventional_cost(8).data_refs == measure("risc1").data_refs + 16


class TestConventionalModel:
    def test_repricing_arithmetic(self):
        stats = ExecutionStats(instructions=1000, cycles=1500, calls=100)
        model = ConventionalCallModel(saved_registers=8)
        projection = model.reprice(stats)
        expected_extra = 100 * model.extra_cycles_per_call
        assert projection.cycles == 1500 + expected_extra
        assert projection.slowdown > 1.0

    def test_overflow_cycles_credited_back(self):
        thrashing = ExecutionStats(
            instructions=1000, cycles=5000, calls=100,
            overflow_cycles=3000, spilled_registers=800, filled_registers=800,
            data_reads=1000, data_writes=1000,
        )
        projection = ConventionalCallModel(saved_registers=4).reprice(thrashing)
        # windows were already paying heavily; a small save set can win
        assert projection.cycles < thrashing.cycles


class TestEstimators:
    def profile(self, source):
        compiled = compile_program(source, target="risc1")
        return compiled.ir, run_ir(compiled.ir).counts

    def test_size_and_cycles_positive(self):
        ir_program, counts = self.profile(
            "int main() { int t = 0; for (int i = 0; i < 9; i++) t += i; return t; }"
        )
        for model in (M68000, Z8002):
            assert model.code_size(ir_program) > 0
            assert model.cycles(counts) > 0
            assert model.milliseconds(counts) > 0

    def test_multiplication_is_expensive(self):
        _, cheap = self.profile(
            "int id(int x) { return x; } int main() { return id(3) + id(4); }"
        )
        _, costly = self.profile(
            "int id(int x) { return x; } int main() { return id(3) * id(4); }"
        )
        for model in (M68000, Z8002):
            assert model.cycles(costly) > model.cycles(cheap)

    def test_markers_do_not_cost_anything(self):
        ir_program, counts = self.profile("int main() { if (1) return 1; return 0; }")
        assert any(k.startswith("stmt:") for k in counts.ops)
        M68000.cycles(counts)  # must not raise on marker keys
