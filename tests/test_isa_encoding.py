"""Tests for instruction encoding and decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.conditions import Cond
from repro.isa.encoding import (
    EncodingError,
    Instruction,
    S2_MAX,
    S2_MIN,
    Y_MAX,
    Y_MIN,
    decode,
    encode,
    format_fields,
)
from repro.isa.opcodes import (
    ALL_OPCODES,
    Category,
    Format,
    INSTRUCTION_SET_TABLE,
    Opcode,
    opcode_info,
)


class TestInstructionSetShape:
    def test_exactly_31_instructions(self):
        """The defining number of the paper."""
        assert len(INSTRUCTION_SET_TABLE) == 31
        assert len(set(ALL_OPCODES)) == 31

    def test_category_counts(self):
        counts = {}
        for info in INSTRUCTION_SET_TABLE:
            counts[info.category] = counts.get(info.category, 0) + 1
        assert counts[Category.ARITH] == 12
        assert counts[Category.MEMORY] == 8
        assert counts[Category.CONTROL] == 7
        assert counts[Category.MISC] == 4

    def test_only_memory_category_touches_memory(self):
        for info in INSTRUCTION_SET_TABLE:
            assert info.memory_access == (info.category == Category.MEMORY)

    def test_memory_ops_take_two_cycles_others_one(self):
        for info in INSTRUCTION_SET_TABLE:
            assert info.cycles == (2 if info.memory_access else 1)

    def test_opcode_info_lookup_by_all_keys(self):
        info = opcode_info(Opcode.ADD)
        assert opcode_info("add") is info
        assert opcode_info("ADD") is info
        assert opcode_info(int(Opcode.ADD)) is info

    def test_opcode_info_unknown(self):
        with pytest.raises(KeyError):
            opcode_info("frob")
        with pytest.raises(KeyError):
            opcode_info(0x7F)

    def test_format_fields_sum_to_32_bits(self):
        for fmt in (Format.SHORT, Format.LONG):
            assert sum(width for _, width in format_fields(fmt)) == 32


class TestEncodeDecode:
    def test_simple_add(self):
        inst = Instruction.short(Opcode.ADD, dest=3, rs1=1, s2=2)
        word = encode(inst)
        assert decode(word) == inst

    def test_immediate_sign_extension(self):
        inst = Instruction.short(Opcode.ADD, dest=3, rs1=1, s2=-1, imm=True)
        assert decode(encode(inst)).s2 == -1

    def test_long_format_round_trip(self):
        inst = Instruction.long(Opcode.JMPR, dest=int(Cond.EQ), y=-2048)
        decoded = decode(encode(inst))
        assert decoded.y == -2048
        assert decoded.cond is Cond.EQ

    def test_illegal_opcode_rejected(self):
        with pytest.raises(EncodingError):
            decode(0x7F << 25)

    def test_out_of_range_fields_rejected(self):
        with pytest.raises(EncodingError):
            Instruction.short(Opcode.ADD, dest=32)
        with pytest.raises(EncodingError):
            Instruction.short(Opcode.ADD, s2=S2_MAX + 1, imm=True)
        with pytest.raises(EncodingError):
            Instruction.long(Opcode.LDHI, y=Y_MAX + 1)

    def test_word_out_of_range(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)
        with pytest.raises(EncodingError):
            decode(-1)

    @given(
        opcode=st.sampled_from([o for o in ALL_OPCODES if opcode_info(o).format is Format.SHORT]),
        dest=st.integers(0, 31),
        rs1=st.integers(0, 31),
        scc=st.booleans(),
        imm=st.booleans(),
        data=st.data(),
    )
    def test_short_round_trip_property(self, opcode, dest, rs1, scc, imm, data):
        if imm:
            s2 = data.draw(st.integers(S2_MIN, S2_MAX))
        else:
            s2 = data.draw(st.integers(0, 31))
        inst = Instruction.short(opcode, dest=dest, rs1=rs1, s2=s2, imm=imm, scc=scc)
        assert decode(encode(inst)) == inst

    @given(
        opcode=st.sampled_from([o for o in ALL_OPCODES if opcode_info(o).format is Format.LONG]),
        dest=st.integers(0, 31),
        y=st.integers(Y_MIN, Y_MAX),
    )
    def test_long_round_trip_property(self, opcode, dest, y):
        inst = Instruction.long(opcode, dest=dest, y=y)
        assert decode(encode(inst)) == inst

    @given(word=st.integers(0, 0xFFFFFFFF))
    def test_decode_never_crashes_on_legal_opcodes(self, word):
        try:
            inst = decode(word)
        except EncodingError:
            return  # illegal opcode: the trap path
        # Re-encoding a decoded word must always succeed (decode normalizes
        # the unused upper bits of a register-form s2 field, so the word
        # itself need not round-trip bit-for-bit).
        redecoded = decode(encode(inst))
        assert redecoded == inst
