"""Differential tests: the fast engines must be bit-identical to reference.

Every scenario here runs twice — once with ``engine="reference"`` (the
plain ``step()`` loop) and once with ``engine="fast"`` (the predecoded
RISC engine / the VAX operand decode cache) — and asserts that *all*
observable state agrees: the run result, every stats field, the memory
traffic counters, the final architectural state, and the complete tracer
event stream (timestamps included).
"""

import functools

import pytest

from repro.asm.assembler import assemble
from repro.baselines.vax.cpu import VaxCPU
from repro.cc.driver import compile_program
from repro.core.api import StepLimitExceeded
from repro.core.cpu import CPU
from repro.isa.encoding import EncodingError
from repro.machine.traps import Trap
from repro.obs.tracer import Tracer
from repro.workloads import ALL_WORKLOADS

WORKLOADS = sorted(ALL_WORKLOADS)
TRACED_WORKLOADS = ["towers", "qsort", "ackermann", "sed"]


@functools.lru_cache(maxsize=None)
def workload_program(name: str, target: str):
    return compile_program(ALL_WORKLOADS[name].source(), target=target).program


def _outcome(run):
    """Run a machine; classify how it ended, keeping the comparable bits."""
    try:
        result = run()
        return ("halt", result.to_dict())
    except StepLimitExceeded as exc:
        return ("limit", exc.limit, exc.pc, exc.stats.to_dict())
    except Trap as trap:
        return ("trap", trap.kind, trap.detail, trap.pc)
    except EncodingError as exc:
        return ("encoding", str(exc))


def run_risc(program, engine, *, windows=8, traced=False, max_steps=5_000_000,
             hook_factory=None, interrupt_at=None):
    cpu = CPU(num_windows=windows)
    tracer = Tracer(capacity=1 << 14) if traced else None
    cpu.load(program)
    if hook_factory is not None:
        cpu.on_execute = hook_factory(cpu, program)
    if interrupt_at is not None:
        cpu.raise_interrupt(interrupt_at)
    outcome = _outcome(
        lambda: cpu.run(max_steps=max_steps, tracer=tracer, engine=engine)
    )
    return {
        "outcome": outcome,
        "stats": cpu.stats.to_dict(),
        "mem": (
            cpu.memory.stats.inst_fetches,
            cpu.memory.stats.data_reads,
            cpu.memory.stats.data_writes,
        ),
        "pc": (cpu.pc, cpu.npc),
        "regs": list(cpu.regs._regs),
        "cwp": cpu.regs.cwp,
        "psw": (cpu.psw.pack(), cpu.psw.interrupts_enabled),
        "console": "".join(cpu._console),
        "interrupts": cpu.interrupts_taken,
        "events": list(tracer.events) if tracer else None,
        "dropped": tracer.dropped if tracer else 0,
    }


def assert_risc_identical(program, **kwargs):
    reference = run_risc(program, "reference", **kwargs)
    fast = run_risc(program, "fast", **kwargs)
    assert fast == reference
    return reference


def run_vax(program, engine, *, traced=False, max_steps=5_000_000):
    cpu = VaxCPU()
    tracer = Tracer(capacity=1 << 14) if traced else None
    cpu.load(program)
    outcome = _outcome(
        lambda: cpu.run(max_steps=max_steps, tracer=tracer, engine=engine)
    )
    return {
        "outcome": outcome,
        "stats": cpu.stats.to_dict(),
        "mem": (cpu.memory.stats.data_reads, cpu.memory.stats.data_writes),
        "pc": cpu.pc,
        "regs": list(cpu.regs),
        "flags": (cpu.n, cpu.z, cpu.v, cpu.c),
        "console": "".join(cpu._console),
        "events": list(tracer.events) if tracer else None,
        "dropped": tracer.dropped if tracer else 0,
    }


def assert_vax_identical(program, **kwargs):
    reference = run_vax(program, "reference", **kwargs)
    fast = run_vax(program, "fast", **kwargs)
    assert fast == reference
    return reference


class TestWorkloadParity:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_risc_untraced(self, name):
        reference = assert_risc_identical(workload_program(name, "risc1"))
        assert reference["outcome"][0] == "halt"

    @pytest.mark.parametrize("name", TRACED_WORKLOADS)
    def test_risc_traced(self, name):
        reference = assert_risc_identical(workload_program(name, "risc1"), traced=True)
        assert reference["events"]

    @pytest.mark.parametrize("name", TRACED_WORKLOADS)
    def test_vax_untraced(self, name):
        reference = assert_vax_identical(workload_program(name, "cisc"))
        assert reference["outcome"][0] == "halt"

    @pytest.mark.parametrize("name", TRACED_WORKLOADS)
    def test_vax_traced(self, name):
        reference = assert_vax_identical(workload_program(name, "cisc"), traced=True)
        assert reference["events"]


class TestWindowTraffic:
    """Deep recursion under few windows: overflow and underflow handling."""

    @pytest.mark.parametrize("windows", [2, 3])
    @pytest.mark.parametrize("traced", [False, True])
    def test_towers_under_window_pressure(self, windows, traced):
        reference = assert_risc_identical(
            workload_program("towers", "risc1"), windows=windows, traced=traced
        )
        stats = reference["stats"]
        assert stats["window_overflows"] > 0
        assert stats["window_underflows"] > 0


INTERRUPT_PROGRAM = """
; count to 100 in a loop; the handler bumps a memory cell
main:
    add r2, r0, #0
loop:
    add r2, r2, #1
    cmp r2, #100
    jne loop
    nop
    set r3, cell
    ldl r4, 0(r3)
    puti r2
    putc r0
    puti r4
    halt r2

handler:
    set r16, cell
    ldl r17, 0(r16)
    add r17, r17, #1
    stl r17, 0(r16)
    retint r26, #0
    nop

.data
cell: .word 0
"""


class TestInterruptParity:
    @pytest.mark.parametrize("traced", [False, True])
    def test_hook_driven_interrupts(self, traced):
        program = assemble(INTERRUPT_PROGRAM)

        def hook_factory(cpu, prog):
            handler = prog.symbol("handler")
            count = [0]

            def hook(pc, inst):
                count[0] += 1
                if count[0] in (20, 75, 130):
                    cpu.raise_interrupt(handler)

            return hook

        reference = assert_risc_identical(
            program, hook_factory=hook_factory, traced=traced
        )
        assert reference["interrupts"] == 3
        assert reference["console"].endswith("3")

    def test_prelatched_interrupt_batched_path(self):
        """An interrupt pending at entry, no hook: the batched loop delivers."""
        program = assemble(INTERRUPT_PROGRAM)
        reference = assert_risc_identical(
            program, interrupt_at=program.symbol("handler")
        )
        assert reference["interrupts"] == 1
        assert reference["console"].endswith("1")


class TestTrapParity:
    def _assert_trap(self, source, kind=None, traced=False):
        reference = assert_risc_identical(assemble(source), traced=traced)
        assert reference["outcome"][0] == "trap"
        if kind is not None:
            assert reference["outcome"][1] == kind
        return reference

    @pytest.mark.parametrize("traced", [False, True])
    def test_misaligned_load(self, traced):
        self._assert_trap(
            """
            main:
                add r2, r0, #2
                ldl r3, 0(r2)
                halt r0
            """,
            traced=traced,
        )

    @pytest.mark.parametrize("traced", [False, True])
    def test_bus_error_load(self, traced):
        self._assert_trap(
            """
            main:
                set r2, #0x100000
                ldl r3, 0(r2)
                halt r0
            """,
            traced=traced,
        )

    @pytest.mark.parametrize("traced", [False, True])
    def test_unknown_mmio_store(self, traced):
        reference = self._assert_trap(
            """
            main:
                set r2, #0x7F000008
                stl r0, 0(r2)
                halt r0
            """,
            traced=traced,
        )
        # the faulting PC is attached (satellite fix) on both engines
        assert reference["outcome"][3] is not None

    @pytest.mark.parametrize("traced", [False, True])
    def test_call_in_delay_slot(self, traced):
        self._assert_trap(
            """
            main:
                callr sub
                callr sub
                halt r0
            sub:
                ret
                nop
            """,
            traced=traced,
        )

    @pytest.mark.parametrize("traced", [False, True])
    def test_return_from_outermost_frame(self, traced):
        self._assert_trap(
            """
            main:
                ret
                nop
            """,
            traced=traced,
        )

    def test_illegal_instruction_word(self):
        reference = assert_risc_identical(
            assemble(
                """
                main:
                    jmp target
                    nop
                .data
                target: .word 0
                """
            )
        )
        # jumping into data executes whatever decodes there; outside the
        # predecoded range the fast engine falls back to step(), so both
        # engines agree however it ends
        assert reference["outcome"][0] in ("trap", "encoding")


SELF_MODIFYING_PROGRAM = """
; the instruction at `patch` starts as `add r6, r6, #1`; the loop
; overwrites it with `add r6, r6, #5` after the first iteration
main:
    set r2, patch
    set r3, newinst
    ldl r4, 0(r3)
    add r5, r0, #3
    add r6, r0, #0
loop:
patch:
    add r6, r6, #1
    stl r4, 0(r2)
    sub! r5, r5, #1
    jne loop
    nop
    halt r6

.data
newinst: .word 0
"""


class TestSelfModifyingCode:
    @pytest.mark.parametrize("traced", [False, True])
    def test_patched_instruction_reexecutes(self, traced):
        from repro.isa.encoding import Instruction, encode
        from repro.isa.opcodes import Opcode

        # plant the replacement word (add r6, r6, #5) in the data cell
        patched = encode(Instruction.short(Opcode.ADD, dest=6, rs1=6, s2=5, imm=True))
        program = assemble(
            SELF_MODIFYING_PROGRAM.replace(".word 0", f".word {patched:#x}")
        )
        reference = assert_risc_identical(program, traced=traced)
        # 1 (original) + 5 + 5 (patched re-executions)
        assert reference["outcome"][1]["exit_code"] == 11


class TestPswParity:
    def test_getpsw_putpsw_round_trip(self):
        reference = assert_risc_identical(
            assemble(
                """
                main:
                    add! r2, r0, #0
                    getpsw r3
                    putpsw r3
                    getpsw r4
                    halt r4
                """
            )
        )
        assert reference["outcome"][0] == "halt"


class TestStepLimitParity:
    def test_partial_stats_attached_and_identical(self):
        program = workload_program("towers", "risc1")
        reference = run_risc(program, "reference", max_steps=1_000)
        fast = run_risc(program, "fast", max_steps=1_000)
        assert fast == reference
        kind, limit, pc, stats = reference["outcome"]
        assert kind == "limit"
        assert limit == 1_000
        assert stats["instructions"] == 1_000

    def test_vax_partial_stats(self):
        program = workload_program("towers", "cisc")
        reference = run_vax(program, "reference", max_steps=500)
        fast = run_vax(program, "fast", max_steps=500)
        assert fast == reference
        assert reference["outcome"][0] == "limit"
        assert reference["outcome"][3]["instructions"] == 500


class TestPipelineParity:
    """The uarch timing model rides the retired-instruction hook, so its
    accounting must be bit-identical across engines for both machines —
    the fast paths fall back to their exact loops when a hook is live."""

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_risc_pipeline_stats(self, name):
        program = workload_program(name, "risc1")
        runs = {}
        for engine in ("reference", "fast"):
            cpu = CPU()
            cpu.load(program)
            result = cpu.run(max_steps=5_000_000, engine=engine, uarch=True)
            runs[engine] = result.pipeline.to_dict()
        assert runs["fast"] == runs["reference"]
        assert runs["fast"]["instructions"] > 0
        assert runs["fast"]["cycles"] >= runs["fast"]["instructions"]

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_vax_pipeline_stats(self, name):
        program = workload_program(name, "cisc")
        runs = {}
        for engine in ("reference", "fast"):
            cpu = VaxCPU()
            cpu.load(program)
            result = cpu.run(max_steps=5_000_000, engine=engine, uarch=True)
            runs[engine] = result.pipeline.to_dict()
        assert runs["fast"] == runs["reference"]
        assert runs["fast"]["instructions"] > 0

    def test_risc_pipeline_under_window_pressure(self):
        """Window spill/fill drain cycles must agree across engines too."""
        program = workload_program("towers", "risc1")
        runs = {}
        for engine in ("reference", "fast"):
            cpu = CPU(num_windows=2)
            cpu.load(program)
            result = cpu.run(max_steps=5_000_000, engine=engine, uarch=True)
            runs[engine] = result.pipeline.to_dict()
        assert runs["fast"] == runs["reference"]
        assert runs["fast"]["window_stalls"] > 0


# -- fuzz corpus ---------------------------------------------------------------
#
# Every file in tests/fuzz_corpus/ is a minimized repro of a divergence the
# differential fuzzer once found (and this repo then fixed).  Cross-checking
# each one across all five oracles keeps every fixed bug fixed: a regression
# turns the file's report divergent again and names the disagreeing oracles.

from pathlib import Path

FUZZ_CORPUS = sorted((Path(__file__).parent / "fuzz_corpus").glob("*.c"))


@pytest.mark.parametrize("path", FUZZ_CORPUS, ids=lambda p: p.stem)
def test_fuzz_corpus_stays_clean(path):
    from repro.fuzz.crosscheck import crosscheck_source

    report = crosscheck_source(path.read_text(encoding="utf-8"), max_steps=2_000_000)
    assert report.status == "ok", report.render()


# -- snapshot / restore --------------------------------------------------------
#
# The Machine.snapshot()/restore() contract is bit-exact resumability: a
# restored machine is indistinguishable from the original — same future
# execution, stats, traffic counters and output — whichever engine runs it.
# That contract is what makes checkpointed time travel (repro.dbg) sound.

import json as _json


def _partial_run(cpu, engine, budget):
    try:
        cpu.run(max_steps=budget, engine=engine)
    except StepLimitExceeded:
        pass


class TestSnapshotRestore:
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_risc_roundtrip(self, name, engine):
        program = workload_program(name, "risc1")
        cpu = CPU()
        cpu.load(program)
        _partial_run(cpu, engine, 2000)
        snap = _json.loads(_json.dumps(cpu.snapshot()))  # prove JSON-safety
        other = CPU()
        other.load(program)
        other.restore(snap)
        assert other.snapshot() == snap
        # identical futures under the same engine, bounded budget
        a = _outcome(lambda: cpu.run(max_steps=3000, engine=engine))
        b = _outcome(lambda: other.run(max_steps=3000, engine=engine))
        assert a == b
        assert other.snapshot() == cpu.snapshot()

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_vax_roundtrip(self, name, engine):
        program = workload_program(name, "cisc")
        cpu = VaxCPU()
        cpu.load(program)
        _partial_run(cpu, engine, 2000)
        snap = _json.loads(_json.dumps(cpu.snapshot()))
        other = VaxCPU()
        other.load(program)
        other.restore(snap)
        assert other.snapshot() == snap
        a = _outcome(lambda: cpu.run(max_steps=3000, engine=engine))
        b = _outcome(lambda: other.run(max_steps=3000, engine=engine))
        assert a == b
        assert other.snapshot() == cpu.snapshot()

    @pytest.mark.parametrize("name", TRACED_WORKLOADS)
    def test_cross_engine_resume(self, name):
        """A fast-engine snapshot resumed on the reference engine (and the
        reverse) must still converge to the identical final state."""
        for target, make in (("risc1", CPU), ("cisc", VaxCPU)):
            program = workload_program(name, target)
            cpu = make()
            cpu.load(program)
            _partial_run(cpu, "fast", 1500)
            snap = cpu.snapshot()
            finals = {}
            for engine in ("fast", "reference"):
                other = make()
                other.load(program)
                other.restore(snap)
                _outcome(lambda: other.run(max_steps=3000, engine=engine))
                finals[engine] = other.snapshot()
            assert finals["fast"] == finals["reference"]

    def test_restore_rejects_mismatched_shape(self):
        program = workload_program("towers", "risc1")
        cpu = CPU(num_windows=8)
        cpu.load(program)
        snap = cpu.snapshot()
        with pytest.raises(ValueError):
            CPU(num_windows=4).restore(snap)
        with pytest.raises(ValueError):
            CPU(memory_size=1 << 16).restore(snap)
        with pytest.raises(ValueError):
            VaxCPU().restore(snap)

    def test_restore_rejects_unknown_schema(self):
        cpu = CPU()
        cpu.load(workload_program("towers", "risc1"))
        snap = cpu.snapshot()
        snap["schema"] = 999
        with pytest.raises(ValueError):
            cpu.restore(snap)

    def test_risc_restore_under_window_pressure(self):
        """Snapshots taken mid-spill-pressure (2 windows) restore exactly."""
        program = workload_program("towers", "risc1")
        cpu = CPU(num_windows=2)
        cpu.load(program)
        _partial_run(cpu, "fast", 5000)
        assert cpu.stats.to_dict()["window_overflows"] > 0
        snap = cpu.snapshot()
        other = CPU(num_windows=2)
        other.load(program)
        other.restore(snap)
        a = _outcome(lambda: cpu.run(max_steps=5_000_000))
        b = _outcome(lambda: other.run(max_steps=5_000_000))
        assert a == b
