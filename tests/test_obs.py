"""The observability layer itself: tracer, metrics, exporters, CLI."""

import json

import pytest

from repro.cc.driver import compile_program
from repro.obs import (
    FLOW_KINDS,
    NULL_TRACER,
    Event,
    EventKind,
    MetricsRegistry,
    NullTracer,
    Tracer,
    read_jsonl,
    record_machine_run,
    span,
    to_chrome,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.cli import main as obs_main
from repro.obs.exporters import scan_jsonl


def flow_trace(n=6):
    """A small, well-formed call/window event sequence."""
    tracer = Tracer(kinds=FLOW_KINDS, cycle_ns=1000.0)  # 1 cycle == 1 us
    depth = 0
    for i in range(n):
        depth += 1
        tracer.call(cycles=i * 10, pc=0x1000 + i * 8, depth=depth)
    tracer.window_overflow(cycles=n * 10, windows=1, depth=depth)
    for i in range(n):
        depth -= 1
        tracer.ret(cycles=(n + 1 + i) * 10, pc=0x2000 + i * 8, depth=depth)
    return tracer


class TestTracer:
    def test_ring_capacity_and_dropped(self):
        tracer = Tracer(capacity=4)
        for cycles in range(10):
            tracer.retire(cycles, pc=0, op="ADD", cost=1)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        # the ring keeps the *newest* events
        assert [e.data["cycles"] for e in tracer.events] == [1, 1, 1, 1]
        assert [e.ts for e in tracer.events] == [2.4, 2.8, 3.2, 3.6]

    def test_kind_filtering(self):
        tracer = Tracer(kinds={EventKind.CALL})
        assert tracer.wants(EventKind.CALL)
        assert not tracer.wants(EventKind.RETIRE)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_cycle_to_us_mapping(self):
        tracer = Tracer(cycle_ns=400.0)
        tracer.call(cycles=2500, pc=0, depth=1)  # 2500 * 400ns == 1ms
        assert tracer.events[0].ts == pytest.approx(1000.0)

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        assert not NULL_TRACER.wants(EventKind.RETIRE)
        NULL_TRACER.retire(1, 0, "ADD", 1)
        assert len(NULL_TRACER) == 0
        assert isinstance(NULL_TRACER, NullTracer)

    def test_counts(self):
        tracer = flow_trace(3)
        assert tracer.counts() == {"call": 3, "ret": 3, "win_overflow": 1}


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(4)
        assert registry.counter("x").value == 5
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_gauge_tracks_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3
        assert gauge.max_value == 7

    def test_histogram(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(10, 100))
        for value in (5, 50, 500, 7):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]  # <=10, <=100, overflow
        assert histogram.total == 4
        assert histogram.mean == pytest.approx(140.5)

    def test_name_collision_across_types(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.histogram("h", buckets=(10,)).observe(1)
        b.histogram("h", buckets=(10,)).observe(100)
        b.gauge("g").set(9)
        a.merge(b)
        assert a.counter("n").value == 5
        assert a.histogram("h", buckets=(10,)).counts == [1, 1]
        assert a.gauge("g").max_value == 9

    def test_merge_mismatched_histogram_buckets(self):
        # merging never silently re-bins: boundary disagreement is an error
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(10,)).observe(1)
        b.histogram("h", buckets=(10, 100)).observe(50)
        with pytest.raises(ValueError):
            a.merge(b)
        # the failed merge must not have corrupted the destination
        assert a.histogram("h", buckets=(10,)).counts == [1, 0]

    def test_record_machine_run(self):
        from repro.cc.driver import run_compiled

        compiled = compile_program("int main() { putint(1); return 0; }")
        result = run_compiled(compiled, max_steps=100_000)
        registry = MetricsRegistry()
        record_machine_run(registry, result)
        record_machine_run(registry, result)
        assert registry.counter("risc1.runs").value == 2
        assert registry.counter("risc1.cycles").value == 2 * result.cycles
        assert registry.histogram("risc1.cycles_per_run").total == 2
        assert "risc1.runs" in registry.to_dict()
        assert "risc1.runs" in registry.render()


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = flow_trace()
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(tracer.events, path)
        assert count == len(tracer)
        events = read_jsonl(path)
        assert [e.kind for e in events] == [e.kind for e in tracer.events]
        assert events[0].pc == tracer.events[0].pc
        assert events[0].data == tracer.events[0].data

    def test_read_jsonl_skips_garbage(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = json.dumps(Event(EventKind.CALL, 1.0, 0x10, {"depth": 1}).to_dict())
        path.write_text(f"{good}\nnot json\n{good}\n", encoding="utf-8")
        assert len(read_jsonl(path)) == 2

    def test_chrome_structure(self):
        document = to_chrome(flow_trace().events)
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        phases = [record["ph"] for record in document["traceEvents"]]
        assert phases.count("B") == phases.count("E") == 6  # balanced slices
        json.dumps(document)  # must be plain-JSON serializable

    def test_chrome_repairs_truncated_stacks(self):
        # a ring that evicted the opening CALLs: RETs with no matching B
        tracer = Tracer(kinds=FLOW_KINDS)
        tracer.ret(cycles=10, pc=0x10, depth=1)
        tracer.ret(cycles=20, pc=0x20, depth=0)
        document = to_chrome(tracer.events)
        phases = [record["ph"] for record in document["traceEvents"]]
        assert phases.count("B") == phases.count("E")

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "chrome.json"
        write_chrome_trace(flow_trace().events, path)
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["traceEvents"]

    def test_empty_trace_round_trip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_jsonl([], path) == 0
        assert path.read_text(encoding="utf-8") == ""
        assert read_jsonl(path) == []
        events, skipped, meta = scan_jsonl(path)
        assert (events, skipped, meta) == ([], 0, {})

    def test_empty_trace_to_chrome(self, tmp_path):
        # only the process-name metadata records; still a valid document
        document = to_chrome([])
        assert all(record["ph"] == "M" for record in document["traceEvents"])
        path = tmp_path / "empty_chrome.json"
        write_chrome_trace([], path)
        assert json.loads(path.read_text(encoding="utf-8"))["traceEvents"]

    def test_dropped_trace_round_trip(self, tmp_path):
        tracer = Tracer(capacity=4)
        for cycles in range(10):
            tracer.retire(cycles, pc=0, op="ADD", cost=1)
        path = tmp_path / "dropped.jsonl"
        # passing the tracer itself carries its dropped count along
        assert write_jsonl(tracer, path) == 4
        first = json.loads(path.read_text(encoding="utf-8").splitlines()[0])
        assert first["meta"]["dropped"] == 6
        events, skipped, meta = scan_jsonl(path)
        assert len(events) == 4 and skipped == 0
        assert meta["dropped"] == 6
        # the forgiving reader skips the meta line, not the events
        assert len(read_jsonl(path)) == 4

    def test_undropped_trace_has_no_meta_line(self, tmp_path):
        # full-fidelity traces stay byte-compatible with the old format
        path = tmp_path / "full.jsonl"
        write_jsonl(flow_trace().events, path)
        for line in path.read_text(encoding="utf-8").splitlines():
            assert "kind" in json.loads(line)

    def test_dropped_trace_to_chrome_stays_balanced(self, tmp_path):
        # ring kept only the RETs: conversion must still balance B/E pairs
        tracer = Tracer(capacity=6, kinds=FLOW_KINDS)
        depth = 0
        for i in range(8):
            depth += 1
            tracer.call(cycles=i * 10, pc=0x1000 + i, depth=depth)
        for i in range(8):
            depth -= 1
            tracer.ret(cycles=(9 + i) * 10, pc=0x2000 + i, depth=depth)
        assert tracer.dropped > 0
        document = to_chrome(tracer.events)
        phases = [record["ph"] for record in document["traceEvents"]]
        assert phases.count("B") == phases.count("E")


class TestProfilingSpan:
    def test_span_records_phase(self):
        tracer = Tracer()
        with span(tracer, "cc.parse", target="risc1"):
            pass
        event = tracer.events[-1]
        assert event.kind is EventKind.PHASE
        assert event.data["name"] == "cc.parse"
        assert event.data["target"] == "risc1"
        assert event.data["dur"] >= 0

    def test_span_noop_without_tracer(self):
        with span(None, "cc.parse"):
            pass  # must simply not raise

    def test_span_respects_kind_filter(self):
        tracer = Tracer(kinds=FLOW_KINDS)  # PHASE not wanted
        with span(tracer, "cc.parse"):
            pass
        assert len(tracer) == 0

    def test_compiler_emits_phases(self):
        tracer = Tracer()
        compile_program("int main() { return 0; }", target="risc1", tracer=tracer)
        names = [e.data["name"] for e in tracer.events if e.kind is EventKind.PHASE]
        for expected in ("cc.parse", "cc.sema", "cc.irgen", "asm.assemble"):
            assert expected in names


class TestObsCli:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(flow_trace().events, path)
        return path

    def test_view(self, trace_path, capsys):
        assert obs_main(["view", str(trace_path), "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "call" in out
        assert "more; raise --limit" in out

    def test_view_kind_filter(self, trace_path, capsys):
        assert obs_main(["view", str(trace_path), "--kind", "win_overflow"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 1

    def test_summarize_json(self, trace_path, capsys):
        assert obs_main(["summarize", str(trace_path), "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] == 13
        assert summary["by_kind"]["call"] == 6
        assert summary["max_depth_seen"] == 6
        assert summary["windows_spilled"] == 1

    def test_convert(self, trace_path, tmp_path, capsys):
        output = tmp_path / "chrome.json"
        assert obs_main(["convert", str(trace_path), str(output)]) == 0
        assert json.loads(output.read_text(encoding="utf-8"))["traceEvents"]

    def test_missing_trace(self, tmp_path):
        assert obs_main(["summarize", str(tmp_path / "missing.jsonl")]) == 1

    @pytest.fixture()
    def dropped_trace_path(self, tmp_path):
        tracer = Tracer(capacity=4)
        for cycles in range(10):
            tracer.retire(cycles, pc=0, op="ADD", cost=1)
        path = tmp_path / "dropped.jsonl"
        write_jsonl(tracer, path)
        return path

    def test_summarize_warns_on_truncated_trace(self, dropped_trace_path, capsys):
        assert obs_main(["summarize", str(dropped_trace_path)]) == 0
        captured = capsys.readouterr()
        assert "TRUNCATED" in captured.err
        assert "6" in captured.err
        assert "truncated" in captured.out

    def test_summarize_json_carries_truncated_count(self, dropped_trace_path, capsys):
        assert obs_main(["summarize", str(dropped_trace_path), "--format", "json"]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["truncated"] == 6
        assert "TRUNCATED" in captured.err

    def test_summarize_quiet_on_full_trace(self, trace_path, capsys):
        assert obs_main(["summarize", str(trace_path), "--format", "json"]) == 0
        captured = capsys.readouterr()
        assert "TRUNCATED" not in captured.err
        assert json.loads(captured.out)["truncated"] == 0
