"""End-to-end compiler tests: the same mini-C program must produce the same
output on the RISC I simulator and on the VAX-like baseline.

This cross-target agreement is the load-bearing property for the paper's
benchmark comparisons — identical semantics, different machines.
"""

import pytest

from repro.cc.driver import compile_program, run_compiled

TARGETS = ["risc1", "cisc"]


def run(src, target, max_instructions=20_000_000):
    compiled = compile_program(src, target=target)
    result = run_compiled(compiled, max_instructions=max_instructions)
    return result


PROGRAMS = {
    "arith": (
        """
        int main() {
            putint(7 + 3); putchar(' ');
            putint(7 - 10); putchar(' ');
            putint(6 * 7); putchar(' ');
            putint(45 / 7); putchar(' ');
            putint(45 % 7); putchar(' ');
            putint(-45 / 7); putchar(' ');
            putint(-45 % 7);
            return 0;
        }
        """,
        "10 -3 42 6 3 -6 -3",
    ),
    "runtime_arith": (
        """
        int id(int x) { return x; }
        int main() {
            int a = id(45); int b = id(7); int c = id(-45);
            putint(a * b); putchar(' ');
            putint(a / b); putchar(' ');
            putint(a % b); putchar(' ');
            putint(c / b); putchar(' ');
            putint(c % b); putchar(' ');
            putint(a / id(-7)); putchar(' ');
            putint(id(1 << 30) * 4);
            return 0;
        }
        """,
        "315 6 3 -6 -3 -6 0",
    ),
    "bitwise": (
        """
        int main() {
            putint(0xF0 & 0x3C); putchar(' ');
            putint(0xF0 | 0x0F); putchar(' ');
            putint(0xFF ^ 0x0F); putchar(' ');
            putint(~0); putchar(' ');
            putint(1 << 10); putchar(' ');
            putint(-64 >> 3);
            return 0;
        }
        """,
        "48 255 240 -1 1024 -8",
    ),
    "variable_shift": (
        """
        int main() {
            int n = 3; int x = 5;
            putint(x << n); putchar(' ');
            putint((0 - 64) >> n);
            return 0;
        }
        """,
        "40 -8",
    ),
    "loops": (
        """
        int main() {
            int total = 0;
            for (int i = 1; i <= 10; i++) total += i;
            putint(total); putchar(' ');
            int j = 0;
            while (j < 5) j++;
            putint(j); putchar(' ');
            int k = 0;
            do { k += 2; } while (k < 7);
            putint(k);
            return 0;
        }
        """,
        "55 5 8",
    ),
    "break_continue": (
        """
        int main() {
            int total = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 10) break;
                total += i;
            }
            putint(total);
            return 0;
        }
        """,
        "25",
    ),
    "arrays": (
        """
        int squares[10];
        int main() {
            for (int i = 0; i < 10; i++) squares[i] = i * i;
            int total = 0;
            for (int i = 0; i < 10; i++) total += squares[i];
            putint(total);
            return 0;
        }
        """,
        "285",
    ),
    "local_arrays": (
        """
        int main() {
            int a[5];
            for (int i = 0; i < 5; i++) a[i] = i + 1;
            int product = 1;
            for (int i = 0; i < 5; i++) product *= a[i];
            putint(product);
            return 0;
        }
        """,
        "120",
    ),
    "pointers": (
        """
        void bump(int *p) { *p = *p + 5; }
        int main() {
            int x = 10;
            bump(&x);
            int a[3];
            a[0] = 1; a[1] = 2; a[2] = 3;
            int *p = a;
            p++;
            putint(x); putchar(' ');
            putint(*p); putchar(' ');
            putint(p - a);
            return 0;
        }
        """,
        "15 2 1",
    ),
    "chars_and_strings": (
        """
        int length(char *s) {
            int n = 0;
            while (s[n]) n++;
            return n;
        }
        int main() {
            puts("hello ");
            char buf[8];
            buf[0] = 'h'; buf[1] = 'i'; buf[2] = 0;
            puts(buf);
            putchar(' ');
            putint(length("four"));
            return 0;
        }
        """,
        "hello hi 4",
    ),
    "char_signedness": (
        """
        int main() {
            char buf[2];
            buf[0] = 200;
            putint(buf[0]);
            return 0;
        }
        """,
        "-56",
    ),
    "recursion": (
        """
        int ack(int m, int n) {
            if (m == 0) return n + 1;
            if (n == 0) return ack(m - 1, 1);
            return ack(m - 1, ack(m, n - 1));
        }
        int main() { putint(ack(2, 3)); return 0; }
        """,
        "9",
    ),
    "mutual_recursion": (
        """
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { putint(is_even(10)); putint(is_odd(10)); return 0; }
        """,
        "10",
    ),
    "logical_ops": (
        """
        int side_effects = 0;
        int tick(int v) { side_effects++; return v; }
        int main() {
            putint(1 && 2); putint(0 || 3); putint(!5); putint(!0);
            putchar(' ');
            int r = tick(0) && tick(1);   // short circuit: one tick only
            putint(side_effects);
            return 0;
        }
        """,
        "1101 1",
    ),
    "comparisons": (
        """
        int main() {
            putint(3 < 5); putint(5 < 3); putint(3 <= 3);
            putint(5 > 3); putint(3 >= 5); putint(3 == 3); putint(3 != 3);
            putchar(' ');
            int a = -1; int b = 1;
            putint(a < b);
            return 0;
        }
        """,
        "1011010 1",
    ),
    "compound_assign": (
        """
        int main() {
            int x = 10;
            x += 5; x -= 3; x *= 4; x /= 6; x %= 5;
            putint(x); putchar(' ');
            x = 0xF0;
            x &= 0x3C; x |= 1; x ^= 0xFF; x <<= 2; x >>= 1;
            putint(x);
            return 0;
        }
        """,
        "3 412",
    ),
    "incdec": (
        """
        int main() {
            int i = 5;
            putint(i++); putint(i); putint(++i); putint(i--); putint(--i);
            putchar(' ');
            int a[3]; a[0] = 0; a[1] = 0; a[2] = 0;
            int j = 0;
            a[j++] = 7;
            putint(a[0]); putint(j);
            return 0;
        }
        """,
        "56775 71",
    ),
    "globals": (
        """
        int counter = 100;
        int limit;
        void advance() { counter += 10; }
        int main() {
            limit = 3;
            for (int i = 0; i < limit; i++) advance();
            putint(counter);
            return 0;
        }
        """,
        "130",
    ),
    "many_locals_spill": (
        """
        int main() {
            int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
            int f = 6; int g = 7; int h = 8; int i = 9; int j = 10;
            int k = 11; int l = 12;
            putint(a + b + c + d + e + f + g + h + i + j + k + l);
            return 0;
        }
        """,
        "78",
    ),
    "deep_expression": (
        """
        int main() {
            int x = 1;
            putint(((((x + 2) * 3 - 4) / 5 * 6 + 7) * 8 - 9) % 100);
            return 0;
        }
        """,
        "95",
    ),
    "five_args": (
        """
        int sum5(int a, int b, int c, int d, int e) {
            return a + b + c + d + e;
        }
        int main() { putint(sum5(1, 2, 3, 4, 5)); return 0; }
        """,
        "15",
    ),
    "exit_code": (
        """
        int main() { return 42; }
        """,
        "",
    ),
}


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_program(name, target):
    source, expected = PROGRAMS[name]
    result = run(source, target)
    assert result.output == expected, f"{name} on {target}"
    if name == "exit_code":
        assert result.exit_code == 42
    else:
        assert result.exit_code == 0


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_targets_agree(name):
    """Both machines must compute identical results from the same source."""
    source, _ = PROGRAMS[name]
    risc = run(source, "risc1")
    cisc = run(source, "cisc")
    assert risc.output == cisc.output
    assert risc.exit_code == cisc.exit_code


class TestCrossTargetShape:
    """The paper's qualitative claims, on a miniature scale."""

    FIB = """
    int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int main() { putint(fib(12)); return 0; }
    """

    def test_risc_executes_more_instructions_but_fewer_effective_ns(self):
        risc = run(self.FIB, "risc1")
        cisc = run(self.FIB, "cisc")
        risc_ns = risc.stats.cycles * 400
        cisc_ns = cisc.stats.cycles * 200
        assert risc_ns < cisc_ns  # RISC I wins on time despite the slower clock

    def test_risc_makes_fewer_data_references_on_call_heavy_code(self):
        """Register windows should slash call-related memory traffic."""
        risc = run(self.FIB, "risc1")
        cisc = run(self.FIB, "cisc")
        assert risc.stats.data_references < cisc.stats.data_references / 2

    def test_cisc_code_is_denser(self):
        risc = compile_program(self.FIB, target="risc1")
        cisc = compile_program(self.FIB, target="cisc")
        assert cisc.code_size < risc.code_size


class TestCompilerLimits:
    def test_six_args_rejected_on_risc(self):
        src = """
        int f(int a, int b, int c, int d, int e, int g) { return a; }
        int main() { return f(1,2,3,4,5,6); }
        """
        from repro.cc.errors import CompileError

        with pytest.raises(CompileError, match="5"):
            compile_program(src, target="risc1")
