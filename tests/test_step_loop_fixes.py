"""Regression tests for the step-loop correctness fixes.

Covers the satellite bug fixes that rode along with the fast engine:

* MMIO stores now emit MEM_REF events, keeping the trace in lockstep
  with the ``data_writes`` counter on both machines;
* unknown-MMIO traps carry the faulting PC;
* ``run()`` syncs stats before raising :class:`StepLimitExceeded` and
  attaches the partial stats to the exception;
* ``PUTPSW`` traps when the written CWP disagrees with the register
  file's real window pointer instead of silently desynchronizing.
"""

import pytest

from repro.asm.assembler import assemble
from repro.baselines.vax.cpu import VaxCPU
from repro.cc.driver import compile_program
from repro.core.api import StepLimitExceeded
from repro.core.cpu import CPU, MMIO_BASE, MMIO_HALT
from repro.machine.traps import Trap, TrapKind
from repro.obs.events import EventKind
from repro.obs.tracer import Tracer
from repro.workloads import ALL_WORKLOADS


def risc_cpu(source, tracer=None):
    cpu = CPU(tracer=tracer)
    cpu.load(assemble(source))
    return cpu


class TestMmioObservability:
    OUTPUT_PROGRAM = """
    main:
        add r2, r0, #72
        putc r2
        puti r2
        halt r0
    """

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_risc_mmio_stores_traced(self, engine):
        tracer = Tracer(kinds={EventKind.MEM_REF})
        cpu = risc_cpu(self.OUTPUT_PROGRAM, tracer=tracer)
        result = cpu.run(max_steps=1_000, engine=engine)
        assert result.output == "H72"
        writes = [e for e in tracer.events if e.data["rw"] == "w"]
        assert tracer.dropped == 0
        # every accounted write — the three MMIO stores included — traced
        assert len(writes) == cpu.memory.stats.data_writes == 3
        assert all(e.data["addr"] >= MMIO_BASE for e in writes)
        # the halting store itself is in the stream
        assert writes[-1].data["addr"] == MMIO_HALT

    def test_vax_mmio_store_counts_and_traces_in_lockstep(self):
        tracer = Tracer(kinds={EventKind.MEM_REF})
        cpu = VaxCPU(tracer=tracer)
        writes_before = cpu.stats.data_writes
        cpu._mmio_store(MMIO_BASE + 0x4, 42, 4)  # PUTINT
        assert cpu.stats.data_writes == writes_before + 1
        assert cpu.memory.stats.data_writes == 1
        events = list(tracer.events)
        assert len(events) == 1  # the store is traced, not just counted
        assert events[0].data == {"addr": MMIO_BASE + 0x4, "rw": "w", "width": 4}
        assert "".join(cpu._console) == "42"

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_vax_halting_store_appears_in_trace(self, engine):
        program = compile_program(
            ALL_WORKLOADS["towers"].source(), target="cisc"
        ).program
        tracer = Tracer(capacity=1 << 19, kinds={EventKind.MEM_REF})
        cpu = VaxCPU(tracer=tracer)
        cpu.load(program)
        cpu.run(max_steps=5_000_000, engine=engine)
        assert tracer.dropped == 0
        mmio = [
            e
            for e in tracer.events
            if e.data["rw"] == "w" and e.data["addr"] >= MMIO_BASE
        ]
        # before the fix the MMIO output stores were invisible to the trace
        assert mmio
        assert mmio[-1].data["addr"] == MMIO_HALT


class TestMmioTrapPc:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_risc_unknown_mmio_carries_pc(self, engine):
        cpu = risc_cpu(
            """
            main:
                set r2, #0x7F000008
                stl r0, 0(r2)
                halt r0
            """
        )
        with pytest.raises(Trap) as excinfo:
            cpu.run(max_steps=1_000, engine=engine)
        assert excinfo.value.kind is TrapKind.BUS_ERROR
        assert excinfo.value.pc == cpu.pc

    def test_vax_unknown_mmio_carries_pc(self):
        cpu = VaxCPU()
        cpu.pc = 0x1234
        with pytest.raises(Trap) as excinfo:
            cpu._mmio_store(MMIO_BASE + 0x10, 0, 4)
        assert excinfo.value.kind is TrapKind.BUS_ERROR
        assert excinfo.value.pc == 0x1234


class TestStepLimitStats:
    LOOP = """
    main:
        set r3, cell
    loop:
        ldl r2, 0(r3)
        stl r2, 0(r3)
        jmp loop
        nop
    .data
    cell: .word 0
    """

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_risc_stats_synced_and_attached(self, engine):
        cpu = risc_cpu(self.LOOP)
        with pytest.raises(StepLimitExceeded) as excinfo:
            cpu.run(max_steps=1_000, engine=engine)
        exc = excinfo.value
        assert exc.stats is cpu.stats
        assert exc.stats.instructions == 1_000
        # memory traffic was folded into the stats before the raise
        assert exc.stats.data_reads == cpu.memory.stats.data_reads > 0
        assert exc.stats.data_writes == cpu.memory.stats.data_writes > 0

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_vax_stats_attached(self, engine):
        program = compile_program(
            ALL_WORKLOADS["towers"].source(), target="cisc"
        ).program
        cpu = VaxCPU()
        cpu.load(program)
        with pytest.raises(StepLimitExceeded) as excinfo:
            cpu.run(max_steps=100, engine=engine)
        assert excinfo.value.stats is cpu.stats
        assert excinfo.value.stats.instructions == 100


class TestPutpswCwp:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_mismatched_cwp_traps(self, engine):
        cpu = risc_cpu(
            """
            main:
                getpsw r2
                xor r2, r2, #0x100    ; flip a CWP bit
                putpsw r2
                halt r0
            """
        )
        with pytest.raises(Trap) as excinfo:
            cpu.run(max_steps=100, engine=engine)
        assert excinfo.value.kind is TrapKind.ILLEGAL_INSTRUCTION
        assert "CWP" in excinfo.value.detail

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_round_trip_in_interrupt_handler(self, engine):
        """GETPSW/PUTPSW in a handler: same window, so the restore holds.

        The handler runs one window deeper than main (the delivery rotated
        CWP), saves the PSW, clobbers the condition codes, restores the
        saved word, and returns — the interrupted comparison loop must
        still take its conditional jumps correctly.
        """
        program = assemble(
            """
            main:
                add r2, r0, #0
            loop:
                add r2, r2, #1
                cmp r2, #50
                jne loop
                nop
                halt r2

            handler:
                getpsw r16            ; PSW of the handler's own window
                cmp r0, #1            ; clobber the condition codes
                putpsw r16            ; restore — CWP matches, no trap
                retint r26, #0
                nop
            """
        )
        cpu = CPU()
        cpu.load(program)
        handler = program.symbol("handler")
        count = [0]

        def hook(pc, inst):
            count[0] += 1
            if count[0] == 10:
                cpu.raise_interrupt(handler)

        cpu.on_execute = hook
        result = cpu.run(max_steps=10_000, engine=engine)
        assert result.exit_code == 50
        assert cpu.interrupts_taken == 1
