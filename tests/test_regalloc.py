"""Unit and property tests for the linear-scan register allocator."""

from hypothesis import given, strategies as st

from repro.cc import ir
from repro.cc.regalloc import Allocation, allocate, defs_uses, live_ranges


def temps(*ids):
    return [ir.Temp(i) for i in ids]


class TestDefsUses:
    def test_binop(self):
        t0, t1, t2 = temps(0, 1, 2)
        d, u = defs_uses(ir.BinOp(t2, "+", t0, t1))
        assert d == [t2] and set(u) == {t0, t1}

    def test_constants_are_not_uses(self):
        (t0,) = temps(0)
        d, u = defs_uses(ir.BinOp(t0, "+", 5, 7))
        assert d == [t0] and u == []

    def test_store_has_no_defs(self):
        t0, t1 = temps(0, 1)
        d, u = defs_uses(ir.Store(t0, t1, 4))
        assert d == [] and set(u) == {t0, t1}

    def test_call(self):
        t0, t1 = temps(0, 1)
        d, u = defs_uses(ir.Call(t0, "f", [t1, 3]))
        assert d == [t0] and u == [t1]
        d, u = defs_uses(ir.Call(None, "f", []))
        assert d == [] and u == []

    def test_markers_and_labels_are_neutral(self):
        assert defs_uses(ir.Marker("call")) == ([], [])
        assert defs_uses(ir.Label("x")) == ([], [])


class TestLiveRanges:
    def test_straight_line(self):
        t0, t1 = temps(0, 1)
        instrs = [
            ir.Const(t0, 1),          # 0
            ir.Const(t1, 2),          # 1
            ir.BinOp(t0, "+", t0, t1),  # 2
            ir.Ret(t0),               # 3
        ]
        ranges = {r.temp: (r.start, r.end) for r in live_ranges(instrs)}
        assert ranges[t0] == (0, 3)
        assert ranges[t1] == (1, 2)

    def test_loop_extends_ranges_across_back_edge(self):
        t0, t1 = temps(0, 1)
        instrs = [
            ir.Const(t0, 1),            # 0: defined before the loop
            ir.Label("top"),            # 1
            ir.BinOp(t1, "+", t0, 1),   # 2: t0 used inside the loop
            ir.CBranch("<", t1, 10, "top"),  # 3: back edge
            ir.Ret(t0),                 # 4
        ]
        ranges = {r.temp: (r.start, r.end) for r in live_ranges(instrs)}
        # without the back-edge fix t1's range would end at 3 anyway, but
        # t0 must cover the whole loop body
        assert ranges[t0][1] == 4
        assert ranges[t1][1] >= 3


class TestAllocate:
    def test_disjoint_ranges_share_a_register(self):
        t0, t1 = temps(0, 1)
        instrs = [
            ir.Const(t0, 1),
            ir.Ret(t0),
            ir.Const(t1, 2),
            ir.Ret(t1),
        ]
        alloc = allocate(instrs, pool=[16])
        assert alloc.registers[t0] == alloc.registers[t1] == 16
        assert not alloc.spills

    def test_overlapping_ranges_get_distinct_registers(self):
        t0, t1 = temps(0, 1)
        instrs = [
            ir.Const(t0, 1),
            ir.Const(t1, 2),
            ir.BinOp(t0, "+", t0, t1),
            ir.Ret(t0),
        ]
        alloc = allocate(instrs, pool=[16, 17])
        assert alloc.registers[t0] != alloc.registers[t1]

    def test_spilling_when_pool_exhausted(self):
        ts = temps(0, 1, 2)
        instrs = [ir.Const(t, i) for i, t in enumerate(ts)]
        instrs.append(ir.BinOp(ts[0], "+", ts[1], ts[2]))
        instrs.append(ir.Ret(ts[0]))
        alloc = allocate(instrs, pool=[16, 17])
        assert len(alloc.spills) == 1
        assert alloc.num_spill_slots == 1
        # every temp is placed somewhere
        placed = set(alloc.registers) | set(alloc.spills)
        assert placed == set(ts)

    @given(
        num_temps=st.integers(1, 20),
        pool_size=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    def test_allocation_is_total_and_conflict_free(self, num_temps, pool_size, seed):
        import random

        rng = random.Random(seed)
        instrs = []
        live = []
        for i in range(num_temps):
            t = ir.Temp(i)
            instrs.append(ir.Const(t, i))
            live.append(t)
            if len(live) >= 2 and rng.random() < 0.6:
                a, b = rng.sample(live, 2)
                instrs.append(ir.BinOp(a, "+", a, b))
            if rng.random() < 0.3:
                live.remove(rng.choice(live))
        for t in live:
            instrs.append(ir.Ret(t))

        pool = list(range(16, 16 + pool_size))
        alloc = allocate(instrs, pool)
        all_temps = {ir.Temp(i) for i in range(num_temps)}
        assert set(alloc.registers) | set(alloc.spills) >= all_temps
        assert not (set(alloc.registers) & set(alloc.spills))
        # no two overlapping live ranges share a register
        ranges = {r.temp: r for r in live_ranges(instrs)}
        assigned = [(t, reg) for t, reg in alloc.registers.items()]
        for i, (t1, r1) in enumerate(assigned):
            for t2, r2 in assigned[i + 1 :]:
                if r1 != r2:
                    continue
                a, b = ranges[t1], ranges[t2]
                overlap = a.start <= b.end and b.start <= a.end
                # shared register requires truly disjoint ranges; touching
                # endpoints would mean a conflict at that instruction
                assert not overlap, (t1, t2, r1)
