"""Tests for the assembler and disassembler."""

import pytest

from repro.asm.assembler import AssemblerError, assemble
from repro.asm.disasm import disassemble, disassemble_program
from repro.isa.encoding import decode
from repro.isa.opcodes import Opcode


def first_word(program, index=0):
    code = next(s for s in program.segments if s.name == "code")
    return int.from_bytes(code.data[index * 4 : index * 4 + 4], "big")


class TestBasicAssembly:
    def test_alu_register_form(self):
        program = assemble("main: add r3, r1, r2\n halt")
        inst = decode(first_word(program))
        assert inst.opcode is Opcode.ADD
        assert (inst.dest, inst.rs1, inst.s2, inst.imm) == (3, 1, 2, False)

    def test_alu_immediate_form(self):
        program = assemble("main: add r3, r1, #-10\n halt")
        inst = decode(first_word(program))
        assert inst.imm and inst.s2 == -10

    def test_scc_suffix(self):
        program = assemble("main: sub! r0, r1, r2\n halt")
        assert decode(first_word(program)).scc

    def test_cmp_pseudo(self):
        program = assemble("main: cmp r1, r2\n halt")
        inst = decode(first_word(program))
        assert inst.opcode is Opcode.SUB and inst.scc and inst.dest == 0

    def test_load_store(self):
        program = assemble("main: ldl r4, 8(r1)\n stb r4, -2(r2)\n halt")
        load = decode(first_word(program, 0))
        store = decode(first_word(program, 1))
        assert load.opcode is Opcode.LDL and load.s2 == 8 and load.rs1 == 1
        assert store.opcode is Opcode.STB and store.s2 == -2 and store.dest == 4

    def test_jump_to_label_is_relative(self):
        program = assemble("main: jmp main\n nop\n halt")
        inst = decode(first_word(program))
        assert inst.opcode is Opcode.JMPR
        assert inst.y == 0  # jump to self

    def test_conditional_jump_mnemonics(self):
        source = "main:\n jeq main\n jne main\n jlt main\n jge main\n halt"
        program = assemble(source)
        conds = [decode(first_word(program, i)).cond.name for i in range(4)]
        assert conds == ["EQ", "NE", "LT", "GE"]

    def test_call_and_ret_defaults(self):
        program = assemble("main: call f\n nop\n halt\nf: ret\n nop")
        call = decode(first_word(program, 0))
        assert call.opcode is Opcode.CALLR and call.dest == 31
        ret = decode(first_word(program, 5))  # halt expands to 3 words
        assert ret.opcode is Opcode.RET and ret.rs1 == 31 and ret.s2 == 8

    def test_set_small_constant_is_one_word(self):
        program = assemble("main: set r5, #100\n halt")
        inst = decode(first_word(program))
        assert inst.opcode is Opcode.ADD and inst.s2 == 100

    def test_set_large_constant_is_ldhi_add(self):
        program = assemble("main: set r5, #0x12345678\n halt")
        hi = decode(first_word(program, 0))
        lo = decode(first_word(program, 1))
        assert hi.opcode is Opcode.LDHI
        assert lo.opcode is Opcode.ADD
        value = ((hi.y & 0x7FFFF) << 13) + lo.s2
        assert value & 0xFFFFFFFF == 0x12345678

    def test_mov_register(self):
        program = assemble("main: mov r5, r6\n halt")
        inst = decode(first_word(program))
        assert inst.opcode is Opcode.ADD and inst.rs1 == 6 and inst.imm and inst.s2 == 0

    def test_data_directives_and_symbols(self):
        source = """
        main:   set r2, table
                ldl r3, 0(r2)
                halt
        .data
        table:  .word 1, 2, 3
        msg:    .asciiz "hi"
        """
        program = assemble(source)
        assert program.symbols["table"] % 4 == 0
        assert program.symbols["msg"] == program.symbols["table"] + 12
        data = next(s for s in program.segments if s.name == "data")
        assert data.data[:4] == (1).to_bytes(4, "big")
        assert data.data[12:15] == b"hi\0"

    def test_align_and_space(self):
        source = """
        main: halt
        .data
        a: .byte 1
        .align 4
        b: .word 2
        c: .space 8
        d: .byte 3
        """
        program = assemble(source)
        assert program.symbols["b"] % 4 == 0
        assert program.symbols["d"] == program.symbols["c"] + 8

    def test_equ(self):
        program = assemble(".equ SIZE, 64\nmain: add r3, r0, #SIZE\n halt")
        assert decode(first_word(program)).s2 == 64

    def test_char_literal(self):
        program = assemble("main: add r3, r0, #'A'\n halt")
        assert decode(first_word(program)).s2 == 65

    def test_entry_prefers_start(self):
        program = assemble("_start: nop\nmain: halt")
        assert program.entry == program.symbols["_start"]

    def test_comments_all_styles(self):
        source = "main: nop ; semicolon\n nop // slashes\n halt"
        program = assemble(source)
        assert program.code_size >= 12


class TestAssemblerErrors:
    def test_missing_entry(self):
        with pytest.raises(AssemblerError, match="entry"):
            assemble("foo: nop")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("main: nop\nmain: halt")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblerError, match="undefined"):
            assemble("main: jmp nowhere\n halt")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("main: frobnicate r1\n halt")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("main: add r40, r1, r2\n halt")

    def test_instructions_in_data_section_rejected(self):
        with pytest.raises(AssemblerError, match="only allowed in .text"):
            assemble(".data\nmain: add r1, r1, r1")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("main: nop\n bogus r1\n halt")


class TestDisassembler:
    ROUND_TRIP_LINES = [
        "add r3, r1, r2",
        "add! r3, r1, #10",
        "sub r4, r2, #-5",
        "xor r5, r5, r5",
        "sll r6, r1, #3",
        "ldl r4, 8(r1)",
        "ldbu r4, 0(r2)",
        "stl r4, -4(r1)",
        "ret r31, #8",
        "gtlpc r7",
        "getpsw r7",
        "putpsw r7",
    ]

    @pytest.mark.parametrize("line", ROUND_TRIP_LINES)
    def test_disassembly_reassembles_identically(self, line):
        program = assemble(f"main: {line}\n halt")
        word = first_word(program)
        text = disassemble(word)
        program2 = assemble(f"main: {text}\n halt")
        assert first_word(program2) == word

    def test_program_listing_contains_labels(self):
        listing = disassemble_program(assemble("main: nop\nloop: jmp loop\n nop\n halt"))
        assert "main:" in listing
        assert "loop:" in listing
        assert "jmp" in listing
