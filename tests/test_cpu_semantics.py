"""Deeper semantics tests for the RISC I core: deferred window rotation,
spill/fill data integrity, traps, interrupts, and property tests pitting
the CPU against a Python model of the ALU."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.core import CPU
from repro.core.cpu import to_signed
from repro.machine.traps import Trap, TrapKind


def run(source, **kwargs):
    cpu = CPU(**kwargs)
    cpu.load(assemble(source))
    return cpu, cpu.run(max_instructions=2_000_000)


class TestDeferredWindowRotation:
    def test_call_delay_slot_runs_in_caller_window(self):
        """An argument move placed in the call's delay slot must land in
        the caller's LOW register (and hence the callee's HIGH)."""
        source = """
        main:
            call f
            add r10, r0, #33     ; delay slot: still the caller's window
            halt r10
        f:
            add r26, r26, #1     ; sees the argument set in the slot
            ret
            nop
        """
        _, result = run(source)
        assert result.exit_code == 34

    def test_ret_delay_slot_runs_in_callee_window(self):
        """The result move in a return's delay slot writes the callee's
        r26 — physically the caller's r10."""
        source = """
        main:
            call f
            nop
            halt r10
        f:
            add r16, r0, #55
            ret
            add r26, r16, #0     ; delay slot: still the callee's window
        """
        _, result = run(source)
        assert result.exit_code == 55

    def test_nested_transfer_in_delay_slot_traps(self):
        source = """
        main:
            call f
            call f               ; illegal: transfer in a call delay slot
            halt
        f:
            ret
            nop
        """
        with pytest.raises(Trap) as excinfo:
            run(source)
        assert excinfo.value.kind is TrapKind.ILLEGAL_INSTRUCTION

    def test_return_address_written_after_slot(self):
        source = """
        main:
            call f
            nop
            halt r10
        f:
            add r26, r31, #0     ; return address is visible in HIGH r31
            ret
            nop
        """
        cpu, result = run(source)
        # the call sits at the entry point
        assert result.exit_code == 0x1000


class TestSpillFillIntegrity:
    def test_deep_recursion_preserves_every_local(self):
        """Each frame stores a distinct local; spills and fills must bring
        every value back intact (sum of 1..N computed on the way out)."""
        source = """
        main:
            add r10, r0, #25
            call walk
            nop
            halt r10
        walk:
            add r16, r26, #0      ; local copy of n
            cmp r26, r0
            jne deeper
            nop
            add r26, r0, #0
            ret
            nop
        deeper:
            sub r10, r26, #1
            call walk
            nop
            add r26, r10, r16     ; r16 must have survived the spill
            ret
            nop
        """
        for windows in (2, 3, 4, 8):
            _, result = run(source, num_windows=windows)
            assert result.exit_code == sum(range(26)), f"{windows} windows"

    def test_spill_traffic_accounted(self):
        source = """
        main:
            add r10, r0, #20
            call walk
            nop
            halt r10
        walk:
            cmp r26, r0
            jne deeper
            nop
            add r26, r0, #0
            ret
            nop
        deeper:
            sub r10, r26, #1
            call walk
            nop
            ret
            add r26, r10, #0
        """
        cpu, result = run(source, num_windows=4)
        stats = result.stats
        assert stats.spilled_registers == 16 * stats.window_overflows
        assert stats.filled_registers == 16 * stats.window_underflows
        # the spill stores and fill loads appear in real memory traffic
        assert stats.data_writes >= stats.spilled_registers
        assert stats.data_reads >= stats.filled_registers
        # and the handler cycles are charged
        expected = (stats.window_overflows + stats.window_underflows) * (8 + 32)
        assert stats.overflow_cycles == expected


class TestInterruptInstructions:
    def test_callint_disables_and_retint_enables(self):
        source = """
        main:
            nop                   ; 0x1000: the "interrupted" instruction
            callint r16           ; r16 := last pc (0x1000), interrupts off
            getpsw r2
            and r3, r2, #0x80     ; interrupt-enable bit, read inside
            retint r16, #20       ; resume at 0x1000 + 20 = the nop below
            nop
            nop                   ; 0x1014: resumption point
            halt r3
        """
        _, result = run(source)
        assert result.exit_code == 0  # interrupts were disabled inside

    def test_callint_captures_last_pc(self):
        source = """
        main:
            nop                    ; executes at 0x1000
            callint r16            ; last pc = 0x1000
            add r2, r16, #0        ; 0x1008
            retint r16, #20        ; resume at 0x1000 + 20 = the halt
            nop
            halt r2                ; 0x1014
        """
        _, result = run(source)
        assert result.exit_code == 0x1000


class TestTraps:
    def test_illegal_instruction_trap(self):
        cpu = CPU()
        cpu.memory.load_image(0x1000, (0x7F << 25).to_bytes(4, "big"))
        cpu.pc, cpu.npc = 0x1000, 0x1004
        with pytest.raises(Exception, match="illegal opcode"):
            cpu.step()

    def test_load_fault_reports_pc(self):
        source = "main:\n set r2, #0x00F00000\n ldl r3, 0(r2)\n halt"
        with pytest.raises(Trap) as excinfo:
            run(source)
        assert excinfo.value.kind is TrapKind.BUS_ERROR
        assert excinfo.value.pc is not None

    def test_store_to_unknown_mmio_traps(self):
        source = "main:\n set r2, #0x7F000100\n stl r0, 0(r2)\n halt"
        with pytest.raises(Trap) as excinfo:
            run(source)
        assert excinfo.value.kind is TrapKind.BUS_ERROR


class TestAluProperties:
    @settings(max_examples=30, deadline=None)
    @given(a=st.integers(-(1 << 31), (1 << 31) - 1), b=st.integers(-4096, 4095))
    def test_add_immediate_matches_python(self, a, b):
        source = f"""
        main:
            set r2, #{a}
            add r3, r2, #{b}
            halt r3
        """
        _, result = run(source)
        assert result.exit_code == to_signed(a + b)

    @settings(max_examples=30, deadline=None)
    @given(a=st.integers(-(1 << 31), (1 << 31) - 1), b=st.integers(-(1 << 31), (1 << 31) - 1))
    def test_signed_comparison_matches_python(self, a, b):
        source = f"""
        main:
            set r2, #{a}
            set r3, #{b}
            cmp r2, r3
            jlt less
            nop
            halt r0
        less:
            add r4, r0, #1
            halt r4
        """
        _, result = run(source)
        assert result.exit_code == int(a < b)

    @settings(max_examples=30, deadline=None)
    @given(a=st.integers(0, (1 << 32) - 1), b=st.integers(0, (1 << 32) - 1))
    def test_unsigned_comparison_matches_python(self, a, b):
        source = f"""
        main:
            set r2, #{a}
            set r3, #{b}
            cmp r2, r3
            jlo lower
            nop
            halt r0
        lower:
            add r4, r0, #1
            halt r4
        """
        _, result = run(source)
        assert result.exit_code == int(a < b)

    @settings(max_examples=20, deadline=None)
    @given(value=st.integers(-(1 << 31), (1 << 31) - 1), amount=st.integers(0, 31))
    def test_shift_family_matches_python(self, value, amount):
        source = f"""
        main:
            set r2, #{value}
            sll r3, r2, #{amount}
            srl r4, r2, #{amount}
            sra r5, r2, #{amount}
            puti r3
            putc r0
            puti r4
            putc r0
            puti r5
            halt
        """
        _, result = run(source)
        sll, srl, sra = result.output.split("\0")
        unsigned = value & 0xFFFFFFFF
        assert int(sll) == to_signed(unsigned << amount)
        assert int(srl) == to_signed(unsigned >> amount)
        assert int(sra) == value >> amount
