"""The persistent worker pool: parity, reuse, and crash tolerance.

The crash tests use the pool's test-only injection hooks
(``$REPRO_FARM_TEST_CRASH`` / ``$REPRO_FARM_TEST_CRASH_ONCE``) to kill a
worker with ``os._exit`` mid-batch — a real SIGKILL-grade death, not an
exception — and assert the deployment contract: the job is retried once
on a fresh worker, and when the retry budget is exhausted it fails
*cleanly* with the dead worker's stderr attached, never wedging or
raising out of the sweep.
"""

import queue

import pytest

from repro.farm.api import FarmClient
from repro.farm.cache import ArtifactCache
from repro.farm.jobs import execute_job, sweep_jobs
from repro.farm.pool import WorkerPool, default_batch_size


def _collect_pool(pool, jobs, timeout=120.0):
    """Submit jobs, return {key: PoolOutcome} once all have reported."""
    incoming = queue.Queue()
    pool.submit(jobs, incoming.put)
    outcomes = {}
    while len(outcomes) < len(jobs):
        outcome = incoming.get(timeout=timeout)
        outcomes[outcome.key] = outcome
    return outcomes


class TestBatchSize:
    def test_two_dispatches_per_worker(self):
        assert default_batch_size(16, 4) == 2
        assert default_batch_size(64, 4) == 8  # capped
        assert default_batch_size(3, 4) == 1
        assert default_batch_size(0, 4) == 1

    def test_degenerate_inputs(self):
        assert default_batch_size(10, 0) == 1
        assert default_batch_size(-1, 2) == 1


class TestPoolExecution:
    def test_pool_matches_serial_results(self, tmp_path):
        jobs = sweep_jobs(workloads=["towers", "qsort"], targets=["risc1"])
        serial_cache = ArtifactCache(tmp_path / "serial")
        with FarmClient(workers=1, cache=serial_cache) as client:
            serial = client.sweep(jobs)
        with WorkerPool(2, cache_root=str(tmp_path / "pool")) as pool:
            outcomes = _collect_pool(pool, jobs)
        # raw pool submission has no dependency waves, so a compile job may
        # be a cache *hit* (its execute job compiled first) — but every job
        # succeeds and produces bit-identical measurements
        assert all(o.status in ("hit", "computed") for o in outcomes.values())
        assert {o.key: o.metrics for o in serial.outcomes} == {
            k: o.metrics for k, o in outcomes.items()
        }
        assert all(o.worker.startswith("pool:") for o in outcomes.values())

    def test_pool_is_reused_across_submissions(self, tmp_path):
        jobs = [execute_job("towers", "risc1")]
        with WorkerPool(2, cache_root=str(tmp_path)) as pool:
            first_pids = sorted(p.pid for p in pool._procs.values())
            _collect_pool(pool, jobs)
            _collect_pool(pool, jobs)  # second submission: warm cache, same forks
            assert sorted(p.pid for p in pool._procs.values()) == first_pids
            assert pool.stats["batches_dispatched"] == 2
            assert pool.stats["worker_crashes"] == 0

    def test_cache_stats_travel_with_outcomes(self, tmp_path):
        with WorkerPool(1, cache_root=str(tmp_path)) as pool:
            cold = _collect_pool(pool, [execute_job("towers", "risc1")])
            warm = _collect_pool(pool, [execute_job("towers", "risc1")])
        (cold_outcome,) = cold.values()
        (warm_outcome,) = warm.values()
        assert cold_outcome.status == "computed"
        assert cold_outcome.cache["stores"] >= 1
        assert warm_outcome.status == "hit"
        assert warm_outcome.cache["hits"] >= 1


class TestCrashTolerance:
    def test_crash_is_retried_once_then_succeeds(self, tmp_path, monkeypatch):
        job = execute_job("towers", "risc1")
        marker = tmp_path / "crashed-once"
        monkeypatch.setenv("REPRO_FARM_TEST_CRASH", job.describe())
        monkeypatch.setenv("REPRO_FARM_TEST_CRASH_ONCE", str(marker))
        with WorkerPool(2, cache_root=str(tmp_path / "cache")) as pool:
            outcomes = _collect_pool(pool, [job])
            assert pool.stats["worker_crashes"] == 1
            assert pool.stats["jobs_retried"] == 1
            assert pool.stats["workers_respawned"] == 1
            # the pool is still fully usable after the respawn
            monkeypatch.delenv("REPRO_FARM_TEST_CRASH")
            more = _collect_pool(pool, [execute_job("qsort", "risc1")])
        outcome = outcomes[job.key]
        assert outcome.status == "computed"
        assert outcome.attempts == 2
        assert marker.exists()
        assert all(o.status == "computed" for o in more.values())

    def test_exhausted_retries_fail_cleanly_with_stderr(self, tmp_path, monkeypatch):
        job = execute_job("towers", "risc1")
        monkeypatch.setenv("REPRO_FARM_TEST_CRASH", job.describe())
        with WorkerPool(2, cache_root=str(tmp_path / "cache")) as pool:
            outcomes = _collect_pool(pool, [job])
        outcome = outcomes[job.key]
        assert outcome.status == "failed"
        assert outcome.attempts == 2  # first try + one retry, both crashed
        assert "crashed" in outcome.error
        assert "exit code 66" in outcome.error
        # the dead worker's stderr tail is attached to the failure
        assert "simulated worker crash" in outcome.error

    def test_client_sweep_survives_worker_crashes(self, tmp_path, monkeypatch):
        """A crashing job fails its own outcome; everything else completes."""
        victim = execute_job("towers", "risc1")
        jobs = [victim, execute_job("qsort", "risc1"), execute_job("sed", "risc1")]
        monkeypatch.setenv("REPRO_FARM_TEST_CRASH", victim.describe())
        with FarmClient(workers=2, cache=ArtifactCache(tmp_path / "cache")) as client:
            report = client.sweep(jobs)
        by_key = {o.key: o for o in report.outcomes}
        assert by_key[victim.key].status == "failed"
        assert "crashed" in by_key[victim.key].error
        survivors = [o for k, o in by_key.items() if k != victim.key]
        assert all(o.status == "computed" for o in survivors)


class TestPoolLifecycle:
    def test_drain_then_close_merges_nothing_without_ledger(self, tmp_path):
        pool = WorkerPool(1, cache_root=str(tmp_path))
        pool.start()
        _collect_pool(pool, [execute_job("towers", "risc1")])
        assert pool.drain(timeout=30.0)
        pool.close()
        assert not pool._started
        # close is idempotent
        pool.close()

    def test_pool_refuses_work_after_close(self, tmp_path):
        from repro.farm.pool import PoolBroken

        pool = WorkerPool(1, cache_root=str(tmp_path))
        pool.start()
        pool.close()
        with pytest.raises(PoolBroken):
            pool.submit([execute_job("towers", "risc1")], lambda o: None)
