"""Unit tests for the support modules: programs, statistics, timing, and
the HLL profiler."""

import pytest

from repro.core.program import Program, Segment
from repro.core.stats import ExecutionStats
from repro.core.timing import RiscTiming
from repro.isa.opcodes import Category, Opcode


class TestProgram:
    def make(self):
        code = Segment(0x1000, b"\x00" * 16, name="code")
        data = Segment(0x2000, b"\xff" * 8, name="data")
        return Program((code, data), entry=0x1000, symbols={"main": 0x1000})

    def test_sizes(self):
        program = self.make()
        assert program.code_size == 16  # code only: the paper's metric
        assert program.total_size == 24

    def test_segment_end(self):
        assert Segment(0x1000, b"abcd").end == 0x1004

    def test_symbol_lookup(self):
        program = self.make()
        assert program.symbol("main") == 0x1000
        with pytest.raises(KeyError, match="undefined symbol"):
            program.symbol("nothing")

    def test_describe_falls_back_to_address(self):
        assert self.make().describe(0x1234) == "0x00001234"

    def test_code_size_without_code_segment(self):
        program = Program((Segment(0, b"ab", name="blob"),), entry=0)
        assert program.code_size == 2


class TestExecutionStats:
    def test_record_and_mix(self):
        stats = ExecutionStats()
        stats.record(Opcode.ADD, 1)
        stats.record(Opcode.ADD, 1)
        stats.record(Opcode.LDL, 2)
        assert stats.instructions == 3
        assert stats.cycles == 4
        mix = stats.mix()
        assert abs(mix[Category.ARITH] - 2 / 3) < 1e-9
        assert abs(mix[Category.MEMORY] - 1 / 3) < 1e-9

    def test_data_references(self):
        stats = ExecutionStats(data_reads=3, data_writes=4)
        assert stats.data_references == 7

    def test_summary_handles_zero_instructions(self):
        assert "n/a" in ExecutionStats().summary()


class TestRiscTiming:
    def test_default_model(self):
        timing = RiscTiming()
        assert timing.instruction_cycles(Opcode.ADD) == 1
        assert timing.instruction_cycles(Opcode.LDL) == 2
        assert timing.instruction_cycles(Opcode.STB) == 2
        assert timing.instruction_cycles(Opcode.CALLR) == 1
        assert timing.overflow_handler_cycles == 8 + 16 * 2

    def test_memory_cost_knob(self):
        slow = RiscTiming(memory_op_cycles=5)
        assert slow.instruction_cycles(Opcode.LDL) == 5
        assert slow.instruction_cycles(Opcode.ADD) == 1
        assert slow.overflow_handler_cycles == 8 + 16 * 5

    def test_time_conversions(self):
        timing = RiscTiming()
        assert timing.nanoseconds(10) == 4000.0
        assert timing.milliseconds(2500) == 1.0


class TestHllProfiler:
    def test_dynamic_counts_on_one_workload(self):
        from repro.analysis.hll import dynamic_statement_counts

        counts = dynamic_statement_counts(["towers"])
        assert counts["call"] > 1000  # hanoi recursion
        assert counts["if"] > 1000
        assert counts["return"] > 1000

    def test_weights_are_positive_for_real_classes(self):
        from repro.analysis.hll import statement_weights

        weights = statement_weights("risc1")
        for cls in ("assignment", "if", "loop", "call"):
            assert weights[cls].instructions > 0, cls
            assert weights[cls].cycles > 0, cls
        # calls are the most instruction-hungry class on any machine
        assert weights["call"].instructions >= weights["assignment"].instructions

    def test_weighted_table_shares_sum_to_100(self):
        from repro.analysis.hll import weighted_statement_table

        rows = weighted_statement_table("risc1", ["towers", "sed"])
        assert abs(sum(r.executed_pct for r in rows) - 100.0) < 1e-6
        assert abs(sum(r.instruction_weighted_pct for r in rows) - 100.0) < 1e-6
        assert abs(sum(r.memref_weighted_pct for r in rows) - 100.0) < 1e-6
