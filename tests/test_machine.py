"""Tests for memory, the windowed register file, and the PSW."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.conditions import ConditionCodes
from repro.machine.memory import Memory, MemoryError_
from repro.machine.psw import PSW
from repro.machine.regfile import RegisterFile
from repro.machine.traps import Trap, TrapKind


class TestMemory:
    def test_word_round_trip(self):
        mem = Memory(4096)
        mem.write(0x10, 0xDEADBEEF, 4)
        assert mem.read(0x10, 4) == 0xDEADBEEF

    def test_big_endian_layout(self):
        mem = Memory(4096)
        mem.write(0, 0x11223344, 4)
        assert mem.read(0, 1) == 0x11
        assert mem.read(3, 1) == 0x44

    def test_signed_reads(self):
        mem = Memory(4096)
        mem.write(0, 0xFF, 1)
        assert mem.read(0, 1, signed=True) == -1
        mem.write(2, 0x8000, 2)
        assert mem.read(2, 2, signed=True) == -32768

    def test_write_masks_value(self):
        mem = Memory(4096)
        mem.write(0, 0x1FF, 1)
        assert mem.read(0, 1) == 0xFF

    def test_alignment_trap(self):
        mem = Memory(4096)
        with pytest.raises(MemoryError_) as excinfo:
            mem.read(2, 4)
        assert excinfo.value.kind is TrapKind.ALIGNMENT
        with pytest.raises(MemoryError_):
            mem.write(1, 0, 2)

    def test_bus_error(self):
        mem = Memory(4096)
        with pytest.raises(MemoryError_) as excinfo:
            mem.read(4096, 4)
        assert excinfo.value.kind is TrapKind.BUS_ERROR
        with pytest.raises(MemoryError_):
            mem.read(-4, 4)

    def test_traffic_accounting(self):
        mem = Memory(4096)
        mem.write(0, 1, 4)
        mem.read(0, 4)
        mem.fetch_word(0)
        assert mem.stats.data_writes == 1
        assert mem.stats.data_reads == 1
        assert mem.stats.inst_fetches == 1
        assert mem.stats.data_references == 2
        assert mem.stats.total == 3

    def test_load_image_not_counted(self):
        mem = Memory(4096)
        mem.load_image(0, b"\x01\x02\x03\x04")
        assert mem.stats.total == 0
        assert mem.dump(0, 4) == b"\x01\x02\x03\x04"

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            Memory(0)
        with pytest.raises(ValueError):
            Memory(1001)

    @given(
        address=st.integers(0, 1020).map(lambda a: a & ~3),
        value=st.integers(0, 0xFFFFFFFF),
    )
    def test_word_round_trip_property(self, address, value):
        mem = Memory(1024)
        mem.write(address, value, 4)
        assert mem.read(address, 4) == value


class TestRegisterFile:
    def test_r0_is_zero(self):
        regs = RegisterFile()
        regs.write(0, 123)
        assert regs.read(0) == 0

    def test_values_masked_to_32_bits(self):
        regs = RegisterFile()
        regs.write(5, 1 << 40)
        assert regs.read(5) == 0

    def test_parameter_passing_through_overlap(self):
        """Caller writes LOW r10; after a CALL the callee reads HIGH r26."""
        regs = RegisterFile()
        regs.write(10, 42)
        regs.write(11, 43)
        assert regs.call_advance() == []
        assert regs.read(26) == 42
        assert regs.read(27) == 43

    def test_locals_preserved_across_call(self):
        regs = RegisterFile()
        regs.write(16, 7)
        regs.call_advance()
        regs.write(16, 99)  # callee's local must not disturb caller's
        regs.ret_retreat()
        assert regs.read(16) == 7

    def test_return_value_through_overlap(self):
        regs = RegisterFile()
        regs.call_advance()
        regs.write(26, 77)  # callee writes its HIGH r26
        regs.ret_retreat()
        assert regs.read(10) == 77  # caller reads its LOW r10

    def test_globals_shared(self):
        regs = RegisterFile()
        regs.write(5, 1234)
        regs.call_advance()
        assert regs.read(5) == 1234

    def test_overflow_after_w_minus_1_frames(self):
        regs = RegisterFile(num_windows=4)
        assert regs.call_advance() == []  # depth 2, resident 2
        assert regs.call_advance() == []  # depth 3, resident 3 == max
        spill = regs.call_advance()  # depth 4 -> overflow
        assert len(spill) == 1
        assert regs.overflows == 1

    def test_underflow_on_return_to_spilled_frame(self):
        regs = RegisterFile(num_windows=4)
        for _ in range(3):
            regs.call_advance()
        assert regs.ret_retreat() is None  # back into a resident frame? no:
        # depth went 1->4 with one spill; resident is 3; first ret is free.
        assert regs.ret_retreat() is None
        fill = regs.ret_retreat()
        assert fill is not None
        assert regs.underflows == 1

    def test_return_from_outermost_frame_traps(self):
        regs = RegisterFile()
        with pytest.raises(Trap) as excinfo:
            regs.ret_retreat()
        assert excinfo.value.kind is TrapKind.WINDOW_UNDERFLOW

    def test_depth_tracks_nesting_beyond_capacity(self):
        regs = RegisterFile(num_windows=2)
        for _ in range(10):
            regs.call_advance()
        assert regs.depth == 11
        assert regs.overflows == 10  # with 2 windows every call spills

    def test_window_slots_are_16_distinct_physical_regs(self):
        regs = RegisterFile()
        slots = regs.window_slots(3)
        assert len(slots) == 16
        assert len(set(slots)) == 16

    def test_too_few_windows_rejected(self):
        with pytest.raises(ValueError):
            RegisterFile(num_windows=1)

    @given(depth=st.integers(1, 40), windows=st.sampled_from([2, 4, 8, 16]))
    def test_call_ret_balance_property(self, depth, windows):
        """calls == returns after a balanced sequence; depth returns to 1."""
        regs = RegisterFile(num_windows=windows)
        for _ in range(depth):
            regs.call_advance()
        for _ in range(depth):
            regs.ret_retreat()
        assert regs.depth == 1
        assert regs.calls == regs.returns == depth
        assert regs.overflows == regs.underflows


class TestPSW:
    def test_pack_unpack_round_trip(self):
        psw = PSW(cc=ConditionCodes(z=True, n=False, c=True, v=False), cwp=5)
        psw.interrupts_enabled = False
        packed = psw.pack()
        other = PSW()
        other.unpack(packed)
        assert other.cc == psw.cc
        assert other.interrupts_enabled is False
        assert other.cwp == 5

    def test_condition_codes_from_result(self):
        cc = ConditionCodes.from_result(0)
        assert cc.z and not cc.n
        cc = ConditionCodes.from_result(0x80000000)
        assert cc.n and not cc.z
