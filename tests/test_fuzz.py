"""Unit tests for the differential fuzzer (`repro.fuzz`).

The heavy lifting — actually finding divergences — happens in fuzz
campaigns; what lives here are the machine-checkable contracts the
subsystem promises: seed determinism, the every-profile-compiles
invariant, cross-check report round-trips, ddmin minimality, and
byte-stable campaign reports.
"""

import json

import pytest

from repro.cc.driver import compile_program
from repro.fuzz.campaign import corpus_filename, run_campaign, triage_text
from repro.fuzz.crosscheck import CrossCheckReport, Divergence, crosscheck_seed
from repro.fuzz.gen import PROFILES, generate_source
from repro.fuzz.minimize import MinimizeError, _ddmin_list, minimize_source


class TestGenerator:
    def test_same_seed_same_bytes(self):
        assert generate_source(17) == generate_source(17)
        assert generate_source(17, "deep-calls") == generate_source(17, "deep-calls")

    def test_distinct_seeds_differ(self):
        assert generate_source(0) != generate_source(1)

    def test_header_names_seed_and_profile(self):
        first = generate_source(42, "small").splitlines()[0]
        assert "seed=42" in first and "profile=small" in first

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz profile"):
            generate_source(0, "no-such-profile")

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    @pytest.mark.parametrize("target", ["risc1", "cisc"])
    def test_every_profile_compiles(self, profile, target):
        # the generator's grammar must stay inside the RCC subset for
        # every profile and target — a seed that fails to compile is a
        # generator bug, not a finding
        for seed in range(3):
            compile_program(generate_source(seed, profile), target=target)


class TestCrossCheck:
    def test_clean_seed_is_ok_and_round_trips(self):
        report = crosscheck_seed(0, max_steps=2_000_000)
        assert report.status == "ok"
        assert report.ok
        assert report.signature() == ""
        again = CrossCheckReport.from_dict(report.to_dict())
        assert again.to_dict() == report.to_dict()
        assert "ok" in report.render()

    def test_divergence_signature_is_stable(self):
        div = Divergence(
            check="risc-ref-vs-vax-ref",
            kind="cross",
            left="risc-ref",
            right="vax-ref",
            fields={"output": ("1", "2"), "exit_code": (0, 1)},
        )
        # sorted field names, so the signature never depends on dict order
        assert div.signature() == "risc-ref-vs-vax-ref|exit_code,output"
        assert Divergence.from_dict(div.to_dict()).signature() == div.signature()


class TestMinimize:
    def test_ddmin_finds_a_minimal_sublist(self):
        items = list(range(12))
        kept = _ddmin_list(items, lambda cand: 3 in cand and 7 in cand)
        assert sorted(kept) == [3, 7]

    def test_ddmin_prefers_empty_when_anything_passes(self):
        assert _ddmin_list([1, 2, 3], lambda cand: True) == []

    def test_clean_program_is_not_minimizable(self):
        with pytest.raises(MinimizeError):
            minimize_source(generate_source(0), max_steps=2_000_000)


class TestCampaign:
    def test_serial_campaign_is_clean_and_byte_stable(self):
        runs = [
            run_campaign(range(3), serial=True, ledger=False, minimize=False)
            for _ in range(2)
        ]
        for report in runs:
            assert report.clean
            assert report.checked == 3 and report.ok == 3
        first, second = (json.dumps(r.to_dict(), sort_keys=True) for r in runs)
        assert first == second

    def test_triage_text_summarizes_a_clean_report(self):
        report = run_campaign(range(1), serial=True, ledger=False, minimize=False)
        text = triage_text(report.to_dict())
        assert "checked=1" in text and "ok=1" in text

    def test_corpus_filename_is_zero_padded(self):
        assert corpus_filename(4, "default") == "seed00000004_default.c"
