"""Tests for the compiler driver API surface and batched window spilling."""

import pytest

from repro.asm import assemble
from repro.cc.driver import compile_program, compile_to_assembly, run_compiled
from repro.cc.errors import CompileError
from repro.core import CPU
from repro.machine.regfile import RegisterFile

SUM_SOURCE = """
main:
    add r10, r0, #30
    call sum
    nop
    halt r10
sum:
    cmp r26, r0
    jne recurse
    nop
    add r26, r0, #0
    ret
    nop
recurse:
    sub r10, r26, #1
    call sum
    nop
    add r26, r10, r26
    ret
    nop
"""


class TestDriver:
    def test_unknown_target_rejected(self):
        with pytest.raises(CompileError, match="unknown target"):
            compile_program("int main() { return 0; }", target="mips")

    def test_compile_to_assembly_text(self):
        asm = compile_to_assembly("int main() { return 3; }")
        assert ".text" in asm and "main:" in asm

    def test_unoptimized_compilation_has_no_delay_stats(self):
        compiled = compile_program(
            "int main() { return 0; }", fill_delay_slots=False
        )
        assert compiled.delay_stats is None
        assert run_compiled(compiled).exit_code == 0

    def test_optimized_is_never_larger(self):
        source = """
        int f(int n) { if (n == 0) return 0; return n + f(n - 1); }
        int main() { return f(10); }
        """
        optimized = compile_program(source, fill_delay_slots=True)
        raw = compile_program(source, fill_delay_slots=False)
        assert optimized.code_size <= raw.code_size
        assert run_compiled(optimized).exit_code == run_compiled(raw).exit_code == 55

    def test_compiled_program_exposes_ir(self):
        compiled = compile_program("int main() { return 0; }")
        assert compiled.ir.function("main")


class TestSpillBatching:
    def run(self, windows, batch):
        cpu = CPU(num_windows=windows, spill_batch=batch)
        cpu.load(assemble(SUM_SOURCE))
        return cpu.run()

    def test_results_identical_across_policies(self):
        expected = sum(range(31))
        for batch in (1, 2, 3, 4):
            result = self.run(4, batch)
            assert result.exit_code == expected, f"batch={batch}"

    def test_batching_reduces_trap_count(self):
        demand = self.run(4, 1)
        batched = self.run(4, 3)
        assert batched.stats.window_overflows < demand.stats.window_overflows

    def test_batching_increases_per_trap_spill(self):
        batched = self.run(4, 3)
        assert (
            batched.stats.spilled_registers
            > 16 * batched.stats.window_overflows
        )

    def test_regfile_batch_arithmetic(self):
        regs = RegisterFile(num_windows=4, spill_batch=2)
        assert regs.call_advance() == []
        assert regs.call_advance() == []
        spills = regs.call_advance()
        assert len(spills) == 2
        assert regs.resident == 2  # 3 - 2 spilled + 1 new frame

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            RegisterFile(spill_batch=0)
        with pytest.raises(ValueError):
            CPU(spill_batch=-1)

    def test_batch_larger_than_resident_is_clamped(self):
        regs = RegisterFile(num_windows=3, spill_batch=10)
        regs.call_advance()  # resident 2 == max
        spills = regs.call_advance()
        assert len(spills) == 2  # clamped to the resident frames
        assert regs.resident == 1
