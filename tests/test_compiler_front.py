"""Tests for the mini-C front-end: lexer, parser, semantic analysis, IR."""

import pytest

from repro.cc import ast_nodes as ast
from repro.cc.errors import CompileError
from repro.cc.driver import compile_to_ir
from repro.cc.ir import CBranch, Call, IRProgram, format_ir
from repro.cc.lexer import TokenKind, tokenize
from repro.cc.parser import parse
from repro.cc.sema import analyze


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("int x = 42;")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            TokenKind.KEYWORD,
            TokenKind.IDENT,
            TokenKind.OP,
            TokenKind.NUMBER,
            TokenKind.OP,
            TokenKind.EOF,
        ]

    def test_hex_numbers(self):
        tokens = tokenize("0xFF 0x10")
        assert tokens[0].value == 255
        assert tokens[1].value == 16

    def test_char_literals_and_escapes(self):
        tokens = tokenize(r"'a' '\n' '\0' '\\'")
        assert [t.value for t in tokens[:4]] == [97, 10, 0, 92]

    def test_string_literals(self):
        tokens = tokenize(r'"hi\n"')
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "hi\n"

    def test_comments_stripped(self):
        tokens = tokenize("a // line\n/* block\nstill */ b")
        idents = [t.text for t in tokens if t.kind is TokenKind.IDENT]
        assert idents == ["a", "b"]

    def test_maximal_munch(self):
        tokens = tokenize("a<<=b")
        assert tokens[1].text == "<<="

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 4]

    def test_errors(self):
        with pytest.raises(CompileError):
            tokenize("'unterminated")
        with pytest.raises(CompileError):
            tokenize('"unterminated')
        with pytest.raises(CompileError):
            tokenize("/* unterminated")
        with pytest.raises(CompileError):
            tokenize("`")


class TestParser:
    def test_function_structure(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        assert len(unit.functions) == 1
        func = unit.functions[0]
        assert func.name == "add"
        assert [p.name for p in func.params] == ["a", "b"]

    def test_precedence(self):
        unit = parse("int f() { return 1 + 2 * 3; }")
        ret = unit.functions[0].body.body[0]
        assert isinstance(ret.value, ast.Binary) and ret.value.op == "+"
        assert isinstance(ret.value.right, ast.Binary) and ret.value.right.op == "*"

    def test_assignment_right_associative(self):
        unit = parse("void f() { int a; int b; a = b = 1; }")
        stmt = unit.functions[0].body.body[2]
        assert isinstance(stmt.expr, ast.Assign)
        assert isinstance(stmt.expr.value, ast.Assign)

    def test_dangling_else_binds_inner(self):
        unit = parse("void f(int a) { if (a) if (a) putint(1); else putint(2); }")
        outer = unit.functions[0].body.body[0]
        assert outer.otherwise is None
        assert outer.then.otherwise is not None

    def test_pointer_and_array_declarations(self):
        unit = parse("int g[10]; char *s; void f(int *p, char buf[]) { }")
        assert unit.globals[0].type.is_array
        assert unit.globals[1].type.is_pointer
        params = unit.functions[0].params
        assert params[0].type.is_pointer
        assert params[1].type.is_pointer  # arrays decay

    def test_for_with_declaration(self):
        unit = parse("void f() { for (int i = 0; i < 10; i++) putint(i); }")
        loop = unit.functions[0].body.body[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.Decl)

    def test_do_while(self):
        unit = parse("void f() { int i; i = 0; do i++; while (i < 3); }")
        assert isinstance(unit.functions[0].body.body[2], ast.DoWhile)

    def test_multi_declaration_splits(self):
        unit = parse("void f() { int a = 1, b = 2; }")
        block = unit.functions[0].body.body[0]
        assert isinstance(block, ast.Block)
        assert len(block.body) == 2

    def test_errors(self):
        for src in [
            "int f( {",
            "int f() { return 1 }",
            "int f() { if a return 1; }",
            "int f() { int x[]; }",
            "int 3x;",
        ]:
            with pytest.raises(CompileError):
                parse(src)


class TestSema:
    def check(self, src):
        return analyze(parse(src))

    def test_undefined_variable(self):
        with pytest.raises(CompileError, match="undefined variable"):
            self.check("int f() { return y; }")

    def test_undefined_function(self):
        with pytest.raises(CompileError, match="undefined function"):
            self.check("int f() { return g(); }")

    def test_arity_mismatch(self):
        with pytest.raises(CompileError, match="expects 2"):
            self.check("int g(int a, int b) { return a; } int f() { return g(1); }")

    def test_redefinition(self):
        with pytest.raises(CompileError, match="redefinition"):
            self.check("int f() { return 0; } int f() { return 1; }")
        with pytest.raises(CompileError, match="redefinition"):
            self.check("int x; int x;")
        with pytest.raises(CompileError, match="redefinition"):
            self.check("int f() { int a; int a; return 0; }")

    def test_shadowing_in_inner_scope_allowed(self):
        info, _ = self.check("int f() { int a = 1; { int a = 2; } return a; }")
        assert len(info.functions["f"].locals) == 2

    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break outside"):
            self.check("void f() { break; }")

    def test_return_type_checking(self):
        with pytest.raises(CompileError, match="returns void"):
            self.check("void f() { return 1; }")
        with pytest.raises(CompileError, match="must return"):
            self.check("int f() { return; }")

    def test_lvalue_required(self):
        with pytest.raises(CompileError, match="lvalue"):
            self.check("void f() { 1 = 2; }")
        with pytest.raises(CompileError, match="lvalue"):
            self.check("void f(int a) { &(a + 1); }")

    def test_pointer_rules(self):
        with pytest.raises(CompileError, match="dereference"):
            self.check("void f(int a) { *a; }")
        with pytest.raises(CompileError, match="add two pointers"):
            self.check("void f(int *p, int *q) { p + q; }")
        # pointer difference is fine
        self.check("int f(int *p, int *q) { return p - q; }")

    def test_addressed_variable_marked(self):
        info, _ = self.check("void g(int *p) {} void f() { int x; g(&x); }")
        local = info.functions["f"].locals[0]
        assert local.addressed

    def test_array_arithmetic_rejected(self):
        with pytest.raises(CompileError, match="cannot assign to an array"):
            self.check("void f() { int a[3]; int b[3]; a = b; }")
        with pytest.raises(CompileError, match="cannot increment"):
            self.check("void f() { int a[3]; a++; }")

    def test_void_variable_rejected(self):
        with pytest.raises(CompileError, match="void"):
            self.check("void f() { void x; }")


class TestIRGeneration:
    def test_constant_folding(self):
        ir_prog = compile_to_ir("int f() { return 2 * 3 + 4; }")
        text = format_ir(ir_prog)
        assert "ret 10" in text

    def test_strength_reduction_power_of_two(self):
        ir_prog = compile_to_ir("int f(int x) { return x * 8; }")
        assert "<< 3" in format_ir(ir_prog)

    def test_pointer_scaling(self):
        ir_prog = compile_to_ir("int f(int *p) { return *(p + 2); }")
        text = format_ir(ir_prog)
        assert "+ 8" in text  # int* + 2 scales by 4

    def test_char_pointer_not_scaled(self):
        ir_prog = compile_to_ir("int f(char *p) { return *(p + 2); }")
        text = format_ir(ir_prog)
        assert "+ 8" not in text and "+ 2" in text

    def test_constant_index_folds_into_offset(self):
        ir_prog = compile_to_ir("int a[10]; int f() { return a[3]; }")
        assert "+12]" in format_ir(ir_prog)

    def test_short_circuit_produces_branches(self):
        ir_prog = compile_to_ir(
            "int f(int a, int b) { if (a && b) return 1; return 0; }"
        )
        branches = [i for i in ir_prog.function("f").instrs if isinstance(i, CBranch)]
        assert len(branches) == 2

    def test_division_by_zero_constant_rejected(self):
        with pytest.raises(CompileError, match="division by zero"):
            compile_to_ir("int f() { return 1 / 0; }")

    def test_string_literals_interned(self):
        ir_prog = compile_to_ir('void f() { puts("x"); puts("x"); puts("y"); }')
        assert len(ir_prog.strings) == 2

    def test_main_gets_implicit_return_zero(self):
        ir_prog = compile_to_ir("int main() { putint(1); }")
        text = format_ir(ir_prog)
        assert "ret 0" in text

    def test_call_as_statement_discards_result(self):
        ir_prog = compile_to_ir("int g() { return 1; } void f() { g(); }")
        calls = [i for i in ir_prog.function("f").instrs if isinstance(i, Call)]
        assert calls[0].dst is None

    def test_negative_shift_of_negative_number_folds_arithmetically(self):
        ir_prog = compile_to_ir("int f() { return -8 >> 1; }")
        assert "ret -4" in format_ir(ir_prog)
