"""Tests for the source-level profiler (repro.obs.profile / .symbols).

The load-bearing invariants:

* **conservation** — the flamegraph's root-to-leaf cycle totals equal the
  run's reported total cycles exactly, on both machines (RISC I retire
  costs plus window-handler costs; VAX retire costs alone);
* **attribution** — at least 95% of retired cycles resolve to a named C
  function, not ``<unknown>``, on both machines;
* **robustness** — call-stack reconstruction survives ring-buffer
  truncation (ret without call), traps mid-call, and recursion deeper
  than the stack-key cap.
"""

from __future__ import annotations

import json

import pytest

from repro.cc.driver import CompiledProgram, compile_program
from repro.core.program import Program, Segment
from repro.farm.jobs import workload_source
from repro.obs.cli import main as obs_main
from repro.obs.events import Event, EventKind
from repro.obs.profile import (
    ANON_FRAME,
    DEEP_FRAME,
    MAX_STACK_FRAMES,
    OVERFLOW_FRAME,
    UNDERFLOW_FRAME,
    ProfileBuilder,
    profile_events,
    profile_run,
)
from repro.obs.symbols import UNKNOWN, Symbolizer
from repro.workloads import ALL_WORKLOADS, parse_workload_spec


def _compiled(name: str, target: str, **overrides) -> CompiledProgram:
    source = ALL_WORKLOADS[name].source(**overrides)
    return compile_program(source, target=target, filename=f"{name}.c")


# -- conservation and attribution (the acceptance criteria) ------------------


@pytest.mark.parametrize("target", ["risc1", "cisc"])
@pytest.mark.parametrize(
    "name,overrides",
    [("towers", {"DISKS": 9}), ("qsort", {"N": 80}), ("ackermann", {"M": 2, "N": 3})],
)
def test_flamegraph_conserves_total_cycles(target, name, overrides):
    profile, result = profile_run(_compiled(name, target, **overrides), workload=name)
    assert profile.sampled_cycles == result.cycles
    # and via the collapsed-stack export, the form flamegraph tools read
    total = 0
    for line in profile.collapsed().splitlines():
        stack, _, cycles = line.rpartition(" ")
        assert stack
        total += int(cycles)
    assert total == result.cycles


@pytest.mark.parametrize("target", ["risc1", "cisc"])
@pytest.mark.parametrize("name", ["towers", "qsort", "sed"])
def test_attribution_at_least_95_percent(target, name):
    profile, _result = profile_run(_compiled(name, target), workload=name)
    assert profile.attributed_fraction >= 0.95, profile.func_self
    assert UNKNOWN not in profile.func_cum or profile.func_cum[UNKNOWN] == 0


def test_window_handler_cycles_are_separate_frames():
    # 8 windows, towers(10) recurses to depth ~12: overflow traffic exists
    profile, result = profile_run(_compiled("towers", "risc1", DISKS=10))
    assert profile.window_cycles["overflow"] > 0
    assert profile.window_cycles["underflow"] > 0
    assert profile.func_self[OVERFLOW_FRAME] == profile.window_cycles["overflow"]
    assert profile.func_self[UNDERFLOW_FRAME] == profile.window_cycles["underflow"]
    assert profile.retired_cycles + sum(profile.window_cycles.values()) == result.cycles


def test_profile_is_deterministic():
    first, _ = profile_run(_compiled("qsort", "risc1", N=60))
    second, _ = profile_run(_compiled("qsort", "risc1", N=60))
    assert first.collapsed() == second.collapsed()
    assert first.to_dict() == second.to_dict()


def test_call_graph_edges_match_reference_counts():
    # hanoi(8) makes 2^8 - 1 = 255 productive calls, each spawning two
    # children; main calls hanoi once
    profile, _ = profile_run(_compiled("towers", "risc1", DISKS=8))
    assert profile.edges[("main", "hanoi")] == 1
    assert profile.edges[("hanoi", "hanoi")] == 2 * (2**8 - 1)
    assert profile.counters["truncated_rets"] == 0


# -- the symbolizer against a real line table --------------------------------


def test_line_table_and_symbolizer():
    compiled = _compiled("towers", "risc1")
    program = compiled.program
    assert program.source_file == "towers.c"
    assert program.line_table, "assembler produced no line table"
    symbolizer = Symbolizer(program)
    assert symbolizer.function_at(program.symbols["hanoi"]) == "hanoi"
    assert symbolizer.name_for_target(program.symbols["main"]) == "main"
    # floor semantics: an address between two table entries resolves to
    # the lower entry's function
    hanoi = program.symbols["hanoi"]
    assert symbolizer.function_at(hanoi + 4) == "hanoi"
    func, line = symbolizer.location_at(hanoi)
    assert func == "hanoi" and line > 0
    # outside the code segment nothing resolves
    assert symbolizer.function_at(0) == UNKNOWN
    assert symbolizer.function_at(0xFFFFFF0) == UNKNOWN


def test_runtime_assembly_has_function_but_no_line():
    # __mul lives in hand-written runtime assembly: named, line 0
    compiled = _compiled("qsort", "risc1", N=20)  # next_rand multiplies
    symbolizer = Symbolizer(compiled.program)
    address = compiled.program.symbols["__mul"]
    func, line = symbolizer.location_at(address)
    assert func == "__mul" and line == 0


def test_vax_line_table():
    compiled = _compiled("towers", "cisc")
    symbolizer = Symbolizer(compiled.program)
    assert symbolizer.function_at(compiled.program.symbols["hanoi"]) == "hanoi"
    assert "hanoi" in symbolizer.functions()


def test_compiled_program_blob_round_trips_line_table():
    compiled = _compiled("towers", "risc1")
    clone = CompiledProgram.from_blob(compiled.to_blob())
    assert clone.program.line_table == compiled.program.line_table
    assert clone.program.source_file == "towers.c"
    assert clone.source == compiled.source


# -- stack reconstruction edge cases ----------------------------------------


class _StubSymbolizer:
    """Maps pc // 100 to a function letter: 0->a, 1->b, ..."""

    def function_at(self, pc: int) -> str:
        return chr(ord("a") + pc // 100)

    def location_at(self, pc: int):
        return (self.function_at(pc), pc % 100)

    def name_for_target(self, target: int) -> str:
        return self.function_at(target)


def test_ret_without_call_prefix():
    """A ring buffer that evicted the opening CALLs: rets drain an empty
    stack, counting as truncated, and retires reseed the stack."""
    builder = ProfileBuilder(_StubSymbolizer())
    builder.on_ret(pc=105, depth=3)
    builder.on_ret(pc=5, depth=2)
    builder.on_retire(pc=210, cost=7)  # reseeds at function 'c'
    builder.on_call(pc=210, target=300, depth=1)
    builder.on_retire(pc=305, cost=4)
    profile = builder.finish(total_cycles=11)
    assert profile.counters["truncated_rets"] == 2
    assert profile.counters["reseeded"] == 1
    assert profile.stack_cycles[("c",)] == 7
    assert profile.stack_cycles[("c", "d")] == 4
    assert profile.sampled_cycles == 11


def test_trap_during_call_leaves_stack_intact():
    builder = ProfileBuilder(_StubSymbolizer())
    builder.on_retire(pc=0, cost=1)
    builder.on_call(pc=1, target=100, depth=1)
    builder.on_trap(pc=100, kind="ILLEGAL_INSTRUCTION")
    builder.on_retire(pc=100, cost=2)
    profile = builder.finish()
    assert profile.counters["traps"] == 1
    assert profile.stack_cycles[("a", "b")] == 2


def test_recursion_deeper_than_stack_cap():
    builder = ProfileBuilder(_StubSymbolizer())
    builder.on_retire(pc=0, cost=1)
    for _ in range(MAX_STACK_FRAMES + 50):
        builder.on_call(pc=1, target=0, depth=0)
        builder.on_retire(pc=105, cost=1)
    profile = builder.finish()
    deep_keys = [key for key in profile.stack_cycles if key[-1] == DEEP_FRAME]
    assert deep_keys
    assert all(len(key) <= MAX_STACK_FRAMES for key in profile.stack_cycles)
    # every cycle is still accounted for
    assert profile.sampled_cycles == 1 + MAX_STACK_FRAMES + 50


def test_anonymous_call_resolves_at_first_callee_retire():
    builder = ProfileBuilder(_StubSymbolizer())
    builder.on_retire(pc=5, cost=1)  # in 'a'
    builder.on_call(pc=6, target=0, depth=1)  # target unknown
    builder.on_retire(pc=7, cost=1)  # delay slot, still in 'a': charged to 'a'
    builder.on_retire(pc=110, cost=3)  # now in 'b': resolves
    profile = builder.finish()
    assert profile.edges[("a", "b")] == 1
    assert profile.stack_cycles[("a",)] == 2
    assert profile.stack_cycles[("a", "b")] == 3
    assert ANON_FRAME not in profile.func_cum


def test_anonymous_call_that_returns_unresolved():
    builder = ProfileBuilder(_StubSymbolizer())
    builder.on_retire(pc=5, cost=1)
    builder.on_call(pc=6, target=0, depth=1)
    builder.on_ret(pc=7, depth=0)
    profile = builder.finish()
    assert profile.edges[("a", ANON_FRAME)] == 1


def test_profile_events_from_stored_trace():
    events = [
        Event(EventKind.RETIRE, 0.0, pc=0x1000, data={"cycles": 2}),
        Event(EventKind.CALL, 1.0, pc=0x1004, data={"depth": 1, "target": 0x1100}),
        Event(EventKind.RETIRE, 2.0, pc=0x1100, data={"cycles": 3}),
        Event(EventKind.WINDOW_OVERFLOW, 3.0, data={"windows": 1, "depth": 9, "cost": 40}),
        Event(EventKind.RET, 4.0, pc=0x1104, data={"depth": 0}),
    ]
    program = Program(
        segments=(Segment(0x1000, bytes(0x200), name="code"),),
        entry=0x1000,
        symbols={"main": 0x1000, "leaf": 0x1100},
        line_table={0x1000: ("main", 1), 0x1100: ("leaf", 5)},
    )
    profile = profile_events(events, program, machine="risc1")
    assert profile.stack_cycles[("main",)] == 2
    assert profile.stack_cycles[("main", "leaf")] == 3
    assert profile.stack_cycles[("main", "leaf", OVERFLOW_FRAME)] == 40
    assert profile.edges[("main", "leaf")] == 1
    assert profile.sampled_cycles == 45


# -- reports -----------------------------------------------------------------


def test_report_annotate_callgraph_render():
    profile, result = profile_run(_compiled("towers", "risc1", DISKS=8))
    report = profile.report(top=5)
    assert "hanoi" in report and str(result.cycles) in report
    annotate = profile.annotate()
    assert "hanoi(n - 1, from, via, to);" in annotate
    assert "%" in annotate
    graph = profile.callgraph_text()
    assert "hanoi -> hanoi" in graph
    payload = json.loads(json.dumps(profile.to_dict()))
    assert payload["attributed_fraction"] >= 0.95


# -- CLI surfaces ------------------------------------------------------------


def test_obs_profile_cli(tmp_path, capsys):
    assert obs_main(["profile", "report", "--workload", "towers:7"]) == 0
    assert "hanoi" in capsys.readouterr().out
    out = tmp_path / "flame.folded"
    assert (
        obs_main(["profile", "flame", "--workload", "towers:7", "-o", str(out)]) == 0
    )
    text = out.read_text()
    assert text and all(line.rpartition(" ")[2].isdigit() for line in text.splitlines())
    assert obs_main(["profile", "annotate", "--workload", "towers:7", "--target", "cisc"]) == 0
    assert "PARAM_DISKS" in capsys.readouterr().out
    assert obs_main(["profile", "report", "--workload", "nope:3"]) == 2


def test_obs_cli_rejects_bad_traces(tmp_path, capsys):
    missing = tmp_path / "missing.jsonl"
    assert obs_main(["view", str(missing)]) == 1
    assert "no such trace file" in capsys.readouterr().err

    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert obs_main(["summarize", str(empty)]) == 1
    assert "empty trace" in capsys.readouterr().err

    prose = tmp_path / "prose.jsonl"
    prose.write_text("this is not a trace\nnor is this\n")
    assert obs_main(["convert", str(prose), str(tmp_path / "out.json")]) == 1
    assert "not a JSONL trace" in capsys.readouterr().err

    binary = tmp_path / "binary.jsonl"
    binary.write_bytes(bytes(range(256)))
    assert obs_main(["view", str(binary)]) == 1
    assert "binary" in capsys.readouterr().err

    # a truncated final line (interrupted write) warns but still loads
    good = Event(EventKind.RETIRE, 0.0, pc=4, data={"cycles": 1})
    truncated = tmp_path / "truncated.jsonl"
    truncated.write_text(json.dumps(good.to_dict()) + "\n" + '{"kind": "ret", "ts"')
    assert obs_main(["view", str(truncated)]) == 0
    assert "skipped 1 malformed line" in capsys.readouterr().err


def test_parse_workload_spec():
    assert parse_workload_spec("towers") == ("towers", {})
    assert parse_workload_spec("towers:12") == ("towers", {"DISKS": 12})
    assert parse_workload_spec("bit_matrix_k:N=8,REPS=2") == (
        "bit_matrix_k",
        {"N": 8, "REPS": 2},
    )
    with pytest.raises(ValueError, match="unknown workload"):
        parse_workload_spec("bogus:1")
    with pytest.raises(ValueError, match="has parameters"):
        parse_workload_spec("bit_matrix_k:8")  # two params, bare value ambiguous
    with pytest.raises(ValueError, match="no parameter"):
        parse_workload_spec("towers:SIZE=3")
    with pytest.raises(ValueError, match="integer"):
        parse_workload_spec("towers:DISKS=big")


def test_parse_workload_spec_rejects_empty_parts_and_duplicates():
    # stray/trailing commas used to fall through to the bare-int path
    # with a confusing message (or, for multi-param workloads, the
    # unrelated "has parameters" error)
    with pytest.raises(ValueError, match="empty argument part"):
        parse_workload_spec("towers:10,,")
    with pytest.raises(ValueError, match="empty argument part"):
        parse_workload_spec("towers:,10")
    with pytest.raises(ValueError, match="empty argument part"):
        parse_workload_spec("bit_matrix_k:N=8,,REPS=2")
    # duplicate keys used to silently last-win
    with pytest.raises(ValueError, match="duplicate parameter 'N'"):
        parse_workload_spec("bit_matrix_k:N=8,N=9")
    with pytest.raises(ValueError, match="duplicate parameter 'DISKS'"):
        parse_workload_spec("towers:3,4")  # two bare values name the same param
    # equivalent duplicate values are still duplicates (explicit > lenient)
    with pytest.raises(ValueError, match="duplicate parameter"):
        parse_workload_spec("bit_matrix_k:N=8,N=8")


def test_experiments_cli_validates_trace_workload(tmp_path):
    from repro.experiments.cli import main as experiments_main

    with pytest.raises(SystemExit) as excinfo:
        experiments_main(
            ["e3", "--trace", str(tmp_path / "t.json"), "--trace-workload", "bogus:1"]
        )
    assert excinfo.value.code == 2


def test_experiments_cli_profile_writes_reports(tmp_path, capsys):
    from repro.experiments.cli import main as experiments_main

    out = tmp_path / "profiles"
    assert (
        experiments_main(
            ["e3", "--profile", str(out), "--trace-workload", "towers:7"]
        )
        == 0
    )
    for target in ("risc1", "cisc"):
        for suffix in ("folded", "report", "annotate", "callgraph"):
            path = out / f"towers_7.{target}.{suffix}"
            assert path.is_file() and path.read_text().strip(), path
