"""Tests for the time-travel debugger: recording, seek exactness, the
debug session, the command language, and the CLI's structured errors.

The load-bearing property is *exact time travel*: for a recorded run,
``seek(k)`` followed by step-to-end must reproduce the architectural
state and ``RunResult`` of the unrecorded straight-line run bit-for-bit,
for arbitrary ``k``, on both machines.  Everything else (breakpoints,
reverse execution, watchpoints, transcripts) is built on that property.
"""

import functools
import io
import json

import pytest

from repro.baselines.vax.cpu import VaxCPU
from repro.cc.driver import compile_program
from repro.core.cpu import CPU
from repro.dbg.cli import main as dbg_main
from repro.dbg.cli import run_commands
from repro.dbg.commands import CommandError, CommandInterpreter
from repro.dbg.session import DebugSession, SpecError, parse_breakpoint
from repro.dbg.windows import render_regs, render_windows
from repro.obs.record import Recording, advance, record_run
from repro.obs.symbols import Symbolizer
from repro.workloads import ALL_WORKLOADS

#: small scales keep each recorded run in the hundreds-to-thousands of
#: steps, so the full matrix stays cheap
SCALES = {
    "towers": {"DISKS": 5},
    "qsort": {"N": 40},
    "ackermann": {"M": 2, "N": 3},
}
MACHINES = {"risc1": CPU, "cisc": VaxCPU}


@functools.lru_cache(maxsize=None)
def small_program(name, target):
    source = ALL_WORKLOADS[name].source(**SCALES[name])
    return compile_program(source, target=target).program


@functools.lru_cache(maxsize=None)
def small_recording(name, target, interval=100):
    machine = MACHINES[target]()
    return record_run(
        machine, small_program(name, target), interval=interval, workload=name
    )


@functools.lru_cache(maxsize=None)
def straight_line(name, target):
    machine = MACHINES[target]()
    machine.load(small_program(name, target))
    result = machine.run(record=False)
    return result, machine.snapshot()


def fresh_session(name="towers", target="risc1", **kwargs):
    return DebugSession(small_recording(name, target, **kwargs))


# -- recording and time-travel exactness --------------------------------------


class TestRecording:
    @pytest.mark.parametrize("target", sorted(MACHINES))
    @pytest.mark.parametrize("name", sorted(SCALES))
    def test_recorded_result_matches_straight_line(self, name, target):
        recording = small_recording(name, target)
        result, _ = straight_line(name, target)
        assert recording.outcome["outcome"] == "halt"
        assert recording.result.to_dict() == result.to_dict()

    @pytest.mark.parametrize("target", sorted(MACHINES))
    @pytest.mark.parametrize("name", sorted(SCALES))
    def test_seek_then_run_to_end_is_exact(self, name, target):
        """The acceptance criterion: arbitrary k, both machines, 3 workloads."""
        recording = small_recording(name, target)
        result, final_snap = straight_line(name, target)
        steps = recording.steps
        interval = recording.meta["interval"]
        ks = sorted(
            {0, 1, 7, interval - 1, interval, interval + 1, steps // 2, steps - 1}
        )
        for k in ks:
            machine = recording.spawn(k)
            assert machine.stats.instructions == k
            replayed = machine.run(record=False)
            assert replayed.to_dict() == result.to_dict(), f"seek({k}) diverged"
            assert machine.snapshot() == final_snap, f"seek({k}) final state diverged"

    @pytest.mark.parametrize("target", sorted(MACHINES))
    def test_resume_from_every_checkpoint(self, target):
        """Property: each stored checkpoint replays to the identical result."""
        recording = small_recording("towers", target)
        result, final_snap = straight_line("towers", target)
        assert len(recording.checkpoints) > 2
        for checkpoint in recording.checkpoints:
            machine = recording.make_machine()
            machine.restore(checkpoint["state"])
            assert machine.stats.instructions == checkpoint["step"]
            replayed = machine.run(record=False)
            assert replayed.to_dict() == result.to_dict()
            assert machine.snapshot() == final_snap

    def test_seek_to_end_lands_on_halted_final_state(self):
        recording = small_recording("towers", "risc1")
        _, final_snap = straight_line("towers", "risc1")
        machine = recording.spawn(recording.steps)
        assert machine.halted
        assert machine.snapshot() == final_snap

    def test_checkpoints_at_interval_multiples(self):
        recording = small_recording("towers", "risc1")
        steps = [cp["step"] for cp in recording.checkpoints]
        assert steps[0] == 0
        assert steps == sorted(steps)
        assert all(step % 100 == 0 for step in steps)

    def test_save_load_roundtrip(self, tmp_path):
        recording = small_recording("towers", "risc1")
        path = recording.save(root=tmp_path)
        loaded = Recording.load(path)
        assert loaded.meta == recording.meta
        assert loaded.checkpoints == recording.checkpoints
        assert loaded.outcome == recording.outcome
        assert loaded.program == recording.program
        result, _ = straight_line("towers", "risc1")
        replayed = loaded.spawn(137).run(record=False)
        assert replayed.to_dict() == result.to_dict()

    def test_find_by_prefix_and_ambiguity(self, tmp_path):
        recording = small_recording("towers", "risc1")
        recording.save(root=tmp_path)
        found = Recording.find(recording.run_id[:6], root=tmp_path)
        assert found.run_id == recording.run_id
        with pytest.raises(FileNotFoundError):
            Recording.find("nope", root=tmp_path)

    def test_recording_file_is_json_lines(self, tmp_path):
        path = small_recording("towers", "risc1").save(root=tmp_path)
        kinds = [json.loads(line)["kind"] for line in path.read_text().splitlines()]
        assert kinds[0] == "header"
        assert kinds[1] == "program"
        assert kinds[-1] == "outcome"
        assert kinds.count("checkpoint") == len(
            small_recording("towers", "risc1").checkpoints
        )

    def test_step_limit_outcome_is_recorded_not_raised(self):
        machine = CPU()
        recording = record_run(
            machine, small_program("towers", "risc1"), interval=100, max_steps=250
        )
        assert recording.outcome["outcome"] == "limit"
        assert recording.steps == 250
        # the recorded span is still fully seekable
        assert recording.spawn(250).stats.instructions == 250

    def test_advance_refuses_backwards(self):
        recording = small_recording("towers", "risc1")
        machine = recording.spawn(50)
        with pytest.raises(ValueError):
            advance(machine, 10)

    def test_recording_off_leaves_no_ledger_record(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        recording = small_recording("towers", "risc1")
        assert recording.run_id.startswith("dbg-")


# -- the debug session --------------------------------------------------------


class TestDebugSession:
    def test_forward_and_reverse_step(self):
        session = fresh_session()
        session.step_forward(10)
        assert session.step_index == 10
        pc_at_10 = session.pc
        session.step_back(3)
        assert session.step_index == 7
        session.step_forward(3)
        assert session.step_index == 10
        assert session.pc == pc_at_10

    def test_seek_is_exact_and_clamped(self):
        session = fresh_session()
        assert session.seek(205) == 205
        assert session.seek(12) == 12
        assert session.seek(-5) == 0
        assert session.seek(10**9) == session.steps

    def test_breakpoint_stops_and_resumes(self):
        session = fresh_session()
        bp = session.add_breakpoint("hanoi")
        reason = session.continue_forward()
        assert reason.kind == "breakpoint"
        assert session.pc in bp.pcs
        first_hit = session.step_index
        reason = session.continue_forward()
        assert reason.kind == "breakpoint"
        assert session.step_index > first_hit

    def test_reverse_continue_finds_previous_hit(self):
        session = fresh_session()
        session.add_breakpoint("hanoi")
        session.continue_forward()
        first = session.step_index
        session.continue_forward()
        second = session.step_index
        reason = session.reverse_continue()
        assert reason.kind == "breakpoint"
        assert session.step_index == first < second
        reason = session.reverse_continue()
        assert reason.kind == "begin"
        assert session.step_index == 0

    def test_reverse_continue_across_checkpoint_boundary(self):
        session = fresh_session(interval=50)
        session.add_breakpoint("hanoi")
        hits = []
        while True:
            reason = session.continue_forward()
            if reason.kind != "breakpoint":
                break
            hits.append(session.step_index)
        assert hits[-1] > 50  # hits on both sides of a checkpoint
        # the final continue ended past the last hit, so reverse-continue
        # walks the whole hit sequence backward, exactly
        for expected in reversed(hits):
            reason = session.reverse_continue()
            assert (reason.kind, session.step_index) == ("breakpoint", expected)
        assert session.reverse_continue().kind == "begin"

    def test_watchpoint_fires_on_spill_store(self):
        # towers at 8 windows overflows once; the spill writes the
        # register-save stack at the top of memory
        session = fresh_session()
        top = session.machine.memory.size
        session.add_watchpoint(f"{top - 64:#x}/64")
        reason = session.continue_forward()
        assert reason.kind == "watchpoint"
        stop = session.step_index
        assert 0 < stop < session.steps

    def test_last_write_lands_after_the_write(self):
        session = fresh_session()
        top = session.machine.memory.size
        spec = f"{top - 64:#x}/64"
        session.add_watchpoint(spec)
        session.continue_forward()
        hit = session.step_index
        session.seek(session.steps)
        reason = session.last_write(spec)
        assert reason.kind == "watchpoint"
        assert session.step_index >= hit

    def test_last_write_no_hit_reports_begin(self):
        session = fresh_session()
        session.seek(20)
        reason = session.last_write("0x9000/4")
        assert reason.kind == "begin"
        assert session.step_index == 20  # position unchanged

    def test_halt_reason_at_end(self):
        session = fresh_session()
        session.seek(session.steps - 1)
        reason = session.step_forward(5)
        assert reason.kind == "halt"
        assert session.machine.halted

    def test_bad_specs_raise_spec_error(self):
        session = fresh_session()
        for spec in ("", "nosuchsym", ":99999", "line:zero"):
            with pytest.raises(SpecError):
                session.add_breakpoint(spec)
        with pytest.raises(SpecError):
            session.add_watchpoint("what/nope")

    def test_symbol_breakpoint_on_cisc_lands_past_entry_mask(self):
        session = fresh_session("qsort", "cisc")
        session.add_breakpoint("main")
        reason = session.continue_forward()
        assert reason.kind == "breakpoint"
        assert session.symbolizer.function_at(session.pc) == "main"

    def test_parse_breakpoint_pc_and_line(self):
        program = small_program("towers", "risc1")
        symbolizer = Symbolizer(program)
        kind, pcs = parse_breakpoint("0x1014", program, symbolizer)
        assert (kind, pcs) == ("pc", frozenset([0x1014]))
        kind, pcs = parse_breakpoint(":8", program, symbolizer)
        assert kind == "line" and pcs

    def test_delete_breakpoint(self):
        session = fresh_session()
        bp = session.add_breakpoint("hanoi")
        assert session.delete(bp.number)
        assert not session.delete(bp.number)
        assert session.continue_forward().kind == "halt"

    def test_session_does_not_perturb_replay(self):
        """Inspection + motion must leave time travel exact."""
        session = fresh_session()
        session.step_forward(25)
        session.disassemble_at(session.pc, 4)
        render_windows(session.machine)
        session.seek(300)
        session.step_back(7)
        result, final_snap = straight_line("towers", "risc1")
        session.seek(session.steps)
        assert session.machine.snapshot() == final_snap


# -- rendering ----------------------------------------------------------------


class TestRendering:
    def test_windows_pane_tracks_cwp_and_residency(self):
        session = fresh_session()
        session.add_breakpoint("hanoi")
        session.continue_forward()
        session.continue_forward()
        text = "\n".join(render_windows(session.machine))
        regs = session.machine.regs
        assert f"CWP=w{regs.cwp}" in text
        assert f"resident={regs.resident}/{regs.max_resident}" in text
        assert "-> w" in text
        assert "caller LOW == callee HIGH" in text

    def test_windows_pane_shows_pressure_counters(self):
        session = fresh_session()
        session.seek(session.steps)
        text = "\n".join(render_windows(session.machine))
        assert "overflows=1" in text
        assert "underflows=1" in text

    def test_vax_windows_pane_degrades_gracefully(self):
        session = fresh_session("qsort", "cisc")
        text = "\n".join(render_windows(session.machine))
        assert "no register windows" in text
        assert "flags" in text

    def test_regs_rendering_both_machines(self):
        for name, target in (("towers", "risc1"), ("qsort", "cisc")):
            lines = render_regs(fresh_session(name, target).machine)
            assert any("r0" in line for line in lines)


# -- the command language -----------------------------------------------------


SMOKE_SCRIPT = [
    "info",
    "break hanoi",
    "continue",
    "windows",
    "rstep 2",
    "seek 100",
    "where",
    "regs",
    "disasm . 4",
    "mem 0x1000 32",
    "breaks",
    "delete 1",
    "continue",
    "output",
    "quit",
]


class TestCommands:
    def test_transcript_is_deterministic(self):
        transcripts = []
        for _ in range(2):
            out = io.StringIO()
            run_commands(fresh_session(), SMOKE_SCRIPT, out)
            transcripts.append(out.getvalue())
        assert transcripts[0] == transcripts[1]
        assert "stopped (breakpoint" in transcripts[0]
        assert "CWP=" in transcripts[0]

    def test_unknown_command_is_reported_not_fatal(self):
        out = io.StringIO()
        run_commands(fresh_session(), ["bogus", "info"], out)
        text = out.getvalue()
        assert "error: unknown command 'bogus'" in text
        assert "recording" in text  # info still ran

    def test_command_errors(self):
        interp = CommandInterpreter(fresh_session())
        for line in ("seek", "step 0", "mem", "delete x", "break", "watch a b"):
            with pytest.raises(CommandError):
                interp.execute(line)

    def test_seek_end_and_output(self):
        interp = CommandInterpreter(fresh_session())
        interp.execute("seek end")
        lines = interp.execute("output")
        assert any("31" in line for line in lines)  # towers prints 2^5 - 1

    def test_comments_and_blank_lines_skipped(self):
        out = io.StringIO()
        run_commands(fresh_session(), ["# comment", "", "info"], out)
        assert out.getvalue().count("(dbg)") == 1


# -- the CLI ------------------------------------------------------------------


class TestCli:
    def test_run_with_script(self, tmp_path, capsys):
        script = tmp_path / "s.dbg"
        script.write_text("info\nbreak hanoi\ncontinue\nwindows\nquit\n")
        code = dbg_main(
            ["run", "towers:5", "--interval", "200", "--script", str(script)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "stopped (breakpoint" in out
        assert "CWP=" in out

    def test_record_replay_list(self, tmp_path, capsys):
        root = str(tmp_path)
        assert dbg_main(["--root", root, "record", "towers:5"]) == 0
        run_id = capsys.readouterr().out.split()[0]
        assert dbg_main(["--root", root, "list"]) == 0
        assert run_id in capsys.readouterr().out
        script = tmp_path / "s.dbg"
        script.write_text("seek 100\nwhere\nquit\n")
        code = dbg_main(["--root", root, "replay", run_id, "--script", str(script)])
        assert code == 0
        assert "step 100/" in capsys.readouterr().out

    def test_unknown_workload_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            dbg_main(["run", "nosuch"])
        assert exc.value.code == 2

    def test_bad_breakpoint_spec_exits_2(self, tmp_path):
        script = tmp_path / "s.dbg"
        script.write_text("quit\n")
        with pytest.raises(SystemExit) as exc:
            dbg_main(
                [
                    "run",
                    "towers:5",
                    "--break",
                    "nosuchsym",
                    "--script",
                    str(script),
                ]
            )
        assert exc.value.code == 2

    def test_bad_interval_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            dbg_main(["run", "towers:5", "--interval", "0"])
        assert exc.value.code == 2

    def test_missing_recording_exits_1(self, tmp_path, capsys):
        assert dbg_main(["--root", str(tmp_path), "replay", "deadbeef"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unreadable_script_exits_1(self, capsys):
        code = dbg_main(
            ["run", "towers:5", "--interval", "500", "--script", "/nonexistent.dbg"]
        )
        assert code == 1
        assert "cannot read script" in capsys.readouterr().err


class TestRiscRunDbg:
    PROGRAM = """\
main:
    add r2, r0, #0
loop:
    add r2, r2, #1
    cmp r2, #10
    jne loop
    nop
    puti r2
    halt r2
"""

    def _write(self, tmp_path):
        source = tmp_path / "prog.s"
        source.write_text(self.PROGRAM)
        return str(source)

    def test_dbg_script_session(self, tmp_path, capsys):
        from repro.core.cli import main as run_main

        script = tmp_path / "s.dbg"
        script.write_text("break loop\ncontinue\ncontinue\nrstep\nquit\n")
        code = run_main([self._write(tmp_path), "--dbg", "--dbg-script", str(script)])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("stopped (breakpoint") == 2

    def test_step_limit_positions_at_end(self, tmp_path, capsys):
        from repro.core.cli import main as run_main

        script = tmp_path / "s.dbg"
        script.write_text("where\nquit\n")
        code = run_main(
            [
                self._write(tmp_path),
                "--dbg",
                "--max-instructions",
                "20",
                "--dbg-script",
                str(script),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "ended in limit" in captured.err
        assert "step 20/20" in captured.out

    def test_bad_breakpoint_exits_2(self, tmp_path):
        from repro.core.cli import main as run_main

        with pytest.raises(SystemExit) as exc:
            run_main([self._write(tmp_path), "--dbg", "--break", "bogus"])
        assert exc.value.code == 2

    def test_break_without_dbg_exits_2(self, tmp_path):
        from repro.core.cli import main as run_main

        with pytest.raises(SystemExit) as exc:
            run_main([self._write(tmp_path), "--break", "loop"])
        assert exc.value.code == 2
