"""Tests for external interrupt delivery through the trap window."""

import pytest

from repro.asm import assemble
from repro.core import CPU

PROGRAM = """
; count to 200 in a loop; an interrupt handler bumps a memory cell
main:
    add r2, r0, #0
loop:
    add r2, r2, #1
    cmp r2, #200
    jne loop
    nop
    set r3, cell
    ldl r4, 0(r3)
    puti r2
    putc r0
    puti r4
    halt r2

handler:
    set r16, cell
    ldl r17, 0(r16)
    add r17, r17, #1
    stl r17, 0(r16)
    retint r26, #0        ; resume the interrupted instruction
    nop

.data
cell: .word 0
"""


def run_with_interrupts(fire_at: list[int], windows: int = 8):
    cpu = CPU(num_windows=windows)
    program = assemble(PROGRAM)
    cpu.load(program)
    handler = program.symbol("handler")
    count = [0]

    def hook(pc, inst):
        count[0] += 1
        if count[0] in fire_at:
            cpu.raise_interrupt(handler)

    cpu.on_execute = hook
    result = cpu.run(max_instructions=500_000)
    return cpu, result


class TestInterruptDelivery:
    def test_single_interrupt(self):
        cpu, result = run_with_interrupts([50])
        counted, bumped = result.output.split("\0")
        assert counted == "200"  # the loop still finished correctly
        assert bumped == "1"  # and the handler really ran
        assert cpu.interrupts_taken == 1

    def test_many_interrupts(self):
        cpu, result = run_with_interrupts([20, 80, 140, 300])
        counted, bumped = result.output.split("\0")
        assert counted == "200"
        assert bumped == "4"
        assert cpu.interrupts_taken == 4

    def test_interrupt_survives_window_pressure(self):
        cpu, result = run_with_interrupts([30, 60], windows=2)
        counted, bumped = result.output.split("\0")
        assert (counted, bumped) == ("200", "2")

    def test_no_delivery_while_disabled(self):
        """An interrupt raised inside the handler waits for RETINT."""
        cpu = CPU()
        program = assemble(PROGRAM)
        cpu.load(program)
        handler = program.symbol("handler")
        count = [0]
        fired_inside = [False]
        delivered_pcs = []
        original = cpu._deliver_interrupt

        def tracking_deliver():
            delivered_pcs.append(cpu.pc)
            original()

        cpu._deliver_interrupt = tracking_deliver

        def hook(pc, inst):
            count[0] += 1
            if count[0] == 40:
                cpu.raise_interrupt(handler)
            # fire exactly one more request from inside the handler, while
            # interrupts are disabled
            if handler <= pc < handler + 8 and not fired_inside[0]:
                fired_inside[0] = True
                cpu.raise_interrupt(handler)

        cpu.on_execute = hook
        result = cpu.run(max_instructions=500_000)
        counted, bumped = result.output.split("\0")
        assert counted == "200"
        assert bumped == "2"
        assert cpu.interrupts_taken == 2
        # the second delivery must have waited: it never landed at a
        # handler address
        assert all(not handler <= pc < handler + 40 for pc in delivered_pcs)

    def test_state_fully_restored(self):
        """Register state across an interrupt must be bit-identical."""
        _, clean = run_with_interrupts([])
        _, interrupted = run_with_interrupts([25, 75])
        assert clean.exit_code == interrupted.exit_code == 200

    def test_not_delivered_in_delay_shadow(self):
        """Delivery never lands between a taken jump and its slot."""
        cpu = CPU()
        program = assemble(PROGRAM)
        cpu.load(program)
        handler = program.symbol("handler")
        fires = [0]
        delivered_in_shadow = []
        original = cpu._deliver_interrupt

        def tracking_deliver():
            if cpu.npc != cpu.pc + 4:
                delivered_in_shadow.append(cpu.pc)
            original()

        cpu._deliver_interrupt = tracking_deliver

        def hook(pc, inst):
            # raise exactly when the loop's back edge was just taken (the
            # next instruction is the delayed slot: a shadow boundary)
            if cpu.npc != cpu.pc + 4 and fires[0] < 20:
                fires[0] += 1
                cpu.raise_interrupt(handler)

        cpu.on_execute = hook
        result = cpu.run(max_instructions=500_000)
        counted, bumped = result.output.split("\0")
        assert counted == "200"
        assert cpu.interrupts_taken > 0
        assert int(bumped) == cpu.interrupts_taken
        assert delivered_in_shadow == []
