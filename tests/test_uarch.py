"""Tests for the 5-stage pipeline timing model (:mod:`repro.uarch`).

The model is pure accounting over the retired-instruction stream, so
most scenarios here are handcrafted assembly with hand-computed stall
counts; engine-parity of the same accounting lives in
``tests/test_engine_diff.py``.
"""

import pytest

from repro.asm.assembler import assemble
from repro.cc.driver import compile_program, run_compiled
from repro.core.cpu import CPU
from repro.uarch import (
    DEFAULT_UARCH,
    PREDICTORS,
    PipelineStats,
    UarchConfig,
    parse_uarch_config,
    resolve_uarch,
    run_with_pipeline,
    standard_sweep,
)
from repro.uarch.predictors import (
    AlwaysNotTaken,
    BackwardTaken,
    TwoBitBHT,
    make_predictor,
)
from repro.workloads import ALL_WORKLOADS


def risc_pipeline(source, config=None, **cpu_kwargs):
    """Assemble, run once, return ``(RunResult, [PipelineStats])``."""
    cpu = CPU(**cpu_kwargs)
    cpu.load(assemble(source))
    configs = config or UarchConfig()
    return run_with_pipeline(cpu, configs)


# -- configuration ----------------------------------------------------------


class TestConfig:
    def test_defaults(self):
        config = UarchConfig()
        assert config.label == "bht2/full"
        assert config == DEFAULT_UARCH

    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("", UarchConfig()),
            ("base", UarchConfig()),
            ("bht2/full", UarchConfig()),
            ("backward", UarchConfig(predictor="backward")),
            ("none", UarchConfig(forwarding="none")),
            ("pred=not_taken,fwd=ex", UarchConfig(predictor="not_taken", forwarding="ex")),
            ("bht=64,mispredict=3", UarchConfig(bht_entries=64, mispredict_penalty=3)),
            ("mem=1,depth=4", UarchConfig(mem_port_cycles=1, depth=4)),
        ],
    )
    def test_parse(self, spec, expected):
        assert parse_uarch_config(spec) == expected

    @pytest.mark.parametrize(
        "spec",
        ["bogus", "pred=bogus", "fwd=sideways", "bht=7", "bht=x", "depth=2", "frob=1"],
    )
    def test_parse_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_uarch_config(spec)

    def test_spec_round_trip(self):
        config = UarchConfig(predictor="backward", forwarding="ex", bht_entries=64)
        assert parse_uarch_config(config.spec()) == config

    def test_dict_round_trip(self):
        config = UarchConfig(forwarding="none", mispredict_penalty=4)
        assert UarchConfig.from_dict(config.to_dict()) == config

    def test_resolve(self):
        assert resolve_uarch(None) is None
        assert resolve_uarch(False) is None
        assert resolve_uarch(True) == DEFAULT_UARCH
        assert resolve_uarch("backward") == UarchConfig(predictor="backward")
        config = UarchConfig(forwarding="ex")
        assert resolve_uarch(config) is config
        with pytest.raises(TypeError):
            resolve_uarch(42)

    def test_standard_sweep_isolates_axes(self):
        sweep = standard_sweep()
        assert len(sweep) == 5
        assert [c.predictor for c in sweep[:3]] == list(PREDICTORS)
        assert all(c.forwarding == "full" for c in sweep[:3])
        assert sorted(c.forwarding for c in sweep[3:]) == ["ex", "none"]
        assert all(c.predictor == "bht2" for c in sweep[3:])


# -- predictors -------------------------------------------------------------


class TestPredictors:
    def test_make_predictor_dispatch(self):
        assert isinstance(make_predictor(UarchConfig(predictor="not_taken")), AlwaysNotTaken)
        assert isinstance(make_predictor(UarchConfig(predictor="backward")), BackwardTaken)
        assert isinstance(make_predictor(UarchConfig(predictor="bht2")), TwoBitBHT)

    def test_backward_taken_rule(self):
        predictor = BackwardTaken()
        assert predictor.predict(0x100, 0x80) is True  # loop-closing
        assert predictor.predict(0x100, 0x180) is False  # forward
        assert predictor.predict(0x100, None) is False  # unknown target

    def test_bht_warms_up_and_saturates(self):
        predictor = TwoBitBHT(entries=16)
        pc = 0x40
        assert predictor.predict(pc, None) is False  # init: weakly not-taken
        predictor.update(pc, True)
        assert predictor.predict(pc, None) is True  # counter 2
        for _ in range(10):
            predictor.update(pc, True)  # saturates at 3, not beyond
        predictor.update(pc, False)
        assert predictor.predict(pc, None) is True  # hysteresis survives one
        predictor.update(pc, False)
        assert predictor.predict(pc, None) is False
        for _ in range(10):
            predictor.update(pc, False)  # saturates at 0
        predictor.update(pc, True)
        assert predictor.predict(pc, None) is False

    def test_bht_indexes_by_word_address(self):
        predictor = TwoBitBHT(entries=4)
        for _ in range(2):
            predictor.update(0x1000, True)
        # 0x1000 and 0x1010 collide in a 4-entry table ((pc >> 2) & 3)
        assert predictor.predict(0x1010, None) is True
        assert predictor.predict(0x1004, None) is False


# -- hazard accounting ------------------------------------------------------

#: Two isolated RAW pairs: an ALU->ALU dependency and a load->use
#: dependency (plus the dependent pairs hidden in the set/halt pseudo
#: expansions); 11 dynamic instructions, no control transfers.
HAZARD_PROGRAM = """
main:
    add r5, r0, #1
    add r6, r5, #1
    set r2, cell
    nop
    nop
    ldl r3, 0(r2)
    add r4, r3, #1
    halt r0
.data
cell: .word 7
"""


class TestHazards:
    @pytest.mark.parametrize(
        "forwarding, raw, load_use, cycles",
        [
            # full bypass: the 2-cycle memory port already covers the
            # MEM->EX latency, so even load->use runs bubble-free
            ("full", 0, 0, 17),
            # EX->EX only: loads wait for WB; one bubble per load-use pair
            ("ex", 0, 1, 18),
            # no bypass: 2 bubbles per dependent ALU pair (4 pairs: the
            # explicit one, set's ldhi+add, halt's ldhi+add and add->stl)
            ("none", 8, 1, 26),
        ],
    )
    def test_exact_stall_counts(self, forwarding, raw, load_use, cycles):
        _, (stats,) = risc_pipeline(HAZARD_PROGRAM, UarchConfig(forwarding=forwarding))
        assert stats.instructions == 11
        assert stats.raw_stalls == raw
        assert stats.load_use_stalls == load_use
        assert stats.cycles == cycles
        assert stats.control_stalls == 0
        assert stats.structural_stalls == 2  # ldl + halt's stl, 2 cycles each
        assert stats.delay_slots == 0

    def test_forwarding_ordering(self):
        source = ALL_WORKLOADS["towers"].source(DISKS=6)
        program = compile_program(source, target="risc1")
        by = {}
        for forwarding in ("none", "ex", "full"):
            result = run_compiled(program, uarch=UarchConfig(forwarding=forwarding))
            by[forwarding] = result.pipeline.cycles
        assert by["none"] >= by["ex"] >= by["full"]

    def test_windows_drain_matches_architectural_handler(self):
        source = ALL_WORKLOADS["towers"].source(DISKS=6)
        program = compile_program(source, target="risc1")
        cpu = CPU(num_windows=2)
        cpu.load(program.program)
        result, (stats,) = run_with_pipeline(cpu, UarchConfig())
        assert result.stats.overflow_cycles > 0
        assert stats.window_stalls == result.stats.overflow_cycles

    def test_physical_aliasing_across_windows(self):
        """A caller's outgoing register is the callee's incoming one: the
        hazard must follow the physical register through the rotation."""
        source = """
        main:
            call child
            add r10, r0, #41    ; slot: set the outgoing argument
            halt r10
        child:
            add r26, r26, #1
            ret
            nop
        """
        result, (none, full) = risc_pipeline(
            source, [UarchConfig(forwarding="none"), UarchConfig()]
        )
        assert result.exit_code == 42  # callee incremented the caller's r10
        # callee's `add r26, r26, #1` reads what the delay slot just wrote
        # to r10 — distinct visible names, same physical register, so the
        # no-bypass pipe must stall on it while full bypassing does not
        assert none.raw_stalls > full.raw_stalls


# -- branches and delay slots -----------------------------------------------

LOOP_PROGRAM = """
main:
    add r2, r0, #0
loop:
    add r2, r2, #1
    cmp r2, #100
    jne loop
    nop
    halt r0
"""


class TestBranches:
    def test_loop_outcome_inference(self):
        _, (stats,) = risc_pipeline(LOOP_PROGRAM, UarchConfig(predictor="bht2"))
        assert stats.branches == 100
        assert stats.branches_taken == 99
        assert stats.branches_unresolved == 0
        # the BHT warms up in two iterations, then only the exit misses
        assert stats.branch_hits == 98

    def test_predictor_quality_ordering_on_loop(self):
        results = {}
        for predictor in PREDICTORS:
            _, (stats,) = risc_pipeline(LOOP_PROGRAM, UarchConfig(predictor=predictor))
            results[predictor] = stats
        assert results["not_taken"].branch_hits == 1  # only the exit
        assert results["backward"].branch_hits == 99  # loop-closing rule
        assert results["backward"].cycles < results["not_taken"].cycles
        assert results["bht2"].cycles < results["not_taken"].cycles

    def test_mispredict_penalty_scales_control_stalls(self):
        cheap = risc_pipeline(LOOP_PROGRAM, UarchConfig(mispredict_penalty=1))[1][0]
        dear = risc_pipeline(LOOP_PROGRAM, UarchConfig(mispredict_penalty=4))[1][0]
        assert dear.mispredicts == cheap.mispredicts
        assert dear.control_stalls == 4 * cheap.control_stalls

    def test_branch_cut_off_by_halt_is_unresolved(self):
        """A branch whose resolving retire never arrives is counted as
        unresolved, not guessed (model-level: the ``halt`` pseudo always
        expands to enough retires to resolve in real programs)."""
        from repro.uarch import PipelineModel

        model = PipelineModel(UarchConfig())
        model.observe(0x1000, (), (), delayed=True, conditional=True, fallthrough=0x1008)
        model.observe(0x1004, (), ())  # the slot; then the run halts
        stats = model.finalize()
        assert stats.branches_unresolved == 1
        assert stats.branches == 0

    def test_delay_slot_scoring(self):
        filled = """
        main:
            add r2, r0, #0
            jmp next
            add r2, r2, #5
        next:
            halt r2
        """
        result, (stats,) = risc_pipeline(filled)
        assert result.exit_code == 5  # the slot really executed
        assert stats.delay_slots == 1
        assert stats.delay_slots_filled == 1
        assert stats.delay_slot_nops == 0

        _, (loop_stats,) = risc_pipeline(LOOP_PROGRAM)
        # every dynamic jne slot holds the nop the optimizer would fill
        assert loop_stats.delay_slots == 100
        assert loop_stats.delay_slot_nops == 100
        assert loop_stats.slot_fill_rate == 0.0


# -- harness, serialization, surfaces ---------------------------------------


class TestHarnessAndSurfaces:
    def test_multi_probe_single_run(self):
        cpu = CPU()
        cpu.load(assemble(LOOP_PROGRAM))
        result, stats = run_with_pipeline(cpu, standard_sweep())
        assert len(stats) == 5
        assert len({s.instructions for s in stats}) == 1  # one retired stream
        labels = [UarchConfig.from_dict(s.config).label for s in stats]
        assert labels == [c.label for c in standard_sweep()]
        assert result.pipeline is None  # probes, not the run() opt-in

    def test_run_result_round_trip(self):
        from repro.core.api import RunResult

        cpu = CPU()
        cpu.load(assemble(LOOP_PROGRAM))
        result = cpu.run(uarch="backward/ex")
        assert result.pipeline is not None
        payload = result.to_dict()
        assert payload["pipeline"]["config"]["predictor"] == "backward"
        restored = RunResult.from_dict(payload)
        assert isinstance(restored.pipeline, PipelineStats)
        assert restored.pipeline.to_dict() == result.pipeline.to_dict()

    def test_uarch_off_leaves_result_unchanged(self):
        cpu = CPU()
        cpu.load(assemble(LOOP_PROGRAM))
        result = cpu.run()
        assert result.pipeline is None
        assert "pipeline" not in result.to_dict()

    def test_pipeline_stats_dict_is_self_describing(self):
        _, (stats,) = risc_pipeline(LOOP_PROGRAM)
        payload = stats.to_dict()
        assert payload["cpi"] == round(stats.cpi, 4)
        assert payload["mispredicts"] == stats.mispredicts
        assert PipelineStats.from_dict(payload).to_dict() == payload

    def test_vax_pipeline_occupancy(self):
        source = ALL_WORKLOADS["towers"].source(DISKS=5)
        program = compile_program(source, target="cisc")
        result = run_compiled(program, uarch=True)
        stats = result.pipeline
        assert stats.machine == "cisc"
        assert stats.instructions == result.stats.instructions
        # multi-cycle instructions occupy EX: the dominant VAX cost
        assert stats.structural_stalls > 0
        assert stats.delay_slots == 0  # no delayed branches on the VAX
        assert stats.cycles >= result.stats.cycles - stats.window_stalls

    def test_cli_smoke(self, tmp_path, capsys):
        from repro.core.cli import main

        source = tmp_path / "loop.s"
        source.write_text(LOOP_PROGRAM, encoding="utf-8")
        assert main([str(source), "--uarch", "pred=backward"]) == 0
        err = capsys.readouterr().err
        assert "pipeline model" in err
        assert "backward/full" in err

    def test_cli_rejects_bad_spec(self, tmp_path, capsys):
        from repro.core.cli import main

        source = tmp_path / "loop.s"
        source.write_text(LOOP_PROGRAM, encoding="utf-8")
        with pytest.raises(SystemExit):
            main([str(source), "--uarch", "pred=oracle"])

    def test_stall_events_reach_tracer(self):
        from repro.obs import EventKind, Tracer
        from repro.obs.exporters import to_chrome

        tracer = Tracer(kinds={EventKind.PIPE_STALL})
        cpu = CPU(tracer=tracer)
        cpu.load(assemble(LOOP_PROGRAM))
        result = cpu.run(uarch="not_taken/none")
        stalls = [e for e in tracer.events if e.kind is EventKind.PIPE_STALL]
        assert stalls
        causes = {e.data["cause"] for e in stalls}
        assert "control" in causes
        emitted = sum(e.data["cycles"] for e in stalls if e.data["cause"] == "control")
        assert emitted == result.pipeline.control_stalls
        document = to_chrome(tracer.events)
        counters = [e for e in document["traceEvents"] if e.get("name") == "pipeline stalls"]
        assert counters
        assert counters[-1]["args"]["control"] == result.pipeline.control_stalls


class TestSuiteOrdering:
    """The CI smoke gate's property: on the towers+qsort aggregate the
    predictors order by strength (towers alone is a 2-bit-counter
    pathology — its one hot branch alternates — which is why the gate
    reads the aggregate)."""

    def test_cpi_ordering_on_smoke_aggregate(self):
        totals = {p: [0, 0] for p in PREDICTORS}
        configs = [UarchConfig(predictor=p) for p in PREDICTORS]
        for name, params in (("towers", {"DISKS": 10}), ("qsort", {})):
            source = ALL_WORKLOADS[name].source(**params)
            program = compile_program(source, target="risc1")
            cpu = CPU()
            cpu.load(program.program)
            _, stats = run_with_pipeline(cpu, configs)
            for predictor, s in zip(PREDICTORS, stats):
                totals[predictor][0] += s.cycles
                totals[predictor][1] += s.instructions
        cpi = {p: c / i for p, (c, i) in totals.items()}
        assert cpi["bht2"] <= cpi["backward"] <= cpi["not_taken"], cpi
