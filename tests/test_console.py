"""The operator console's shared data layer: snapshot schema round-trip,
sparklines, the farm poll (against a live fake farm endpoint), and the
``top`` monitor's pure renderer."""

import http.server
import json
import threading

import pytest

from repro.obs.console import (
    CONSOLE_SCHEMA_VERSION,
    ConsoleProvider,
    ConsoleSnapshot,
    fetch_farm_status,
    sparkline,
)
from repro.obs.ledger import LEDGER_SCHEMA_VERSION, Ledger
from repro.obs.top import render_lines


def _record(workload, engine, steps_per_s, seq, scale="default"):
    """A hand-built record for trajectory tests (no simulation needed)."""
    return {
        "schema": LEDGER_SCHEMA_VERSION,
        "timestamp": 1000.0 + seq,
        "source": "test",
        "workload": workload,
        "scale": scale,
        "machine": "risc1",
        "engine": engine,
        "exit_code": 0,
        "output_sha": "00" * 8,
        "stats": {"instructions": 1000},
        "wall_s": None,
        "steps_per_s": steps_per_s,
        "run_id": f"{workload}-{engine}-{seq:03d}",
    }


@pytest.fixture()
def ledger(tmp_path):
    ledger = Ledger(tmp_path / "ledger")
    # towers improves, then craters (a regression the detector flags)
    for seq, sps in enumerate([1000.0, 1100.0, 1050.0, 400.0]):
        ledger.append(_record("towers:10", "fast", sps, seq))
    # qsort stays flat
    for seq, sps in enumerate([2000.0, 2020.0]):
        ledger.append(_record("qsort", "fast", sps, seq + 10))
    return ledger


class TestSparkline:
    def test_shape_and_extremes(self):
        line = sparkline([1, 2, 3, 8])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_none_renders_as_gap(self):
        assert sparkline([1.0, None, 2.0]) == "▁·█"

    def test_all_none_is_empty(self):
        assert sparkline([None, None]) == ""
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_width_keeps_the_tail(self):
        assert sparkline([0, 0, 0, 9], width=2) == "▁█"


class TestSnapshotSchema:
    def test_json_round_trip(self, ledger):
        provider = ConsoleProvider(ledger)
        snapshot = provider.snapshot()
        clone = ConsoleSnapshot.from_dict(json.loads(json.dumps(snapshot.to_dict())))
        assert clone.schema == CONSOLE_SCHEMA_VERSION
        assert clone.to_dict() == snapshot.to_dict()
        assert clone.comparable() == snapshot.comparable()

    def test_unknown_schema_is_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            ConsoleSnapshot.from_dict({"schema": 999})

    def test_comparable_ignores_timestamps_and_poll_noise(self, ledger):
        provider = ConsoleProvider(ledger)
        a = provider.snapshot().to_dict()
        b = provider.snapshot().to_dict()
        b["generated_at"] = a["generated_at"] + 60.0
        for doc in (a, b):
            doc["farm"] = {
                "url": "http://x", "ok": True, "polled_at": doc["generated_at"],
                "status": {"server": {"requests": doc["generated_at"],
                                      "uptime_s": doc["generated_at"],
                                      "open_connections": 3,
                                      "jobs_in_flight": 0}},
            }
        assert (
            ConsoleSnapshot.from_dict(a).comparable()
            == ConsoleSnapshot.from_dict(b).comparable()
        )

    def test_comparable_sees_real_farm_change(self, ledger):
        provider = ConsoleProvider(ledger)
        a = provider.snapshot().to_dict()
        b = json.loads(json.dumps(a))
        for doc, in_flight in ((a, 0), (b, 3)):
            doc["farm"] = {
                "url": "http://x", "ok": True, "polled_at": 0,
                "status": {"server": {"jobs_in_flight": in_flight}},
            }
        assert (
            ConsoleSnapshot.from_dict(a).comparable()
            != ConsoleSnapshot.from_dict(b).comparable()
        )


class TestProviderSnapshot:
    def test_trajectories_and_regressions(self, ledger):
        snapshot = ConsoleProvider(ledger).snapshot()
        assert [t["label"] for t in snapshot.trajectories] == [
            "qsort[default] risc1/fast",
            "towers:10[default] risc1/fast",
        ]
        towers = snapshot.trajectories[1]
        assert towers["runs"] == 4
        assert towers["latest_steps_per_s"] == 400.0
        assert towers["regressed"] is True
        assert snapshot.trajectories[0]["regressed"] is False
        assert len(snapshot.regressions) == 1
        regression = snapshot.regressions[0]
        assert regression["workload"] == "towers:10"
        assert regression["run_id"] == towers["latest_run_id"]
        assert regression["drop_pct"] < -20

    def test_point_fields(self, ledger):
        snapshot = ConsoleProvider(ledger).snapshot()
        point = snapshot.trajectories[0]["points"][0]
        assert set(point) >= {
            "run_id", "timestamp", "steps_per_s", "source", "instructions",
            "wall_s", "exit_code",
        }

    def test_no_farm_means_none(self, ledger):
        assert ConsoleProvider(ledger).snapshot().farm is None

    def test_bad_profile_spec_fails_fast(self, ledger):
        with pytest.raises(ValueError):
            ConsoleProvider(ledger, profile_specs=("towers:NOPE=1",))


class _FakeFarmHandler(http.server.BaseHTTPRequestHandler):
    payload = {"server": {"jobs_in_flight": 2}, "client": {"workers": 4}}

    def do_GET(self):
        if self.path != "/status":
            self.send_error(404)
            return
        body = json.dumps(self.payload).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass


@pytest.fixture()
def fake_farm():
    httpd = http.server.HTTPServer(("127.0.0.1", 0), _FakeFarmHandler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.server_address[1]}"
    httpd.shutdown()
    thread.join(10)


class TestFarmPoll:
    def test_fetch_farm_status(self, fake_farm):
        assert fetch_farm_status(fake_farm) == _FakeFarmHandler.payload

    def test_bare_host_port_is_promoted(self, fake_farm):
        assert fetch_farm_status(fake_farm.removeprefix("http://")) == (
            _FakeFarmHandler.payload
        )

    def test_provider_wraps_live_farm(self, ledger, fake_farm):
        farm = ConsoleProvider(ledger, farm_url=fake_farm).snapshot().farm
        assert farm["ok"] is True
        assert farm["error"] is None
        assert farm["status"]["server"]["jobs_in_flight"] == 2

    def test_unreachable_farm_is_marked_offline(self, ledger):
        farm = ConsoleProvider(
            ledger, farm_url="http://127.0.0.1:1", farm_timeout=2.0
        ).snapshot().farm
        assert farm["ok"] is False
        assert farm["status"] is None
        assert farm["error"]


class TestTopRenderer:
    def test_frame_from_live_snapshot(self, ledger, fake_farm):
        snapshot = ConsoleProvider(ledger, farm_url=fake_farm).snapshot()
        frame = render_lines(snapshot, width=110)
        text = "\n".join(frame)
        assert "2 trajectories" in frame[0]
        assert "farm live" in frame[0]
        assert "towers:10[default] risc1/fast" in text
        assert "▼ REG" in text
        assert "▼ towers:10 risc1/fast" in text
        assert "in flight 2" in text

    def test_frame_marks_offline_farm(self, ledger):
        provider = ConsoleProvider(
            ledger, farm_url="http://127.0.0.1:1", farm_timeout=2.0
        )
        text = "\n".join(render_lines(provider.snapshot(), width=100))
        assert "farm OFFLINE" in text or "farm: OFFLINE" in text

    def test_frame_without_farm_or_records(self, tmp_path):
        provider = ConsoleProvider(tmp_path / "empty")
        text = "\n".join(render_lines(provider.snapshot(), width=100))
        assert "ledger is empty" in text
        assert "not attached" in text

    def test_lines_respect_width(self, ledger):
        snapshot = ConsoleProvider(ledger).snapshot()
        assert all(len(line) <= 44 for line in render_lines(snapshot, width=44))

    def test_sparkline_column_present(self, ledger):
        snapshot = ConsoleProvider(ledger).snapshot()
        text = "\n".join(render_lines(snapshot, width=110))
        assert any(ch in text for ch in "▁▂▃▄▅▆▇█")
