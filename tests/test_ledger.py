"""The run ledger: durable records, cross-run diffing, regression detection.

Covers the two acceptance criteria directly:

* two runs of the same workload under the ``reference`` and ``fast``
  engines diff with zero architectural-stat divergence;
* ``obs ledger regressions`` flags an artificially slowed run (>= 20%
  steps/s drop) against its trajectory's rolling baseline.
"""

import json

import pytest

from repro.cc.driver import compile_program, run_compiled
from repro.obs.cli import main as obs_main
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    Ledger,
    LedgerView,
    diff_records,
    environment_stamp,
    find_regressions,
    group_key,
    ledger_context,
    make_record,
    maybe_record_run,
    resolve_ledger,
)

#: Small but call-heavy: exercises window traffic so stats are non-trivial.
SOURCE = """
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { putint(fib(10)); return 0; }
"""


@pytest.fixture()
def compiled():
    return compile_program(SOURCE)


@pytest.fixture()
def ledger(tmp_path):
    return Ledger(tmp_path / "ledger")


@pytest.fixture(autouse=True)
def _no_ambient_ledger(monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER", raising=False)


def synthetic(workload="towers:10", engine="fast", steps_per_s=1000.0, seq=0):
    """A hand-built record for trajectory tests (no simulation needed)."""
    return {
        "schema": LEDGER_SCHEMA_VERSION,
        "timestamp": 1_000_000.0 + seq,
        "source": "test",
        "workload": workload,
        "scale": "default",
        "machine": "risc1",
        "engine": engine,
        "exit_code": 0,
        "output_sha": "00" * 8,
        "stats": {"instructions": 100},
        "steps_per_s": steps_per_s,
        "run_id": f"{seq:016x}",
    }


class TestRecord:
    def test_record_contents(self, compiled, ledger):
        with ledger_context(workload="fib", scale="default", source="test"):
            result = run_compiled(compiled, record=ledger)
        records = ledger.records()
        assert len(records) == 1
        record = records[0]
        assert record["schema"] == LEDGER_SCHEMA_VERSION
        assert record["workload"] == "fib"
        assert record["scale"] == "default"
        assert record["source"] == "test"
        assert record["machine"] == result.machine == "risc1"
        assert record["exit_code"] == 0
        assert record["stats"] == result.stats.to_dict()
        assert record["stats"]["instructions"] == result.instructions
        assert record["wall_s"] > 0
        assert record["steps_per_s"] > 0
        assert len(record["run_id"]) == 16
        # the environment stamp makes the record joinable with farm/bench
        assert record["toolchain"]
        assert set(record["host"]) >= {"hostname", "platform", "python"}

    def test_environment_stamp_shape(self):
        stamp = environment_stamp()
        assert set(stamp) == {"toolchain", "git_sha", "host"}
        assert stamp is environment_stamp()  # cached per process

    def test_not_recorded_without_opt_in(self, compiled, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_compiled(compiled)
        assert not (tmp_path / ".repro-ledger").exists()

    def test_env_var_opt_in(self, compiled, tmp_path, monkeypatch):
        root = tmp_path / "from-env"
        monkeypatch.setenv("REPRO_LEDGER", str(root))
        run_compiled(compiled)
        assert len(Ledger(root).records()) == 1

    def test_record_false_overrides_env(self, compiled, tmp_path, monkeypatch):
        root = tmp_path / "from-env"
        monkeypatch.setenv("REPRO_LEDGER", str(root))
        run_compiled(compiled, record=False)
        assert not root.exists()

    def test_resolve_ledger_semantics(self, tmp_path, monkeypatch):
        assert resolve_ledger(None) is None
        assert resolve_ledger(False) is None
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert resolve_ledger(None) is None
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "env-root"))
        assert resolve_ledger(None).root == tmp_path / "env-root"
        explicit = Ledger(tmp_path / "explicit")
        assert resolve_ledger(explicit) is explicit
        assert resolve_ledger(tmp_path / "path").root == tmp_path / "path"

    def test_unwritable_ledger_never_fails_the_run(self, compiled, tmp_path, capsys):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("", encoding="utf-8")
        result = run_compiled(compiled, record=blocker / "ledger")
        assert result.exit_code == 0
        assert "run ledger not written" in capsys.readouterr().err

    def test_context_nesting_restores(self):
        from repro.obs.ledger import _context

        with ledger_context(source="outer", workload="w"):
            with ledger_context(source="inner"):
                assert _context["source"] == "inner"
                assert _context["workload"] == "w"
            assert _context["source"] == "outer"
        assert "source" not in _context and "workload" not in _context


class TestLedgerStore:
    def test_append_read_round_trip(self, ledger):
        ids = [ledger.append(synthetic(seq=i)) for i in range(3)]
        assert [r["run_id"] for r in ledger.records()] == ids
        assert [r["run_id"] for r in ledger.index()] == ids

    def test_torn_record_line_is_skipped(self, ledger):
        ledger.append(synthetic(seq=0))
        ledger.append(synthetic(seq=1))
        with ledger.records_path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "run_id": "torn')  # crashed writer
        assert len(ledger.records()) == 2
        # the index self-heals off the records file
        assert len(ledger.index()) == 2

    def test_index_rebuilds_when_missing_or_stale(self, ledger):
        ledger.append(synthetic(seq=0))
        ledger.index_path.unlink()
        assert len(ledger.index()) == 1
        # stale: an extra record behind the index's back
        with ledger.records_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(synthetic(seq=1)) + "\n")
        assert len(ledger.index()) == 2

    def test_get_by_prefix_and_position(self, ledger):
        ledger.append(dict(synthetic(seq=0), run_id="aaaa000000000000"))
        ledger.append(dict(synthetic(seq=1), run_id="bbbb000000000000"))
        assert ledger.get("aaaa")["timestamp"] == 1_000_000.0
        assert ledger.get("-1")["run_id"] == "bbbb000000000000"
        assert ledger.get("-2")["run_id"] == "aaaa000000000000"
        with pytest.raises(KeyError):
            ledger.get("cccc")
        with pytest.raises(KeyError):
            ledger.get("-3")

    def test_get_ambiguous_prefix(self, ledger):
        ledger.append(dict(synthetic(seq=0), run_id="ab00000000000000"))
        ledger.append(dict(synthetic(seq=1), run_id="ab11111111111111"))
        with pytest.raises(ValueError):
            ledger.get("ab")

    def test_gc_keeps_newest_per_group(self, ledger):
        for i in range(4):
            ledger.append(synthetic(workload="towers:10", seq=i))
        for i in range(2):
            ledger.append(synthetic(workload="qsort", seq=10 + i))
        dropped = ledger.gc(keep=1)
        assert dropped == 4
        kept = ledger.records()
        assert {r["workload"] for r in kept} == {"towers:10", "qsort"}
        assert [r["run_id"] for r in kept] == ["0000000000000003", "000000000000000b"]
        with pytest.raises(ValueError):
            ledger.gc(keep=0)


class TestDiff:
    def test_engines_diff_clean(self, compiled, ledger):
        """Acceptance: fast vs reference runs show zero architectural drift."""
        with ledger_context(workload="fib", source="test"):
            run_compiled(compiled, engine="reference", record=ledger)
            run_compiled(compiled, engine="fast", record=ledger)
        a, b = ledger.records()
        assert (a["engine"], b["engine"]) == ("reference", "fast")
        diff = diff_records(a, b)
        assert diff.clean
        assert "engine" in diff.informational
        assert "architectural stats: identical" in diff.render()

    def test_stat_drift_is_divergence(self, compiled, ledger):
        with ledger_context(workload="fib"):
            run_compiled(compiled, record=ledger)
        a = ledger.records()[0]
        b = json.loads(json.dumps(a))
        b["stats"]["instructions"] += 1
        b["output_sha"] = "f" * 16
        diff = diff_records(a, b)
        assert not diff.clean
        assert set(diff.diverged) == {"stats.instructions", "output_sha"}
        assert "DIVERGED" in diff.render()

    def test_cross_machine_runs_diverge(self):
        a = synthetic()
        b = dict(synthetic(), machine="cisc")
        assert "machine" in diff_records(a, b).diverged


class TestRegressions:
    def test_flags_artificial_slowdown(self):
        """Acceptance: a >=20% steps/s drop against the rolling median."""
        records = [synthetic(steps_per_s=s, seq=i) for i, s in enumerate([1000, 1020, 980, 1010])]
        records.append(synthetic(steps_per_s=700, seq=4))  # ~30% below median
        found = find_regressions(records, threshold_pct=20.0)
        assert len(found) == 1
        regression = found[0]
        assert regression.run_id == "0000000000000004"
        assert regression.drop_pct < -20
        assert regression.baseline == pytest.approx(1005.0)
        assert "towers:10" in regression.render()

    def test_noise_below_threshold_passes(self):
        records = [synthetic(steps_per_s=s, seq=i) for i, s in enumerate([1000, 1020, 900])]
        assert find_regressions(records, threshold_pct=20.0) == []

    def test_groups_are_independent(self):
        # fast stays healthy; only the reference trajectory regressed
        records = [synthetic(engine="fast", steps_per_s=5000 + i, seq=i) for i in range(3)]
        records += [
            synthetic(engine="reference", steps_per_s=s, seq=10 + i)
            for i, s in enumerate([1000, 1000, 500])
        ]
        found = find_regressions(records, threshold_pct=20.0)
        assert [r.group for r in found] == [("towers:10", "default", "risc1", "reference")]

    def test_needs_two_measured_runs(self):
        records = [synthetic(steps_per_s=1000, seq=0), synthetic(steps_per_s=None, seq=1)]
        assert find_regressions(records) == []

    def test_all_mode_audits_history(self):
        speeds = [1000, 1000, 400, 1000, 1000]
        records = [synthetic(steps_per_s=s, seq=i) for i, s in enumerate(speeds)]
        assert find_regressions(records, latest_only=True) == []
        dips = find_regressions(records, latest_only=False)
        assert [r.run_id for r in dips] == ["0000000000000002"]

    def test_window_bounds_the_baseline(self):
        # an old fast era must age out of the baseline after `window` runs
        speeds = [2000] + [1000] * 5 + [950]
        records = [synthetic(steps_per_s=s, seq=i) for i, s in enumerate(speeds)]
        assert find_regressions(records, threshold_pct=20.0, window=5) == []

    def test_group_key(self):
        assert group_key(synthetic()) == ("towers:10", "default", "risc1", "fast")


class TestLedgerView:
    """The read-only query API the operator console is built on."""

    def _seeded(self, ledger):
        for seq, sps in enumerate([1000.0, 1020.0, 980.0, 1010.0, 700.0]):
            ledger.append(synthetic(steps_per_s=sps, seq=seq))
        for seq in range(2):
            ledger.append(synthetic("qsort", "fast", 2000.0 + seq, seq + 10))
        return LedgerView(ledger)

    def test_trajectories_group_and_sort(self, ledger):
        view = self._seeded(ledger)
        trajectories = view.trajectories()
        assert [t.label for t in trajectories] == [
            "qsort[default] risc1/fast",
            "towers:10[default] risc1/fast",
        ]
        towers = trajectories[1]
        assert towers.group == ("towers:10", "default", "risc1", "fast")
        assert towers.steps_per_s() == [1000.0, 1020.0, 980.0, 1010.0, 700.0]
        assert towers.latest["run_id"] == "0000000000000004"

    def test_latest_is_newest_first(self, ledger):
        view = self._seeded(ledger)
        newest = view.latest(limit=3)
        assert len(newest) == 3
        stamps = [r["timestamp"] for r in newest]
        assert stamps == sorted(stamps, reverse=True)

    def test_regressions_delegate_to_detector(self, ledger):
        view = self._seeded(ledger)
        found = view.regressions(threshold_pct=20.0)
        assert [r.run_id for r in found] == ["0000000000000004"]
        document = found[0].to_dict()
        assert document["workload"] == "towers:10"
        assert document["drop_pct"] < -20
        assert json.loads(json.dumps(document)) == document

    def test_diff_and_get_resolve_selectors(self, ledger):
        view = self._seeded(ledger)
        assert view.get("-1")["workload"] == "qsort"
        diff = view.diff("-2", "-1")
        assert "steps_per_s" in diff.informational or not diff.clean

    def test_view_never_writes(self, tmp_path, ledger):
        """A view over a read-only root (the checked-in seed) must not
        rebuild the index or create any file."""
        ledger.append(synthetic())
        ledger.index_path.unlink(missing_ok=True)
        before = sorted(p.name for p in ledger.root.iterdir())
        view = LedgerView(ledger.root)
        assert len(view.records()) == 1
        assert view.trajectories()
        assert sorted(p.name for p in ledger.root.iterdir()) == before

    def test_empty_view(self, tmp_path):
        view = LedgerView(tmp_path / "nothing")
        assert view.records() == []
        assert view.trajectories() == []
        assert view.latest() == []
        assert view.regressions() == []


class TestLedgerCli:
    def seeded(self, tmp_path, records):
        root = tmp_path / "ledger"
        ledger = Ledger(root)
        for record in records:
            ledger.append(record)
        return str(root)

    def test_list_and_show(self, tmp_path, capsys):
        root = self.seeded(tmp_path, [synthetic(seq=0), synthetic(engine="reference", seq=1)])
        assert obs_main(["ledger", "--dir", root, "list"]) == 0
        out = capsys.readouterr().out
        assert "towers:10" in out and "reference" in out
        assert obs_main(["ledger", "--dir", root, "list", "--engine", "fast", "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["engine"] for r in rows] == ["fast"]
        assert obs_main(["ledger", "--dir", root, "show", "-1"]) == 0
        assert json.loads(capsys.readouterr().out)["engine"] == "reference"

    def test_diff_exit_codes(self, tmp_path, capsys):
        diverged = dict(synthetic(seq=1), output_sha="f" * 16)
        root = self.seeded(tmp_path, [synthetic(seq=0), synthetic(seq=2), diverged])
        assert obs_main(["ledger", "--dir", root, "diff", "-3", "-2"]) == 0
        capsys.readouterr()
        assert obs_main(["ledger", "--dir", root, "diff", "-2", "-1", "--format", "json"]) == 1
        assert json.loads(capsys.readouterr().out)["clean"] is False
        assert obs_main(["ledger", "--dir", root, "diff", "-1", "zzzz"]) == 2

    def test_regressions_exit_codes(self, tmp_path, capsys):
        healthy = [synthetic(steps_per_s=1000 + i, seq=i) for i in range(3)]
        root = self.seeded(tmp_path, healthy)
        assert obs_main(["ledger", "--dir", root, "regressions"]) == 0
        assert "no regressions" in capsys.readouterr().out
        slowed = healthy + [synthetic(steps_per_s=500, seq=9)]
        root = self.seeded(tmp_path / "slow", slowed)
        assert obs_main(["ledger", "--dir", root, "regressions", "--threshold", "20"]) == 1
        assert "steps/s vs baseline" in capsys.readouterr().out

    def test_record_then_diff_engines(self, tmp_path, capsys):
        """Acceptance, end to end through the CLI: record a workload under
        both engines, then ``ledger diff`` reports no divergence."""
        root = str(tmp_path / "ledger")
        base = ["ledger", "--dir", root]
        assert obs_main(base + ["record", "--workload", "towers:4", "--engine", "reference"]) == 0
        ref_id = capsys.readouterr().out.strip()
        assert obs_main(base + ["record", "--workload", "towers:4", "--engine", "fast"]) == 0
        fast_id = capsys.readouterr().out.strip()
        assert ref_id != fast_id
        assert obs_main(base + ["diff", ref_id, fast_id]) == 0
        assert "architectural stats: identical" in capsys.readouterr().out

    def test_export_and_gc(self, tmp_path, capsys):
        root = self.seeded(tmp_path, [synthetic(seq=i) for i in range(3)])
        out = tmp_path / "dump.jsonl"
        assert obs_main(["ledger", "--dir", root, "export", str(out), "--format", "jsonl"]) == 0
        assert len(out.read_text(encoding="utf-8").splitlines()) == 3
        assert obs_main(["ledger", "--dir", root, "gc", "--keep", "1"]) == 0
        assert "dropped 2" in capsys.readouterr().out
        assert obs_main(["ledger", "--dir", root, "export", "-", "--format", "json"]) == 0
        assert len(json.loads(capsys.readouterr().out)) == 1


class TestMaybeRecordRun:
    def test_returns_none_when_off(self, compiled):
        result = run_compiled(compiled)
        assert maybe_record_run(result, engine="fast") is None

    def test_records_with_metrics(self, compiled, ledger):
        from repro.obs import MetricsRegistry, record_machine_run

        result = run_compiled(compiled)
        registry = MetricsRegistry()
        record_machine_run(registry, result)
        run_id = maybe_record_run(
            result, engine="fast", wall_s=0.5, record=ledger, metrics=registry
        )
        record = ledger.get(run_id)
        assert record["metrics"]["risc1.runs"]["value"] == 1
        assert record["wall_s"] == 0.5
        assert record["steps_per_s"] == pytest.approx(result.instructions / 0.5, rel=0.01)


def test_make_record_is_schema_versioned(compiled):
    result = run_compiled(compiled)
    record = make_record(result, engine="fast", wall_s=1.0, workload="fib")
    assert record["schema"] == LEDGER_SCHEMA_VERSION
    assert len(record["run_id"]) == 16


class TestPipelineField:
    def test_record_carries_pipeline_stats(self, compiled, ledger):
        with ledger_context(workload="fib", source="test"):
            run_compiled(compiled, record=ledger, uarch=True)
        record = ledger.records()[0]
        assert record["pipeline"] is not None
        assert record["pipeline"]["instructions"] == record["stats"]["instructions"]
        assert record["pipeline"]["config"]["predictor"] == "bht2"

    def test_pipeline_is_informational_not_divergence(self, compiled, ledger):
        """Timing-model deltas (different uarch config, or on vs off) must
        never read as architectural divergence — the model is accounting
        layered over the same retired stream."""
        with ledger_context(workload="fib", source="test"):
            run_compiled(compiled, record=ledger, uarch="bht2/full")
            run_compiled(compiled, record=ledger, uarch="not_taken/none")
            run_compiled(compiled, record=ledger)  # uarch off
        with_bht, with_nt, without = ledger.records()
        assert with_bht["pipeline"]["cycles"] != with_nt["pipeline"]["cycles"]
        diff = diff_records(with_bht, with_nt)
        assert diff.clean
        assert "pipeline" in diff.informational
        off_diff = diff_records(with_bht, without)
        assert off_diff.clean
        assert "pipeline" in off_diff.informational


class TestShards:
    """Per-worker ledger shards and their idempotent merge."""

    def test_shard_appends_land_in_shard_file(self, ledger):
        shard = ledger.shard("worker-0")
        shard.append(synthetic(seq=1))
        assert shard.shard_path.exists()
        assert not (ledger.root / "records.jsonl").exists() or not ledger.records()
        assert ledger.shard_files() == [shard.shard_path]

    def test_merge_folds_shards_and_removes_them(self, ledger):
        ledger.append(synthetic(seq=0))
        ledger.shard("worker-0").append(synthetic(seq=1))
        ledger.shard("worker-1").append(synthetic(seq=2))
        assert ledger.merge_shards() == 2
        assert ledger.shard_files() == []
        assert {r["run_id"] for r in ledger.records()} == {
            f"{seq:016x}" for seq in (0, 1, 2)
        }

    def test_merge_is_idempotent_by_run_id(self, ledger):
        shard = ledger.shard("worker-0")
        shard.append(synthetic(seq=1))
        # a crash between merge and unlink re-merges the same shard file
        assert ledger.merge_shards(remove=False) == 1
        assert ledger.merge_shards(remove=True) == 0
        assert ledger.merge_shards() == 0  # and nothing left behind
        assert len(ledger.records()) == 1

    def test_merge_skips_torn_final_line(self, ledger):
        shard = ledger.shard("worker-0")
        shard.append(synthetic(seq=1))
        with shard.shard_path.open("a", encoding="utf-8") as handle:
            handle.write('{"run_id": "torn-write-no-clos')  # killed mid-write
        assert ledger.merge_shards() == 1
        assert [r["run_id"] for r in ledger.records()] == [f"{1:016x}"]

    def test_resolve_ledger_routes_to_shard(self, ledger, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", str(ledger.root))
        monkeypatch.setenv("REPRO_LEDGER_SHARD", "worker-7")
        from repro.obs.ledger import LedgerShard

        resolved = resolve_ledger()
        assert isinstance(resolved, LedgerShard)
        assert resolved.shard_name == "worker-7"
        resolved.append(synthetic(seq=5))
        assert resolved.shard_path.name == "worker-7.jsonl"
        assert not ledger.records()  # nothing hit the main file yet
        assert ledger.merge_shards() == 1
