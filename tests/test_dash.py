"""The operator console's web dashboard: deterministic static rendering
from the checked-in seed ledger, the ``--once`` CLI artifact mode, the
server's routes, and the live end-to-end path — a farm job submitted
mid-session shows up within one refresh interval."""

import asyncio
import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.farm import serve as farm_serve
from repro.obs.cli import main as obs_main
from repro.obs.console import ConsoleProvider
from repro.obs.dash import DashServer, render_dashboard, resolve_ledger

SEED = Path(__file__).resolve().parent.parent / "benchmarks" / "ledger_seed"


def _get(base, path, timeout=30):
    with urllib.request.urlopen(base + path, timeout=timeout) as response:
        body = response.read()
        content_type = response.headers.get("Content-Type", "")
    return body.decode("utf-8"), content_type


class TestStaticRender:
    def test_render_is_deterministic(self):
        snapshot = ConsoleProvider(SEED).snapshot().to_dict()
        assert render_dashboard(snapshot) == render_dashboard(snapshot)

    def test_seed_page_has_every_panel(self):
        provider = ConsoleProvider(SEED, profile_specs=("towers:10",))
        page = render_dashboard(provider.snapshot())
        assert page.startswith("<!doctype html>")
        assert 'data-trajectories="2"' in page
        assert 'id="regressions"' in page
        assert 'id="farm"' in page
        assert 'data-flamegraphs="1"' in page
        assert "hanoi" in page  # the towers flamegraph really rendered
        assert "<script" not in page  # static page: no live poll script
        # self-contained: nothing referenced, nothing fetched (the SVG
        # xmlns identifier is the only URL-shaped string allowed)
        for marker in ("https://", "src=", "href=", "@import", "url("):
            assert marker not in page
        assert page.count("http://") == page.count("http://www.w3.org/2000/svg")

    def test_live_page_embeds_poll_script(self):
        snapshot = ConsoleProvider(SEED).snapshot()
        page = render_dashboard(snapshot, live_version=7)
        assert "/poll?v=" in page
        assert "const since = 7" in page

    def test_regression_flag_renders(self, tmp_path):
        from repro.obs.ledger import LEDGER_SCHEMA_VERSION, Ledger

        ledger = Ledger(tmp_path / "ledger")
        for seq, sps in enumerate([1000.0, 1000.0, 1000.0, 100.0]):
            ledger.append(
                {
                    "schema": LEDGER_SCHEMA_VERSION,
                    "timestamp": 1000.0 + seq,
                    "source": "test",
                    "workload": "towers:10",
                    "scale": "default",
                    "machine": "risc1",
                    "engine": "fast",
                    "exit_code": 0,
                    "output_sha": "00" * 8,
                    "stats": {"instructions": 1000},
                    "steps_per_s": sps,
                    "run_id": f"reg-{seq:03d}",
                }
            )
        page = render_dashboard(ConsoleProvider(ledger).snapshot())
        assert "▼ regression" in page
        assert 'data-regressions="1"' in page
        assert "chart-dot bad" in page  # the cratered run's marker is flagged

    def test_seed_ledger_stays_read_only(self):
        ConsoleProvider(SEED, profile_specs=()).snapshot()
        assert not (SEED / "index.jsonl").exists()


class TestOnceCli:
    def test_once_writes_self_contained_page(self, tmp_path):
        out = tmp_path / "dash.html"
        code = obs_main(
            ["dash", "--once", str(out), "--ledger", str(SEED), "--no-profile"]
        )
        assert code == 0
        page = out.read_text(encoding="utf-8")
        assert 'data-trajectories="2"' in page
        assert "qsort[default] risc1/fast" in page

    def test_once_default_ledger_falls_back_to_seed(self, tmp_path, monkeypatch):
        # acceptance shape: `python -m repro.obs dash --once out.html` from
        # a checkout whose default ledger root is empty
        monkeypatch.chdir(Path(__file__).resolve().parent.parent)
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "no-such-ledger"))
        assert str(resolve_ledger(None)).endswith("ledger_seed")
        out = tmp_path / "out.html"
        assert obs_main(["dash", "--once", str(out), "--no-profile"]) == 0
        assert 'data-trajectories="2"' in out.read_text(encoding="utf-8")

    def test_bad_profile_spec_is_a_clean_error(self, tmp_path, capsys):
        code = obs_main(
            ["dash", "--once", str(tmp_path / "x.html"), "--ledger", str(SEED),
             "--profile", "towers:NOPE=1"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


@pytest.fixture()
def farm(tmp_path, monkeypatch):
    """An in-process farm front door; yields its base URL."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    started = threading.Event()
    holder = {}

    def ready(srv):
        holder["server"] = srv
        holder["loop"] = srv._server.get_loop()
        started.set()

    thread = threading.Thread(
        target=lambda: asyncio.run(farm_serve.run(port=0, workers=1, ready=ready)),
        daemon=True,
    )
    thread.start()
    assert started.wait(60), "farm serve did not come up"
    srv = holder["server"]
    yield f"http://{srv.host}:{srv.port}"
    holder["loop"].call_soon_threadsafe(srv.request_shutdown)
    thread.join(60)
    assert not thread.is_alive()


@pytest.fixture()
def dash(tmp_path, farm):
    """A live DashServer over an empty ledger + the farm; fast refresh."""
    provider = ConsoleProvider(
        tmp_path / "ledger", farm_url=farm, profile_specs=(), farm_timeout=10.0
    )
    started = threading.Event()
    holder = {}

    async def _serve():
        server = DashServer(provider, port=0, interval=0.2)
        await server.start()
        holder["server"] = server
        holder["loop"] = asyncio.get_running_loop()
        started.set()
        await server.serve_until_shutdown()

    thread = threading.Thread(target=lambda: asyncio.run(_serve()), daemon=True)
    thread.start()
    assert started.wait(60), "dash did not come up"
    server = holder["server"]
    yield server, f"http://{server.host}:{server.port}"
    holder["loop"].call_soon_threadsafe(server.request_shutdown)
    thread.join(60)
    assert not thread.is_alive()


class TestLiveServer:
    def test_routes(self, dash):
        _server, base = dash
        page, content_type = _get(base, "/")
        assert content_type.startswith("text/html")
        assert "repro operator console" in page
        assert "/poll?v=" in page  # live page carries the reload script
        data, content_type = _get(base, "/data")
        assert content_type == "application/json"
        snapshot = json.loads(data)
        assert snapshot["schema"] == 1
        assert snapshot["farm"]["ok"] is True
        health, _ = _get(base, "/healthz")
        assert json.loads(health)["ok"] is True
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(base, "/nope")
        assert exc.value.code == 404

    def test_poll_times_out_with_same_version_when_idle(self, dash):
        _server, base = dash
        version = json.loads(_get(base, "/healthz")[0])["version"]
        # idle system: farm counters churn (our own polls) but the
        # comparable body is stable, so the version must hold
        body, _ = _get(base, f"/poll?v={version}&wait=0.8")
        answer = json.loads(body)
        assert answer == {"version": version, "changed": False}

    def test_farm_job_lands_within_one_refresh_interval(self, dash, farm):
        server, base = dash
        version = json.loads(_get(base, "/healthz")[0])["version"]
        # mid-session: submit real work to the farm
        request = urllib.request.Request(
            farm + "/jobs",
            data=json.dumps({"workload": "towers"}).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            assert response.status == 202
        # the long poll answers as soon as the refresher (interval 0.2s)
        # sees the farm's counters move — well inside the 20s ceiling
        body, _ = _get(base, f"/poll?v={version}&wait=20", timeout=60)
        answer = json.loads(body)
        assert answer["changed"] is True
        assert answer["version"] > version
        snapshot = json.loads(_get(base, "/data")[0])
        assert snapshot["farm"]["status"]["server"]["specs_submitted"] >= 1
        page, _ = _get(base, "/")
        assert "Dedupe hit rate" in page
