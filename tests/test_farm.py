"""Tests for the ``repro.farm`` subsystem.

Covers the content-addressed job keys, corruption-safe cache behaviour,
parallel-vs-serial result equality, the run manifest, and the two CLIs'
farm-facing flags.
"""

import json

import pytest

import repro
from repro.core.stats import ExecutionStats
from repro.farm import jobs as jobs_mod
from repro.farm.cache import ArtifactCache
from repro.farm.jobs import compile_job, execute_job, ir_job, sweep_jobs
from repro.farm.results import ResultStore
from repro.farm.runner import run_job
from repro.farm.scheduler import run_sweep
from repro.isa.opcodes import Opcode


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


@pytest.fixture
def isolated_cache_dir(tmp_path, monkeypatch):
    root = tmp_path / "farm-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    return root


class TestJobHashing:
    def test_same_job_same_key(self):
        assert compile_job("towers", "risc1").key == compile_job("towers", "risc1").key

    def test_key_is_content_addressed_hex(self):
        key = compile_job("towers", "risc1").key
        assert len(key) == 64
        int(key, 16)  # valid hex

    def test_scale_changes_key(self):
        assert (
            compile_job("towers", "risc1", "default").key
            != compile_job("towers", "risc1", "bench").key
        )

    def test_target_changes_key(self):
        assert (
            compile_job("towers", "risc1").key != compile_job("towers", "cisc").key
        )

    def test_kind_and_config_change_key(self):
        keys = {
            compile_job("towers", "risc1").key,
            execute_job("towers", "risc1").key,
            execute_job("towers", "risc1", max_instructions=1000).key,
            ir_job("towers").key,
        }
        assert len(keys) == 4

    def test_version_stamp_changes_key(self, monkeypatch):
        before = compile_job("towers", "risc1").key
        try:
            monkeypatch.setattr(repro, "__version__", "999.0.0-test")
            jobs_mod.toolchain_fingerprint.cache_clear()
            after = compile_job("towers", "risc1").key
        finally:
            monkeypatch.undo()
            jobs_mod.toolchain_fingerprint.cache_clear()
        assert before != after

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            compile_job("no_such_workload", "risc1")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            jobs_mod.Job("frobnicate", "towers", "risc1")

    def test_sweep_jobs_covers_grid(self):
        grid = sweep_jobs(workloads=["towers", "sed"], scale="default")
        kinds = [(j.kind, j.target) for j in grid]
        assert kinds.count(("compile", "risc1")) == 2
        assert kinds.count(("execute", "cisc")) == 2
        assert kinds.count(("ir", "risc1")) == 2


class TestStatsRoundTrip:
    def test_execution_stats_round_trip(self):
        stats = ExecutionStats(instructions=10, cycles=14)
        stats.by_opcode[Opcode.ADD] = 7
        stats.by_opcode[Opcode.CALL] = 3
        restored = ExecutionStats.from_dict(
            json.loads(json.dumps(stats.to_dict()))
        )
        assert restored == stats
        assert restored.by_opcode[Opcode.ADD] == 7

    def test_executed_result_round_trip(self, isolated_cache_dir):
        first, hit_first = run_job(execute_job("towers", "risc1"))
        again, hit_again = run_job(execute_job("towers", "risc1"))
        assert (hit_first, hit_again) == (False, True)
        assert again.to_dict() == first.to_dict()
        assert again.stats.by_opcode == first.stats.by_opcode

    def test_cisc_and_ir_round_trip(self, isolated_cache_dir):
        for job in (execute_job("towers", "cisc"), ir_job("towers")):
            cold, _ = run_job(job)
            warm, hit = run_job(job)
            assert hit
            assert warm.to_dict() == cold.to_dict()


class TestCacheCorruption:
    def test_truncated_pickle_recomputes(self, cache):
        job = compile_job("towers", "risc1")
        value, hit = run_job(job, cache)
        assert not hit
        path = cache.path_for(job.key, "pkl")
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        value2, hit2 = run_job(job, cache)
        assert not hit2
        assert cache.stats.corrupt == 1
        assert value2.assembly == value.assembly
        # the recomputed artifact was re-stored and is loadable again
        assert run_job(job, cache)[1]

    def test_garbage_json_recomputes(self, cache):
        job = execute_job("towers", "risc1")
        cold, _ = run_job(job, cache)
        cache.path_for(job.key, "json").write_bytes(b"{not json at all")
        warm, hit = run_job(job, cache)
        assert not hit
        assert cache.stats.corrupt >= 1
        assert warm.to_dict() == cold.to_dict()

    def test_wrong_payload_shape_recomputes(self, cache):
        job = ir_job("towers")
        run_job(job, cache)
        cache.store_json(job.key, {"type": "ir", "result": {"bogus": 1}})
        value, hit = run_job(job, cache)
        assert not hit
        assert value.counts.calls > 0

    def test_gc_evicts_everything_at_zero_budget(self, cache):
        run_job(compile_job("towers", "risc1"), cache)
        run_job(compile_job("sed", "risc1"), cache)
        assert len(cache.entries()) == 2
        evicted = cache.gc(max_bytes=0)
        assert len(evicted) == 2
        assert cache.entries() == []
        assert cache.stats.evictions == 2


class TestScheduler:
    WORKLOADS = ["towers", "string_search_e"]

    def test_parallel_equals_serial(self, tmp_path):
        grid = sweep_jobs(workloads=self.WORKLOADS, scale="default")
        serial_cache = ArtifactCache(tmp_path / "serial")
        parallel_cache = ArtifactCache(tmp_path / "parallel")
        serial = run_sweep(grid, workers=1, cache=serial_cache)
        parallel = run_sweep(grid, workers=2, cache=parallel_cache)
        assert serial.counts["failed"] == parallel.counts["failed"] == 0
        assert {o.key for o in serial.outcomes} == {o.key for o in parallel.outcomes}
        for job in grid:
            if job.kind == "compile":
                continue
            from_serial, _ = run_job(job, ArtifactCache(tmp_path / "serial"))
            from_parallel, _ = run_job(job, ArtifactCache(tmp_path / "parallel"))
            assert from_serial.to_dict() == from_parallel.to_dict()

    def test_compile_wave_precedes_runs(self):
        from repro.farm.scheduler import _job_waves

        grid = sweep_jobs(workloads=self.WORKLOADS)
        waves = _job_waves(grid)
        assert len(waves) == 2
        assert {job.kind for job in waves[0]} == {"compile"}
        assert {job.kind for job in waves[1]} == {"execute", "ir"}

    def test_warm_sweep_has_zero_recomputes(self, tmp_path):
        grid = sweep_jobs(workloads=["towers"])
        cache_root = tmp_path / "warm"
        run_sweep(grid, workers=1, cache=ArtifactCache(cache_root))
        report = run_sweep(grid, workers=1, cache=ArtifactCache(cache_root))
        assert report.counts == {"hit": len(grid), "computed": 0, "failed": 0}

    def test_failed_job_is_reported_not_raised(self, cache, monkeypatch):
        monkeypatch.setitem(
            jobs_mod.ALL_WORKLOADS,
            "towers",
            jobs_mod.ALL_WORKLOADS["towers"].__class__(
                **{
                    **{
                        f.name: getattr(jobs_mod.ALL_WORKLOADS["towers"], f.name)
                        for f in jobs_mod.ALL_WORKLOADS["towers"].__dataclass_fields__.values()
                    },
                    "reference": lambda DISKS: "wrong output\n",
                }
            ),
        )
        report = run_sweep([execute_job("towers", "risc1")], workers=1, cache=cache)
        assert report.counts["failed"] == 1
        assert "AssertionError" in report.outcomes[0].error


class TestResultStore:
    def test_manifest_append_and_query(self, cache, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        grid = [compile_job("towers", "risc1"), execute_job("towers", "risc1")]
        run_sweep(grid, workers=1, cache=cache, store=store)
        run_sweep(grid, workers=1, cache=cache, store=store)
        records = store.records()
        assert len(records) == 2
        assert records[0]["schema"] == 1
        assert len(store.computed_jobs(records[0])) == 2
        assert store.computed_jobs(records[1]) == []
        assert store.hit_rate(records[1]) == 1.0

    def test_manifest_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"schema": 1, "jobs": []}\nnot json\n[1,2]\n')
        store = ResultStore(path)
        assert len(store.records()) == 1


class TestFarmCli:
    def test_run_status_gc_smoke(self, isolated_cache_dir, capsys):
        from repro.farm.cli import main

        assert main(["run", "--jobs", "2", "--format", "json",
                     "--workloads", "towers"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["failed"] == 0
        assert payload["counts"]["computed"] + payload["counts"]["hit"] == 5

        assert main(["status"]) == 0
        out = capsys.readouterr().out
        assert "artifacts" in out and "last run" in out

        assert main(["gc"]) == 0
        assert "evicted" in capsys.readouterr().out

    def test_run_rejects_unknown_workload(self, isolated_cache_dir, capsys):
        from repro.farm.cli import main

        assert main(["run", "--workloads", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestExperimentsCliFarmFlags:
    def test_list_flag(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e1 " in out and "e16" in out

    def test_unknown_experiment_clear_error(self, capsys):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["e99"])
        assert excinfo.value.code != 0
        assert "unknown experiment" in capsys.readouterr().err

    def test_jobs_and_json_format(self, isolated_cache_dir, capsys):
        from repro.experiments.cli import main

        assert main(["--jobs", "2", "--format", "json", "e8"]) == 0
        documents = json.loads(capsys.readouterr().out)
        assert documents[0]["experiment"] == "e8"
        table = documents[0]["tables"][0]
        assert table["headers"][0] == "program"
        assert any(row[0] == "towers" for row in table["rows"])
