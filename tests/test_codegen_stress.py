"""Stress tests for code-generation corner cases on both backends:
temporaries spilled across calls, deep expression nesting, register-pool
exhaustion, large frames, and big constants."""

import pytest

from repro.cc.driver import compile_program, run_compiled

TARGETS = ["risc1", "cisc"]


def run(source, target):
    compiled = compile_program(source, target=target)
    return run_compiled(compiled, max_instructions=20_000_000)


@pytest.mark.parametrize("target", TARGETS)
class TestSpillPressure:
    def test_many_call_results_live_simultaneously(self, target):
        """Ten call results alive at once: far beyond both temp pools."""
        source = """
        int g(int x) { return x + 1; }
        int main() {
            putint(g(1) + g(2) + g(3) + g(4) + g(5)
                 + g(6) + g(7) + g(8) + g(9) + g(10));
            return 0;
        }
        """
        assert run(source, target).output == str(sum(range(2, 12)))

    def test_nested_calls_as_arguments(self, target):
        source = """
        int add(int a, int b) { return a + b; }
        int main() {
            putint(add(add(1, 2), add(add(3, 4), add(5, 6))));
            return 0;
        }
        """
        assert run(source, target).output == "21"

    def test_deeply_nested_expression(self, target):
        # a right-leaning tree keeps many partial results live
        expr = "1"
        total = 1
        for i in range(2, 14):
            expr = f"({i} - {expr})"
            total = i - total
        source = f"""
        int id(int x) {{ return x; }}
        int main() {{ putint(id({expr})); return 0; }}
        """
        assert run(source, target).output == str(total)

    def test_spilled_temps_survive_loops(self, target):
        """Temps that live across a loop back-edge while spilled."""
        source = """
        int g(int x) { return x * 2; }
        int main() {
            int a = g(1); int b = g(2); int c = g(3); int d = g(4);
            int e = g(5); int f = g(6); int h = g(7); int i = g(8);
            int j = g(9); int k = g(10); int l = g(11);
            int total = 0;
            for (int n = 0; n < 3; n++) {
                total += a + b + c + d + e + f + h + i + j + k + l;
            }
            putint(total);
            return 0;
        }
        """
        assert run(source, target).output == str(3 * 2 * sum(range(1, 12)))


@pytest.mark.parametrize("target", TARGETS)
class TestFramesAndConstants:
    def test_large_local_array_frame(self, target):
        source = """
        int main() {
            int big[300];
            for (int i = 0; i < 300; i++) big[i] = i;
            int total = 0;
            for (int i = 0; i < 300; i += 50) total += big[i];
            putint(total);
            return 0;
        }
        """
        assert run(source, target).output == str(sum(range(0, 300, 50)))

    def test_two_local_arrays_do_not_alias(self, target):
        source = """
        int main() {
            int a[10]; int b[10];
            for (int i = 0; i < 10; i++) { a[i] = i; b[i] = 100 + i; }
            putint(a[5]); putchar(' '); putint(b[5]);
            return 0;
        }
        """
        assert run(source, target).output == "5 105"

    def test_big_constants_everywhere(self, target):
        source = """
        int big = 0x7FFFFFFF;
        int main() {
            int x = 123456789;
            putint(x); putchar(' ');
            putint(big); putchar(' ');
            putint(-2147483647); putchar(' ');
            putint(x + 100000000);
            return 0;
        }
        """
        assert (
            run(source, target).output
            == "123456789 2147483647 -2147483647 223456789"
        )

    def test_offsets_beyond_immediate_range(self, target):
        """Array accesses whose byte offsets exceed 13 bits."""
        source = """
        int big[1500];
        int main() {
            big[1400] = 77;
            big[1499] = 88;
            putint(big[1400] + big[1499]);
            return 0;
        }
        """
        assert run(source, target).output == "165"

    def test_char_array_in_frame_with_scalars(self, target):
        source = """
        int main() {
            char buf[13];
            int guard1 = 111;
            for (int i = 0; i < 12; i++) buf[i] = 'a' + i;
            buf[12] = 0;
            int guard2 = 222;
            puts(buf);
            putchar(' ');
            putint(guard1 + guard2);
            return 0;
        }
        """
        assert run(source, target).output == "abcdefghijkl 333"


@pytest.mark.parametrize("target", TARGETS)
class TestControlFlowTorture:
    def test_deep_nesting_of_ifs(self, target):
        depth = 12
        open_ifs = "".join(f"if (x > {i}) {{ " for i in range(depth))
        close = "}" * depth
        source = f"""
        int probe(int x) {{
            int hits = 0;
            {open_ifs} hits = {depth}; {close}
            return hits;
        }}
        int main() {{
            putint(probe({depth + 1})); putint(probe(3)); putint(probe(0));
            return 0;
        }}
        """
        assert run(source, target).output == f"{depth}00"

    def test_break_continue_in_nested_loops(self, target):
        source = """
        int main() {
            int total = 0;
            for (int i = 0; i < 6; i++) {
                if (i == 4) break;
                for (int j = 0; j < 6; j++) {
                    if (j == i) continue;
                    if (j > 3) break;
                    total += 10 * i + j;
                }
            }
            putint(total);
            return 0;
        }
        """
        expected = 0
        for i in range(6):
            if i == 4:
                break
            for j in range(6):
                if j == i:
                    continue
                if j > 3:
                    break
                expected += 10 * i + j
        assert run(source, target).output == str(expected)

    def test_do_while_with_complex_condition(self, target):
        source = """
        int main() {
            int i = 0; int hits = 0;
            do {
                i++;
                if (i % 3 == 0 || i % 5 == 0) hits++;
            } while (i < 30 && hits < 12);
            putint(i); putchar(' '); putint(hits);
            return 0;
        }
        """
        i = hits = 0
        while True:
            i += 1
            if i % 3 == 0 or i % 5 == 0:
                hits += 1
            if not (i < 30 and hits < 12):
                break
        assert run(source, target).output == f"{i} {hits}"
