"""Command-line runner: ``risc1-run program.s``."""

from __future__ import annotations

import argparse
import sys

from repro.asm.assembler import AssemblerError, assemble
from repro.core.api import DEFAULT_MAX_STEPS
from repro.core.cpu import CPU


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Assemble and run a RISC I program")
    parser.add_argument("source", help="assembly source file")
    parser.add_argument("--windows", type=int, default=8, help="register windows (default 8)")
    parser.add_argument(
        "--max-instructions",
        type=int,
        default=DEFAULT_MAX_STEPS,
        help="safety execution limit",
    )
    parser.add_argument("--stats", action="store_true", help="print execution statistics")
    parser.add_argument(
        "--trace",
        type=int,
        metavar="N",
        default=None,
        help="trace execution, printing the first N instructions",
    )
    parser.add_argument(
        "--engine",
        choices=("fast", "reference"),
        help="execution engine (default: fast; reference is the plain "
        "step() loop the fast path is differentially tested against)",
    )
    parser.add_argument(
        "--ledger",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="append this run to the persistent run ledger "
        "(default root .repro-ledger, or PATH; $REPRO_LEDGER also enables)",
    )
    parser.add_argument(
        "--uarch",
        nargs="?",
        const="base",
        default=None,
        metavar="CONFIG",
        help="time the run with the 5-stage pipeline model and print its "
        "summary; CONFIG is key=value pairs like pred=bht2,fwd=full "
        "(bare gives the base configuration)",
    )
    parser.add_argument(
        "--dbg",
        action="store_true",
        help="record the run and drop into the time-travel debugger at "
        "entry (also stops at a recorded trap or step limit)",
    )
    parser.add_argument(
        "--break",
        dest="breakpoints",
        action="append",
        metavar="SPEC",
        help="with --dbg: set a breakpoint (PC, symbol, or :LINE); repeatable",
    )
    parser.add_argument(
        "--dbg-script",
        metavar="FILE",
        help="with --dbg: run debugger commands from FILE non-interactively",
    )
    args = parser.parse_args(argv)

    if (args.breakpoints or args.dbg_script) and not args.dbg:
        parser.error("--break/--dbg-script require --dbg")

    if args.uarch is not None:
        from repro.uarch import parse_uarch_config

        try:
            parse_uarch_config(args.uarch)
        except ValueError as error:
            parser.error(str(error))
        if args.trace is not None:
            parser.error("--uarch does not combine with --trace")

    with open(args.source) as handle:
        text = handle.read()
    try:
        program = assemble(text)
    except AssemblerError as error:
        print(f"{args.source}: {error}", file=sys.stderr)
        return 1

    if args.dbg:
        from pathlib import Path

        from repro.dbg.cli import _enter_debugger, apply_breakpoints
        from repro.dbg.session import DebugSession, SpecError
        from repro.obs.record import record_run

        recording = record_run(
            CPU(num_windows=args.windows),
            program,
            max_steps=args.max_instructions,
            engine=args.engine,
            workload=Path(args.source).name,
        )
        session = DebugSession(recording, engine=args.engine)
        try:
            apply_breakpoints(session, args.breakpoints)
        except SpecError as error:
            parser.error(f"bad breakpoint spec: {error}")
        if recording.outcome["outcome"] != "halt":
            # position at the recorded end so the trap/step-limit site is
            # on screen; reverse commands walk back from there
            session.seek(recording.steps)
            print(
                f"run ended in {recording.outcome['outcome']} at step "
                f"{recording.steps}; debugger positioned there",
                file=sys.stderr,
            )
        return _enter_debugger(session, args.dbg_script)

    cpu = CPU(num_windows=args.windows)
    cpu.load(program)
    if args.trace is not None:
        from repro.core.trace import trace_run

        trace = trace_run(cpu, max_instructions=args.max_instructions)
        print(trace.render(limit=args.trace), file=sys.stderr)
        if trace.result is None:
            print("(instruction limit reached)", file=sys.stderr)
            return 1
        result = trace.result
    else:
        from pathlib import Path

        from repro.obs.ledger import ledger_context

        with ledger_context(workload=Path(args.source).name, source="cli"):
            result = cpu.run(
                max_instructions=args.max_instructions,
                engine=args.engine,
                record=args.ledger,
                uarch=args.uarch,
            )
    sys.stdout.write(result.output)
    if args.stats:
        print(file=sys.stderr)
        print(result.stats.summary(), file=sys.stderr)
    if getattr(result, "pipeline", None) is not None:
        print(file=sys.stderr)
        print(result.pipeline.summary(), file=sys.stderr)
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
