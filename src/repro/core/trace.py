"""Execution tracing for the RISC I simulator.

Produces a per-instruction narrative — address, disassembly, register
writes, window rotations, condition-code changes — for debugging compiler
output and for teaching (watching the windows rotate on a call chain is
the fastest way to understand the paper).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.asm.disasm import disassemble
from repro.core.api import MachineHalted, RunResult
from repro.core.cpu import CPU


@dataclasses.dataclass
class TraceEntry:
    """One executed instruction and its visible effects."""

    index: int
    pc: int
    word: int
    text: str
    #: visible registers written, as (reg, old, new)
    reg_writes: list[tuple[int, int, int]]
    cwp_before: int
    cwp_after: int
    cc_after: str
    depth: int

    def render(self) -> str:
        writes = " ".join(
            f"r{reg}: {old:#x}->{new:#x}" for reg, old, new in self.reg_writes
        )
        window = (
            f" [w{self.cwp_before}->w{self.cwp_after}]"
            if self.cwp_before != self.cwp_after
            else ""
        )
        body = f"{self.index:>6}  {self.pc:#010x}  {self.text:<28}"
        if writes:
            body += f" {writes}"
        return body + window


@dataclasses.dataclass
class Trace:
    entries: list[TraceEntry]
    result: Optional[RunResult]

    def render(self, limit: int | None = None) -> str:
        entries = self.entries if limit is None else self.entries[:limit]
        lines = [entry.render() for entry in entries]
        if limit is not None and len(self.entries) > limit:
            lines.append(f"... ({len(self.entries) - limit} more)")
        return "\n".join(lines)

    def window_rotations(self) -> int:
        return sum(1 for e in self.entries if e.cwp_before != e.cwp_after)


def trace_run(cpu: CPU, max_instructions: int = 100_000) -> Trace:
    """Run a loaded CPU to completion, recording every instruction.

    Tracing snapshots the visible window around each step, so it is far
    slower than :meth:`CPU.run`; use it on small programs.
    """
    entries: list[TraceEntry] = []
    result: RunResult | None = None
    for index in range(max_instructions):
        pc = cpu.pc
        word = cpu.memory.dump(pc, 4)
        word_value = int.from_bytes(word, "big")
        before = cpu.regs.snapshot_visible()
        cwp_before = cpu.regs.cwp
        try:
            cpu.step()
        except MachineHalted as halt:
            cpu._sync_memory_stats()
            result = RunResult(cpu.name, halt.code, "".join(cpu._console), cpu.stats)
        after = cpu.regs.snapshot_visible()
        cc = cpu.psw.cc
        entries.append(
            TraceEntry(
                index=index,
                pc=pc,
                word=word_value,
                text=disassemble(word_value, pc=pc),
                reg_writes=[
                    (reg, before[reg], after[reg])
                    for reg in range(32)
                    if cpu.regs.cwp == cwp_before and before[reg] != after[reg]
                ],
                cwp_before=cwp_before,
                cwp_after=cpu.regs.cwp,
                cc_after="".join(
                    flag if value else "-"
                    for flag, value in (("z", cc.z), ("n", cc.n), ("c", cc.c), ("v", cc.v))
                ),
                depth=cpu.regs.depth,
            )
        )
        if result is not None:
            return Trace(entries, result)
    return Trace(entries, None)
