"""The unified machine execution API.

Both simulated processors — the RISC I :class:`~repro.core.cpu.CPU` and
the VAX-like :class:`~repro.baselines.vax.cpu.VaxCPU` — implement one
:class:`Machine` protocol and produce one :class:`RunResult`, so every
consumer (the experiment harnesses, the simulation farm, the CLIs) is
written once against this module instead of special-casing each target.

The contract:

* ``load(program)`` installs a program image and resets execution state;
* ``run(*, max_steps=..., tracer=...)`` executes until the program halts,
  returning a :class:`RunResult`; exceeding the step budget raises
  :class:`StepLimitExceeded` (a loud outcome, never a silent truncation);
* ``step()`` executes one instruction, raising :class:`MachineHalted`
  on the halting instruction — after which ``halted`` is ``True``;
* ``to_dict()``/``from_dict()`` on :class:`RunResult` is the one result
  schema, machine-tagged so the right stats class round-trips.

The legacy names (``ExecutionResult``, ``VaxExecutionResult``, the
``max_instructions`` keyword) still work as thin deprecation shims so
pre-existing callers and cached farm artifacts keep loading.
"""

from __future__ import annotations

import base64
import dataclasses
import os
import zlib
from typing import Any, Protocol, runtime_checkable

from repro.machine.traps import Trap, TrapKind

__all__ = [
    "DEFAULT_ENGINE",
    "DEFAULT_MAX_STEPS",
    "Machine",
    "MachineHalted",
    "RESULT_SCHEMA_VERSION",
    "RunResult",
    "SNAPSHOT_SCHEMA_VERSION",
    "StepLimitExceeded",
    "VALID_ENGINES",
    "pack_bytes",
    "register_stats_type",
    "resolve_engine",
    "resolve_max_steps",
    "stats_type",
    "unpack_bytes",
]

#: The one step budget every machine defaults to.  (Historically the two
#: simulators disagreed — 100M vs 200M — which made "the same run" mean
#: different things per target.)
DEFAULT_MAX_STEPS = 200_000_000

#: Bump on any backwards-incompatible :meth:`RunResult.to_dict` change.
RESULT_SCHEMA_VERSION = 2

#: Execution engines a machine's ``run()`` accepts.  ``"fast"`` is the
#: predecoded path (:mod:`repro.core.engine` for RISC I, the operand
#: decode cache for the VAX); ``"reference"`` is the plain ``step()``
#: loop the fast path is differentially tested against.  Both produce
#: bit-identical results, stats and event streams by contract.
VALID_ENGINES = ("fast", "reference")

#: Engine used when neither the call site nor ``$REPRO_ENGINE`` says.
DEFAULT_ENGINE = "fast"

#: Bump on any backwards-incompatible :meth:`Machine.snapshot` change.
SNAPSHOT_SCHEMA_VERSION = 1


def pack_bytes(data: bytes | bytearray) -> str:
    """Encode a byte image as compressed base64 (JSON-safe).

    Snapshots carry the whole simulated memory; images are overwhelmingly
    zero bytes, so a fast zlib pass makes a 1 MiB memory a few-KB string.
    """
    return base64.b64encode(zlib.compress(bytes(data), 1)).decode("ascii")


def unpack_bytes(text: str) -> bytearray:
    """Invert :func:`pack_bytes`."""
    return bytearray(zlib.decompress(base64.b64decode(text.encode("ascii"))))


def resolve_engine(engine: str | None = None) -> str:
    """Resolve an execution-engine selection.

    Precedence: explicit argument, then the ``REPRO_ENGINE`` environment
    variable (which reaches farm worker processes too), then
    :data:`DEFAULT_ENGINE`.
    """
    resolved = engine or os.environ.get("REPRO_ENGINE") or DEFAULT_ENGINE
    if resolved not in VALID_ENGINES:
        raise ValueError(
            f"unknown engine {resolved!r}; expected one of {', '.join(VALID_ENGINES)}"
        )
    return resolved


class MachineHalted(Exception):
    """The program executed its halt; ``code`` is the exit status.

    Raised by ``step()`` on the halting instruction.  ``run()`` catches it
    and returns the :class:`RunResult` instead.
    """

    def __init__(self, code: int):
        self.code = code
        super().__init__(f"halted with exit code {code}")


class StepLimitExceeded(Trap):
    """The step budget ran out before the program halted.

    A :class:`~repro.machine.traps.Trap` subclass, so existing handlers
    that catch ``Trap`` keep working, but the cause is now a distinct,
    catchable type carrying the exhausted ``limit`` and — for post-mortem
    analysis — the machine's (synced) partial ``stats``.
    """

    def __init__(self, limit: int, pc: int | None = None, stats: Any = None):
        super().__init__(TrapKind.HALT, f"instruction limit of {limit} reached", pc=pc)
        self.limit = limit
        self.stats = stats


def resolve_max_steps(max_instructions: int | None, max_steps: int | None) -> int:
    """Merge the legacy and current step-budget keywords into one value."""
    if max_steps is not None:
        if max_instructions is not None and max_instructions != max_steps:
            raise TypeError("pass max_steps or max_instructions, not conflicting both")
        return max_steps
    if max_instructions is not None:
        return max_instructions
    return DEFAULT_MAX_STEPS


# -- the stats-type registry -------------------------------------------------

_STATS_TYPES: dict[str, type] = {}


def register_stats_type(machine: str, cls: type) -> None:
    """Register a machine name -> per-run stats class for deserialization."""
    _STATS_TYPES[machine] = cls


def stats_type(machine: str) -> type:
    """The stats class for a machine name (imports lazily as needed)."""
    if machine not in _STATS_TYPES:
        # machine modules register themselves on import; pull in the ones
        # that are not already loaded
        if machine == "cisc":
            import repro.baselines.vax.cpu  # noqa: F401
        elif machine == "risc1":
            import repro.core.stats  # noqa: F401
    try:
        return _STATS_TYPES[machine]
    except KeyError:
        raise KeyError(f"no stats type registered for machine {machine!r}") from None


# -- the unified result ------------------------------------------------------


@dataclasses.dataclass
class RunResult:
    """Outcome of one simulated run, identical in shape for every machine.

    ``stats`` is the machine's own stats object (``ExecutionStats`` for
    RISC I, ``VaxStats`` for the VAX-like baseline); the common fields
    every consumer needs — ``cycles``, ``instructions``, memory traffic —
    are uniform properties here.
    """

    machine: str
    exit_code: int
    output: str
    stats: Any
    #: optional :class:`~repro.uarch.pipeline.PipelineStats` — attached
    #: when the run was measured under the pipeline timing model
    #: (``run(uarch=...)``); purely additive, so the schema is unchanged
    pipeline: Any = None

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def instructions(self) -> int:
        return self.stats.instructions

    @property
    def data_references(self) -> int:
        return self.stats.data_references

    def to_dict(self) -> dict:
        payload = {
            "schema": RESULT_SCHEMA_VERSION,
            "machine": self.machine,
            "exit_code": self.exit_code,
            "output": self.output,
            "stats": self.stats.to_dict(),
        }
        if self.pipeline is not None:
            payload["pipeline"] = self.pipeline.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict, default_machine: str | None = None) -> "RunResult":
        """Rebuild from :meth:`to_dict` output.

        Legacy (schema-1) payloads carry no ``machine`` tag; pass
        ``default_machine`` to load them.
        """
        machine = payload.get("machine", default_machine)
        if machine is None:
            raise KeyError("result payload has no 'machine' tag and no default was given")
        stats = stats_type(machine).from_dict(payload["stats"])
        pipeline = None
        if payload.get("pipeline") is not None:
            from repro.uarch.pipeline import PipelineStats

            pipeline = PipelineStats.from_dict(payload["pipeline"])
        return RunResult(
            machine=machine,
            exit_code=payload["exit_code"],
            output=payload["output"],
            stats=stats,
            pipeline=pipeline,
        )


# -- the machine protocol ----------------------------------------------------


@runtime_checkable
class Machine(Protocol):
    """What every simulated processor looks like from the outside."""

    #: stable machine tag ("risc1", "cisc") used in result payloads
    name: str

    @property
    def halted(self) -> bool:
        """True once the loaded program has executed its halt."""
        ...

    def load(self, program) -> None:
        """Install a program image and reset execution state."""
        ...

    def run(
        self,
        max_instructions: int | None = None,
        *,
        max_steps: int | None = None,
        tracer=None,
        engine: str | None = None,
        record=None,
        uarch=None,
    ) -> RunResult:
        """Run to halt (or raise :class:`StepLimitExceeded`).

        ``engine`` picks the execution path (see :data:`VALID_ENGINES`);
        ``None`` defers to ``$REPRO_ENGINE`` / :data:`DEFAULT_ENGINE`.
        ``record`` opts the finished run into the persistent run ledger
        (see :mod:`repro.obs.ledger`); ``None`` defers to
        ``$REPRO_LEDGER``.  ``uarch`` (a config spec, ``True`` for the
        default, or a :class:`~repro.uarch.config.UarchConfig`) measures
        the run under the pipeline timing model and attaches
        ``result.pipeline``.
        """
        ...

    def step(self) -> None:
        """Execute one instruction; raises :class:`MachineHalted` at halt."""
        ...

    def snapshot(self) -> dict:
        """The complete architectural state as a JSON-safe dict.

        The contract is *bit-exact resumability*: ``restore(snapshot())``
        on any machine of the same shape (same memory size, same window
        count) must leave it indistinguishable from the original — the
        same future execution, stats, traffic counters and output,
        whichever engine runs it.  Byte images are packed with
        :func:`pack_bytes`; the dict round-trips through ``json``.
        """
        ...

    def restore(self, state: dict) -> None:
        """Install a :meth:`snapshot`; raises ``ValueError`` on mismatch."""
        ...
