"""The RISC I cycle-level simulator.

Implements the full ISA semantics: single-cycle register operations,
two-cycle loads/stores, delayed jumps (the instruction after any control
transfer always executes), register-window rotation on CALL/RETURN, and
transparent window overflow/underflow handling with its memory traffic and
handler cycles charged exactly as the paper's evaluation requires.

Software conventions (used by the assembler runtime and the compiler):

* ``r1`` is the memory stack pointer (grows down);
* arguments go in the caller's LOW registers ``r10..r14`` and arrive in the
  callee's HIGH registers ``r26..r30``;
* the return address is written by ``call r31, target`` into the callee's
  ``r31`` (physically the caller's ``r15``), and ``ret r31, 8`` returns past
  the call and its delay slot;
* the return value travels back in the shared register pair
  callee-``r26`` / caller-``r10``.

I/O and program exit use memory-mapped stores, a stand-in for the paper's
(unspecified) system environment:

* store to ``MMIO_PUTCHAR`` emits one character;
* store to ``MMIO_PUTINT`` emits a signed decimal number;
* store to ``MMIO_HALT`` ends the run with the stored value as exit code.
"""

from __future__ import annotations

import warnings
from functools import lru_cache
from typing import Callable

from repro.isa.conditions import Cond, ConditionCodes, cond_holds
from repro.isa.encoding import Instruction, decode
from repro.isa.opcodes import Opcode
from repro.core.api import (
    SNAPSHOT_SCHEMA_VERSION,
    MachineHalted,
    RunResult,
    StepLimitExceeded,
    pack_bytes,
    resolve_engine,
    resolve_max_steps,
    unpack_bytes,
)
from repro.core.program import Program
from repro.core.stats import ExecutionStats
from repro.core.timing import RiscTiming
from repro.machine.memory import Memory
from repro.machine.psw import PSW
from repro.machine.regfile import RegisterFile
from repro.machine.traps import Trap, TrapKind
from repro.obs.events import EventKind
from repro.obs.tracer import NULL_TRACER

WORD = 0xFFFFFFFF
SIGN = 0x80000000

MMIO_BASE = 0x7F000000
MMIO_PUTCHAR = MMIO_BASE + 0x0
MMIO_PUTINT = MMIO_BASE + 0x4
MMIO_HALT = MMIO_BASE + 0xC

#: Stack-pointer register (software convention).
SP = 1
#: Return-address register as seen by the callee.
RA = 31

_decode = lru_cache(maxsize=1 << 16)(decode)


def to_signed(value: int) -> int:
    """Interpret a 32-bit pattern as a signed integer."""
    value &= WORD
    return value - (1 << 32) if value & SIGN else value


#: The halt signal is the unified API's — kept under the old internal name
#: for the module's own handlers.
_Halt = MachineHalted


class ExecutionResult(RunResult):
    """Deprecated alias for :class:`repro.core.api.RunResult`.

    Kept so pre-unification callers and cached farm artifacts still load;
    new code should construct and consume :class:`RunResult`.
    """

    def __init__(self, exit_code: int, stats: ExecutionStats, output: str):
        warnings.warn(
            "ExecutionResult is deprecated; use repro.core.api.RunResult",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(machine="risc1", exit_code=exit_code, output=output, stats=stats)

    @classmethod
    def from_dict(cls, payload: dict) -> RunResult:
        """Load a result payload, including legacy ones with no machine tag."""
        return RunResult.from_dict(payload, default_machine="risc1")


class CPU:
    """A RISC I processor attached to a memory.

    Implements the unified :class:`repro.core.api.Machine` protocol;
    ``tracer``/``metrics`` opt into the observability layer and cost one
    pre-resolved boolean test per potential event when left off.
    """

    #: machine tag used in unified result payloads
    name = "risc1"

    def __init__(
        self,
        memory_size: int = 1 << 20,
        num_windows: int = 8,
        timing: RiscTiming | None = None,
        trace_calls: bool = False,
        spill_batch: int = 1,
        tracer=None,
        metrics=None,
    ):
        self.memory = Memory(memory_size)
        self.regs = RegisterFile(num_windows, spill_batch=spill_batch)
        self.psw = PSW()
        self.timing = timing or RiscTiming()
        self.stats = ExecutionStats()
        self.metrics = metrics
        self._install_tracer(tracer)
        self._halted = False
        self._exit_code: int | None = None
        self.pc = 0
        self.npc = 4
        self._last_pc = 0
        self._console: list[str] = []
        #: Register-save stack for window spills (grows down from the top
        #: of memory; the ordinary data stack starts just below it).
        self._save_base = memory_size
        self._save_sp = self._save_base
        self._stack_top = memory_size - (64 << 10)
        #: deferred window rotation: CALL/RETURN change the window only
        #: *after* their delay slot, so the slot executes in the old
        #: window — which is what lets the compiler fill call slots with
        #: argument moves and return slots with the result move.
        self._pending: tuple | None = None
        #: latched external interrupt request (handler address), delivered
        #: at the next restartable instruction boundary.
        self._interrupt_request: int | None = None
        self.interrupts_taken = 0
        #: Optional (event, depth) trace: event is "call" or "ret".
        self.call_trace: list[tuple[str, int]] | None = [] if trace_calls else None
        #: Optional per-instruction hook ``fn(pc, instruction)``.
        self.on_execute: Callable[[int, Instruction], None] | None = None
        #: The last-loaded program; the fast engine predecodes its segments.
        self._program: Program | None = None

    # -- observability -----------------------------------------------------

    def _install_tracer(self, tracer) -> None:
        """Resolve the tracer once; the step loop only tests booleans."""
        self.tracer = tracer if tracer is not None else NULL_TRACER
        wants = self.tracer.wants
        self._trace_retire = wants(EventKind.RETIRE)
        self._trace_mem = wants(EventKind.MEM_REF)
        self._trace_flow = wants(EventKind.CALL) or wants(EventKind.RET)
        self._trace_window = wants(EventKind.WINDOW_OVERFLOW) or wants(
            EventKind.WINDOW_UNDERFLOW
        )
        self._trace_trap = wants(EventKind.TRAP)

    # -- program loading ---------------------------------------------------

    def load(self, program: Program) -> None:
        """Load a program image and reset execution state."""
        for segment in program.segments:
            self.memory.load_image(segment.base, segment.data)
        self.pc = program.entry
        self.npc = program.entry + 4
        self._halted = False
        self._exit_code = None
        self._program = program
        self.regs.write(SP, self._stack_top)

    # -- execution ----------------------------------------------------------

    @property
    def halted(self) -> bool:
        """True once the loaded program has executed its halt."""
        return self._halted

    @property
    def exit_code(self) -> int | None:
        return self._exit_code

    def run(
        self,
        max_instructions: int | None = None,
        *,
        max_steps: int | None = None,
        tracer=None,
        engine: str | None = None,
        record=None,
        uarch=None,
    ) -> RunResult:
        """Run until the program halts.

        Exceeding the step budget raises :class:`StepLimitExceeded` with
        the synced partial stats attached.  ``max_instructions`` is the
        deprecated spelling of ``max_steps``.  A ``tracer`` passed here is
        installed for this run (and stays).  ``engine`` selects the
        execution path — ``"fast"`` (default, the predecoded engine of
        :mod:`repro.core.engine`) or ``"reference"`` (the plain ``step()``
        loop); both are differentially identical.  ``record`` opts this
        run into the persistent run ledger (``True``, a ledger root path,
        or a :class:`~repro.obs.ledger.Ledger`); ``None`` defers to
        ``$REPRO_LEDGER``.  ``uarch`` opts the run into the pipeline
        timing model (a ``--uarch`` spec string, ``True`` for the default
        configuration, or a :class:`~repro.uarch.config.UarchConfig`);
        the resulting :class:`~repro.uarch.pipeline.PipelineStats` is
        attached as ``result.pipeline``.  Measuring keeps the fast engine
        on its exact (per-step) loop — the uarch-off path is untouched.
        """
        import time as _time

        limit = resolve_max_steps(max_instructions, max_steps)
        if tracer is not None:
            self._install_tracer(tracer)
        engine_name = resolve_engine(engine)
        probe = None
        if uarch is not None and uarch is not False:
            from repro.uarch import PipelineModel, attach_pipeline, resolve_uarch

            config = resolve_uarch(uarch)
            probe = attach_pipeline(
                self, PipelineModel(config, machine=self.name, tracer=self.tracer)
            )
        started = _time.perf_counter()
        try:
            if engine_name == "fast" and self._program is not None:
                from repro.core.engine import PredecodedEngine

                PredecodedEngine(self).run(limit)
            else:
                for _ in range(limit):
                    self.step()
            self._sync_memory_stats()
            raise StepLimitExceeded(limit, pc=self.pc, stats=self.stats)
        except _Halt as halt:
            wall_s = _time.perf_counter() - started
            self._sync_memory_stats()
            result = RunResult(self.name, halt.code, "".join(self._console), self.stats)
            if probe is not None:
                result.pipeline = probe.finalize()[0]
            if self.metrics is not None:
                from repro.obs.metrics import record_machine_run

                record_machine_run(self.metrics, result)
            from repro.obs.ledger import maybe_record_run

            maybe_record_run(
                result,
                engine=engine_name,
                wall_s=wall_s,
                record=record,
                metrics=self.metrics,
            )
            return result
        finally:
            if probe is not None:
                from repro.uarch import detach_pipeline

                detach_pipeline(self, probe)

    def raise_interrupt(self, vector: int) -> None:
        """Latch an external interrupt request.

        Delivery happens before the next instruction that is at a
        *restartable* boundary: interrupts are enabled, no window rotation
        is pending, and the processor is not in a delayed-jump shadow (so
        the saved PC alone restarts execution — the hardware's GTLPC path
        for shadow interrupts is not needed by this model).
        """
        self._interrupt_request = vector

    def _deliver_interrupt(self) -> None:
        vector = self._interrupt_request
        self._interrupt_request = None
        # hardware-forced CALLINT: rotate into a fresh window, save the
        # interrupted PC in the new window's r26, and disable interrupts
        self._enter_frame(26, self.pc, vector)
        self.psw.interrupts_enabled = False
        self.interrupts_taken += 1
        self.pc = vector
        self.npc = vector + 4

    def step(self) -> None:
        """Fetch, decode and execute a single instruction."""
        if (
            self._interrupt_request is not None
            and self.psw.interrupts_enabled
            and self._pending is None
            and self.npc == self.pc + 4  # not in a delayed-jump shadow
        ):
            self._deliver_interrupt()
        pending = self._pending
        self._pending = None
        pc = self.pc
        word = self.memory.fetch_word(pc)
        inst = _decode(word)
        if self.on_execute is not None:
            self.on_execute(pc, inst)
        next_npc = self.npc + 4
        try:
            target = self._execute(inst, pc)
        except _Halt:
            # account the halting store itself before unwinding
            self.stats.record(inst.opcode, self.timing.instruction_cycles(inst.opcode))
            if self._trace_retire:
                self.tracer.retire(
                    self.stats.cycles, pc, inst.opcode.name,
                    self.timing.instruction_cycles(inst.opcode),
                )
            raise
        except Trap as trap:
            if self._trace_trap:
                self.tracer.trap(self.stats.cycles, pc, trap.kind.name, trap.detail)
            raise
        if pending is not None:
            if self._pending is not None:
                raise Trap(
                    TrapKind.ILLEGAL_INSTRUCTION,
                    "control transfer in a CALL/RETURN delay slot",
                    pc=pc,
                )
            self._apply_window_change(pending)
        if target is not None:
            next_npc = target
        self._last_pc = pc
        self.pc, self.npc = self.npc, next_npc
        self.stats.record(inst.opcode, self.timing.instruction_cycles(inst.opcode))
        if self._trace_retire:
            self.tracer.retire(
                self.stats.cycles, pc, inst.opcode.name, self.timing.instruction_cycles(inst.opcode)
            )

    # -- instruction semantics ----------------------------------------------

    def _execute(self, inst: Instruction, pc: int) -> int | None:
        """Execute ``inst``; return the delayed-jump target if any."""
        op = inst.opcode
        handler = _DISPATCH.get(op)
        if handler is None:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, str(op), pc=pc)
        return handler(self, inst, pc)

    def _s2_value(self, inst: Instruction) -> int:
        """Second operand: immediate or register, as a 32-bit pattern."""
        if inst.imm:
            return inst.s2 & WORD
        return self.regs.read(inst.s2)

    def _set_cc(self, inst: Instruction, result: int, carry: bool, overflow: bool) -> None:
        if inst.scc:
            self.psw.cc = ConditionCodes.from_result(result, carry, overflow)

    # arithmetic ---------------------------------------------------------

    def _alu_add(self, inst: Instruction, pc: int, with_carry: bool = False) -> None:
        a = self.regs.read(inst.rs1)
        b = self._s2_value(inst)
        carry_in = 1 if (with_carry and self.psw.cc.c) else 0
        raw = a + b + carry_in
        result = raw & WORD
        carry = raw > WORD
        overflow = bool(~(a ^ b) & (a ^ result) & SIGN)
        self.regs.write(inst.dest, result)
        self._set_cc(inst, result, carry, overflow)

    def _alu_sub(
        self, inst: Instruction, pc: int, with_carry: bool = False, reverse: bool = False
    ) -> None:
        a = self.regs.read(inst.rs1)
        b = self._s2_value(inst)
        if reverse:
            a, b = b, a
        borrow_in = 0 if (not with_carry or self.psw.cc.c) else 1
        raw = a - b - borrow_in
        result = raw & WORD
        carry = raw >= 0  # carry means "no borrow", the RISC convention
        overflow = bool((a ^ b) & (a ^ result) & SIGN)
        self.regs.write(inst.dest, result)
        self._set_cc(inst, result, carry, overflow)

    def _alu_logic(self, inst: Instruction, pc: int, fn: Callable[[int, int], int]) -> None:
        result = fn(self.regs.read(inst.rs1), self._s2_value(inst)) & WORD
        self.regs.write(inst.dest, result)
        self._set_cc(inst, result, carry=False, overflow=False)

    def _alu_shift(self, inst: Instruction, pc: int, kind: str) -> None:
        value = self.regs.read(inst.rs1)
        amount = self._s2_value(inst) & 31
        if kind == "sll":
            result = (value << amount) & WORD
        elif kind == "srl":
            result = value >> amount
        else:  # sra
            result = (to_signed(value) >> amount) & WORD
        self.regs.write(inst.dest, result)
        self._set_cc(inst, result, carry=False, overflow=False)

    # memory -------------------------------------------------------------

    _LOAD_SPEC = {
        Opcode.LDL: (4, False),
        Opcode.LDSU: (2, False),
        Opcode.LDSS: (2, True),
        Opcode.LDBU: (1, False),
        Opcode.LDBS: (1, True),
    }
    _STORE_SPEC = {Opcode.STL: 4, Opcode.STS: 2, Opcode.STB: 1}

    def _load(self, inst: Instruction, pc: int) -> None:
        width, signed = self._LOAD_SPEC[inst.opcode]
        address = (self.regs.read(inst.rs1) + self._s2_value(inst)) & WORD
        try:
            value = self.memory.read(address, width, signed=signed)
        except Trap as trap:
            trap.pc = pc
            raise
        if self._trace_mem:
            self.tracer.mem_ref(self.stats.cycles, pc, address, "r", width)
        self.regs.write(inst.dest, value & WORD)

    def _store(self, inst: Instruction, pc: int) -> None:
        width = self._STORE_SPEC[inst.opcode]
        address = (self.regs.read(inst.rs1) + self._s2_value(inst)) & WORD
        value = self.regs.read(inst.dest)
        if address >= MMIO_BASE:
            self._mmio_store(address, value, width, pc)
            return
        try:
            self.memory.write(address, value, width)
        except Trap as trap:
            trap.pc = pc
            raise
        if self._trace_mem:
            self.tracer.mem_ref(self.stats.cycles, pc, address, "w", width)

    def _mmio_store(self, address: int, value: int, width: int, pc: int) -> None:
        self.memory.stats.data_writes += 1
        # the event is emitted before the store takes effect so the halting
        # store (and a trapping one) still appears in the trace — keeping
        # the MEM_REF stream in lockstep with the data_writes counter
        if self._trace_mem:
            self.tracer.mem_ref(self.stats.cycles, pc, address, "w", width)
        if address == MMIO_PUTCHAR:
            self._console.append(chr(value & 0xFF))
        elif address == MMIO_PUTINT:
            self._console.append(str(to_signed(value)))
        elif address == MMIO_HALT:
            self._halted = True
            self._exit_code = to_signed(value)
            raise _Halt(self._exit_code)
        else:
            raise Trap(TrapKind.BUS_ERROR, f"unknown MMIO address {address:#x}", pc=pc)

    # control ---------------------------------------------------------------

    def _jmp(self, inst: Instruction, pc: int) -> int | None:
        target = (self.regs.read(inst.rs1) + self._s2_value(inst)) & WORD
        return self._conditional(inst.cond, target)

    def _jmpr(self, inst: Instruction, pc: int) -> int | None:
        return self._conditional(inst.cond, (pc + inst.y) & WORD)

    def _conditional(self, cond: Cond, target: int) -> int | None:
        if cond_holds(cond, self.psw.cc):
            self.stats.taken_jumps += 1
            return target
        self.stats.untaken_jumps += 1
        return None

    def _call(self, inst: Instruction, pc: int) -> int:
        target = (self.regs.read(inst.rs1) + self._s2_value(inst)) & WORD
        self._pending = ("call", inst.dest, pc)
        return target

    def _callr(self, inst: Instruction, pc: int) -> int:
        target = (pc + inst.y) & WORD
        self._pending = ("call", inst.dest, pc)
        return target

    def _apply_window_change(self, pending: tuple) -> None:
        kind, dest, pc = pending
        if kind == "call":
            # the window change lands during the delay-slot step, when
            # self.npc already holds the call's destination address
            self._enter_frame(dest, pc, self.npc)
        else:
            self._leave_frame()

    def _enter_frame(self, dest: int, pc: int, target: int = 0) -> None:
        if self._trace_flow:
            # emitted before any spill so a CALL that overflows traces as
            # CALL -> WINDOW_OVERFLOW, matching the machine's causality
            self.tracer.call(self.stats.cycles, pc, self.regs.depth + 1, target)
        spills = self.regs.call_advance()
        if spills:
            self._spill_windows(spills)
        self.regs.write(dest, pc)
        self.stats.calls += 1
        self.stats.max_call_depth = max(self.stats.max_call_depth, self.regs.depth)
        if self.call_trace is not None:
            self.call_trace.append(("call", self.regs.depth))
        self.psw.cwp = self.regs.cwp

    def _ret(self, inst: Instruction, pc: int) -> int:
        target = (self.regs.read(inst.rs1) + self._s2_value(inst)) & WORD
        self._pending = ("ret", 0, pc)
        return target

    def _leave_frame(self) -> None:
        if self._trace_flow:
            self.tracer.ret(self.stats.cycles, self.pc, self.regs.depth - 1)
        fill = self.regs.ret_retreat()
        if fill is not None:
            self._fill_window(fill)
        self.stats.returns += 1
        if self.call_trace is not None:
            self.call_trace.append(("ret", self.regs.depth))
        self.psw.cwp = self.regs.cwp

    def _spill_windows(self, windows: list[int]) -> None:
        """One overflow trap saving one or more windows (oldest first)."""
        for window in windows:
            for slot in self.regs.window_slots(window):
                self._save_sp -= 4
                self.memory.write(self._save_sp, self.regs.read_physical(slot), 4)
        self.stats.window_overflows += 1
        registers = self.timing.window_registers * len(windows)
        cycles = self.timing.trap_entry_cycles + registers * self.timing.memory_op_cycles
        if self._trace_window:
            self.tracer.window_overflow(
                self.stats.cycles, len(windows), self.regs.depth, cycles
            )
        self.stats.spilled_registers += registers
        self.stats.cycles += cycles
        self.stats.overflow_cycles += cycles

    def _fill_window(self, window: int) -> None:
        for slot in reversed(self.regs.window_slots(window)):
            self.regs.write_physical(slot, self.memory.read(self._save_sp, 4))
            self._save_sp += 4
        self.regs.note_fill()
        self.stats.window_underflows += 1
        if self._trace_window:
            self.tracer.window_underflow(
                self.stats.cycles, self.regs.depth, self.timing.underflow_handler_cycles
            )
        self.stats.filled_registers += self.timing.window_registers
        self.stats.cycles += self.timing.underflow_handler_cycles
        self.stats.overflow_cycles += self.timing.underflow_handler_cycles

    def _callint(self, inst: Instruction, pc: int) -> None:
        self.psw.interrupts_enabled = False
        self._enter_frame(inst.dest, self._last_pc, self.npc)

    def _retint(self, inst: Instruction, pc: int) -> int:
        self.psw.interrupts_enabled = True
        return self._ret(inst, pc)

    # miscellaneous -----------------------------------------------------------

    def _ldhi(self, inst: Instruction, pc: int) -> None:
        self.regs.write(inst.dest, (inst.y & 0x7FFFF) << 13)

    def _gtlpc(self, inst: Instruction, pc: int) -> None:
        self.regs.write(inst.dest, self._last_pc)

    def _getpsw(self, inst: Instruction, pc: int) -> None:
        self.psw.cwp = self.regs.cwp
        self.regs.write(inst.dest, self.psw.pack())

    def _putpsw(self, inst: Instruction, pc: int) -> None:
        word = self.regs.read(inst.dest)
        # The CWP field is not writable state here: the real window pointer
        # lives in the register file and only CALL/RETURN rotate it.  A
        # PUTPSW whose CWP bits disagree with the actual pointer would
        # silently desynchronize the PSW (GETPSW used to mask this by
        # re-syncing first), so it traps instead of being half-applied.
        if (word >> 8) & 0xF != self.regs.cwp & 0xF:
            raise Trap(
                TrapKind.ILLEGAL_INSTRUCTION,
                f"PUTPSW CWP {(word >> 8) & 0xF} does not match "
                f"the current window {self.regs.cwp & 0xF}",
                pc=pc,
            )
        self.psw.unpack(word)

    # -- snapshot / restore ------------------------------------------------

    def snapshot(self) -> dict:
        """Complete architectural state, JSON-safe and bit-exact.

        Stats counters are synced first (idempotent), so a snapshot taken
        after manual ``step()``-ing and one taken after a ``run()`` chunk
        covering the same steps are identical.
        """
        self._sync_memory_stats()
        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "machine": self.name,
            "pc": self.pc,
            "npc": self.npc,
            "last_pc": self._last_pc,
            "halted": self._halted,
            "exit_code": self._exit_code,
            "console": "".join(self._console),
            "pending": list(self._pending) if self._pending is not None else None,
            "interrupt_request": self._interrupt_request,
            "interrupts_taken": self.interrupts_taken,
            "save_sp": self._save_sp,
            "regs": {
                "num_windows": self.regs.num_windows,
                "spill_batch": self.regs.spill_batch,
                "data": list(self.regs._regs),
                "cwp": self.regs.cwp,
                "resident": self.regs.resident,
                "depth": self.regs.depth,
                "overflows": self.regs.overflows,
                "underflows": self.regs.underflows,
                "calls": self.regs.calls,
                "returns": self.regs.returns,
            },
            "psw": self.psw.pack(),
            "stats": self.stats.to_dict(),
            "memory": {
                "size": self.memory.size,
                "data": pack_bytes(self.memory._bytes),
                "inst_fetches": self.memory.stats.inst_fetches,
                "data_reads": self.memory.stats.data_reads,
                "data_writes": self.memory.stats.data_writes,
            },
        }

    def restore(self, state: dict) -> None:
        """Install a :meth:`snapshot` taken from a machine of the same shape.

        Shared mutable structures (the register file's backing list, the
        memory bytearray) are updated in place, never replaced — cached
        engine closures and operand evaluators hold references to them.
        """
        if state.get("machine") != self.name:
            raise ValueError(
                f"snapshot is for machine {state.get('machine')!r}, not {self.name!r}"
            )
        if state.get("schema") != SNAPSHOT_SCHEMA_VERSION:
            raise ValueError(f"unsupported snapshot schema {state.get('schema')!r}")
        regs = state["regs"]
        if regs["num_windows"] != self.regs.num_windows:
            raise ValueError(
                f"snapshot has {regs['num_windows']} windows, "
                f"this CPU has {self.regs.num_windows}"
            )
        memory = state["memory"]
        if memory["size"] != self.memory.size:
            raise ValueError(
                f"snapshot memory is {memory['size']} bytes, "
                f"this CPU has {self.memory.size}"
            )
        image = unpack_bytes(memory["data"])
        if len(image) != self.memory.size:
            raise ValueError("snapshot memory image does not match its declared size")
        self.pc = state["pc"]
        self.npc = state["npc"]
        self._last_pc = state["last_pc"]
        self._halted = state["halted"]
        self._exit_code = state["exit_code"]
        self._console = [state["console"]] if state["console"] else []
        pending = state["pending"]
        self._pending = tuple(pending) if pending is not None else None
        self._interrupt_request = state["interrupt_request"]
        self.interrupts_taken = state["interrupts_taken"]
        self._save_sp = state["save_sp"]
        self.regs._regs[:] = regs["data"]
        self.regs.spill_batch = regs["spill_batch"]
        self.regs.cwp = regs["cwp"]
        self.regs.resident = regs["resident"]
        self.regs.depth = regs["depth"]
        self.regs.overflows = regs["overflows"]
        self.regs.underflows = regs["underflows"]
        self.regs.calls = regs["calls"]
        self.regs.returns = regs["returns"]
        self.psw.unpack(state["psw"])
        self.stats = ExecutionStats.from_dict(state["stats"])
        self.memory._bytes[:] = image
        self.memory.stats.inst_fetches = memory["inst_fetches"]
        self.memory.stats.data_reads = memory["data_reads"]
        self.memory.stats.data_writes = memory["data_writes"]

    # -- bookkeeping -----------------------------------------------------------

    def _sync_memory_stats(self) -> None:
        self.stats.data_reads = self.memory.stats.data_reads
        self.stats.data_writes = self.memory.stats.data_writes
        self.stats.window_overflows = self.regs.overflows
        self.stats.window_underflows = self.regs.underflows


def _make_dispatch() -> dict[Opcode, Callable[[CPU, Instruction, int], int | None]]:
    import operator

    table: dict[Opcode, Callable[[CPU, Instruction, int], int | None]] = {
        Opcode.ADD: lambda cpu, i, pc: cpu._alu_add(i, pc),
        Opcode.ADDC: lambda cpu, i, pc: cpu._alu_add(i, pc, with_carry=True),
        Opcode.SUB: lambda cpu, i, pc: cpu._alu_sub(i, pc),
        Opcode.SUBC: lambda cpu, i, pc: cpu._alu_sub(i, pc, with_carry=True),
        Opcode.SUBR: lambda cpu, i, pc: cpu._alu_sub(i, pc, reverse=True),
        Opcode.SUBCR: lambda cpu, i, pc: cpu._alu_sub(i, pc, with_carry=True, reverse=True),
        Opcode.AND: lambda cpu, i, pc: cpu._alu_logic(i, pc, operator.and_),
        Opcode.OR: lambda cpu, i, pc: cpu._alu_logic(i, pc, operator.or_),
        Opcode.XOR: lambda cpu, i, pc: cpu._alu_logic(i, pc, operator.xor),
        Opcode.SLL: lambda cpu, i, pc: cpu._alu_shift(i, pc, "sll"),
        Opcode.SRL: lambda cpu, i, pc: cpu._alu_shift(i, pc, "srl"),
        Opcode.SRA: lambda cpu, i, pc: cpu._alu_shift(i, pc, "sra"),
        Opcode.JMP: CPU._jmp,
        Opcode.JMPR: CPU._jmpr,
        Opcode.CALL: CPU._call,
        Opcode.CALLR: CPU._callr,
        Opcode.RET: CPU._ret,
        Opcode.CALLINT: lambda cpu, i, pc: cpu._callint(i, pc),
        Opcode.RETINT: CPU._retint,
        Opcode.LDHI: lambda cpu, i, pc: cpu._ldhi(i, pc),
        Opcode.GTLPC: lambda cpu, i, pc: cpu._gtlpc(i, pc),
        Opcode.GETPSW: lambda cpu, i, pc: cpu._getpsw(i, pc),
        Opcode.PUTPSW: lambda cpu, i, pc: cpu._putpsw(i, pc),
    }
    for opcode in CPU._LOAD_SPEC:
        table[opcode] = lambda cpu, i, pc: cpu._load(i, pc)
    for opcode in CPU._STORE_SPEC:
        table[opcode] = lambda cpu, i, pc: cpu._store(i, pc)
    return table


_DISPATCH = _make_dispatch()
