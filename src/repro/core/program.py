"""Program images: the contract between assembler/compiler and simulator.

A :class:`Program` is a set of loadable segments plus an entry point and a
symbol table.  Both the RISC I toolchain and the VAX-like baseline use this
representation, which keeps the experiment harnesses ISA-agnostic.
"""

from __future__ import annotations

import dataclasses

#: Default load addresses.  Code is kept off page zero so that null-pointer
#: style bugs in benchmark programs fault loudly instead of executing data.
DEFAULT_CODE_BASE = 0x1000


@dataclasses.dataclass(frozen=True)
class Segment:
    """One loadable chunk of bytes."""

    base: int
    data: bytes
    name: str = ""

    @property
    def end(self) -> int:
        return self.base + len(self.data)


@dataclasses.dataclass(frozen=True)
class Program:
    """A loadable, runnable program image."""

    segments: tuple[Segment, ...]
    entry: int
    symbols: dict[str, int] = dataclasses.field(default_factory=dict)
    #: address -> source line, for diagnostics.
    source_map: dict[int, str] = dataclasses.field(default_factory=dict)
    #: instruction start address -> (function, source line) — the profiler's
    #: line table.  Keys are the first address of each instruction; a PC is
    #: resolved by floor lookup, so multi-word pseudos and variable-length
    #: CISC instructions need no per-byte entries.  Line 0 means "no
    #: high-level source line" (hand-written or runtime assembly).
    line_table: dict[int, tuple[str, int]] = dataclasses.field(default_factory=dict)
    #: name of the high-level source file the line table refers to.
    source_file: str = ""

    @property
    def code_size(self) -> int:
        """Total bytes of code+data in the image (the paper's size metric
        counts program bytes; our segments separate code from data, so the
        named ``code`` segment is the one used for size comparisons)."""
        for segment in self.segments:
            if segment.name == "code":
                return len(segment.data)
        return sum(len(segment.data) for segment in self.segments)

    @property
    def total_size(self) -> int:
        return sum(len(segment.data) for segment in self.segments)

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"undefined symbol: {name!r}") from None

    def describe(self, address: int) -> str:
        """Best-effort source location for an address."""
        return self.source_map.get(address, f"{address:#010x}")
