"""Timing model of the RISC I processor.

The paper's prototype targets a 400 ns cycle.  The timing rules are simple
by design — that simplicity is the paper's thesis:

* register-register operations, jumps, calls and returns: 1 cycle;
* loads and stores: 2 cycles (the extra cycle is the data-memory access);
* delayed jumps remove any taken-branch penalty;
* a window overflow or underflow traps to a short software handler that
  saves or restores one window (16 registers) on the register-save stack.

The handler cost below is ``TRAP_ENTRY_CYCLES`` of bookkeeping (trap entry,
pointer arithmetic, return from trap) plus 16 two-cycle memory operations.
"""

from __future__ import annotations

import dataclasses

from repro.isa.opcodes import Opcode, opcode_info


@dataclasses.dataclass(frozen=True)
class RiscTiming:
    """Cycle cost model for RISC I."""

    cycle_ns: float = 400.0
    trap_entry_cycles: int = 8
    window_registers: int = 16
    memory_op_cycles: int = 2

    def instruction_cycles(self, opcode: Opcode) -> int:
        """Cycles to execute one instruction (excluding trap handling).

        Register operations take one cycle; a memory-access instruction
        pays ``memory_op_cycles`` in total, so raising that knob models a
        slower memory system (experiment E13).
        """
        if opcode_info(opcode).memory_access:
            return self.memory_op_cycles
        return 1

    @property
    def overflow_handler_cycles(self) -> int:
        """Cycles for the window-overflow handler (16 stores + entry/exit)."""
        return self.trap_entry_cycles + self.window_registers * self.memory_op_cycles

    @property
    def underflow_handler_cycles(self) -> int:
        """Cycles for the window-underflow handler (16 loads + entry/exit)."""
        return self.trap_entry_cycles + self.window_registers * self.memory_op_cycles

    def nanoseconds(self, cycles: int) -> float:
        return cycles * self.cycle_ns

    def milliseconds(self, cycles: int) -> float:
        return cycles * self.cycle_ns / 1e6
