"""Execution statistics gathered by the simulator.

The paper's evaluation is built on exactly these quantities: executed
instruction counts by category, cycle counts, data-memory traffic, and
procedure-call behaviour (call depth excursions, window overflow and
underflow rates).
"""

from __future__ import annotations

import dataclasses
from collections import Counter

from repro.core.api import register_stats_type
from repro.isa.opcodes import Category, Opcode, opcode_info


@dataclasses.dataclass
class ExecutionStats:
    """Counters accumulated over one program run."""

    instructions: int = 0
    cycles: int = 0
    by_opcode: Counter = dataclasses.field(default_factory=Counter)
    data_reads: int = 0
    data_writes: int = 0
    calls: int = 0
    returns: int = 0
    window_overflows: int = 0
    window_underflows: int = 0
    overflow_cycles: int = 0
    spilled_registers: int = 0
    filled_registers: int = 0
    max_call_depth: int = 1
    delay_slot_nops: int = 0
    taken_jumps: int = 0
    untaken_jumps: int = 0

    @property
    def data_references(self) -> int:
        return self.data_reads + self.data_writes

    @property
    def by_category(self) -> Counter:
        """Executed-instruction counts grouped by category."""
        grouped: Counter = Counter()
        for opcode, count in self.by_opcode.items():
            grouped[opcode_info(opcode).category] += count
        return grouped

    def mix(self) -> dict[Category, float]:
        """The dynamic instruction mix as fractions of all instructions."""
        total = self.instructions or 1
        return {cat: count / total for cat, count in self.by_category.items()}

    def record(self, opcode: Opcode, cycles: int) -> None:
        self.instructions += 1
        self.cycles += cycles
        self.by_opcode[opcode] += 1

    def to_dict(self) -> dict:
        """JSON-safe form; opcodes are stored by mnemonic name."""
        payload = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
            if field.name != "by_opcode"
        }
        payload["by_opcode"] = {op.name: count for op, count in self.by_opcode.items()}
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutionStats":
        data = dict(payload)
        data["by_opcode"] = Counter(
            {Opcode[name]: count for name, count in data.get("by_opcode", {}).items()}
        )
        return cls(**data)

    def summary(self) -> str:
        """A human-readable one-run summary."""
        lines = [
            f"instructions executed : {self.instructions}",
            f"cycles                : {self.cycles}",
            f"CPI                   : {self.cycles / self.instructions:.3f}"
            if self.instructions
            else "CPI                   : n/a",
            f"data memory refs      : {self.data_references}"
            f" ({self.data_reads} reads, {self.data_writes} writes)",
            f"calls / returns       : {self.calls} / {self.returns}",
            f"window overflows      : {self.window_overflows}",
            f"window underflows     : {self.window_underflows}",
            f"max call depth        : {self.max_call_depth}",
        ]
        return "\n".join(lines)


register_stats_type("risc1", ExecutionStats)
