"""Predecoded fast execution engine for the RISC I CPU.

The reference interpreter (:meth:`repro.core.cpu.CPU.step`) re-fetches and
re-decodes every instruction from memory, dispatches through a dict, and
re-resolves register-window indices on every operand access.  That is the
hottest path in the whole repository — every experiment, the farm and the
profiler sit on top of it — and none of that work depends on anything but
the instruction word itself.

This engine translates each instruction word of the loaded program, once,
into a specialized closure:

* operand register numbers are resolved to per-window physical-index
  tables (one list lookup per access instead of three calls);
* immediates, long-format targets (``JMPR``/``CALLR``/``LDHI``) and shift
  amounts are sign-extended and folded at translation time;
* the per-opcode variant (immediate vs. register operand, SCC vs. not,
  jump condition) is chosen at translation time, not per step;
* timing cost and opcode identity are kept in parallel arrays so the
  run-to-halt loop does no dict or attribute lookups per step.

Exactness is the contract, not a goal: the engine must produce the same
exit code, output, every :class:`~repro.core.stats.ExecutionStats` field,
the same memory-traffic counters and an identical tracer event stream as
the reference loop (``tests/test_engine_diff.py`` enforces this
differentially on every bundled workload).  Two inner loops keep that
cheap:

* the **batched** loop runs when no tracer kind is wanted and no
  ``on_execute`` hook is installed.  Per-word execution counts accumulate
  in an array and are folded into ``instructions``/``cycles``/
  ``by_opcode``/``inst_fetches`` when the run leaves the fast path —
  nothing mid-run can observe the difference;
* the **exact** loop (any tracing or hook active) updates stats per step
  so every event timestamp matches the reference loop bit for bit.

Rare instructions that need interpreter state the engine does not model
(``GTLPC``/``CALLINT`` read the previous PC), undecodable words, and
out-of-range or misaligned PCs fall back to ``cpu.step()`` for that one
step — semantics by construction.

Self-modifying code is safe: stores from translated closures check the
predecoded range inline, and a :attr:`Memory.write_watch` hook (installed
for the duration of the run) catches every other accounted write — window
spills and fallback-step stores included — invalidating the affected
word so it is re-translated on next execution.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.api import MachineHalted
from repro.isa.conditions import Cond, ConditionCodes, cond_holds
from repro.isa.encoding import EncodingError, Instruction, decode
from repro.isa.opcodes import Opcode
from repro.isa.registers import physical_index
from repro.machine.memory import MemoryError_
from repro.machine.traps import Trap, TrapKind

WORD = 0xFFFFFFFF
SIGN = 0x80000000


@lru_cache(maxsize=None)
def _window_maps(num_windows: int) -> tuple[tuple[int, ...], ...]:
    """``maps[reg][cwp]`` -> physical register index, per window count."""
    return tuple(
        tuple(physical_index(window, reg, num_windows) for window in range(num_windows))
        for reg in range(32)
    )


class PredecodedEngine:
    """One fast run-to-halt executor bound to a :class:`~repro.core.cpu.CPU`.

    Built fresh per ``run()`` call (translation is lazy and costs far less
    than the millions of steps it serves), covering the address range
    spanned by the loaded program's segments.
    """

    def __init__(self, cpu):
        self.cpu = cpu
        segments = cpu._program.segments
        base = min(segment.base for segment in segments) & ~3
        end = max(segment.base + len(segment.data) for segment in segments)
        end = min((end + 3) & ~3, cpu.memory.size)
        self.base = base
        self.span = max(end - base, 0)
        size = self.span >> 2
        #: per-word translation state: a closure, ``False`` (permanently
        #: interpret via ``cpu.step()``) or ``None`` (translate on demand)
        self.handlers: list = [None] * size
        self.costs = [0] * size
        self.ops: list = [None] * size
        self.names = [""] * size
        self.insts: list = [None] * size
        #: batched-loop execution counts, folded into stats on flush
        self.counts = [0] * size
        self.maps = _window_maps(cpu.regs.num_windows)

    # -- bookkeeping -------------------------------------------------------

    def _flush(self, idx: int) -> None:
        """Fold one word's batched executions into the CPU stats."""
        count = self.counts[idx]
        if count:
            self.counts[idx] = 0
            stats = self.cpu.stats
            stats.instructions += count
            stats.cycles += count * self.costs[idx]
            stats.by_opcode[self.ops[idx]] += count

    def _flush_all(self) -> None:
        for idx, count in enumerate(self.counts):
            if count:
                self._flush(idx)

    def _note_write(self, address: int, width: int = 4) -> None:
        """Invalidate the predecoded word covering a written address."""
        offset = address - self.base
        if 0 <= offset < self.span:
            idx = offset >> 2
            self._flush(idx)
            self.handlers[idx] = None

    # -- translation -------------------------------------------------------

    def _compile_word(self, idx: int):
        """Translate the word at slot ``idx``; returns its handler."""
        self._flush(idx)  # credit any batched executions of the old word
        cpu = self.cpu
        address = self.base + (idx << 2)
        word = int.from_bytes(cpu.memory._bytes[address : address + 4], "big")
        try:
            inst = decode(word)
        except EncodingError:
            # the reference loop raises EncodingError from the decoder;
            # falling back reproduces that exactly
            self.handlers[idx] = False
            return False
        handler = self._make_handler(inst, address)
        self.handlers[idx] = handler
        if handler is not False:
            self.costs[idx] = cpu.timing.instruction_cycles(inst.opcode)
            self.ops[idx] = inst.opcode
            self.names[idx] = inst.opcode.name
            self.insts[idx] = inst
        return handler

    def _make_handler(self, inst: Instruction, pc: int):
        """Build the specialized closure for one decoded instruction.

        Returns ``False`` for the few opcodes that need per-step
        interpreter state (``GTLPC``/``CALLINT`` read the previous PC) —
        those run through ``cpu.step()``.
        """
        cpu = self.cpu
        regs = cpu.regs
        _regs = regs._regs  # the backing list; never reassigned
        psw = cpu.psw
        stats = cpu.stats
        maps = self.maps
        op = inst.opcode
        dest = inst.dest
        # visible -> physical index tables, one per operand.  ``dmap`` is
        # None for r0 destinations (writes to r0 are discarded); reads of
        # r0 go through physical slot 0, which is never written.
        dmap = maps[dest] if dest else None
        amap = maps[inst.rs1]
        if inst.imm:
            bmap = None
            bval = inst.s2 & WORD
        else:
            bmap = maps[inst.s2]
            bval = 0
        scc = inst.scc

        # arithmetic / logic -------------------------------------------------
        if op is Opcode.ADD:
            if scc:
                def run():
                    cwp = regs.cwp
                    a = _regs[amap[cwp]]
                    b = bval if bmap is None else _regs[bmap[cwp]]
                    raw = a + b
                    result = raw & WORD
                    if dmap is not None:
                        _regs[dmap[cwp]] = result
                    psw.cc = ConditionCodes(
                        result == 0,
                        result >= SIGN,
                        raw > WORD,
                        bool(~(a ^ b) & (a ^ result) & SIGN),
                    )
            elif dmap is None:
                def run():  # add r0, ... — the canonical nop
                    return None
            else:
                def run():
                    cwp = regs.cwp
                    b = bval if bmap is None else _regs[bmap[cwp]]
                    _regs[dmap[cwp]] = (_regs[amap[cwp]] + b) & WORD
            return run

        if op is Opcode.SUB:
            if scc:
                def run():
                    cwp = regs.cwp
                    a = _regs[amap[cwp]]
                    b = bval if bmap is None else _regs[bmap[cwp]]
                    raw = a - b
                    result = raw & WORD
                    if dmap is not None:
                        _regs[dmap[cwp]] = result
                    psw.cc = ConditionCodes(
                        result == 0,
                        result >= SIGN,
                        raw >= 0,  # carry means "no borrow"
                        bool((a ^ b) & (a ^ result) & SIGN),
                    )
            elif dmap is None:
                def run():
                    return None
            else:
                def run():
                    cwp = regs.cwp
                    b = bval if bmap is None else _regs[bmap[cwp]]
                    _regs[dmap[cwp]] = (_regs[amap[cwp]] - b) & WORD
            return run

        if op in (Opcode.AND, Opcode.OR, Opcode.XOR):
            if op is Opcode.AND:
                combine = int.__and__
            elif op is Opcode.OR:
                combine = int.__or__
            else:
                combine = int.__xor__
            if scc:
                def run():
                    cwp = regs.cwp
                    b = bval if bmap is None else _regs[bmap[cwp]]
                    result = combine(_regs[amap[cwp]], b)
                    if dmap is not None:
                        _regs[dmap[cwp]] = result
                    psw.cc = ConditionCodes(result == 0, result >= SIGN, False, False)
            elif dmap is None:
                def run():
                    return None
            else:
                def run():
                    cwp = regs.cwp
                    b = bval if bmap is None else _regs[bmap[cwp]]
                    _regs[dmap[cwp]] = combine(_regs[amap[cwp]], b)
            return run

        if op in (Opcode.SLL, Opcode.SRL, Opcode.SRA):
            kind = op
            shift = bval & 31 if bmap is None else 0

            def compute(cwp):
                a = _regs[amap[cwp]]
                amount = shift if bmap is None else _regs[bmap[cwp]] & 31
                if kind is Opcode.SLL:
                    return (a << amount) & WORD
                if kind is Opcode.SRL:
                    return a >> amount
                return ((a - ((a & SIGN) << 1)) >> amount) & WORD  # sra

            if scc:
                def run():
                    cwp = regs.cwp
                    result = compute(cwp)
                    if dmap is not None:
                        _regs[dmap[cwp]] = result
                    psw.cc = ConditionCodes(result == 0, result >= SIGN, False, False)
            else:
                def run():
                    cwp = regs.cwp
                    result = compute(cwp)
                    if dmap is not None:
                        _regs[dmap[cwp]] = result
            return run

        # carry/reverse arithmetic is rare in compiled code; delegating to
        # the interpreter's handler (decode/dispatch already paid) keeps
        # the tricky flag semantics in exactly one place
        if op is Opcode.ADDC:
            return lambda: cpu._alu_add(inst, pc, True)
        if op is Opcode.SUBC:
            return lambda: cpu._alu_sub(inst, pc, True)
        if op is Opcode.SUBR:
            return lambda: cpu._alu_sub(inst, pc, False, True)
        if op is Opcode.SUBCR:
            return lambda: cpu._alu_sub(inst, pc, True, True)

        # memory -------------------------------------------------------------
        memory = cpu.memory
        mem_bytes = memory._bytes
        mem_size = memory.size
        mem_stats = memory.stats

        if op in cpu._LOAD_SPEC:
            width, signed = cpu._LOAD_SPEC[op]
            sign_bit = 1 << (width * 8 - 1)
            sign_span = 1 << (width * 8)

            def run():
                cwp = regs.cwp
                b = bval if bmap is None else _regs[bmap[cwp]]
                address = (_regs[amap[cwp]] + b) & WORD
                if width != 1 and address % width:
                    raise MemoryError_(
                        TrapKind.ALIGNMENT, f"{width}-byte access at {address:#x}", pc=pc
                    )
                if address + width > mem_size:
                    raise MemoryError_(
                        TrapKind.BUS_ERROR,
                        f"access of {width} byte(s) at {address:#x} exceeds {mem_size:#x}",
                        pc=pc,
                    )
                value = int.from_bytes(mem_bytes[address : address + width], "big")
                mem_stats.data_reads += 1
                if signed and value & sign_bit:
                    value -= sign_span
                if cpu._trace_mem:
                    cpu.tracer.mem_ref(stats.cycles, pc, address, "r", width)
                if dmap is not None:
                    _regs[dmap[cwp]] = value & WORD

            return run

        if op in cpu._STORE_SPEC:
            width = cpu._STORE_SPEC[op]
            value_map = maps[dest]  # source operand; r0 reads physical 0 (= 0)
            value_mask = (1 << (width * 8)) - 1
            mmio_base = 0x7F000000
            code_base = self.base
            code_end = self.base + self.span
            note_write = self._note_write

            def run():
                cwp = regs.cwp
                b = bval if bmap is None else _regs[bmap[cwp]]
                address = (_regs[amap[cwp]] + b) & WORD
                value = _regs[value_map[cwp]]
                if address >= mmio_base:
                    cpu._mmio_store(address, value, width, pc)
                    return None
                if width != 1 and address % width:
                    raise MemoryError_(
                        TrapKind.ALIGNMENT, f"{width}-byte access at {address:#x}", pc=pc
                    )
                if address + width > mem_size:
                    raise MemoryError_(
                        TrapKind.BUS_ERROR,
                        f"access of {width} byte(s) at {address:#x} exceeds {mem_size:#x}",
                        pc=pc,
                    )
                mem_bytes[address : address + width] = (value & value_mask).to_bytes(
                    width, "big"
                )
                mem_stats.data_writes += 1
                if code_base <= address < code_end:
                    note_write(address, width)  # self-modifying code
                if cpu._trace_mem:
                    cpu.tracer.mem_ref(stats.cycles, pc, address, "w", width)

            return run

        # control ------------------------------------------------------------
        if op is Opcode.JMPR:
            return self._make_relative_jump(Cond(dest & 0xF), (pc + inst.y) & WORD)

        if op is Opcode.JMP:
            cond = Cond(dest & 0xF)

            def run():
                cwp = regs.cwp
                b = bval if bmap is None else _regs[bmap[cwp]]
                target = (_regs[amap[cwp]] + b) & WORD
                if cond_holds(cond, psw.cc):
                    stats.taken_jumps += 1
                    return target
                stats.untaken_jumps += 1
                return None

            return run

        if op is Opcode.CALLR:
            target = (pc + inst.y) & WORD
            pend = ("call", dest, pc)

            def run():
                cpu._pending = pend
                return target

            return run

        if op is Opcode.CALL:
            pend = ("call", dest, pc)

            def run():
                cwp = regs.cwp
                b = bval if bmap is None else _regs[bmap[cwp]]
                cpu._pending = pend
                return (_regs[amap[cwp]] + b) & WORD

            return run

        if op is Opcode.RET:
            pend = ("ret", 0, pc)

            def run():
                cwp = regs.cwp
                b = bval if bmap is None else _regs[bmap[cwp]]
                cpu._pending = pend
                return (_regs[amap[cwp]] + b) & WORD

            return run

        if op is Opcode.RETINT:
            return lambda: cpu._retint(inst, pc)

        # miscellaneous ------------------------------------------------------
        if op is Opcode.LDHI:
            high = (inst.y & 0x7FFFF) << 13

            def run():
                if dmap is not None:
                    _regs[dmap[regs.cwp]] = high

            return run

        if op is Opcode.GETPSW:
            return lambda: cpu._getpsw(inst, pc)
        if op is Opcode.PUTPSW:
            return lambda: cpu._putpsw(inst, pc)

        # GTLPC / CALLINT read the previous PC, which only the step loop
        # maintains mid-iteration; anything else unknown is the
        # interpreter's problem too (it raises the illegal-instruction
        # trap exactly as the reference does)
        return False

    def _make_relative_jump(self, cond: Cond, target: int):
        """A JMPR closure with the condition test specialized per condition."""
        psw = self.cpu.psw
        stats = self.cpu.stats

        if cond is Cond.ALW:
            def run():
                stats.taken_jumps += 1
                return target

            return run

        if cond is Cond.NOP:
            def run():
                stats.untaken_jumps += 1
                return None

            return run

        # the compiler emits only a handful of condition tests; inline the
        # common ones as direct condition-code reads
        if cond is Cond.EQ:
            def test():
                return psw.cc.z
        elif cond is Cond.NE:
            def test():
                return not psw.cc.z
        elif cond is Cond.LT:
            def test():
                cc = psw.cc
                return cc.n != cc.v
        elif cond is Cond.GE:
            def test():
                cc = psw.cc
                return cc.n == cc.v
        elif cond is Cond.GT:
            def test():
                cc = psw.cc
                return not cc.z and cc.n == cc.v
        elif cond is Cond.LE:
            def test():
                cc = psw.cc
                return cc.z or cc.n != cc.v
        else:
            def test():
                return cond_holds(cond, psw.cc)

        def run():
            if test():
                stats.taken_jumps += 1
                return target
            stats.untaken_jumps += 1
            return None

        return run

    # -- the run loops -----------------------------------------------------

    def run(self, limit: int) -> None:
        """Execute up to ``limit`` steps; raises on halt or trap.

        Returns normally only when the step budget ran out — the CPU's
        ``run()`` wrapper turns that into :class:`StepLimitExceeded`.
        """
        cpu = self.cpu
        traced = (
            cpu._trace_retire
            or cpu._trace_mem
            or cpu._trace_flow
            or cpu._trace_window
            or cpu._trace_trap
        )
        memory = cpu.memory
        previous_watch = memory.write_watch
        memory.write_watch = self._note_write
        try:
            if traced or cpu.on_execute is not None:
                self._run_exact(limit)
            else:
                self._run_batched(limit)
        finally:
            memory.write_watch = previous_watch

    def _run_batched(self, limit: int) -> None:
        """The no-observer loop: stats are batched per predecoded word."""
        cpu = self.cpu
        psw = cpu.psw
        handlers = self.handlers
        counts = self.counts
        base = self.base
        span = self.span
        compile_word = self._compile_word
        pc = cpu.pc
        npc = cpu.npc
        last_pc = cpu._last_pc
        fetches = 0
        try:
            for _ in range(limit):
                if cpu._interrupt_request is not None:
                    if (
                        psw.interrupts_enabled
                        and cpu._pending is None
                        and npc == pc + 4
                    ):
                        cpu.pc = pc
                        cpu.npc = npc
                        cpu._deliver_interrupt()
                        pc = cpu.pc
                        npc = cpu.npc
                offset = pc - base
                if 0 <= offset < span and not offset & 3:
                    idx = offset >> 2
                    handler = handlers[idx]
                    if handler is None:
                        handler = compile_word(idx)
                else:
                    handler = False
                if handler is False:
                    cpu.pc = pc
                    cpu.npc = npc
                    cpu._last_pc = last_pc
                    cpu.step()
                    pc = cpu.pc
                    npc = cpu.npc
                    last_pc = cpu._last_pc
                    continue
                pending = cpu._pending
                if pending is not None:
                    cpu._pending = None
                fetches += 1
                try:
                    target = handler()
                except MachineHalted:
                    counts[idx] += 1  # the halting store is still recorded
                    raise
                if pending is not None:
                    if cpu._pending is not None:
                        raise Trap(
                            TrapKind.ILLEGAL_INSTRUCTION,
                            "control transfer in a CALL/RETURN delay slot",
                            pc=pc,
                        )
                    cpu.pc = pc
                    cpu.npc = npc
                    cpu._apply_window_change(pending)
                counts[idx] += 1
                last_pc = pc
                if target is None:
                    pc = npc
                    npc = pc + 4
                else:
                    pc, npc = npc, target
        finally:
            cpu.pc = pc
            cpu.npc = npc
            cpu._last_pc = last_pc
            cpu.memory.stats.inst_fetches += fetches
            self._flush_all()

    def _run_exact(self, limit: int) -> None:
        """The observed loop: per-step stats so event timestamps match."""
        cpu = self.cpu
        psw = cpu.psw
        stats = cpu.stats
        by_opcode = stats.by_opcode
        mem_stats = cpu.memory.stats
        tracer = cpu.tracer
        trace_retire = cpu._trace_retire
        trace_trap = cpu._trace_trap
        handlers = self.handlers
        costs = self.costs
        ops = self.ops
        names = self.names
        insts = self.insts
        base = self.base
        span = self.span
        compile_word = self._compile_word
        pc = cpu.pc
        npc = cpu.npc
        last_pc = cpu._last_pc
        try:
            for _ in range(limit):
                if cpu._interrupt_request is not None:
                    if (
                        psw.interrupts_enabled
                        and cpu._pending is None
                        and npc == pc + 4
                    ):
                        cpu.pc = pc
                        cpu.npc = npc
                        cpu._deliver_interrupt()
                        pc = cpu.pc
                        npc = cpu.npc
                offset = pc - base
                if 0 <= offset < span and not offset & 3:
                    idx = offset >> 2
                    handler = handlers[idx]
                    if handler is None:
                        handler = compile_word(idx)
                else:
                    handler = False
                if handler is False:
                    cpu.pc = pc
                    cpu.npc = npc
                    cpu._last_pc = last_pc
                    cpu.step()
                    pc = cpu.pc
                    npc = cpu.npc
                    last_pc = cpu._last_pc
                    continue
                pending = cpu._pending
                if pending is not None:
                    cpu._pending = None
                mem_stats.inst_fetches += 1
                hook = cpu.on_execute
                if hook is not None:
                    cpu.pc = pc
                    cpu.npc = npc
                    cpu._last_pc = last_pc
                    hook(pc, insts[idx])
                cost = costs[idx]
                try:
                    target = handler()
                except MachineHalted:
                    stats.instructions += 1
                    stats.cycles += cost
                    by_opcode[ops[idx]] += 1
                    if trace_retire:
                        tracer.retire(stats.cycles, pc, names[idx], cost)
                    raise
                except Trap as trap:
                    if trace_trap:
                        tracer.trap(stats.cycles, pc, trap.kind.name, trap.detail)
                    raise
                if pending is not None:
                    if cpu._pending is not None:
                        raise Trap(
                            TrapKind.ILLEGAL_INSTRUCTION,
                            "control transfer in a CALL/RETURN delay slot",
                            pc=pc,
                        )
                    cpu.pc = pc
                    cpu.npc = npc
                    cpu._apply_window_change(pending)
                old_pc = pc
                last_pc = pc
                if target is None:
                    pc = npc
                    npc = pc + 4
                else:
                    pc, npc = npc, target
                stats.instructions += 1
                stats.cycles += cost
                by_opcode[ops[idx]] += 1
                if trace_retire:
                    tracer.retire(stats.cycles, old_pc, names[idx], cost)
        finally:
            cpu.pc = pc
            cpu.npc = npc
            cpu._last_pc = last_pc
