"""The RISC I processor core: cycle-level simulator, timing and statistics.

This is the paper's primary contribution, executable: a register-windowed,
delayed-jump, load/store machine that runs programs produced by the
assembler (:mod:`repro.asm`) or the mini-C compiler (:mod:`repro.cc`).
"""

from repro.core.api import (
    DEFAULT_ENGINE,
    DEFAULT_MAX_STEPS,
    VALID_ENGINES,
    Machine,
    MachineHalted,
    RunResult,
    StepLimitExceeded,
    resolve_engine,
)
from repro.core.cpu import CPU, ExecutionResult
from repro.core.program import Program, Segment
from repro.core.stats import ExecutionStats
from repro.core.timing import RiscTiming

__all__ = [
    "CPU",
    "DEFAULT_ENGINE",
    "DEFAULT_MAX_STEPS",
    "ExecutionResult",
    "ExecutionStats",
    "Machine",
    "MachineHalted",
    "Program",
    "RiscTiming",
    "RunResult",
    "Segment",
    "StepLimitExceeded",
    "VALID_ENGINES",
    "resolve_engine",
]
