"""E5 — Figure: overlapped register windows.

Renders the physical-register mapping of a call chain A -> B -> C, making
the overlap (A's LOW registers are B's HIGH registers) visible, straight
from :func:`repro.isa.registers.physical_index`.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.isa.registers import HIGH_REGS, LOCAL_REGS, LOW_REGS, physical_index


def run(scale: str = "default") -> Table:
    table = Table(
        title="E5 / Figure: overlapped register windows (call chain A->B->C)",
        headers=["visible registers", "proc A (w0)", "proc B (w1)", "proc C (w2)"],
    )

    def span(window: int, regs: range) -> str:
        slots = [physical_index(window, r) for r in regs]
        return f"p{min(slots)}..p{max(slots)}"

    table.add_row("r26-r31 HIGH", span(0, HIGH_REGS), span(1, HIGH_REGS), span(2, HIGH_REGS))
    table.add_row("r16-r25 LOCAL", span(0, LOCAL_REGS), span(1, LOCAL_REGS), span(2, LOCAL_REGS))
    table.add_row("r10-r15 LOW", span(0, LOW_REGS), span(1, LOW_REGS), span(2, LOW_REGS))
    table.add_row("r0-r9 GLOBAL", "p0..p9", "p0..p9", "p0..p9")
    table.add_note("A's LOW physical range equals B's HIGH range: parameters pass with no copying")
    return table


def render_figure() -> str:
    """ASCII diagram of three overlapping windows."""
    lines = [run().render(), ""]
    a_low = [physical_index(0, r) for r in LOW_REGS]
    b_high = [physical_index(1, r) for r in HIGH_REGS]
    lines.append(
        f"overlap check: A.LOW -> physical {a_low}\n"
        f"               B.HIGH -> physical {b_high}"
    )
    return "\n".join(lines)
