"""E16 — dynamic instruction mix on RISC I.

The RISC papers characterize compiled workloads by their executed
instruction mix — the data behind every design decision: register
operations dominate (hence single-cycle ALU), memory operations are a
modest minority (hence load/store discipline suffices), and control
transfers are frequent enough that delayed jumps matter.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.report import Table
from repro.experiments import common
from repro.isa.opcodes import Category, Opcode
from repro.workloads import BENCHMARK_SUITE

_GROUPS = (
    ("arith/logic", Category.ARITH),
    ("load/store", Category.MEMORY),
    ("control", Category.CONTROL),
    ("misc", Category.MISC),
)


def run(scale: str = "default") -> Table:
    table = Table(
        title="E16: dynamic instruction mix on RISC I (% of executed instructions)",
        headers=["program"]
        + [name for name, _ in _GROUPS]
        + ["calls+rets", "loads", "stores"],
    )
    suite_totals: Counter = Counter()
    suite_instructions = 0
    for name in BENCHMARK_SUITE:
        stats = common.executed(name, "risc1", scale).stats
        total = stats.instructions
        suite_instructions += total
        by_category = stats.by_category
        for category, count in by_category.items():
            suite_totals[category] += count
        calls_rets = sum(
            stats.by_opcode.get(op, 0)
            for op in (Opcode.CALL, Opcode.CALLR, Opcode.RET)
        )
        suite_totals["calls_rets"] += calls_rets
        loads = sum(
            stats.by_opcode.get(op, 0)
            for op in (Opcode.LDL, Opcode.LDSU, Opcode.LDSS, Opcode.LDBU, Opcode.LDBS)
        )
        stores = sum(
            stats.by_opcode.get(op, 0) for op in (Opcode.STL, Opcode.STS, Opcode.STB)
        )
        suite_totals["loads"] += loads
        suite_totals["stores"] += stores
        table.add_row(
            name,
            *[100.0 * by_category.get(cat, 0) / total for _, cat in _GROUPS],
            100.0 * calls_rets / total,
            100.0 * loads / total,
            100.0 * stores / total,
        )
    table.add_row(
        "SUITE",
        *[100.0 * suite_totals.get(cat, 0) / suite_instructions for _, cat in _GROUPS],
        100.0 * suite_totals["calls_rets"] / suite_instructions,
        100.0 * suite_totals["loads"] / suite_instructions,
        100.0 * suite_totals["stores"] / suite_instructions,
    )
    table.add_note(
        "register operations dominate; loads outnumber stores; the mix is "
        "the empirical basis for the single-cycle ALU + load/store design"
    )
    return table
