"""E8 — benchmark program size.

The paper's code-size table: RISC I programs against the four CISC
machines, as ratios (other / RISC I; below 1.0 means denser than RISC I).
Published result: RISC I code runs roughly 1.2-1.5x the size of VAX code
and close to the 16-bit machines — fixed 32-bit instructions cost far
less density than the "reduced" name suggests.
"""

from __future__ import annotations

from repro.analysis.report import Table, geometric_mean
from repro.baselines.estimators import M68000, Z8002
from repro.experiments import common
from repro.workloads import BENCHMARK_SUITE


def run(scale: str = "default") -> Table:
    table = Table(
        title="E8: program size (bytes, and ratio to RISC I)",
        headers=[
            "program",
            "RISC I",
            "VAX-like",
            "VAX/RISC",
            "M68000",
            "68K/RISC",
            "Z8002",
            "Z8K/RISC",
        ],
    )
    vax_ratios, m68k_ratios, z8k_ratios = [], [], []
    for name in BENCHMARK_SUITE:
        risc = common.compiled(name, "risc1", scale)
        cisc = common.compiled(name, "cisc", scale)
        ir_program = risc.ir
        m68k_bytes = M68000.code_size(ir_program)
        z8k_bytes = Z8002.code_size(ir_program)
        vax_ratio = cisc.code_size / risc.code_size
        m68k_ratio = m68k_bytes / risc.code_size
        z8k_ratio = z8k_bytes / risc.code_size
        vax_ratios.append(vax_ratio)
        m68k_ratios.append(m68k_ratio)
        z8k_ratios.append(z8k_ratio)
        table.add_row(
            name,
            risc.code_size,
            cisc.code_size,
            vax_ratio,
            m68k_bytes,
            m68k_ratio,
            z8k_bytes,
            z8k_ratio,
        )
    table.add_row(
        "geometric mean",
        "",
        "",
        geometric_mean(vax_ratios),
        "",
        geometric_mean(m68k_ratios),
        "",
        geometric_mean(z8k_ratios),
    )
    table.add_note("ratio < 1.0 means the other machine's code is denser than RISC I's")
    return table
