"""``risc1-experiments`` — regenerate every table and figure of the paper."""

from __future__ import annotations

import argparse
import importlib
import time

EXPERIMENTS = {
    "e1": ("e1_characteristics", "Table I: processor characteristics"),
    "e2": ("e2_hll_weights", "Table II: weighted HLL statement cost"),
    "e3": ("e3_instruction_set", "Table III: the RISC I instruction set"),
    "e4": ("e4_formats", "Figure: instruction formats"),
    "e5": ("e5_register_windows", "Figure: overlapped register windows"),
    "e6": ("e6_window_overflow", "window overflow vs. window count"),
    "e7": ("e7_call_cost", "procedure-call cost comparison"),
    "e8": ("e8_code_size", "benchmark code size"),
    "e9": ("e9_exec_time", "benchmark execution time"),
    "e10": ("e10_delay_slots", "delay-slot utilization"),
    "e11": ("e11_window_ablation", "register-window ablation"),
    "e12": ("e12_immediates", "immediate-field design rationale"),
    "e13": ("e13_memory_latency", "memory-latency sensitivity"),
    "e14": ("e14_spill_policy", "window overflow handler policy"),
    "e15": ("e15_hand_code", "compiler quality: hand code vs compiled"),
    "e16": ("e16_instruction_mix", "dynamic instruction mix"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures"
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(EXPERIMENTS),
        help=f"which experiments to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--scale",
        choices=("default", "bench"),
        default="default",
        help="workload sizes: quick defaults or paper-scale bench parameters",
    )
    args = parser.parse_args(argv)

    for key in args.experiments:
        if key not in EXPERIMENTS:
            parser.error(f"unknown experiment {key!r}")
        module_name, description = EXPERIMENTS[key]
        module = importlib.import_module(f"repro.experiments.{module_name}")
        started = time.time()
        result = module.run(scale=args.scale)
        elapsed = time.time() - started
        tables = result if isinstance(result, list) else [result]
        for table in tables:
            print(table.render())
            print()
        print(f"[{key}: {description} — {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
