"""``risc1-experiments`` — regenerate every table and figure of the paper."""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
import time

EXPERIMENTS = {
    "e1": ("e1_characteristics", "Table I: processor characteristics"),
    "e2": ("e2_hll_weights", "Table II: weighted HLL statement cost"),
    "e3": ("e3_instruction_set", "Table III: the RISC I instruction set"),
    "e4": ("e4_formats", "Figure: instruction formats"),
    "e5": ("e5_register_windows", "Figure: overlapped register windows"),
    "e6": ("e6_window_overflow", "window overflow vs. window count"),
    "e7": ("e7_call_cost", "procedure-call cost comparison"),
    "e8": ("e8_code_size", "benchmark code size"),
    "e9": ("e9_exec_time", "benchmark execution time"),
    "e10": ("e10_delay_slots", "delay-slot utilization"),
    "e11": ("e11_window_ablation", "register-window ablation"),
    "e12": ("e12_immediates", "immediate-field design rationale"),
    "e13": ("e13_memory_latency", "memory-latency sensitivity"),
    "e14": ("e14_spill_policy", "window overflow handler policy"),
    "e15": ("e15_hand_code", "compiler quality: hand code vs compiled"),
    "e16": ("e16_instruction_mix", "dynamic instruction mix"),
    "e16_pipeline": ("e16_pipeline", "pipeline CPI, stall anatomy, predictors"),
}


def _write_trace(path: str, spec: str, uarch: str | None = None) -> None:
    """Record an instrumented workload run and export a Chrome trace.

    Compiler phases land on the toolchain track (wall-clock), the call /
    return / window-traffic timeline of the RISC I run lands on the
    machine track (simulated cycles); the result loads directly in
    Perfetto or ``chrome://tracing``.  With ``uarch``, the run is also
    timed by the pipeline model and its stall events land on the
    machine's "pipeline stalls" counter track.
    """
    from repro.cc.driver import compile_program
    from repro.core.cpu import CPU
    from repro.experiments.common import RISC_CYCLE_NS
    from repro.obs import FLOW_KINDS, EventKind, Tracer, write_chrome_trace
    from repro.workloads import ALL_WORKLOADS, parse_workload_spec

    name, overrides = parse_workload_spec(spec)
    # The compiler gets its own small tracer: a long run overflows the
    # machine tracer's ring and would evict the handful of PHASE events.
    cc_tracer = Tracer(kinds={EventKind.PHASE})
    program = compile_program(
        ALL_WORKLOADS[name].source(**overrides),
        target="risc1",
        tracer=cc_tracer,
        filename=f"{name}.c",
    )
    kinds = FLOW_KINDS if uarch is None else FLOW_KINDS | {EventKind.PIPE_STALL}
    tracer = Tracer(capacity=1 << 18, kinds=kinds, cycle_ns=RISC_CYCLE_NS)
    cpu = CPU(tracer=tracer)
    cpu.load(program.program)
    from repro.obs.ledger import ledger_context

    with ledger_context(workload=spec, source="experiments"):
        result = cpu.run(max_steps=500_000_000, uarch=uarch)
    write_chrome_trace(list(cc_tracer.events) + list(tracer.events), path)
    pipe = (
        f", pipeline CPI {result.pipeline.cpi:.3f}"
        if getattr(result, "pipeline", None) is not None
        else ""
    )
    print(
        f"[trace: {spec} on risc1 — {result.cycles} cycles{pipe}, "
        f"{len(tracer.events)} events kept ({tracer.dropped} dropped) -> {path}]",
        file=sys.stderr,
    )


def _write_profiles(directory: str, spec: str) -> None:
    """Profile one workload on both machines; write the four report forms.

    Produces ``<name>.<target>.folded`` (collapsed stacks for flamegraph
    tooling) plus ``.report`` / ``.annotate`` / ``.callgraph`` text files
    per target under ``directory``.
    """
    from pathlib import Path

    from repro.experiments.common import profiled

    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    for target in ("risc1", "cisc"):
        profile, result = profiled(spec, target)
        stem = spec.replace(":", "_").replace(",", "_").replace("=", "")
        for suffix, text in (
            ("folded", profile.collapsed()),
            ("report", profile.report()),
            ("annotate", profile.annotate()),
            ("callgraph", profile.callgraph_text()),
        ):
            (out / f"{stem}.{target}.{suffix}").write_text(text, encoding="utf-8")
        print(
            f"[profile: {spec} on {target} — {result.cycles} cycles, "
            f"{profile.attributed_fraction:.1%} attributed -> "
            f"{out / f'{stem}.{target}.*'}]",
            file=sys.stderr,
        )


def _prewarm(scale: str, jobs: int) -> None:
    """Fill the farm's on-disk cache in parallel before the (serial) table
    code runs, so every ``common.compiled/executed/ir_profile`` call hits."""
    from repro.farm.api import FarmClient
    from repro.farm.jobs import sweep_jobs

    with FarmClient(workers=jobs) as client:
        report = client.sweep(sweep_jobs(scale=scale))
    print(f"[farm: {report.summary()}]\n", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures"
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(EXPERIMENTS),
        help=f"which experiments to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--scale",
        choices=("default", "bench"),
        default="default",
        help="workload sizes: quick defaults or paper-scale bench parameters",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="prewarm the simulation farm with N parallel workers first",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="text tables (default) or one JSON document of all tables",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the experiment index and exit",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="also record an instrumented workload run as a Chrome trace at PATH",
    )
    parser.add_argument(
        "--trace-workload",
        metavar="NAME[:ARG]",
        default="towers:18",
        help="workload for --trace (default: towers:18, the paper's hanoi run)",
    )
    parser.add_argument(
        "--profile",
        metavar="DIR",
        help="profile --trace-workload on both machines; write flamegraph, "
        "report, annotated source and call graph under DIR",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the aggregated run-metrics registry after the experiments",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="also write the aggregated metrics registry as JSON to PATH "
        "(implies --metrics)",
    )
    parser.add_argument(
        "--engine",
        choices=("fast", "reference"),
        help="execution engine for every simulated run (default: fast; "
        "both are differentially identical, reference is the plain "
        "step() loop)",
    )
    parser.add_argument(
        "--ledger",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="append every simulated run to the persistent run ledger "
        "(default root .repro-ledger, or PATH; reaches farm workers too)",
    )
    parser.add_argument(
        "--uarch",
        nargs="?",
        const="base",
        default=None,
        metavar="CONFIG",
        help="time the --trace run with the 5-stage pipeline model; its "
        "stall events become a counter track in the Chrome trace "
        "(CONFIG like pred=bht2,fwd=full; bare gives the base config)",
    )
    args = parser.parse_args(argv)

    if args.uarch is not None:
        from repro.uarch import parse_uarch_config

        try:
            parse_uarch_config(args.uarch)
        except ValueError as exc:
            parser.error(str(exc))

    if args.engine:
        # exported (rather than threaded through every call) so the farm's
        # worker processes and the lru-cached run helpers all see it
        os.environ["REPRO_ENGINE"] = args.engine
    if args.ledger:
        # same export: the ledger opt-in must reach worker processes and
        # every nested run() without threading a parameter everywhere
        os.environ["REPRO_LEDGER"] = "1" if args.ledger is True else str(args.ledger)

    if args.list:
        for key, (_, description) in EXPERIMENTS.items():
            print(f"{key:<4} {description}")
        return 0

    unknown = [key for key in args.experiments if key not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(choose from {', '.join(EXPERIMENTS)}; see --list)"
        )

    if args.trace or args.profile:
        from repro.workloads import parse_workload_spec

        try:
            parse_workload_spec(args.trace_workload)
        except ValueError as exc:
            parser.error(str(exc))

    if args.jobs > 1:
        _prewarm(args.scale, args.jobs)

    registry = None
    if args.metrics or args.metrics_out:
        from repro.experiments import common

        registry = common.enable_metrics()

    documents = []
    for key in args.experiments:
        module_name, description = EXPERIMENTS[key]
        module = importlib.import_module(f"repro.experiments.{module_name}")
        started = time.time()
        result = module.run(scale=args.scale)
        elapsed = time.time() - started
        tables = result if isinstance(result, list) else [result]
        if args.format == "json":
            documents.append(
                {
                    "experiment": key,
                    "description": description,
                    "tables": [table.to_dict() for table in tables],
                }
            )
            continue
        for table in tables:
            print(table.render())
            print()
        print(f"[{key}: {description} — {elapsed:.1f}s]\n")

    if args.format == "json":
        print(json.dumps(documents, indent=2, sort_keys=True))

    if registry is not None:
        if args.metrics:
            print(registry.render(), file=sys.stderr)
        if args.metrics_out:
            from pathlib import Path

            out = Path(args.metrics_out)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(
                json.dumps(registry.to_dict(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(f"[metrics: {len(registry)} series -> {out}]", file=sys.stderr)
    if args.trace:
        _write_trace(args.trace, args.trace_workload, uarch=args.uarch)
    if args.profile:
        _write_profiles(args.profile, args.trace_workload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
