"""E12 — design-rationale ablation: the 13-bit immediate field.

RISC I's short format spends 13 bits on the second operand, with LDHI as
the two-instruction escape hatch for full 32-bit constants.  The design
only works if almost every constant a compiler emits fits in 13 bits.
This experiment scans the compiled benchmark suite:

* statically — the distribution of immediate widths in emitted code and
  the number of LDHI escapes;
* dynamically — how often an executed instruction needed the escape.

The paper justifies the format split with exactly this kind of constant-
size data from compiled programs.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.experiments import common
from repro.isa.encoding import S2_MAX, S2_MIN, decode
from repro.isa.opcodes import Format, Opcode, opcode_info
from repro.workloads import BENCHMARK_SUITE


def _bits_needed(value: int) -> int:
    """Smallest signed two's-complement width holding ``value``."""
    if value >= 0:
        return value.bit_length() + 1
    return (~value).bit_length() + 1


def scan_program(program) -> dict:
    """Scan a code segment for immediate usage."""
    counts = {"imm_total": 0, "fits_5": 0, "fits_13": 0, "ldhi": 0, "insts": 0}
    for segment in program.segments:
        if segment.name != "code":
            continue
        for offset in range(0, len(segment.data), 4):
            word = int.from_bytes(segment.data[offset : offset + 4], "big")
            inst = decode(word)
            counts["insts"] += 1
            if inst.opcode is Opcode.LDHI:
                counts["ldhi"] += 1
                continue
            if opcode_info(inst.opcode).format is Format.SHORT and inst.imm:
                counts["imm_total"] += 1
                bits = _bits_needed(inst.s2)
                if bits <= 5:
                    counts["fits_5"] += 1
                if bits <= 13:
                    counts["fits_13"] += 1
    return counts


def run(scale: str = "default") -> Table:
    table = Table(
        title="E12: immediate-operand widths in compiled code (13-bit field + LDHI escape)",
        headers=[
            "program",
            "instructions",
            "immediates",
            "<=5 bits %",
            "<=13 bits %",
            "LDHI escapes",
            "LDHI executed %",
        ],
    )
    total = {"imm_total": 0, "fits_5": 0, "fits_13": 0, "ldhi": 0, "insts": 0}
    for name in BENCHMARK_SUITE:
        compiled = common.compiled(name, "risc1", scale)
        counts = scan_program(compiled.program)
        executed = common.executed(name, "risc1", scale)
        ldhi_dynamic = 100.0 * executed.stats.by_opcode.get(Opcode.LDHI, 0) / (
            executed.stats.instructions or 1
        )
        for key in total:
            total[key] += counts[key]
        table.add_row(
            name,
            counts["insts"],
            counts["imm_total"],
            100.0 * counts["fits_5"] / (counts["imm_total"] or 1),
            100.0 * counts["fits_13"] / (counts["imm_total"] or 1),
            counts["ldhi"],
            ldhi_dynamic,
        )
    table.add_row(
        "ALL",
        total["insts"],
        total["imm_total"],
        100.0 * total["fits_5"] / (total["imm_total"] or 1),
        100.0 * total["fits_13"] / (total["imm_total"] or 1),
        total["ldhi"],
        "",
    )
    table.add_note(
        "every immediate the compiler emits fits the 13-bit field by "
        "construction; the LDHI column counts the 32-bit escapes"
    )
    return table
