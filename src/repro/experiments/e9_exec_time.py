"""E9 — benchmark execution time.

The paper's headline table: despite a 2x slower clock (400 ns vs 200 ns)
and more instructions executed, RISC I finishes compiled C programs
fastest — typically 2-4x faster than the VAX-class machine.  Times are
simulated milliseconds (cycles x clock period); the 68000/Z8002 columns
come from the IR-level estimators.
"""

from __future__ import annotations

from repro.analysis.report import Table, geometric_mean
from repro.baselines.estimators import M68000, Z8002
from repro.experiments import common
from repro.workloads import BENCHMARK_SUITE


def run(scale: str = "default") -> Table:
    table = Table(
        title="E9: execution time (simulated ms, and ratio to RISC I)",
        headers=[
            "program",
            "RISC I",
            "VAX-like",
            "VAX/RISC",
            "M68000",
            "68K/RISC",
            "Z8002",
            "Z8K/RISC",
        ],
    )
    vax_ratios, m68k_ratios, z8k_ratios = [], [], []
    for name in BENCHMARK_SUITE:
        risc = common.executed(name, "risc1", scale)
        cisc = common.executed(name, "cisc", scale)
        profile = common.ir_profile(name, scale)
        risc_time = common.risc_ms(risc.stats.cycles)
        vax_time = common.cisc_ms(cisc.stats.cycles)
        m68k_time = M68000.milliseconds(profile.counts)
        z8k_time = Z8002.milliseconds(profile.counts)
        vax_ratios.append(vax_time / risc_time)
        m68k_ratios.append(m68k_time / risc_time)
        z8k_ratios.append(z8k_time / risc_time)
        table.add_row(
            name,
            risc_time,
            vax_time,
            vax_time / risc_time,
            m68k_time,
            m68k_time / risc_time,
            z8k_time,
            z8k_time / risc_time,
        )
    table.add_row(
        "geometric mean",
        "",
        "",
        geometric_mean(vax_ratios),
        "",
        geometric_mean(m68k_ratios),
        "",
        geometric_mean(z8k_ratios),
    )
    table.add_note("ratio > 1.0 means RISC I is faster; the paper reports 2-4x vs VAX")
    return table
