"""E1 — Table I: processor characteristics.

The paper's first table contrasts RISC I's design economy with
contemporary microcoded machines.  Columns derived from our own models are
*computed* from the model source (instruction counts, format counts,
addressing modes, decode-table entries as the control-complexity proxy);
the 68000/Z8002 columns are static facts from their data sheets, carried
as documented constants.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.baselines.vax.isa import INSTRUCTIONS as VAX_INSTRUCTIONS, Mode
from repro.isa.opcodes import Format, INSTRUCTION_SET_TABLE


def _risc_column() -> dict:
    formats = {info.format for info in INSTRUCTION_SET_TABLE}
    return {
        "machine": "RISC I",
        "instructions": len(INSTRUCTION_SET_TABLE),
        "formats": len(formats),
        "addressing modes": 2,  # register + indexed/immediate (Rs + S2)
        "inst bytes": "4",
        "general registers": "138 (32 visible)",
        "control style": "hardwired",
        "decode entries": len(INSTRUCTION_SET_TABLE),
        "microcode": "none",
    }


def _vax_column() -> dict:
    modes = len(list(Mode)) + 1  # short-literal counts as one family
    specifier_forms = sum(len(info.operands) for info in VAX_INSTRUCTIONS.values())
    return {
        "machine": "VAX-like",
        "instructions": len(VAX_INSTRUCTIONS),
        "formats": "variable",
        "addressing modes": modes,
        "inst bytes": "1-19",
        "general registers": "16",
        "control style": "microcoded",
        "decode entries": specifier_forms,
        "microcode": "modelled (cycle table)",
    }


_STATIC_COLUMNS = [
    # static facts from the 68000 / Z8002 data sheets (not modelled code)
    {
        "machine": "M68000",
        "instructions": 56,
        "formats": "variable",
        "addressing modes": 14,
        "inst bytes": "2-10",
        "general registers": "16",
        "control style": "microcoded",
        "decode entries": "n/a (data sheet)",
        "microcode": "32.5 Kbit",
    },
    {
        "machine": "Z8002",
        "instructions": 110,
        "formats": "variable",
        "addressing modes": 8,
        "inst bytes": "2-8",
        "general registers": "16",
        "control style": "microcoded",
        "decode entries": "n/a (data sheet)",
        "microcode": "17.5 Kbit",
    },
]


def run(scale: str = "default") -> Table:
    table = Table(
        title="E1 / Table I: processor characteristics",
        headers=[
            "machine",
            "instructions",
            "formats",
            "addressing modes",
            "inst bytes",
            "general registers",
            "control style",
            "decode entries",
            "microcode",
        ],
    )
    for column in [_risc_column(), _vax_column()] + _STATIC_COLUMNS:
        table.add_row(*[column[h] for h in table.headers])
    table.add_note(
        "decode entries = opcode rows (RISC I) vs opcode rows x operand "
        "specifiers (VAX-like): the control-complexity proxy"
    )
    return table
