"""E3 — Table III: the RISC I instruction set.

Regenerated directly from the ISA definition, so the table can never
drift from what the simulator executes.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.isa.opcodes import INSTRUCTION_SET_TABLE


def run(scale: str = "default") -> Table:
    table = Table(
        title="E3 / Table III: the 31 instructions of RISC I",
        headers=["instruction", "operands", "semantics", "comment", "category"],
    )
    for info in INSTRUCTION_SET_TABLE:
        table.add_row(
            info.mnemonic.upper(),
            info.operands,
            info.semantics,
            info.comment,
            info.category.value,
        )
    return table
