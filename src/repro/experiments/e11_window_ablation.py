"""E11 — the register-window ablation.

What would RISC I cost *without* its register windows?  Each measured run
is re-priced under a conventional save/restore calling convention
(:mod:`repro.baselines.conventional`), across a sensitivity range of 4, 8
and 12 saved registers per call.  The paper's architectural bet is that
this slowdown is large on call-heavy programs and the window hardware is
what buys it back.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.baselines.conventional import ConventionalCallModel
from repro.experiments import common
from repro.workloads import BENCHMARK_SUITE

SAVED_REGISTER_SWEEP = (4, 8, 12)


def run(scale: str = "default") -> Table:
    table = Table(
        title="E11: slowdown of RISC I without register windows",
        headers=["program", "calls/1k insts"]
        + [f"save {n} regs" for n in SAVED_REGISTER_SWEEP]
        + ["traffic x (8 regs)"],
    )
    for name in BENCHMARK_SUITE:
        result = common.executed(name, "risc1", scale)
        stats = result.stats
        call_density = 1000.0 * stats.calls / stats.instructions
        slowdowns = []
        for saved in SAVED_REGISTER_SWEEP:
            projection = ConventionalCallModel(saved_registers=saved).reprice(stats)
            slowdowns.append(projection.slowdown)
        traffic = ConventionalCallModel(saved_registers=8).reprice(stats).traffic_ratio
        table.add_row(name, call_density, *slowdowns, traffic)
    table.add_note(
        "cells are conventional-convention time / windowed time; "
        "traffic x = data-memory references ratio"
    )
    return table
