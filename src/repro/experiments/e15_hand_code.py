"""E15 — compiler quality: hand-optimized assembly vs. compiled code.

The paper's measurements use compiled C on every machine and note that
the (simple) compilers leave performance on the table.  This experiment
quantifies that headroom on RISC I: Towers of Hanoi hand-written the way
a 1981 assembly programmer would — the move counter lives in a GLOBAL
register instead of memory, the second recursive call is turned into a
self-jump (tail recursion elimination halves the window traffic), and
every delay slot is filled by hand.

Both versions print the same answer; only the cost differs.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.asm import assemble
from repro.core import CPU
from repro.experiments import common
from repro.workloads import ALL_WORKLOADS

HAND_TOWERS = """
; Towers of Hanoi, hand-optimized RISC I assembly.
; moves counter: global r2 (never touches memory)
; hanoi(n=r26, from=r27, to=r28, via=r29)
    .equ DISKS, {disks}
main:
    add  r2, r0, #0
    add  r10, r0, #DISKS
    add  r11, r0, #1
    add  r12, r0, #3
    call hanoi
    add  r13, r0, #2        ; last argument rides in the delay slot
    puti r2
    add  r3, r0, #10
    putc r3
    halt r0

hanoi:
    cmp  r26, r0
    jne  hanoi_work
    nop
    ret
    nop
hanoi_work:
    ; hanoi(n-1, from, via, to)
    sub  r10, r26, #1
    add  r11, r27, #0
    add  r12, r29, #0
    call hanoi
    add  r13, r28, #0       ; delay slot: final argument move
    add  r2, r2, #1         ; move disk n
    ; tail call hanoi(n-1, via, to, from): reuse this window via a jump
    sub  r26, r26, #1
    add  r16, r27, #0       ; old from
    add  r27, r29, #0       ; from := via
    jmp  hanoi
    add  r29, r16, #0       ; via := old from (delay slot)
"""


def run_hand(disks: int):
    cpu = CPU()
    cpu.load(assemble(HAND_TOWERS.format(disks=disks)))
    return cpu.run(max_steps=500_000_000)


def run(scale: str = "default") -> Table:
    workload = ALL_WORKLOADS["towers"]
    params = workload.bench_params if scale == "bench" else workload.default_params
    disks = params["DISKS"]

    compiled = common.executed("towers", "risc1", scale)
    hand = run_hand(disks)
    expected = workload.expected_output(**params)
    if hand.output != expected:
        raise AssertionError(f"hand-coded towers wrong: {hand.output!r}")

    table = Table(
        title=f"E15: compiled vs. hand-optimized RISC I code (towers, {disks} disks)",
        headers=["version", "instructions", "cycles", "data refs", "calls"],
    )
    table.add_row(
        "compiled (rcc)",
        compiled.stats.instructions,
        compiled.stats.cycles,
        compiled.stats.data_references,
        compiled.stats.calls,
    )
    table.add_row(
        "hand-optimized",
        hand.stats.instructions,
        hand.stats.cycles,
        hand.stats.data_references,
        hand.stats.calls,
    )
    speedup = compiled.stats.cycles / hand.stats.cycles
    table.add_note(
        f"hand code is {speedup:.2f}x faster: global-register counter, "
        "tail-recursion elimination (half the calls), hand-filled slots"
    )
    return table
