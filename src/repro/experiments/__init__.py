"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes ``run(scale="default") -> Table`` (or a list of
tables).  ``scale="bench"`` uses the larger, paper-scale workload
parameters.  The CLI (``risc1-experiments``) prints everything;
EXPERIMENTS.md records the measured results against the paper's published
shape.

=====  ==========================================================
E1     Table I — processor characteristics
E2     Table II — weighted HLL statement costs
E3     Table III — the RISC I instruction set
E4     Figure — instruction formats
E5     Figure — overlapped register windows
E6     Window overflow rates vs. number of windows
E7     Procedure-call cost comparison
E8     Benchmark code size
E9     Benchmark execution time
E10    Delayed-jump slot utilization
E11    Register-window ablation
E12    Immediate-field design rationale
E13    Memory-latency sensitivity (extension)
E14    Window overflow handler policy (extension)
E15    Compiler-quality headroom (extension)
E16    Dynamic instruction mix
=====  ==========================================================
"""

from repro.experiments import common

__all__ = ["common"]
