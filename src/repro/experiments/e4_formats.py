"""E4 — Figure: the two 32-bit instruction formats.

Rendered from :func:`repro.isa.encoding.format_fields`, the same data the
encoder/decoder uses.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.isa.encoding import format_fields
from repro.isa.opcodes import Format


def render_figure() -> str:
    """ASCII rendering of both instruction formats."""
    lines = []
    for fmt in (Format.SHORT, Format.LONG):
        fields = format_fields(fmt)
        cells = [f" {name}({width}) " for name, width in fields]
        border = "+" + "+".join("-" * len(c) for c in cells) + "+"
        row = "|" + "|".join(cells) + "|"
        lines += [f"{fmt.value}-immediate format:", border, row, border, ""]
    return "\n".join(lines)


def run(scale: str = "default") -> Table:
    table = Table(
        title="E4 / Figure: RISC I instruction formats",
        headers=["format", "fields", "total bits"],
    )
    for fmt in (Format.SHORT, Format.LONG):
        fields = format_fields(fmt)
        table.add_row(
            fmt.value,
            " | ".join(f"{name}:{width}" for name, width in fields),
            sum(width for _, width in fields),
        )
    table.add_note("every instruction is exactly one 32-bit word")
    return table
