"""E2 — Table II: weighted dynamic frequency of HLL statements.

The motivating measurement of the paper: procedure calls are a modest
share of executed statements but the dominant consumers of machine
instructions and (especially) memory references on a conventional
machine.  Our reproduction measures both the dynamic statement mix of the
benchmark suite and the marginal per-class machine costs (see
:mod:`repro.analysis.hll`).
"""

from __future__ import annotations

from repro.analysis.hll import weighted_statement_table
from repro.analysis.report import Table


def run(scale: str = "default", target: str = "cisc") -> Table:
    rows = weighted_statement_table(target)
    table = Table(
        title=f"E2 / Table II: weighted HLL statement frequency ({target})",
        headers=[
            "statement",
            "% executed",
            "% instruction-weighted",
            "% memory-ref-weighted",
            "amplification",
        ],
    )
    for row in rows:
        amplification = (
            row.memref_weighted_pct / row.executed_pct if row.executed_pct else 0.0
        )
        table.add_row(
            row.statement,
            row.executed_pct,
            row.instruction_weighted_pct,
            row.memref_weighted_pct,
            amplification,
        )
    table.add_note(
        "amplification = memory-ref-weighted share / executed share; the "
        "paper's claim is that CALL amplifies the most"
    )
    return table
