"""E13 — sensitivity to memory latency (extension ablation).

The paper's timing assumes a data memory that keeps pace with the 400 ns
processor cycle.  This ablation sweeps the *physical* memory latency — in
nanoseconds, the same wall-clock memory for both machines — and converts
it to each machine's cycles:

* RISC I (400 ns cycle): a load/store costs ``1 + ceil(latency/400)``
  cycles;
* VAX-like (200 ns cycle): each data reference costs
  ``ceil(latency/200)`` cycles.

Two regimes emerge, both physical: with memory *faster* than 400 ns the
CISC machine's quicker clock lets it exploit the headroom, narrowing
RISC I's lead; once memory is slower than the processor cycle, the
machine making fewer data references per unit of work — RISC I, thanks
to load/store discipline and register windows — pulls away.  The paper's
design sits exactly at the 400 ns crossover.
"""

from __future__ import annotations

import math

from repro.analysis.report import Table, geometric_mean
from repro.baselines.vax.cpu import VaxCPU
from repro.baselines.vax.timing import VaxTiming
from repro.core.cpu import CPU
from repro.core.timing import RiscTiming
from repro.experiments import common

#: a representative slice of the suite (one per category) keeps the sweep fast
SWEEP_WORKLOADS = ("towers", "string_search_e", "qsort")
LATENCIES_NS = (200, 400, 800, 1600)

RISC_CYCLE_NS = 400.0
CISC_CYCLE_NS = 200.0


def _risc_time_ns(name: str, scale: str, latency_ns: int) -> float:
    memory_cycles = 1 + math.ceil(latency_ns / RISC_CYCLE_NS)
    program = common.compiled(name, "risc1", scale)
    cpu = CPU(timing=RiscTiming(memory_op_cycles=memory_cycles))
    cpu.load(program.program)
    return cpu.run(max_steps=500_000_000).stats.cycles * RISC_CYCLE_NS


def _cisc_time_ns(name: str, scale: str, latency_ns: int) -> float:
    memory_cycles = math.ceil(latency_ns / CISC_CYCLE_NS)
    program = common.compiled(name, "cisc", scale)
    cpu = VaxCPU(timing=VaxTiming(memory_cycles=memory_cycles))
    cpu.load(program.program)
    return cpu.run(max_steps=500_000_000).stats.cycles * CISC_CYCLE_NS


def run(scale: str = "default") -> Table:
    table = Table(
        title="E13: VAX/RISC time ratio vs. physical memory latency (ns)",
        headers=["program"] + [f"{lat} ns" for lat in LATENCIES_NS],
    )
    per_latency: dict[int, list[float]] = {lat: [] for lat in LATENCIES_NS}
    for name in SWEEP_WORKLOADS:
        row = [name]
        for latency in LATENCIES_NS:
            ratio = _cisc_time_ns(name, scale, latency) / _risc_time_ns(
                name, scale, latency
            )
            per_latency[latency].append(ratio)
            row.append(ratio)
        table.add_row(*row)
    table.add_row(
        "geometric mean",
        *[geometric_mean(per_latency[lat]) for lat in LATENCIES_NS],
    )
    table.add_note(
        "same wall-clock memory for both machines; ratio > 1.0 means "
        "RISC I is faster.  Slower-than-cycle memory favours the machine "
        "making fewer data references"
    )
    return table
