"""E6 — register-window overflow rates vs. number of windows.

Replays the measured call traces of the call-heavy benchmarks against 2,
4, 6, 8, 12 and 16-window register files.  The paper's design point: with
eight windows, real programs almost never overflow; with two, every other
call spills.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.analysis.windows import sweep
from repro.experiments import common

#: programs with interesting call behaviour (deep recursion included on
#: purpose — it stresses windows far harder than the paper's traces)
TRACED_WORKLOADS = ("ackermann", "towers", "qsort", "puzzle_subscript", "sed")

WINDOW_COUNTS = (2, 4, 6, 8, 12, 16)


def run(scale: str = "default") -> Table:
    table = Table(
        title="E6: % of calls causing window overflow vs. window count",
        headers=["program", "calls", "max depth"]
        + [f"{w} win" for w in WINDOW_COUNTS],
    )
    for name in TRACED_WORKLOADS:
        cpu, _ = common.traced_run(name, scale)
        stats = sweep(cpu.call_trace, WINDOW_COUNTS)
        table.add_row(
            name,
            stats[0].calls,
            stats[0].max_depth,
            *[100.0 * s.overflow_rate for s in stats],
        )
    table.add_note("cells are percentages of calls that overflow the register file")
    return table
