"""E16-P — pipeline timing model: CPI, stall anatomy, branch predictors.

The paper argues RISC I's single-cycle, register-to-register core keeps
the pipeline short and its hazards cheap.  This experiment runs the
benchmark suite through the :mod:`repro.uarch` 5-stage cost model and
reports, for both machines:

* CPI under the standard sweep — three branch predictors at full
  bypassing, then the degraded forwarding matrices under the base
  predictor (one architectural run per workload per machine; the
  adapters fan each retired instruction out to every probe);
* the stall-cycle anatomy at the base configuration (``bht2/full``):
  RAW, load-use, control, window-handler and structural bubbles as a
  fraction of model cycles, plus predictor accuracy and delay-slot fill.

Two findings worth looking for in the output: RISC I's 2-cycle loads
mean full bypassing leaves *zero* load-use bubbles (the load-delay slot
the paper never needed), and ``towers`` is a textbook 2-bit-counter
pathology — its single conditional branch (the Hanoi base-case test)
alternates almost perfectly, so the BHT does worse than always-not-taken
there while winning on the suite aggregate.
"""

from __future__ import annotations

import functools

from repro.analysis.report import Table, geometric_mean
from repro.experiments import common
from repro.obs.ledger import ledger_context
from repro.uarch import UarchConfig, run_with_pipeline, standard_sweep
from repro.workloads import BENCHMARK_SUITE

#: the sweep every table here reads; label -> config, in display order
_SWEEP = {config.label: config for config in standard_sweep()}
_BASE = UarchConfig().label


@functools.lru_cache(maxsize=None)
def measured(name: str, target: str, scale: str = "default"):
    """One architectural run of a workload, probed by the whole sweep.

    Returns ``{config label: PipelineStats}``.  L1-cached per process
    like the other experiment measurements; not farm-cached, because the
    probes need the live machine (the retired-instruction hook is not a
    storable artifact).
    """
    from repro.baselines.vax.cpu import VaxCPU
    from repro.core.cpu import CPU

    program = common.compiled(name, target, scale)
    cpu = CPU() if target == "risc1" else VaxCPU()
    cpu.load(program.program)
    with ledger_context(workload=name, scale=scale, source="experiments"):
        _, stats = run_with_pipeline(
            cpu, list(_SWEEP.values()), max_steps=500_000_000
        )
    return dict(zip(_SWEEP, stats))


def _cpi_table(target: str, title: str, scale: str) -> Table:
    table = Table(
        title=title,
        headers=["program"] + list(_SWEEP) + ["bht2 acc %"],
    )
    columns: dict[str, list[float]] = {label: [] for label in _SWEEP}
    for name in BENCHMARK_SUITE:
        stats = measured(name, target, scale)
        for label in _SWEEP:
            columns[label].append(stats[label].cpi)
        table.add_row(
            name,
            *(stats[label].cpi for label in _SWEEP),
            100.0 * stats[_BASE].predictor_accuracy,
        )
    table.add_row(
        "geometric mean",
        *(geometric_mean(columns[label]) for label in _SWEEP),
        "",
    )
    return table


def _stall_table(scale: str) -> Table:
    table = Table(
        title=f"E16-P: stall anatomy at {_BASE} (% of model cycles)",
        headers=[
            "program",
            "machine",
            "cpi",
            "raw %",
            "load-use %",
            "control %",
            "window %",
            "structural %",
            "pred acc %",
            "slot fill %",
        ],
    )
    for name in BENCHMARK_SUITE:
        for target, machine in (("risc1", "RISC I"), ("cisc", "VAX-like")):
            stats = measured(name, target, scale)[_BASE]
            breakdown = stats.stall_breakdown()
            pct = {
                kind: 100.0 * cycles / stats.cycles
                for kind, cycles in breakdown.items()
            }
            table.add_row(
                name,
                machine,
                stats.cpi,
                pct["raw"],
                pct["load_use"],
                pct["control"],
                pct["window"],
                pct["structural"],
                100.0 * stats.predictor_accuracy,
                100.0 * stats.slot_fill_rate if target == "risc1" else "",
            )
    table.add_note(
        "RISC I structural stalls are the 2nd memory-port cycle of "
        "loads/stores; VAX-like ones are its multi-cycle instructions "
        "occupying EX.  window % is the RISC I spill/fill handler drain."
    )
    return table


def run(scale: str = "default") -> list[Table]:
    risc = _cpi_table(
        "risc1",
        "E16-P: pipeline CPI — RISC I (predictor / forwarding sweep)",
        scale,
    )
    risc.add_note(
        "full bypassing + 2-cycle loads leaves no load-use bubbles: the "
        "paper's memory access already covers the MEM->EX latency"
    )
    risc.add_note(
        "towers alternates its one hot branch (Hanoi base-case test), the "
        "2-bit counter's worst case — the BHT wins on the suite aggregate"
    )
    vax = _cpi_table(
        "cisc",
        "E16-P: pipeline CPI — VAX-like (predictor / forwarding sweep)",
        scale,
    )
    vax.add_note(
        "CPI here is dominated by multi-cycle instructions occupying EX "
        "(structural), so forwarding and prediction move it far less than "
        "on RISC I — the paper's argument for simple instructions"
    )
    return [risc, vax, _stall_table(scale)]
