"""E14 — window overflow handler policy (extension ablation).

When a CALL overflows the register file the handler must reclaim space.
The classic demand policy spills exactly one window per trap; a batched
policy spills several, trading extra spill traffic for fewer traps — the
debate the SPARC lineage later settled per-OS.  This ablation measures
both on the programs where it matters:

* deep oscillating recursion (Ackermann) thrashes the file, so batching
  should amortize trap overhead;
* well-behaved recursion (towers, qsort) barely overflows with 8 windows,
  so batching mostly wastes spill traffic at small window counts.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.cpu import CPU
from repro.experiments import common

SPILL_BATCHES = (1, 2, 4)
CONFIGS = (("ackermann", 8), ("ackermann", 4), ("towers", 4), ("qsort", 4))


def _run(name: str, scale: str, windows: int, batch: int):
    program = common.compiled(name, "risc1", scale)
    cpu = CPU(num_windows=windows, spill_batch=batch)
    cpu.load(program.program)
    return cpu.run(max_steps=500_000_000)


def run(scale: str = "default") -> Table:
    table = Table(
        title="E14: overflow handler policy — windows spilled per trap",
        headers=["program/windows"]
        + [f"traps (b={b})" for b in SPILL_BATCHES]
        + [f"cycles (b={b})" for b in SPILL_BATCHES],
    )
    for name, windows in CONFIGS:
        traps, cycles = [], []
        expected = None
        for batch in SPILL_BATCHES:
            result = _run(name, scale, windows, batch)
            if expected is None:
                expected = result.output
            elif result.output != expected:
                raise AssertionError(f"{name}: output changed under batch={batch}")
            traps.append(result.stats.window_overflows)
            cycles.append(result.stats.cycles)
        table.add_row(f"{name}/{windows}w", *traps, *cycles)
    table.add_note(
        "batching reduces traps everywhere; it pays off in cycles only "
        "where the file thrashes (deep oscillating recursion)"
    )
    return table
