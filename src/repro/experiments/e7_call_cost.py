"""E7 — the cost of a procedure call on each machine.

Differential measurement (see :mod:`repro.analysis.callcost`): the
marginal instructions, data-memory references, cycles and nanoseconds of
one call/return pair, for

* RISC I with register windows (the paper's mechanism),
* RISC I re-priced under a conventional save/restore convention, and
* the VAX-like machine's CALLS/RET.

The paper's headline: windows make a call cost a couple of register
instructions and no memory traffic, while CALLS costs tens of cycles and
a dozen-plus memory references.
"""

from __future__ import annotations

from repro.analysis.callcost import conventional_cost, measure
from repro.analysis.report import Table


def run(scale: str = "default") -> Table:
    table = Table(
        title="E7: marginal cost of one procedure call + return",
        headers=["machine", "instructions", "data refs", "cycles", "time (ns)"],
    )
    rows = [
        measure("risc1"),
        conventional_cost(saved_registers=4),
        conventional_cost(saved_registers=8),
        conventional_cost(saved_registers=12),
        measure("cisc"),
    ]
    for cost in rows:
        table.add_row(
            cost.machine,
            cost.instructions,
            cost.data_refs,
            cost.cycles,
            cost.nanoseconds,
        )
    table.add_note(
        "measured differentially on the null-call microbenchmark; fixed "
        "per-run costs cancel"
    )
    return table
