"""Shared plumbing for the experiment harnesses.

Compilation and simulation results are cached per (workload, target,
scale) within the process so that experiments sharing measurements (E8 and
E9, for instance) pay for each run once.
"""

from __future__ import annotations

import functools

from repro.cc.driver import CompiledProgram, compile_program, run_compiled
from repro.cc.irvm import IRResult, run_ir
from repro.core.cpu import CPU
from repro.workloads import ALL_WORKLOADS

#: simulated clock periods, as in the paper's comparison
RISC_CYCLE_NS = 400.0
CISC_CYCLE_NS = 200.0


def workload_source(name: str, scale: str) -> str:
    workload = ALL_WORKLOADS[name]
    params = workload.bench_params if scale == "bench" else {}
    return workload.source(**params)


@functools.lru_cache(maxsize=None)
def compiled(name: str, target: str, scale: str = "default") -> CompiledProgram:
    return compile_program(workload_source(name, scale), target=target)


@functools.lru_cache(maxsize=None)
def executed(name: str, target: str, scale: str = "default"):
    """Run a workload on its target simulator, verifying the output."""
    program = compiled(name, target, scale)
    result = run_compiled(program, max_instructions=500_000_000)
    workload = ALL_WORKLOADS[name]
    params = workload.bench_params if scale == "bench" else {}
    expected = workload.expected_output(**params)
    if result.output != expected:
        raise AssertionError(
            f"{name} on {target}: output {result.output!r} != expected {expected!r}"
        )
    return result


@functools.lru_cache(maxsize=None)
def ir_profile(name: str, scale: str = "default") -> IRResult:
    """Dynamic IR profile of a workload (verified against the oracle)."""
    program = compiled(name, "risc1", scale)
    result = run_ir(program.ir)
    workload = ALL_WORKLOADS[name]
    params = workload.bench_params if scale == "bench" else {}
    expected = workload.expected_output(**params)
    if result.output != expected:
        raise AssertionError(f"{name} IR run: {result.output!r} != {expected!r}")
    return result


@functools.lru_cache(maxsize=None)
def traced_run(name: str, scale: str = "default", num_windows: int = 8):
    """Run a workload on RISC I with call tracing enabled."""
    program = compiled(name, "risc1", scale)
    cpu = CPU(num_windows=num_windows, trace_calls=True)
    cpu.load(program.program)
    result = cpu.run(max_instructions=500_000_000)
    return cpu, result


def risc_ms(cycles: int) -> float:
    return cycles * RISC_CYCLE_NS / 1e6


def cisc_ms(cycles: int) -> float:
    return cycles * CISC_CYCLE_NS / 1e6
