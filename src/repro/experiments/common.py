"""Shared plumbing for the experiment harnesses.

Compilation and simulation results are cached in two layers: a
per-process ``functools.lru_cache`` (L1, so experiments sharing
measurements — E8 and E9, for instance — pay for each run once per
process) over the farm's content-addressed on-disk cache (L2, so
nothing is recompiled or re-simulated across invocations unless the
workload source or the toolchain changed).  Submissions flow through
the process-wide :func:`repro.farm.api.shared_client`, so every
in-process consumer shares one in-flight dedupe map and the workload
arguments use the common ``NAME[:ARG]`` spec grammar.
Set ``REPRO_FARM_CACHE=0`` to disable the on-disk layer.

Every simulated run here resolves its execution engine from
``$REPRO_ENGINE`` (set by ``risc1-experiments --engine``) rather than a
threaded-through parameter: the engines are differentially identical, so
neither the L1 caches nor the farm's artifact keys need an engine
component.
"""

from __future__ import annotations

import functools

from repro.cc.driver import CompiledProgram
from repro.cc.irvm import IRResult
from repro.core.cpu import CPU
from repro.farm.api import JobSpec, shared_client
from repro.farm.jobs import workload_source
from repro.obs.ledger import ledger_context
from repro.obs.metrics import MetricsRegistry, record_machine_run
from repro.workloads import ALL_WORKLOADS

__all__ = [
    "CISC_CYCLE_NS",
    "RISC_CYCLE_NS",
    "cisc_ms",
    "compiled",
    "enable_metrics",
    "executed",
    "ir_profile",
    "metrics_registry",
    "profiled",
    "risc_ms",
    "traced_run",
    "workload_source",
]

#: simulated clock periods, as in the paper's comparison
RISC_CYCLE_NS = 400.0
CISC_CYCLE_NS = 200.0

#: process-wide metrics sink; ``None`` until :func:`enable_metrics` is called
_metrics: MetricsRegistry | None = None


def enable_metrics() -> MetricsRegistry:
    """Turn on run accounting for this process; returns the shared registry.

    Once enabled, every *distinct* workload run that flows through
    :func:`executed` (one per L1-cache entry, so re-reads of the same
    measurement are not double-counted) is folded into the registry.
    """
    global _metrics
    if _metrics is None:
        _metrics = MetricsRegistry()
    return _metrics


def metrics_registry() -> MetricsRegistry | None:
    """The shared registry, or ``None`` when metrics are disabled."""
    return _metrics


@functools.lru_cache(maxsize=None)
def compiled(name: str, target: str, scale: str = "default") -> CompiledProgram:
    """Compile a ``NAME[:ARG]`` workload spec through the shared farm client."""
    spec = JobSpec(workload=name, kind="compile", target=target, scale=scale)
    return shared_client().submit(spec).result()


@functools.lru_cache(maxsize=None)
def executed(name: str, target: str, scale: str = "default"):
    """Run a workload on its target simulator (output-verified by the farm)."""
    spec = JobSpec(workload=name, kind="execute", target=target, scale=scale)
    result = shared_client().submit(spec).result()
    if _metrics is not None:
        record_machine_run(_metrics, result)
    return result


@functools.lru_cache(maxsize=None)
def ir_profile(name: str, scale: str = "default") -> IRResult:
    """Dynamic IR profile of a workload (verified against the oracle)."""
    return shared_client().submit(JobSpec(workload=name, kind="ir", scale=scale)).result()


@functools.lru_cache(maxsize=None)
def profiled(spec: str, target: str = "risc1"):
    """Profile a ``NAME[:ARG]`` workload spec on one machine.

    Returns ``(profile, run_result)``.  Not farm-cached: the profile is
    built streaming off the live run, and one L1 entry per (spec, target)
    keeps repeated report forms free within a process.
    """
    from repro.cc.driver import compile_program
    from repro.obs.profile import profile_run
    from repro.workloads import ALL_WORKLOADS, parse_workload_spec

    name, overrides = parse_workload_spec(spec)
    source = ALL_WORKLOADS[name].source(**overrides)
    compiled_program = compile_program(source, target=target, filename=f"{name}.c")
    with ledger_context(workload=spec, source="experiments"):
        return profile_run(compiled_program, max_steps=500_000_000, workload=spec)


@functools.lru_cache(maxsize=None)
def traced_run(name: str, scale: str = "default", num_windows: int = 8):
    """Run a workload on RISC I with call tracing enabled.

    Not farm-cached: callers need the live :class:`CPU` (its call trace),
    which is not a storable artifact.
    """
    program = compiled(name, "risc1", scale)
    cpu = CPU(num_windows=num_windows, trace_calls=True)
    cpu.load(program.program)
    with ledger_context(workload=name, scale=scale, source="experiments"):
        result = cpu.run(max_steps=500_000_000)
    return cpu, result


def risc_ms(cycles: int) -> float:
    return cycles * RISC_CYCLE_NS / 1e6


def cisc_ms(cycles: int) -> float:
    return cycles * CISC_CYCLE_NS / 1e6
