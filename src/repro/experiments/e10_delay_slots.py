"""E10 — delayed-jump slot utilization.

RISC I's delayed jumps only pay off if the compiler can put useful work in
the slot after each control transfer.  Two measurements per benchmark:

* static: what fraction of delay slots the peephole optimizer filled
  (by slot kind — the RETURN slot is always filled with the frame pop,
  CALL slots are conservatively never filled);
* dynamic: instructions and cycles actually saved, from running the same
  program compiled with and without the optimizer — both on the
  architectural cycle counter and through the :mod:`repro.uarch`
  pipeline model, where every squashed slot is a real fetched bubble.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.cc.driver import compile_program, run_compiled
from repro.experiments import common
from repro.uarch import UarchConfig
from repro.workloads import ALL_WORKLOADS, BENCHMARK_SUITE


def run(scale: str = "default") -> Table:
    table = Table(
        title="E10: delay-slot filling (static fill rate, dynamic savings)",
        headers=[
            "program",
            "slots",
            "filled",
            "fill rate %",
            "insts saved %",
            "cycles saved %",
            "pipe cycles saved %",
        ],
    )
    base = UarchConfig()
    for name in BENCHMARK_SUITE:
        source = common.workload_source(name, scale)
        optimized = compile_program(source, target="risc1", fill_delay_slots=True)
        raw = compile_program(source, target="risc1", fill_delay_slots=False)
        run_optimized = common.executed(name, "risc1", scale)
        # live re-runs under the pipeline probe: the farm result carries
        # no pipeline stats, and the raw compile must run anyway
        pipe_optimized = run_compiled(optimized, max_steps=500_000_000, uarch=base)
        run_raw = run_compiled(raw, max_steps=500_000_000, uarch=base)
        expected = ALL_WORKLOADS[name].expected_output(
            **(ALL_WORKLOADS[name].bench_params if scale == "bench" else {})
        )
        assert run_raw.output == expected, f"unoptimized {name} wrong"
        stats = optimized.delay_stats
        insts_saved = 100.0 * (
            1 - run_optimized.stats.instructions / run_raw.stats.instructions
        )
        cycles_saved = 100.0 * (
            1 - run_optimized.stats.cycles / run_raw.stats.cycles
        )
        pipe_saved = 100.0 * (
            1 - pipe_optimized.pipeline.cycles / run_raw.pipeline.cycles
        )
        table.add_row(
            name,
            stats.total_slots,
            stats.total_filled,
            100.0 * stats.fill_rate,
            insts_saved,
            cycles_saved,
            pipe_saved,
        )
    table.add_note(
        "window rotation is deferred past the delay slot, so call slots "
        "carry argument moves and return slots the result move / frame pop"
    )
    table.add_note(
        f"pipe cycles saved: same two programs timed by the {base.label} "
        "pipeline model, where an unfilled slot is a fetched nop bubble"
    )
    return table
