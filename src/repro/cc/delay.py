"""Peephole optimization and delay-slot filling for RISC I assembly.

RISC I's delayed jumps put the burden of using the slot after every control
transfer on the compiler.  The paper reports that a simple peephole
optimizer fills most slots; this module reproduces that optimizer:

* ``jmp L`` immediately followed by ``L:`` is deleted outright;
* the instruction before an unconditional ``jmp`` moves into its slot when
  it is a safe single-word instruction;
* for a conditional jump the candidate is the instruction *before* the
  compare, movable when it does not feed the compare and does not touch the
  condition codes;
* unconditional jumps whose candidate fails fall back to *copying* the
  target's first instruction into the slot and retargeting the jump past
  it (the classic fix for loop back-edges);
* CALL and RETURN slots take the preceding instruction too — the window
  rotation is deferred until after the delay slot (see
  :meth:`repro.core.cpu.CPU.step`), so argument moves fill call slots and
  the result move fills return slots;
* RETURN slots in frame-owning functions are pre-filled by the code
  generator with the frame deallocation (the stack pointer is a global
  register, so that slot is window-safe either way).

Returns fill-rate statistics consumed by experiment E10.
"""

from __future__ import annotations

import dataclasses
import re

_SAFE_OPS = {
    "add", "addc", "sub", "subc", "subr", "subcr",
    "and", "or", "xor", "sll", "srl", "sra",
    "ldl", "ldsu", "ldss", "ldbu", "ldbs",
    "stl", "sts", "stb", "ldhi", "mov",
}
#: Both patterns tolerate a trailing ``;@`` *marker* comment — the code
#: generators suffix instructions with ``;@line`` and function labels with
#: ``;@fn name`` for the profiler's line table.  Ordinary ``; prose``
#: comments still disqualify a line, exactly as before the markers
#: existed, so hand-written assembly keeps its historical fill behavior.
_JUMP_RE = re.compile(r"^\s*(jmp|j[a-z]+)\s+(\S+)\s*(?:;@.*)?$")
_LABEL_RE = re.compile(r"^([^\s;]+):\s*(?:;@.*)?$")
_REG_RE = re.compile(r"\br(\d{1,2})\b")


@dataclasses.dataclass
class DelayStats:
    """Delay-slot accounting for one module."""

    jump_slots: int = 0
    jump_slots_filled: int = 0
    call_slots: int = 0
    call_slots_filled: int = 0
    ret_slots: int = 0
    ret_slots_filled: int = 0
    jumps_to_next_removed: int = 0

    @property
    def total_slots(self) -> int:
        return self.jump_slots + self.call_slots + self.ret_slots

    @property
    def total_filled(self) -> int:
        return self.jump_slots_filled + self.call_slots_filled + self.ret_slots_filled

    @property
    def fill_rate(self) -> float:
        return self.total_filled / self.total_slots if self.total_slots else 0.0


def _mnemonic(line: str) -> str:
    stripped = line.split(";", 1)[0].strip()
    if not stripped or stripped.startswith(".") or stripped.endswith(":"):
        return ""
    return stripped.split()[0].lower()


def _is_nop(line: str) -> bool:
    return _mnemonic(line) == "nop"

def _is_label(line: str) -> bool:
    return bool(_LABEL_RE.match(line.strip()))


def _label_name(line: str) -> str:
    """The label a (possibly ``;@fn``-annotated) label line defines."""
    match = _LABEL_RE.match(line.strip())
    return match.group(1) if match else ""


def _regs_of(line: str) -> set[int]:
    return {int(m) for m in _REG_RE.findall(line)}


def _dest_reg(line: str) -> int | None:
    """Destination register of an ALU/load line (None for stores etc.)."""
    mnemonic = _mnemonic(line)
    if mnemonic in ("stl", "sts", "stb"):
        return None
    match = _REG_RE.search(line.strip().split(None, 1)[1]) if " " in line.strip() else None
    return int(match.group(1)) if match else None


def _movable(line: str) -> bool:
    """Is this a single-word instruction safe to move into a jump slot?"""
    mnemonic = _mnemonic(line)
    if mnemonic not in _SAFE_OPS:
        return False
    if mnemonic.endswith("!") or "!" in line:
        return False  # touches the condition codes
    return True


def optimize(text: str) -> tuple[str, DelayStats]:
    """Run the peephole passes over a generated assembly module."""
    lines = text.splitlines()
    stats = DelayStats()
    lines = _remove_jumps_to_next(lines, stats)
    lines = _fill_slots(lines, stats)
    return "\n".join(lines) + "\n", stats


def _remove_jumps_to_next(lines: list[str], stats: DelayStats) -> list[str]:
    """Delete ``jmp L`` / ``nop`` pairs that fall straight into ``L:``."""
    result: list[str] = []
    i = 0
    while i < len(lines):
        line = lines[i]
        match = _JUMP_RE.match(line)
        if (
            match
            and match.group(1) == "jmp"
            and i + 2 < len(lines)
            and _is_nop(lines[i + 1])
            and _is_label(lines[i + 2])
            and _label_name(lines[i + 2]) == match.group(2)
        ):
            stats.jumps_to_next_removed += 1
            i += 2  # drop the jump and its nop, keep the label
            continue
        result.append(line)
        i += 1
    return result


def _fill_slots(lines: list[str], stats: DelayStats) -> list[str]:
    """Fill jump delay slots; count call/ret slots."""
    out = list(lines)
    i = 0
    while i < len(out):
        mnemonic = _mnemonic(out[i])
        if mnemonic in ("call", "callr", "ret", "retint"):
            is_call = mnemonic in ("call", "callr")
            if is_call:
                stats.call_slots += 1
            else:
                stats.ret_slots += 1
            if not (i + 1 < len(out) and _is_nop(out[i + 1])):
                if i + 1 < len(out):
                    # pre-filled by the code generator (frame pop etc.)
                    if is_call:
                        stats.call_slots_filled += 1
                    else:
                        stats.ret_slots_filled += 1
                i += 1
                continue
            if _fill_transfer_slot(out, i, is_call):
                if is_call:
                    stats.call_slots_filled += 1
                else:
                    stats.ret_slots_filled += 1
                # candidate deleted: the transfer is now at i-1, the slot
                # at i; continue with the line after the slot
                i += 1
            else:
                i += 2  # skip the transfer and its nop slot
            continue
        match = _JUMP_RE.match(out[i])
        if not match or not (i + 1 < len(out) and _is_nop(out[i + 1])):
            if match:
                stats.jump_slots += 1
                stats.jump_slots_filled += 1  # already carries a useful slot
            i += 1
            continue
        stats.jump_slots += 1
        filled, jump_pos = _try_fill(out, i, conditional=match.group(1) != "jmp")
        if filled:
            stats.jump_slots_filled += 1
        i = jump_pos + 2  # continue after the (now useful) slot
    return [line for line in out if line is not None]


def _try_fill(out: list[str], jump_index: int, conditional: bool) -> tuple[bool, int]:
    """Fill the NOP slot at jump_index+1.

    Returns (filled, new index of the jump line) — filling can move the
    jump when a preceding line is deleted or a label is inserted.
    """
    if conditional:
        # layout: candidate / compare / jcc / nop
        compare_index = jump_index - 1
        candidate_index = jump_index - 2
        if compare_index < 0 or candidate_index < 0:
            return False, jump_index
        compare = out[compare_index]
        if _mnemonic(compare) not in ("sub!", "cmp"):
            return False, jump_index
        candidate = out[candidate_index]
        if (
            not _movable(candidate)
            or _is_label_before(out, candidate_index)
            or _is_delay_slot(out, candidate_index)
        ):
            return False, jump_index
        dest = _dest_reg(candidate)
        if dest is not None and dest in _regs_of(compare):
            return False, jump_index  # candidate feeds the compare
    else:
        candidate_index = jump_index - 1
        if candidate_index < 0:
            return False, jump_index
        candidate = out[candidate_index]
        if (
            not _movable(candidate)
            or _is_label_before(out, candidate_index)
            or _is_delay_slot(out, candidate_index)
            or _feeds_jump(candidate, out[jump_index])
        ):
            # fall back to copying the first instruction of the target
            return _fill_from_target(out, jump_index)

    out[jump_index + 1] = out[candidate_index] + "    ; (delay slot)"
    del out[candidate_index]
    return True, jump_index - 1


def _fill_transfer_slot(out: list[str], index: int, is_call: bool) -> bool:
    """Move the instruction before a CALL/RETURN into its delay slot.

    Safe because the window rotation is deferred past the delay slot: the
    slot executes in the *old* window, so argument moves fill call slots
    and the result move fills return slots.  The candidate must not
    compute the transfer's target address: the explicit registers of the
    transfer line, plus the implicit r31 return-address register for RET.
    """
    candidate_index = index - 1
    if candidate_index < 0:
        return False
    candidate = out[candidate_index]
    if (
        not _movable(candidate)
        or _is_label_before(out, candidate_index)
        or _is_delay_slot(out, candidate_index)
    ):
        return False
    dest = _dest_reg(candidate)
    if dest is not None:
        hazard_regs = _regs_of(out[index])
        if not is_call:
            hazard_regs.add(31)
        if dest in hazard_regs:
            return False
    out[index + 1] = candidate + "    ; (delay slot)"
    del out[candidate_index]
    return True


def _copyable(line: str) -> bool:
    """Safe to *copy* into an unconditional jump's slot.

    Unlike :func:`_movable`, condition-code setters qualify: the jump is
    retargeted to the instruction right after the copy, so the landing
    point sees exactly the condition codes it always saw.
    """
    mnemonic = _mnemonic(line).rstrip("!")
    return mnemonic in _SAFE_OPS or _mnemonic(line) == "cmp"


def _feeds_jump(candidate: str, jump_line: str) -> bool:
    dest = _dest_reg(candidate)
    return dest is not None and dest in _regs_of(jump_line)


def _fill_from_target(out: list[str], jump_index: int) -> tuple[bool, int]:
    """Copy the jump target's first instruction into the delay slot.

    Only valid for *unconditional* jumps: the copied instruction always
    executes, and the jump is retargeted past the original copy.  This is
    what fills loop back-edges, the dynamically dominant case.
    """
    match = _JUMP_RE.match(out[jump_index])
    target = match.group(2)
    label_index = None
    for i, line in enumerate(out):
        if _label_name(line) == target:
            label_index = i
            break
    if label_index is None:
        return False, jump_index
    first_index = label_index + 1
    while first_index < len(out) and _is_label(out[first_index]):
        first_index += 1
    if first_index >= len(out) or not _copyable(out[first_index]):
        return False, jump_index
    copied = out[first_index]
    # a label must exist (or be created) right after the copied instruction
    after_index = first_index + 1
    shift = 0
    if after_index < len(out) and _is_label(out[after_index]):
        new_target = _label_name(out[after_index])
    else:
        existing = {_label_name(line) for line in out if _is_label(line)}
        new_target = f"{target}__ds"
        suffix = 0
        while new_target in existing:
            suffix += 1
            new_target = f"{target}__ds{suffix}"
        out.insert(after_index, f"{new_target}:")
        if after_index <= jump_index:
            shift = 1
    jump_line = out[jump_index + shift]
    out[jump_index + shift] = re.sub(
        rf"(?<![\w.$]){re.escape(target)}(?![\w.$])", new_target, jump_line
    )
    out[jump_index + shift + 1] = copied + "    ; (delay slot, copied from target)"
    return True, jump_index + shift


def _is_label_before(lines: list[str], index: int) -> bool:
    """Is the candidate a jump target (label directly above it)?"""
    return index > 0 and _is_label(lines[index - 1])


_TRANSFER_MNEMONICS = {"call", "callr", "ret", "retint"}


def _is_delay_slot(lines: list[str], index: int) -> bool:
    """Is the line at ``index`` already some transfer's delay slot?"""
    if index == 0:
        return False
    prev = lines[index - 1]
    return _mnemonic(prev) in _TRANSFER_MNEMONICS or bool(_JUMP_RE.match(prev))
