"""Command-line compiler: ``risc1-cc program.rc``."""

from __future__ import annotations

import argparse
import sys

from repro.cc.driver import TARGETS, compile_program, run_compiled
from repro.cc.errors import CompileError
from repro.cc.ir import format_ir


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="mini-C compiler for RISC I and the CISC baseline")
    parser.add_argument("source", help="mini-C source file")
    parser.add_argument("--target", choices=TARGETS, default="risc1")
    parser.add_argument("-S", "--assembly", action="store_true", help="print assembly and stop")
    parser.add_argument("--ir", action="store_true", help="print the IR and stop")
    parser.add_argument("--run", action="store_true", help="compile and execute")
    parser.add_argument("--stats", action="store_true", help="print execution statistics")
    args = parser.parse_args(argv)

    with open(args.source) as handle:
        source = handle.read()
    try:
        compiled = compile_program(source, target=args.target)
    except CompileError as error:
        print(f"{args.source}: {error}", file=sys.stderr)
        return 1

    if args.ir:
        print(format_ir(compiled.ir))
        return 0
    if args.assembly:
        print(compiled.assembly)
        return 0

    print(f"target    : {compiled.target}")
    print(f"code size : {compiled.code_size} bytes")
    if compiled.delay_stats:
        print(f"delay fill: {compiled.delay_stats.fill_rate:.0%}")
    if args.run:
        result = run_compiled(compiled)
        sys.stdout.write(result.output)
        if args.stats:
            print(result.stats.summary(), file=sys.stderr)
        return result.exit_code
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
