"""Abstract syntax tree for mini-C."""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Union


# -- types --------------------------------------------------------------------


class BaseType(enum.Enum):
    INT = "int"
    CHAR = "char"
    VOID = "void"


@dataclasses.dataclass(frozen=True)
class Type:
    """A mini-C type: a base type with a pointer depth and optional array size.

    ``Type(INT)`` is ``int``; ``Type(CHAR, pointers=1)`` is ``char*``;
    ``Type(INT, array=10)`` is ``int[10]``.  Arrays of pointers and
    multi-dimensional arrays are intentionally out of scope.
    """

    base: BaseType
    pointers: int = 0
    array: Optional[int] = None

    @property
    def is_pointer(self) -> bool:
        return self.pointers > 0

    @property
    def is_array(self) -> bool:
        return self.array is not None

    @property
    def element(self) -> "Type":
        """Type of the pointed-to / element object."""
        if self.is_array:
            return Type(self.base, self.pointers)
        if self.is_pointer:
            return Type(self.base, self.pointers - 1)
        raise ValueError(f"{self} has no element type")

    @property
    def width(self) -> int:
        """Access width in bytes for a scalar of this type."""
        if self.is_pointer or self.is_array or self.base is BaseType.INT:
            return 4
        if self.base is BaseType.CHAR:
            return 1
        raise ValueError(f"{self} has no width")

    @property
    def size(self) -> int:
        """Storage size in bytes (arrays included)."""
        if self.is_array:
            element_width = 4 if self.pointers else Type(self.base).width
            return element_width * self.array
        return self.width

    def decay(self) -> "Type":
        """Array-to-pointer decay."""
        if self.is_array:
            return Type(self.base, self.pointers + 1)
        return self

    def __str__(self) -> str:
        text = self.base.value + "*" * self.pointers
        if self.is_array:
            text += f"[{self.array}]"
        return text


INT = Type(BaseType.INT)
CHAR = Type(BaseType.CHAR)
VOID = Type(BaseType.VOID)


# -- expressions --------------------------------------------------------------


@dataclasses.dataclass
class Expr:
    line: int
    #: Filled in by semantic analysis.
    type: Optional[Type] = dataclasses.field(default=None, compare=False)


@dataclasses.dataclass
class NumberLit(Expr):
    value: int = 0


@dataclasses.dataclass
class StringLit(Expr):
    value: str = ""


@dataclasses.dataclass
class VarRef(Expr):
    name: str = ""


@dataclasses.dataclass
class Unary(Expr):
    op: str = ""  # -, !, ~, *, &
    operand: Expr = None


@dataclasses.dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclasses.dataclass
class Assign(Expr):
    op: str = "="  # =, +=, -=, *=, /=, %=, &=, |=, ^=, <<=, >>=
    target: Expr = None
    value: Expr = None


@dataclasses.dataclass
class IncDec(Expr):
    op: str = "++"
    prefix: bool = True
    target: Expr = None


@dataclasses.dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclasses.dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = dataclasses.field(default_factory=list)


# -- statements --------------------------------------------------------------


@dataclasses.dataclass
class Stmt:
    line: int


@dataclasses.dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclasses.dataclass
class Decl(Stmt):
    name: str = ""
    var_type: Type = None
    init: Optional[Expr] = None


@dataclasses.dataclass
class Block(Stmt):
    body: list[Stmt] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class If(Stmt):
    cond: Expr = None
    then: Stmt = None
    otherwise: Optional[Stmt] = None


@dataclasses.dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclasses.dataclass
class DoWhile(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclasses.dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclasses.dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclasses.dataclass
class Break(Stmt):
    pass


@dataclasses.dataclass
class Continue(Stmt):
    pass


# -- top level -----------------------------------------------------------------


@dataclasses.dataclass
class Param:
    name: str
    type: Type
    line: int


@dataclasses.dataclass
class FuncDef:
    name: str
    return_type: Type
    params: list[Param]
    body: Optional[Block]  # None for a forward declaration (prototype)
    line: int


@dataclasses.dataclass
class GlobalVar:
    name: str
    type: Type
    init: Optional[Expr]
    line: int


@dataclasses.dataclass
class TranslationUnit:
    functions: list[FuncDef] = dataclasses.field(default_factory=list)
    globals: list[GlobalVar] = dataclasses.field(default_factory=list)


Node = Union[Expr, Stmt, FuncDef, GlobalVar, TranslationUnit]
