"""IR interpreter.

Executes an :class:`repro.cc.ir.IRProgram` directly, with two jobs:

1. **Compiler oracle** — differential testing runs the same program through
   the IR interpreter, the RISC I backend and the CISC backend and demands
   identical output.
2. **Dynamic operation counts** — the M68000/Z8002 baseline estimators
   (:mod:`repro.baselines.estimators`) multiply the per-IR-operation
   execution counts gathered here by published per-operation cycle costs.

The interpreter gives globals, strings and stack frames real addresses in
a flat byte array so pointer arithmetic behaves exactly as on the
simulated machines (big-endian, like the rest of the reproduction).
"""

from __future__ import annotations

import dataclasses
from collections import Counter

from repro.cc import ir
from repro.cc.errors import CompileError
from repro.cc.sema import VarInfo

WORD = 0xFFFFFFFF


def _signed(value: int) -> int:
    value &= WORD
    return value - (1 << 32) if value & 0x80000000 else value


@dataclasses.dataclass
class IRCounts:
    """Dynamic execution profile of one IR-level run."""

    #: operation key -> executed count.  Keys: "binop:+", "load:4",
    #: "store:1", "call", "ret", "branch", "jump", "const", "move",
    #: "getvar", "setvar", "addrvar", "setcmp", "unop"
    ops: Counter = dataclasses.field(default_factory=Counter)
    calls: int = 0
    max_depth: int = 0

    @property
    def total(self) -> int:
        return sum(self.ops.values())

    def to_dict(self) -> dict:
        return {"ops": dict(self.ops), "calls": self.calls, "max_depth": self.max_depth}

    @classmethod
    def from_dict(cls, payload: dict) -> "IRCounts":
        return cls(
            ops=Counter(payload.get("ops", {})),
            calls=payload["calls"],
            max_depth=payload["max_depth"],
        )


@dataclasses.dataclass
class IRResult:
    exit_code: int
    output: str
    counts: IRCounts

    def to_dict(self) -> dict:
        return {
            "exit_code": self.exit_code,
            "output": self.output,
            "counts": self.counts.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "IRResult":
        return cls(
            exit_code=payload["exit_code"],
            output=payload["output"],
            counts=IRCounts.from_dict(payload["counts"]),
        )


class _Frame:
    def __init__(self):
        self.temps: dict[ir.Temp, int] = {}
        self.vars: dict[VarInfo, int] = {}  # register-like scalar storage
        self.addresses: dict[VarInfo, int] = {}  # stack-resident storage


class _Return(Exception):
    def __init__(self, value: int):
        self.value = value


class IRInterpreter:
    def __init__(self, program: ir.IRProgram, memory_size: int = 1 << 20):
        self.program = program
        self.memory = bytearray(memory_size)
        self.counts = IRCounts()
        self._console: list[str] = []
        self._sp = memory_size - 16
        self._depth = 0
        self._globals: dict[str, int] = {}
        self._functions = {f.name: f for f in program.functions}
        self._layout_globals()

    # -- memory ----------------------------------------------------------------

    def _read(self, address: int, width: int, signed: bool) -> int:
        raw = int.from_bytes(self.memory[address : address + width], "big")
        if signed:
            top = 1 << (width * 8 - 1)
            raw = (raw & (top - 1)) - (raw & top)
        return raw & WORD

    def _write(self, address: int, value: int, width: int) -> None:
        self.memory[address : address + width] = (value & ((1 << (8 * width)) - 1)).to_bytes(
            width, "big"
        )

    def _layout_globals(self) -> None:
        cursor = 0x1000
        for gdef in self.program.globals:
            cursor = (cursor + 3) & ~3
            self._globals[gdef.var.name] = cursor
            cursor += (gdef.var.type.size + 3) & ~3
        string_addresses: dict[str, int] = {}
        for label, text in self.program.strings.items():
            string_addresses[label] = cursor
            data = text.encode("latin-1") + b"\0"
            self.memory[cursor : cursor + len(data)] = data
            cursor += (len(data) + 3) & ~3
        self._globals.update(string_addresses)
        for gdef in self.program.globals:
            address = self._globals[gdef.var.name]
            if gdef.init_string is not None:
                self._write(address, string_addresses[gdef.init_string], 4)
            elif gdef.init_value is not None:
                self._write(address, gdef.init_value & WORD, 4)

    # -- execution -----------------------------------------------------------------

    def run(self) -> IRResult:
        code = self._call("main", [])
        return IRResult(_signed(code), "".join(self._console), self.counts)

    def _call(self, name: str, args: list[int]) -> int:
        if name == "putchar":
            self._console.append(chr(args[0] & 0xFF))
            return 0
        if name == "putint":
            self._console.append(str(_signed(args[0])))
            return 0
        if name == "puts":
            address = args[0]
            chars = []
            while self.memory[address]:
                chars.append(chr(self.memory[address]))
                address += 1
            self._console.append("".join(chars))
            return 0
        func = self._functions.get(name)
        if func is None:
            raise CompileError(f"irvm: call to unknown function {name!r}")
        self.counts.calls += 1
        self._depth += 1
        self.counts.max_depth = max(self.counts.max_depth, self._depth)

        frame = _Frame()
        frame_base = self._sp
        for var, value in zip(func.params, args):
            self._place_var(frame, var)
            self._set_var(frame, var, value)
        for var in func.locals:
            self._place_var(frame, var)

        labels = {
            instr.name: pos
            for pos, instr in enumerate(func.instrs)
            if isinstance(instr, ir.Label)
        }
        try:
            pos = 0
            while pos < len(func.instrs):
                target = self._exec(func.instrs[pos], frame, labels)
                pos = target if target is not None else pos + 1
            return 0
        except _Return as ret:
            return ret.value
        finally:
            self._sp = frame_base
            self._depth -= 1

    def _place_var(self, frame: _Frame, var: VarInfo) -> None:
        if var.addressed or var.type.is_array:
            size = (var.type.size + 3) & ~3
            self._sp -= size
            frame.addresses[var] = self._sp
        else:
            frame.vars[var] = 0

    # -- operand evaluation ------------------------------------------------------

    def _value(self, op: ir.Operand, frame: _Frame) -> int:
        if isinstance(op, int):
            return op & WORD
        if isinstance(op, ir.Temp):
            return frame.temps[op]
        return self._get_var(frame, op)

    def _get_var(self, frame: _Frame, var: VarInfo) -> int:
        if var in frame.vars:
            return frame.vars[var]
        if var in frame.addresses:
            return self._read(frame.addresses[var], 4, signed=False)
        if var.name in self._globals:
            return self._read(self._globals[var.name], 4, signed=False)
        raise CompileError(f"irvm: unknown variable {var.name!r}")

    def _set_var(self, frame: _Frame, var: VarInfo, value: int) -> None:
        value &= WORD
        if var in frame.vars:
            frame.vars[var] = value
        elif var in frame.addresses:
            self._write(frame.addresses[var], value, 4)
        elif var.name in self._globals:
            self._write(self._globals[var.name], value, 4)
        else:
            raise CompileError(f"irvm: unknown variable {var.name!r}")

    def _address_of(self, var: VarInfo, frame: _Frame) -> int:
        if var in frame.addresses:
            return frame.addresses[var]
        if var.name in self._globals:
            return self._globals[var.name]
        raise CompileError(f"irvm: address of register variable {var.name!r}")

    # -- instruction dispatch ---------------------------------------------------------

    def _exec(self, instr: ir.Instr, frame: _Frame, labels: dict[str, int]) -> int | None:
        counts = self.counts.ops
        if isinstance(instr, ir.Label):
            return None
        if isinstance(instr, ir.Marker):
            counts[f"stmt:{instr.kind}"] += 1
            return None
        if isinstance(instr, ir.SrcLoc):
            return None  # line-number annotation, zero-cost
        if isinstance(instr, ir.Const):
            counts["const"] += 1
            frame.temps[instr.dst] = instr.value & WORD
            return None
        if isinstance(instr, ir.Move):
            counts["move"] += 1
            frame.temps[instr.dst] = self._value(instr.src, frame)
            return None
        if isinstance(instr, ir.GetVar):
            counts["getvar"] += 1
            frame.temps[instr.dst] = self._get_var(frame, instr.var)
            return None
        if isinstance(instr, ir.SetVar):
            counts["setvar"] += 1
            self._set_var(frame, instr.var, self._value(instr.src, frame))
            return None
        if isinstance(instr, ir.AddrVar):
            counts["addrvar"] += 1
            frame.temps[instr.dst] = self._address_of(instr.var, frame)
            return None
        if isinstance(instr, ir.UnOp):
            counts["unop"] += 1
            value = self._value(instr.src, frame)
            if instr.op == "neg":
                result = -value
            elif instr.op == "bnot":
                result = ~value
            else:
                result = int(value == 0)
            frame.temps[instr.dst] = result & WORD
            return None
        if isinstance(instr, ir.BinOp):
            counts[f"binop:{instr.op}"] += 1
            frame.temps[instr.dst] = self._binop(
                instr.op, self._value(instr.a, frame), self._value(instr.b, frame)
            )
            return None
        if isinstance(instr, ir.SetCmp):
            counts["setcmp"] += 1
            a = _signed(self._value(instr.a, frame))
            b = _signed(self._value(instr.b, frame))
            frame.temps[instr.dst] = int(_REL[instr.op](a, b))
            return None
        if isinstance(instr, ir.Load):
            counts[f"load:{instr.width}"] += 1
            address = (self._value(instr.addr, frame) + instr.offset) & WORD
            frame.temps[instr.dst] = self._read(address, instr.width, instr.signed)
            return None
        if isinstance(instr, ir.Store):
            counts[f"store:{instr.width}"] += 1
            address = (self._value(instr.addr, frame) + instr.offset) & WORD
            self._write(address, self._value(instr.src, frame), instr.width)
            return None
        if isinstance(instr, ir.Call):
            counts["call"] += 1
            args = [self._value(a, frame) for a in instr.args]
            result = self._call(instr.name, args)
            if instr.dst is not None:
                frame.temps[instr.dst] = result & WORD
            return None
        if isinstance(instr, ir.Jump):
            counts["jump"] += 1
            return labels[instr.target]
        if isinstance(instr, ir.CBranch):
            counts["branch"] += 1
            a = _signed(self._value(instr.a, frame))
            b = _signed(self._value(instr.b, frame))
            if _REL[instr.op](a, b):
                return labels[instr.target]
            return None
        if isinstance(instr, ir.Ret):
            counts["ret"] += 1
            value = self._value(instr.src, frame) if instr.src is not None else 0
            raise _Return(value)
        raise CompileError(f"irvm: unhandled IR {type(instr).__name__}")

    @staticmethod
    def _binop(op: str, a: int, b: int) -> int:
        sa, sb = _signed(a), _signed(b)
        if op == "+":
            return (a + b) & WORD
        if op == "-":
            return (a - b) & WORD
        if op == "*":
            return (sa * sb) & WORD
        if op == "/":
            if sb == 0:
                raise CompileError("irvm: division by zero")
            return int(sa / sb) & WORD
        if op == "%":
            if sb == 0:
                raise CompileError("irvm: modulo by zero")
            return (sa - int(sa / sb) * sb) & WORD
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "<<":
            return (a << (b & 31)) & WORD
        if op == ">>":
            return (sa >> (b & 31)) & WORD
        raise CompileError(f"irvm: unknown operator {op!r}")


_REL = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def run_ir(program: ir.IRProgram) -> IRResult:
    """Execute an IR program and return its result and dynamic profile."""
    return IRInterpreter(program).run()
