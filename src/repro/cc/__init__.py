"""RCC — the mini-C compiler substrate.

The paper's evaluation compares *compiled C programs* across five machines.
This package provides the compiler that makes such a comparison possible in
this reproduction: a small C dialect (ints, chars, pointers, arrays,
functions, full statement and expression repertoire) with a shared
front-end and IR, and per-ISA backends:

* :mod:`repro.cc.riscgen` — RISC I code with the register-window calling
  convention and delay-slot filling;
* :mod:`repro.cc.ciscgen` — VAX-like code with memory operands and CALLS
  stack frames (see :mod:`repro.baselines.vax`).

Using one front-end for every target removes compiler quality as a
confound, which is the fair-comparison property the paper's methodology
needs (its own C compilers were of similar, simple quality).
"""

from repro.cc.driver import CompiledProgram, compile_program, compile_to_assembly
from repro.cc.errors import CompileError

__all__ = ["CompileError", "CompiledProgram", "compile_program", "compile_to_assembly"]
