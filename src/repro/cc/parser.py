"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from repro.cc import ast_nodes as ast
from repro.cc.errors import CompileError
from repro.cc.lexer import Token, TokenKind, tokenize

#: Binary operator precedence, higher binds tighter.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

_TYPE_KEYWORDS = {"int": ast.BaseType.INT, "char": ast.BaseType.CHAR, "void": ast.BaseType.VOID}


class Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check_op(self, text: str) -> bool:
        return self._cur.kind is TokenKind.OP and self._cur.text == text

    def _accept_op(self, text: str) -> bool:
        if self._check_op(text):
            self._advance()
            return True
        return False

    def _expect_op(self, text: str) -> Token:
        if not self._check_op(text):
            raise CompileError(f"expected {text!r}, got {self._cur.text!r}", self._cur.line)
        return self._advance()

    def _expect_ident(self) -> Token:
        if self._cur.kind is not TokenKind.IDENT:
            raise CompileError(f"expected identifier, got {self._cur.text!r}", self._cur.line)
        return self._advance()

    def _at_type(self) -> bool:
        return self._cur.kind is TokenKind.KEYWORD and self._cur.text in _TYPE_KEYWORDS

    # -- top level -------------------------------------------------------------

    def parse(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self._cur.kind is not TokenKind.EOF:
            self._parse_top_level(unit)
        return unit

    def _parse_top_level(self, unit: ast.TranslationUnit) -> None:
        line = self._cur.line
        base = self._parse_base_type()
        pointers = 0
        while self._accept_op("*"):
            pointers += 1
        name = self._expect_ident().text
        if self._check_op("("):
            unit.functions.append(
                self._parse_function(name, ast.Type(base, pointers), line)
            )
            return
        # global variable(s)
        while True:
            var_type = ast.Type(base, pointers)
            if self._accept_op("["):
                size_token = self._advance()
                if size_token.kind is not TokenKind.NUMBER:
                    raise CompileError("array size must be a number", size_token.line)
                self._expect_op("]")
                var_type = ast.Type(base, pointers, array=size_token.value)
            init = None
            if self._accept_op("="):
                init = self._parse_assignment()
            unit.globals.append(ast.GlobalVar(name, var_type, init, line))
            if self._accept_op(";"):
                return
            self._expect_op(",")
            pointers = 0
            while self._accept_op("*"):
                pointers += 1
            name = self._expect_ident().text

    def _parse_base_type(self) -> ast.BaseType:
        if not self._at_type():
            raise CompileError(f"expected type, got {self._cur.text!r}", self._cur.line)
        return _TYPE_KEYWORDS[self._advance().text]

    def _parse_function(self, name: str, return_type: ast.Type, line: int) -> ast.FuncDef:
        self._expect_op("(")
        params: list[ast.Param] = []
        if not self._check_op(")"):
            if self._cur.kind is TokenKind.KEYWORD and self._cur.text == "void":
                self._advance()
            else:
                while True:
                    params.append(self._parse_param())
                    if not self._accept_op(","):
                        break
        self._expect_op(")")
        if self._accept_op(";"):
            # forward declaration (prototype): no body
            return ast.FuncDef(name, return_type, params, None, line)
        body = self._parse_block()
        return ast.FuncDef(name, return_type, params, body, line)

    def _parse_param(self) -> ast.Param:
        line = self._cur.line
        base = self._parse_base_type()
        pointers = 0
        while self._accept_op("*"):
            pointers += 1
        name = self._expect_ident().text
        if self._accept_op("["):
            self._expect_op("]")
            pointers += 1  # array parameters decay to pointers
        return ast.Param(name, ast.Type(base, pointers), line)

    # -- statements ---------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect_op("{")
        body: list[ast.Stmt] = []
        while not self._check_op("}"):
            if self._cur.kind is TokenKind.EOF:
                raise CompileError("unterminated block", start.line)
            body.append(self._parse_statement())
        self._expect_op("}")
        return ast.Block(start.line, body=body)

    def _parse_statement(self) -> ast.Stmt:
        token = self._cur
        if self._at_type():
            return self._parse_declaration()
        if token.kind is TokenKind.KEYWORD:
            handler = {
                "if": self._parse_if,
                "while": self._parse_while,
                "do": self._parse_do_while,
                "for": self._parse_for,
                "return": self._parse_return,
                "break": self._parse_break,
                "continue": self._parse_continue,
            }.get(token.text)
            if handler:
                return handler()
        if self._check_op("{"):
            return self._parse_block()
        if self._accept_op(";"):
            return ast.Block(token.line)  # empty statement
        expr = self._parse_expression()
        self._expect_op(";")
        return ast.ExprStmt(token.line, expr=expr)

    def _parse_declaration(self) -> ast.Stmt:
        line = self._cur.line
        base = self._parse_base_type()
        decls: list[ast.Stmt] = []
        while True:
            pointers = 0
            while self._accept_op("*"):
                pointers += 1
            name = self._expect_ident().text
            var_type = ast.Type(base, pointers)
            if self._accept_op("["):
                size_token = self._advance()
                if size_token.kind is not TokenKind.NUMBER:
                    raise CompileError("array size must be a number", size_token.line)
                self._expect_op("]")
                var_type = ast.Type(base, pointers, array=size_token.value)
            init = self._parse_assignment() if self._accept_op("=") else None
            decls.append(ast.Decl(line, name=name, var_type=var_type, init=init))
            if self._accept_op(";"):
                break
            self._expect_op(",")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(line, body=decls)

    def _parse_if(self) -> ast.Stmt:
        line = self._advance().line
        self._expect_op("(")
        cond = self._parse_expression()
        self._expect_op(")")
        then = self._parse_statement()
        otherwise = None
        if self._cur.kind is TokenKind.KEYWORD and self._cur.text == "else":
            self._advance()
            otherwise = self._parse_statement()
        return ast.If(line, cond=cond, then=then, otherwise=otherwise)

    def _parse_while(self) -> ast.Stmt:
        line = self._advance().line
        self._expect_op("(")
        cond = self._parse_expression()
        self._expect_op(")")
        return ast.While(line, cond=cond, body=self._parse_statement())

    def _parse_do_while(self) -> ast.Stmt:
        line = self._advance().line
        body = self._parse_statement()
        if not (self._cur.kind is TokenKind.KEYWORD and self._cur.text == "while"):
            raise CompileError("expected 'while' after do body", self._cur.line)
        self._advance()
        self._expect_op("(")
        cond = self._parse_expression()
        self._expect_op(")")
        self._expect_op(";")
        return ast.DoWhile(line, cond=cond, body=body)

    def _parse_for(self) -> ast.Stmt:
        line = self._advance().line
        self._expect_op("(")
        init: ast.Stmt | None = None
        if not self._check_op(";"):
            if self._at_type():
                init = self._parse_declaration()
            else:
                expr = self._parse_expression()
                self._expect_op(";")
                init = ast.ExprStmt(line, expr=expr)
        else:
            self._advance()
        cond = None if self._check_op(";") else self._parse_expression()
        self._expect_op(";")
        step = None if self._check_op(")") else self._parse_expression()
        self._expect_op(")")
        return ast.For(line, init=init, cond=cond, step=step, body=self._parse_statement())

    def _parse_return(self) -> ast.Stmt:
        line = self._advance().line
        value = None if self._check_op(";") else self._parse_expression()
        self._expect_op(";")
        return ast.Return(line, value=value)

    def _parse_break(self) -> ast.Stmt:
        line = self._advance().line
        self._expect_op(";")
        return ast.Break(line)

    def _parse_continue(self) -> ast.Stmt:
        line = self._advance().line
        self._expect_op(";")
        return ast.Continue(line)

    # -- expressions ---------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_binary(0)
        if self._cur.kind is TokenKind.OP and self._cur.text in _ASSIGN_OPS:
            op_token = self._advance()
            value = self._parse_assignment()
            return ast.Assign(op_token.line, op=op_token.text, target=left, value=value)
        return left

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while (
            self._cur.kind is TokenKind.OP
            and self._cur.text in _PRECEDENCE
            and _PRECEDENCE[self._cur.text] > min_precedence
        ):
            op_token = self._advance()
            right = self._parse_binary(_PRECEDENCE[op_token.text])
            left = ast.Binary(op_token.line, op=op_token.text, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._cur
        if token.kind is TokenKind.OP:
            if token.text in ("-", "!", "~", "*", "&"):
                self._advance()
                operand = self._parse_unary()
                return ast.Unary(token.line, op=token.text, operand=operand)
            if token.text in ("++", "--"):
                self._advance()
                target = self._parse_unary()
                return ast.IncDec(token.line, op=token.text, prefix=True, target=target)
            if token.text == "+":
                self._advance()
                return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._accept_op("["):
                index = self._parse_expression()
                self._expect_op("]")
                expr = ast.Index(self._cur.line, base=expr, index=index)
            elif self._check_op("++") or self._check_op("--"):
                op_token = self._advance()
                expr = ast.IncDec(op_token.line, op=op_token.text, prefix=False, target=expr)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._advance()
        if token.kind is TokenKind.NUMBER or token.kind is TokenKind.CHAR:
            return ast.NumberLit(token.line, value=token.value)
        if token.kind is TokenKind.STRING:
            # adjacent string literals concatenate, as in C
            parts = [token.text]
            while self._cur.kind is TokenKind.STRING:
                parts.append(self._advance().text)
            return ast.StringLit(token.line, value="".join(parts))
        if token.kind is TokenKind.IDENT:
            if self._accept_op("("):
                args: list[ast.Expr] = []
                if not self._check_op(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept_op(","):
                            break
                self._expect_op(")")
                return ast.Call(token.line, name=token.text, args=args)
            return ast.VarRef(token.line, name=token.text)
        if token.kind is TokenKind.OP and token.text == "(":
            expr = self._parse_expression()
            self._expect_op(")")
            return expr
        raise CompileError(f"unexpected token {token.text!r}", token.line)


def parse(source: str) -> ast.TranslationUnit:
    """Parse mini-C source into a translation unit."""
    return Parser(tokenize(source)).parse()
