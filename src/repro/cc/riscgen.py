"""RISC I code generator.

Lowering decisions, in the spirit of the paper's own (simple) C compiler:

* scalar locals whose address is never taken live in LOCAL registers
  (r16..); expression temporaries take the remaining LOCAL registers, with
  linear-scan spilling to the frame when they run out;
* incoming parameters stay in the HIGH registers (r26..r30) they arrive in;
  up to five register parameters are supported;
* arrays and address-taken variables live in the stack frame (SP = r1);
* multiplication/division/modulo call the runtime routines of
  :mod:`repro.cc.runtime` (RISC I has no multiply hardware);
* the epilogue deallocates the frame *in the RETURN delay slot* — the stack
  pointer is a GLOBAL register, so that slot is window-safe;
* delay-slot filling and peephole cleanup run afterwards in
  :mod:`repro.cc.delay`.
"""

from __future__ import annotations

from repro.cc import ir
from repro.cc.errors import CompileError
from repro.cc.regalloc import allocate
from repro.cc.sema import VarInfo
from repro.isa.encoding import S2_MAX, S2_MIN

#: Maximum register arguments (LOW r10..r14; r15 backs the return address).
MAX_ARGS = 5

_BINOP_MNEMONIC = {
    "+": "add",
    "-": "sub",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "sll",
    ">>": "sra",
}
_RUNTIME_BINOP = {"*": "__mul", "/": "__div", "%": "__mod"}
_REL_COND = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}

_LOAD_MNEMONIC = {(4, False): "ldl", (4, True): "ldl", (2, False): "ldsu", (2, True): "ldss", (1, False): "ldbu", (1, True): "ldbs"}
_STORE_MNEMONIC = {4: "stl", 2: "sts", 1: "stb"}


def _fits(value: int) -> bool:
    return S2_MIN <= value <= S2_MAX


class _FunctionCodegen:
    """Emits one function's assembly lines."""

    def __init__(self, func: ir.IRFunction, used_runtime: set[str]):
        self.func = func
        self.used_runtime = used_runtime
        self.lines: list[str] = []
        self.var_reg: dict[VarInfo, int] = {}
        self.var_slot: dict[VarInfo, int] = {}
        self._label_count = 0
        self.frame_size = 0
        self._cur_line = func.line
        self._place_variables()

    # -- placement --------------------------------------------------------

    def _place_variables(self) -> None:
        func = self.func
        if len(func.params) > MAX_ARGS:
            raise CompileError(
                f"{func.name}: more than {MAX_ARGS} parameters is not supported "
                "by the RISC I register-window convention"
            )
        offset = 0

        def stack_slot(size: int) -> int:
            nonlocal offset
            size = (size + 3) & ~3
            slot = offset
            offset += size
            return slot

        for i, param in enumerate(func.params):
            if param.addressed:
                self.var_slot[param] = stack_slot(4)
            else:
                self.var_reg[param] = 26 + i

        reg_local_budget = 6  # r16..r21; the rest of LOCAL is the temp pool
        next_reg = 16
        for var in func.locals:
            register_ok = (
                not var.addressed
                and not var.type.is_array
                and next_reg < 16 + reg_local_budget
            )
            if register_ok:
                self.var_reg[var] = next_reg
                next_reg += 1
            else:
                self.var_slot[var] = stack_slot(var.type.size)

        pool = list(range(next_reg, 26))
        self.alloc = allocate(func.instrs, pool)
        self.spill_base = offset
        offset += 4 * self.alloc.num_spill_slots
        self.frame_size = (offset + 7) & ~7

    # -- emission helpers ------------------------------------------------------

    def emit(self, text: str) -> None:
        if self._cur_line:
            self.lines.append(f"    {text}\t;@{self._cur_line}")
        else:
            self.lines.append(f"    {text}")

    def emit_label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def _local_label(self, hint: str) -> str:
        self._label_count += 1
        return f".{hint}_{self.func.name}_{self._label_count}"

    # -- operand access -----------------------------------------------------------

    def value_reg(self, op: ir.Operand, scratch: str) -> str:
        """Return a register holding ``op``'s value, emitting code if needed."""
        if isinstance(op, ir.Temp):
            if op in self.alloc.registers:
                return f"r{self.alloc.registers[op]}"
            slot = self.spill_base + 4 * self.alloc.spills[op]
            self.emit(f"ldl {scratch}, {slot}(r1)")
            return scratch
        if isinstance(op, int):
            if op == 0:
                return "r0"
            if _fits(op):
                self.emit(f"add {scratch}, r0, #{op}")
            else:
                self.emit(f"set {scratch}, #{op}")
            return scratch
        # VarInfo
        if op in self.var_reg:
            return f"r{self.var_reg[op]}"
        if op in self.var_slot:
            self.emit(f"ldl {scratch}, {self.var_slot[op]}(r1)")
            return scratch
        # global scalar
        self.emit(f"set {scratch}, {op.name}")
        self.emit(f"ldl {scratch}, 0({scratch})")
        return scratch

    def dest_reg(self, dst: ir.Temp) -> str:
        """Register the result of ``dst`` should be computed into."""
        if dst in self.alloc.registers:
            return f"r{self.alloc.registers[dst]}"
        return "r9"

    def commit(self, dst: ir.Temp, reg: str) -> None:
        """Store a spilled temp's value from its staging register."""
        if dst in self.alloc.spills:
            slot = self.spill_base + 4 * self.alloc.spills[dst]
            self.emit(f"stl {reg}, {slot}(r1)")

    def move_to(self, target: str, op: ir.Operand) -> None:
        """Materialize ``op``'s value directly into register ``target``."""
        if isinstance(op, int):
            if op == 0:
                self.emit(f"add {target}, r0, #0")
            elif _fits(op):
                self.emit(f"add {target}, r0, #{op}")
            else:
                self.emit(f"set {target}, #{op}")
            return
        source = self.value_reg(op, scratch=target if target not in ("r1",) else "r9")
        if source != target:
            self.emit(f"add {target}, {source}, #0")

    def _s2_operand(self, op: ir.Operand, scratch: str) -> str:
        """Second ALU operand: immediate text if it fits, else a register."""
        if isinstance(op, int) and _fits(op):
            return f"#{op}"
        return self.value_reg(op, scratch)

    # -- instruction emission ----------------------------------------------------

    def generate(self) -> list[str]:
        func = self.func
        self.lines.append(f"{func.name}:\t;@fn {func.name}")
        if self.frame_size:
            self.emit(f"add r1, r1, #-{self.frame_size}")
        for i, param in enumerate(func.params):
            if param in self.var_slot:
                self.emit(f"stl r{26 + i}, {self.var_slot[param]}(r1)")
        for instr in func.instrs:
            self._gen(instr)
        return self.lines

    def _gen(self, instr: ir.Instr) -> None:
        if isinstance(instr, ir.Marker):
            return  # statement markers are profiling-only
        if isinstance(instr, ir.SrcLoc):
            self._cur_line = instr.line
            return
        if isinstance(instr, ir.Label):
            self.emit_label(instr.name)
        elif isinstance(instr, ir.Const):
            reg = self.dest_reg(instr.dst)
            self.move_to(reg, instr.value)
            self.commit(instr.dst, reg)
        elif isinstance(instr, ir.Move):
            reg = self.dest_reg(instr.dst)
            self.move_to(reg, instr.src)
            self.commit(instr.dst, reg)
        elif isinstance(instr, ir.GetVar):
            reg = self.dest_reg(instr.dst)
            self.move_to(reg, instr.var)
            self.commit(instr.dst, reg)
        elif isinstance(instr, ir.SetVar):
            self._gen_setvar(instr)
        elif isinstance(instr, ir.AddrVar):
            self._gen_addrvar(instr)
        elif isinstance(instr, ir.UnOp):
            self._gen_unop(instr)
        elif isinstance(instr, ir.BinOp):
            self._gen_binop(instr)
        elif isinstance(instr, ir.SetCmp):
            self._gen_setcmp(instr)
        elif isinstance(instr, ir.Load):
            self._gen_load(instr)
        elif isinstance(instr, ir.Store):
            self._gen_store(instr)
        elif isinstance(instr, ir.Call):
            self._gen_call(instr)
        elif isinstance(instr, ir.Jump):
            self.emit(f"jmp {instr.target}")
            self.emit("nop")
        elif isinstance(instr, ir.CBranch):
            self._gen_cbranch(instr)
        elif isinstance(instr, ir.Ret):
            self._gen_ret(instr)
        else:
            raise CompileError(f"riscgen: unhandled IR {type(instr).__name__}")

    def _gen_setvar(self, instr: ir.SetVar) -> None:
        var = instr.var
        if var in self.var_reg:
            self.move_to(f"r{self.var_reg[var]}", instr.src)
            return
        value = self.value_reg(instr.src, "r9")
        if var in self.var_slot:
            self.emit(f"stl {value}, {self.var_slot[var]}(r1)")
            return
        self.emit(f"set r8, {var.name}")
        self.emit(f"stl {value}, 0(r8)")

    def _gen_addrvar(self, instr: ir.AddrVar) -> None:
        reg = self.dest_reg(instr.dst)
        var = instr.var
        if var in self.var_slot:
            self.emit(f"add {reg}, r1, #{self.var_slot[var]}")
        elif var.is_global:
            self.emit(f"set {reg}, {var.name}")
        else:
            raise CompileError(f"riscgen: address of register variable {var.name!r}")
        self.commit(instr.dst, reg)

    def _gen_unop(self, instr: ir.UnOp) -> None:
        reg = self.dest_reg(instr.dst)
        if instr.op == "lnot":
            src = self.value_reg(instr.src, "r8")
            self._emit_setcc_pattern(reg, "eq", src, "#0")
        else:
            src = self.value_reg(instr.src, "r8")
            if instr.op == "neg":
                self.emit(f"subr {reg}, {src}, #0")
            else:  # bnot
                self.emit(f"xor {reg}, {src}, #-1")
        self.commit(instr.dst, reg)

    def _gen_binop(self, instr: ir.BinOp) -> None:
        if instr.op in _RUNTIME_BINOP:
            self._gen_runtime_binop(instr)
            return
        reg = self.dest_reg(instr.dst)
        a, b, op = instr.a, instr.b, instr.op
        if isinstance(a, int) and op == "-":
            # imm - reg: use the reverse-subtract instruction
            b_reg = self.value_reg(b, "r8")
            if _fits(a):
                self.emit(f"subr {reg}, {b_reg}, #{a}")
            else:
                a_reg = self.value_reg(a, "r9")
                self.emit(f"sub {reg}, {a_reg}, {b_reg}")
            self.commit(instr.dst, reg)
            return
        if isinstance(a, int) and op in ("+", "&", "|", "^"):
            a, b = b, a  # commutative: put the constant second
        a_reg = self.value_reg(a, "r8")
        s2 = self._s2_operand(b, "r9")
        self.emit(f"{_BINOP_MNEMONIC[op]} {reg}, {a_reg}, {s2}")
        self.commit(instr.dst, reg)

    def _gen_runtime_binop(self, instr: ir.BinOp) -> None:
        name = _RUNTIME_BINOP[instr.op]
        self.used_runtime.add(name)
        self.move_to("r10", instr.a)
        self.move_to("r11", instr.b)
        self.emit(f"call {name}")
        self.emit("nop")
        reg = self.dest_reg(instr.dst)
        if reg != "r10":
            self.emit(f"add {reg}, r10, #0")
        self.commit(instr.dst, reg if reg != "r10" else "r10")

    def _emit_setcc_pattern(self, reg: str, cond: str, a_reg: str, s2: str) -> None:
        done = self._local_label("scc")
        self.emit(f"sub! r0, {a_reg}, {s2}")
        self.emit(f"add {reg}, r0, #1")
        self.emit(f"j{cond} {done}")
        self.emit("nop")
        self.emit(f"add {reg}, r0, #0")
        self.emit_label(done)

    def _gen_setcmp(self, instr: ir.SetCmp) -> None:
        reg = self.dest_reg(instr.dst)
        op, a, b = instr.op, instr.a, instr.b
        if isinstance(a, int) and not isinstance(b, int):
            op, a, b = ir.SWAP_REL[op], b, a
        a_reg = self.value_reg(a, "r8")
        s2 = self._s2_operand(b, "r9")
        self._emit_setcc_pattern(reg, _REL_COND[op], a_reg, s2)
        self.commit(instr.dst, reg)

    def _gen_cbranch(self, instr: ir.CBranch) -> None:
        op, a, b = instr.op, instr.a, instr.b
        if isinstance(a, int) and not isinstance(b, int):
            op, a, b = ir.SWAP_REL[op], b, a
        a_reg = self.value_reg(a, "r8")
        s2 = self._s2_operand(b, "r9")
        self.emit(f"sub! r0, {a_reg}, {s2}")
        self.emit(f"j{_REL_COND[op]} {instr.target}")
        self.emit("nop")

    def _gen_load(self, instr: ir.Load) -> None:
        reg = self.dest_reg(instr.dst)
        base, offset = self._address(instr.addr, instr.offset)
        mnemonic = _LOAD_MNEMONIC[(instr.width, instr.signed)]
        self.emit(f"{mnemonic} {reg}, {offset}({base})")
        self.commit(instr.dst, reg)

    def _gen_store(self, instr: ir.Store) -> None:
        # address first: materializing a large offset may use r9, which is
        # also the value's staging register
        base, offset = self._address(instr.addr, instr.offset)
        value = self.value_reg(instr.src, "r9")
        self.emit(f"{_STORE_MNEMONIC[instr.width]} {value}, {offset}({base})")

    def _address(self, addr: ir.Operand, offset: int) -> tuple[str, int]:
        """Reduce (addr operand, byte offset) to a (base register, offset)."""
        if isinstance(addr, int):
            total = addr + offset
            if _fits(total):
                return "r0", total
            self.emit(f"set r8, #{total}")
            return "r8", 0
        base = self.value_reg(addr, "r8")
        if _fits(offset):
            return base, offset
        self.emit(f"set r9, #{offset}")
        self.emit(f"add r8, {base}, r9")
        return "r8", 0

    def _gen_call(self, instr: ir.Call) -> None:
        if instr.name == "putchar":
            reg = self.value_reg(instr.args[0], "r9")
            self.emit(f"putc {reg}")
            return
        if instr.name == "putint":
            reg = self.value_reg(instr.args[0], "r9")
            self.emit(f"puti {reg}")
            return
        name = "__puts" if instr.name == "puts" else instr.name
        if name.startswith("__"):
            self.used_runtime.add(name)
        if len(instr.args) > MAX_ARGS:
            raise CompileError(
                f"call to {instr.name}: more than {MAX_ARGS} arguments is not "
                "supported by the RISC I register-window convention"
            )
        for i, arg in enumerate(instr.args):
            self.move_to(f"r{10 + i}", arg)
        self.emit(f"call {name}")
        self.emit("nop")
        if instr.dst is not None:
            reg = self.dest_reg(instr.dst)
            if reg != "r10":
                self.emit(f"add {reg}, r10, #0")
            self.commit(instr.dst, reg if reg != "r10" else "r10")

    def _gen_ret(self, instr: ir.Ret) -> None:
        if instr.src is not None:
            self.move_to("r26", instr.src)
        self.emit("ret")
        if self.frame_size:
            self.emit(f"add r1, r1, #{self.frame_size}")  # window-safe delay slot
        else:
            self.emit("nop")


class RiscCodegen:
    """Generates a complete RISC I assembly module from an IR program."""

    def __init__(self, program: ir.IRProgram):
        self.program = program
        self.used_runtime: set[str] = set()

    def generate(self) -> str:
        from repro.cc.runtime import runtime_text

        lines: list[str] = ["; generated by rcc (RISC I backend)", "    .text"]
        lines += [
            "_start:\t;@fn _start",
            "    call main",
            "    nop",
            "    halt r10",
        ]
        for func in self.program.functions:
            codegen = _FunctionCodegen(func, self.used_runtime)
            lines.extend(codegen.generate())
        runtime = runtime_text(self.used_runtime)
        if runtime:
            lines.append(runtime)
        lines.extend(self._data_section())
        return "\n".join(lines) + "\n"

    def _data_section(self) -> list[str]:
        lines: list[str] = []
        if not self.program.globals and not self.program.strings:
            return lines
        lines.append("    .data")
        for gdef in self.program.globals:
            var = gdef.var
            lines.append("    .align 4")
            if var.type.is_array:
                lines.append(f"{var.name}: .space {var.type.size}")
            elif gdef.init_string is not None:
                lines.append(f"{var.name}: .word {gdef.init_string}")
            else:
                lines.append(f"{var.name}: .word {gdef.init_value or 0}")
        for label, text in self.program.strings.items():
            escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n").replace("\t", "\\t").replace("\r", "\\r").replace("\0", "\\0")
            lines.append(f'{label}: .asciiz "{escaped}"')
        return lines


def generate_risc_assembly(program: ir.IRProgram) -> str:
    """IR program -> RISC I assembly text (before delay-slot optimization)."""
    return RiscCodegen(program).generate()
