"""Three-address intermediate representation.

The IR is the meeting point of the shared front-end and the per-ISA
backends.  Operands are virtual registers (:class:`Temp`), integer
constants, or abstract variables (:class:`repro.cc.sema.VarInfo`) whose
placement — register, stack slot, global — each backend decides for
itself.  That freedom is what lets the RISC I backend keep scalars in
window registers while the VAX-like backend keeps them in the stack frame
and folds memory operands into instructions, each in its own 1981 idiom.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from repro.cc.sema import VarInfo


@dataclasses.dataclass(frozen=True)
class Temp:
    """A virtual register."""

    id: int

    def __repr__(self) -> str:
        return f"t{self.id}"


Operand = Union[Temp, int, VarInfo]

#: Arithmetic/logical binary operators carried by :class:`BinOp`.
ARITH_OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>")
#: Relational operators carried by :class:`CBranch` and :class:`SetCmp`.
REL_OPS = ("==", "!=", "<", "<=", ">", ">=")

#: Negation map for branch inversion.
INVERT_REL = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
#: Operand-swap map (a op b  ==  b swap(op) a).
SWAP_REL = {"==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclasses.dataclass
class Instr:
    pass


@dataclasses.dataclass
class Const(Instr):
    dst: Temp
    value: int


@dataclasses.dataclass
class Move(Instr):
    dst: Temp
    src: Operand


@dataclasses.dataclass
class UnOp(Instr):
    dst: Temp
    op: str  # "neg", "bnot", "lnot"
    src: Operand


@dataclasses.dataclass
class BinOp(Instr):
    dst: Temp
    op: str
    a: Operand
    b: Operand


@dataclasses.dataclass
class SetCmp(Instr):
    """dst = (a relop b) ? 1 : 0"""

    dst: Temp
    op: str
    a: Operand
    b: Operand


@dataclasses.dataclass
class Load(Instr):
    dst: Temp
    addr: Operand
    width: int
    signed: bool = False
    offset: int = 0


@dataclasses.dataclass
class Store(Instr):
    addr: Operand
    src: Operand
    width: int
    offset: int = 0


@dataclasses.dataclass
class AddrVar(Instr):
    """dst = address of a stack-resident or global variable."""

    dst: Temp
    var: VarInfo


@dataclasses.dataclass
class GetVar(Instr):
    dst: Temp
    var: VarInfo


@dataclasses.dataclass
class SetVar(Instr):
    var: VarInfo
    src: Operand


@dataclasses.dataclass
class Call(Instr):
    dst: Optional[Temp]
    name: str
    args: list[Operand]


@dataclasses.dataclass
class Label(Instr):
    name: str


@dataclasses.dataclass
class Jump(Instr):
    target: str


@dataclasses.dataclass
class CBranch(Instr):
    """Branch to ``target`` when ``a relop b`` holds (signed compare)."""

    op: str
    a: Operand
    b: Operand
    target: str


@dataclasses.dataclass
class Ret(Instr):
    src: Optional[Operand] = None


#: Statement classes tracked for the HLL-cost experiment (E2).
STATEMENT_CLASSES = ("assignment", "if", "loop", "call", "return")


@dataclasses.dataclass
class Marker(Instr):
    """Zero-cost annotation: one executed high-level-language statement.

    Emitted by the IR generator at every statement of interest and counted
    by the IR interpreter; code generators and estimators ignore it.  This
    is the instrumentation behind the paper's Table II (dynamic HLL
    statement frequencies).
    """

    kind: str  # one of STATEMENT_CLASSES


@dataclasses.dataclass
class SrcLoc(Instr):
    """Zero-cost annotation: the following instructions came from this
    source line.

    Emitted by the IR generator at every statement boundary and turned
    into ``;@line`` comment markers by the code generators, which the
    assemblers collect into the :class:`repro.core.program.Program` line
    table.  Interpreters, estimators and the register allocator all skip
    it.
    """

    line: int


@dataclasses.dataclass
class IRFunction:
    name: str
    instrs: list[Instr] = dataclasses.field(default_factory=list)
    num_temps: int = 0
    #: VarInfo for params, in order (backends set up their homes).
    params: list[VarInfo] = dataclasses.field(default_factory=list)
    #: all locals, including array/addressed ones.
    locals: list[VarInfo] = dataclasses.field(default_factory=list)
    is_leaf: bool = True
    #: source line of the function definition (0 when unknown).
    line: int = 0


@dataclasses.dataclass
class GlobalDef:
    var: VarInfo
    init_value: Optional[int] = None
    init_string: Optional[str] = None  # label of a string literal


@dataclasses.dataclass
class IRProgram:
    functions: list[IRFunction] = dataclasses.field(default_factory=list)
    globals: list[GlobalDef] = dataclasses.field(default_factory=list)
    #: string label -> bytes (NUL-terminated when emitted)
    strings: dict[str, str] = dataclasses.field(default_factory=dict)

    def function(self, name: str) -> IRFunction:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)


def format_ir(program: IRProgram) -> str:
    """Pretty-print an IR program (for tests and debugging)."""
    lines: list[str] = []
    for gdef in program.globals:
        lines.append(f"global {gdef.var.name}: {gdef.var.type}")
    for label, text in program.strings.items():
        lines.append(f"string {label}: {text!r}")
    for func in program.functions:
        params = ", ".join(p.name for p in func.params)
        lines.append(f"func {func.name}({params}):")
        for instr in func.instrs:
            if isinstance(instr, Label):
                lines.append(f"{instr.name}:")
            else:
                lines.append(f"    {_format_instr(instr)}")
    return "\n".join(lines)


def _fmt(op: Operand) -> str:
    if isinstance(op, Temp):
        return repr(op)
    if isinstance(op, VarInfo):
        return op.name
    return str(op)


def _format_instr(instr: Instr) -> str:
    if isinstance(instr, Const):
        return f"{instr.dst} = {instr.value}"
    if isinstance(instr, Move):
        return f"{instr.dst} = {_fmt(instr.src)}"
    if isinstance(instr, UnOp):
        return f"{instr.dst} = {instr.op} {_fmt(instr.src)}"
    if isinstance(instr, BinOp):
        return f"{instr.dst} = {_fmt(instr.a)} {instr.op} {_fmt(instr.b)}"
    if isinstance(instr, SetCmp):
        return f"{instr.dst} = {_fmt(instr.a)} {instr.op} {_fmt(instr.b)}"
    if isinstance(instr, Load):
        sign = "s" if instr.signed else "u"
        return f"{instr.dst} = load{instr.width}{sign} [{_fmt(instr.addr)}+{instr.offset}]"
    if isinstance(instr, Store):
        return f"store{instr.width} [{_fmt(instr.addr)}+{instr.offset}] = {_fmt(instr.src)}"
    if isinstance(instr, AddrVar):
        return f"{instr.dst} = &{instr.var.name}"
    if isinstance(instr, GetVar):
        return f"{instr.dst} = {instr.var.name}"
    if isinstance(instr, SetVar):
        return f"{instr.var.name} = {_fmt(instr.src)}"
    if isinstance(instr, Call):
        args = ", ".join(_fmt(a) for a in instr.args)
        prefix = f"{instr.dst} = " if instr.dst else ""
        return f"{prefix}call {instr.name}({args})"
    if isinstance(instr, Jump):
        return f"jump {instr.target}"
    if isinstance(instr, CBranch):
        return f"if {_fmt(instr.a)} {instr.op} {_fmt(instr.b)} goto {instr.target}"
    if isinstance(instr, Ret):
        return f"ret {_fmt(instr.src)}" if instr.src is not None else "ret"
    if isinstance(instr, SrcLoc):
        return f"# line {instr.line}"
    return repr(instr)
