"""AST to IR lowering.

Performs constant folding, strength reduction of multiplications by powers
of two, pointer-arithmetic scaling, short-circuit lowering of ``&&``/``||``
into control flow, and array/pointer access lowering to explicit loads and
stores.  Multiplication, division and modulo survive as IR operations; each
backend decides whether they are hardware (VAX) or runtime calls (RISC I,
which has no multiply instruction — the paper's machine relied on software
routines).
"""

from __future__ import annotations

from repro.cc import ast_nodes as ast
from repro.cc import ir
from repro.cc.errors import CompileError
from repro.cc.sema import Analyzer, ProgramInfo, VarInfo

_COMPOUND_BASE = {
    "+=": "+",
    "-=": "-",
    "*=": "*",
    "/=": "/",
    "%=": "%",
    "&=": "&",
    "|=": "|",
    "^=": "^",
    "<<=": "<<",
    ">>=": ">>",
}

_WORD = 0xFFFFFFFF


def _wrap(value: int) -> int:
    """Wrap a Python int to a signed 32-bit value (two's complement)."""
    value &= _WORD
    return value - (1 << 32) if value & 0x80000000 else value


def _fold(op: str, a: int, b: int) -> int:
    if op == "+":
        return _wrap(a + b)
    if op == "-":
        return _wrap(a - b)
    if op == "*":
        return _wrap(a * b)
    if op == "/":
        if b == 0:
            raise CompileError("division by zero in constant expression")
        return _wrap(int(a / b))  # C truncates toward zero
    if op == "%":
        if b == 0:
            raise CompileError("modulo by zero in constant expression")
        return _wrap(a - int(a / b) * b)
    if op == "&":
        return _wrap((a & _WORD) & (b & _WORD))
    if op == "|":
        return _wrap((a & _WORD) | (b & _WORD))
    if op == "^":
        return _wrap((a & _WORD) ^ (b & _WORD))
    if op == "<<":
        return _wrap((a & _WORD) << (b & 31))
    if op == ">>":
        return _wrap(a >> (b & 31))  # arithmetic shift on signed values
    raise ValueError(op)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


class _LoopContext:
    def __init__(self, break_label: str, continue_label: str):
        self.break_label = break_label
        self.continue_label = continue_label


class IRGenerator:
    def __init__(self, info: ProgramInfo, analyzer: Analyzer):
        self.info = info
        self.resolved = analyzer.resolved
        self.program = ir.IRProgram()
        self._func: ir.IRFunction | None = None
        self._temp_count = 0
        self._label_count = 0
        self._loops: list[_LoopContext] = []
        self._string_count = 0
        self._string_labels: dict[str, str] = {}
        self._cur_line = 0

    # -- plumbing --------------------------------------------------------------

    def _emit(self, instr: ir.Instr) -> None:
        assert self._func is not None
        self._func.instrs.append(instr)

    def _temp(self) -> ir.Temp:
        temp = ir.Temp(self._temp_count)
        self._temp_count += 1
        return temp

    def _label(self, hint: str = "L") -> str:
        self._label_count += 1
        assert self._func is not None
        return f".{hint}_{self._func.name}_{self._label_count}"

    def _intern_string(self, text: str) -> str:
        if text not in self._string_labels:
            self._string_count += 1
            label = f"__str_{self._string_count}"
            self._string_labels[text] = label
            self.program.strings[label] = text
        return self._string_labels[text]

    def _as_temp(self, op: ir.Operand) -> ir.Temp:
        """Force an operand into a temp (needed before mutation points)."""
        if isinstance(op, ir.Temp):
            return op
        temp = self._temp()
        if isinstance(op, int):
            self._emit(ir.Const(temp, op))
        else:
            self._emit(ir.GetVar(temp, op))
        return temp

    # -- top level -----------------------------------------------------------------

    def generate(self) -> ir.IRProgram:
        for gvar in self.info.unit.globals:
            self._gen_global(gvar)
        for func in self.info.unit.functions:
            if func.body is not None:  # prototypes generate no code
                self._gen_function(func)
        return self.program

    def _gen_global(self, gvar: ast.GlobalVar) -> None:
        var = self.info.globals[gvar.name]
        gdef = ir.GlobalDef(var)
        if gvar.init is not None:
            if isinstance(gvar.init, ast.NumberLit):
                gdef.init_value = gvar.init.value
            elif (
                isinstance(gvar.init, ast.Unary)
                and gvar.init.op == "-"
                and isinstance(gvar.init.operand, ast.NumberLit)
            ):
                gdef.init_value = _wrap(-gvar.init.operand.value)
            elif isinstance(gvar.init, ast.StringLit):
                gdef.init_string = self._intern_string(gvar.init.value)
            else:
                raise CompileError(
                    f"unsupported global initializer for {gvar.name!r}", gvar.line
                )
        self.program.globals.append(gdef)

    def _gen_function(self, func: ast.FuncDef) -> None:
        info = self.info.functions[func.name]
        self._func = ir.IRFunction(func.name, params=info.params, locals=info.locals)
        self._func.is_leaf = not info.makes_calls
        self._func.line = func.line
        self._temp_count = 0
        self._label_count = 0
        self._cur_line = func.line
        self._gen_stmt(func.body)
        # implicit return: main returns 0, void functions just return
        instrs = self._func.instrs
        if not instrs or not isinstance(instrs[-1], ir.Ret):
            self._emit(ir.Ret(0 if func.name == "main" else None))
        self._func.num_temps = self._temp_count
        self.program.functions.append(self._func)
        self._func = None

    # -- statements --------------------------------------------------------------

    def _gen_stmt(self, stmt: ast.Stmt) -> None:
        line = getattr(stmt, "line", 0)
        if line and line != self._cur_line and not isinstance(stmt, ast.Block):
            self._cur_line = line
            self._emit(ir.SrcLoc(line))
        if isinstance(stmt, ast.Block):
            for sub in stmt.body:
                self._gen_stmt(sub)
        elif isinstance(stmt, ast.Decl):
            self._gen_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, (ast.Assign, ast.IncDec)):
                self._emit(ir.Marker("assignment"))
            self._gen_expr(stmt.expr, need=False)
        elif isinstance(stmt, ast.If):
            self._emit(ir.Marker("if"))
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._gen_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._emit(ir.Marker("return"))
            value = None
            if stmt.value is not None:
                value = self._gen_expr(stmt.value)
            self._emit(ir.Ret(value))
        elif isinstance(stmt, ast.Break):
            self._emit(ir.Jump(self._loops[-1].break_label))
        elif isinstance(stmt, ast.Continue):
            self._emit(ir.Jump(self._loops[-1].continue_label))
        else:
            raise CompileError(f"unhandled statement {type(stmt).__name__}", stmt.line)

    def _gen_decl(self, decl: ast.Decl) -> None:
        var = self.resolved[id(decl)]
        if decl.init is not None:
            self._emit(ir.Marker("assignment"))
            value = self._gen_expr(decl.init)
            self._emit(ir.SetVar(var, value))

    def _gen_if(self, stmt: ast.If) -> None:
        else_label = self._label("else")
        end_label = self._label("endif") if stmt.otherwise else else_label
        self._gen_branch(stmt.cond, else_label, when_true=False)
        self._gen_stmt(stmt.then)
        if stmt.otherwise:
            self._emit(ir.Jump(end_label))
            self._emit(ir.Label(else_label))
            self._gen_stmt(stmt.otherwise)
        self._emit(ir.Label(end_label))

    def _gen_while(self, stmt: ast.While) -> None:
        top = self._label("while")
        end = self._label("endwhile")
        self._emit(ir.Label(top))
        self._emit(ir.Marker("loop"))
        self._gen_branch(stmt.cond, end, when_true=False)
        self._loops.append(_LoopContext(end, top))
        self._gen_stmt(stmt.body)
        self._loops.pop()
        self._emit(ir.Jump(top))
        self._emit(ir.Label(end))

    def _gen_do_while(self, stmt: ast.DoWhile) -> None:
        top = self._label("do")
        cond = self._label("docond")
        end = self._label("enddo")
        self._emit(ir.Label(top))
        self._loops.append(_LoopContext(end, cond))
        self._gen_stmt(stmt.body)
        self._loops.pop()
        self._emit(ir.Label(cond))
        self._emit(ir.Marker("loop"))
        self._gen_branch(stmt.cond, top, when_true=True)
        self._emit(ir.Label(end))

    def _gen_for(self, stmt: ast.For) -> None:
        top = self._label("for")
        step = self._label("forstep")
        end = self._label("endfor")
        if stmt.init:
            self._gen_stmt(stmt.init)
        self._emit(ir.Label(top))
        self._emit(ir.Marker("loop"))
        if stmt.cond:
            self._gen_branch(stmt.cond, end, when_true=False)
        self._loops.append(_LoopContext(end, step))
        self._gen_stmt(stmt.body)
        self._loops.pop()
        self._emit(ir.Label(step))
        if stmt.step:
            self._gen_expr(stmt.step, need=False)
        self._emit(ir.Jump(top))
        self._emit(ir.Label(end))

    # -- conditions -----------------------------------------------------------------

    def _gen_branch(self, cond: ast.Expr, target: str, when_true: bool) -> None:
        """Emit code that jumps to ``target`` iff ``cond`` equals ``when_true``."""
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self._gen_branch(cond.operand, target, not when_true)
            return
        if isinstance(cond, ast.Binary) and cond.op in ("&&", "||"):
            self._gen_shortcircuit_branch(cond, target, when_true)
            return
        if isinstance(cond, ast.Binary) and cond.op in ir.REL_OPS:
            a = self._gen_expr(cond.left)
            b = self._gen_expr(cond.right)
            op = cond.op if when_true else ir.INVERT_REL[cond.op]
            if isinstance(a, int) and isinstance(b, int):
                holds = _fold_rel(op, a, b)
                if holds:
                    self._emit(ir.Jump(target))
                return
            self._emit(ir.CBranch(op, a, b, target))
            return
        value = self._gen_expr(cond)
        if isinstance(value, int):
            if bool(value) == when_true:
                self._emit(ir.Jump(target))
            return
        op = "!=" if when_true else "=="
        self._emit(ir.CBranch(op, value, 0, target))

    def _gen_shortcircuit_branch(
        self, cond: ast.Binary, target: str, when_true: bool
    ) -> None:
        if cond.op == "&&":
            if when_true:
                skip = self._label("and")
                self._gen_branch(cond.left, skip, when_true=False)
                self._gen_branch(cond.right, target, when_true=True)
                self._emit(ir.Label(skip))
            else:
                self._gen_branch(cond.left, target, when_true=False)
                self._gen_branch(cond.right, target, when_true=False)
        else:  # ||
            if when_true:
                self._gen_branch(cond.left, target, when_true=True)
                self._gen_branch(cond.right, target, when_true=True)
            else:
                skip = self._label("or")
                self._gen_branch(cond.left, skip, when_true=True)
                self._gen_branch(cond.right, target, when_true=False)
                self._emit(ir.Label(skip))

    # -- expressions ---------------------------------------------------------------

    def _gen_expr(self, expr: ast.Expr, need: bool = True) -> ir.Operand:
        if isinstance(expr, ast.NumberLit):
            return expr.value
        if isinstance(expr, ast.StringLit):
            label = self._intern_string(expr.value)
            var = VarInfo(label, expr.type, is_global=True)
            temp = self._temp()
            self._emit(ir.AddrVar(temp, var))
            return temp
        if isinstance(expr, ast.VarRef):
            return self._gen_varref(expr)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr, need)
        if isinstance(expr, ast.Assign):
            return self._gen_assign(expr, need)
        if isinstance(expr, ast.IncDec):
            return self._gen_incdec(expr, need)
        if isinstance(expr, ast.Index):
            addr, offset, element = self._gen_lvalue(expr)
            temp = self._temp()
            signed = element.base is ast.BaseType.CHAR and not element.is_pointer
            self._emit(ir.Load(temp, addr, element.width, signed=signed, offset=offset))
            return temp
        if isinstance(expr, ast.Call):
            return self._gen_call(expr, need)
        raise CompileError(f"unhandled expression {type(expr).__name__}", expr.line)

    def _gen_varref(self, expr: ast.VarRef) -> ir.Operand:
        var = self.resolved[id(expr)]
        if var.type.is_array:
            temp = self._temp()
            self._emit(ir.AddrVar(temp, var))
            return temp
        return var

    def _gen_unary(self, expr: ast.Unary) -> ir.Operand:
        if expr.op == "&":
            addr, offset, _ = self._gen_lvalue(expr.operand)
            if offset:
                temp = self._temp()
                self._emit(ir.BinOp(temp, "+", addr, offset))
                return temp
            return addr
        if expr.op == "*":
            addr, offset, element = self._gen_lvalue(expr)
            temp = self._temp()
            signed = element.base is ast.BaseType.CHAR and not element.is_pointer
            self._emit(ir.Load(temp, addr, element.width, signed=signed, offset=offset))
            return temp
        operand = self._gen_expr(expr.operand)
        if isinstance(operand, int):
            if expr.op == "-":
                return _wrap(-operand)
            if expr.op == "~":
                return _wrap(~operand)
            return int(not operand)
        temp = self._temp()
        kind = {"-": "neg", "~": "bnot", "!": "lnot"}[expr.op]
        self._emit(ir.UnOp(temp, kind, operand))
        return temp

    def _gen_binary(self, expr: ast.Binary, need: bool) -> ir.Operand:
        if expr.op in ("&&", "||") or expr.op in ir.REL_OPS:
            return self._materialize_bool(expr, need)
        left_type = expr.left.type.decay() if expr.left.type else ast.INT
        right_type = expr.right.type.decay() if expr.right.type else ast.INT
        a = self._gen_expr(expr.left)
        b = self._gen_expr(expr.right)

        # pointer arithmetic scaling
        if expr.op in ("+", "-"):
            if left_type.is_pointer and not right_type.is_pointer:
                b = self._scale(b, left_type.element.width)
            elif right_type.is_pointer and not left_type.is_pointer:
                a = self._scale(a, right_type.element.width)
            elif left_type.is_pointer and right_type.is_pointer and expr.op == "-":
                diff = self._binop("-", a, b)
                return self._unscale(diff, left_type.element.width)
        return self._binop(expr.op, a, b)

    def _binop(self, op: str, a: ir.Operand, b: ir.Operand) -> ir.Operand:
        if isinstance(a, int) and isinstance(b, int):
            return _fold(op, a, b)
        # strength-reduce multiply by power of two into a shift
        if op == "*":
            if isinstance(b, int) and _is_power_of_two(b):
                op, b = "<<", b.bit_length() - 1
            elif isinstance(a, int) and _is_power_of_two(a):
                op, a, b = "<<", b, a.bit_length() - 1
        # algebraic identities
        if op in ("+", "|", "^") and b == 0 and not isinstance(b, ir.Temp):
            if isinstance(a, ir.Temp):
                return a
        temp = self._temp()
        self._emit(ir.BinOp(temp, op, a, b))
        return temp

    def _scale(self, op: ir.Operand, width: int) -> ir.Operand:
        if width == 1:
            return op
        return self._binop("*", op, width)

    def _unscale(self, op: ir.Operand, width: int) -> ir.Operand:
        if width == 1:
            return op
        return self._binop(">>", op, width.bit_length() - 1)

    def _materialize_bool(self, expr: ast.Binary, need: bool) -> ir.Operand:
        if not need:
            # evaluate for side effects only
            self._gen_expr(expr.left, need=False)
            self._gen_expr(expr.right, need=False)
            return 0
        if expr.op in ir.REL_OPS:
            a = self._gen_expr(expr.left)
            b = self._gen_expr(expr.right)
            if isinstance(a, int) and isinstance(b, int):
                return int(_fold_rel(expr.op, a, b))
            temp = self._temp()
            self._emit(ir.SetCmp(temp, expr.op, a, b))
            return temp
        # && / || as a value: lower through control flow
        temp = self._temp()
        false_label = self._label("bfalse")
        end_label = self._label("bend")
        self._gen_branch(expr, false_label, when_true=False)
        self._emit(ir.Const(temp, 1))
        self._emit(ir.Jump(end_label))
        self._emit(ir.Label(false_label))
        self._emit(ir.Const(temp, 0))
        self._emit(ir.Label(end_label))
        return temp

    # -- lvalues ------------------------------------------------------------------

    def _gen_lvalue(self, expr: ast.Expr) -> tuple[ir.Operand, int, ast.Type]:
        """Return (address operand, constant offset, element type)."""
        if isinstance(expr, ast.Unary) and expr.op == "*":
            operand_type = expr.operand.type.decay()
            addr = self._gen_expr(expr.operand)
            return addr, 0, operand_type.element
        if isinstance(expr, ast.Index):
            base_type = expr.base.type
            element = base_type.element
            base = self._gen_expr(expr.base)  # array decays to address
            index = self._gen_expr(expr.index)
            if isinstance(index, int):
                return base, index * element.width, element
            scaled = self._scale(index, element.width)
            addr = self._binop("+", base, scaled)
            return addr, 0, element
        if isinstance(expr, ast.VarRef):
            var = self.resolved[id(expr)]
            temp = self._temp()
            self._emit(ir.AddrVar(temp, var))
            return temp, 0, var.type if not var.type.is_array else var.type.element
        raise CompileError("expression is not an lvalue", expr.line)

    # -- assignment ----------------------------------------------------------------

    def _gen_assign(self, expr: ast.Assign, need: bool) -> ir.Operand:
        target = expr.target
        if expr.op == "=":
            value = self._gen_expr(expr.value)
        else:
            current = self._gen_expr(target)
            rhs = self._gen_expr(expr.value)
            op = _COMPOUND_BASE[expr.op]
            target_type = target.type.decay() if target.type else ast.INT
            if target_type.is_pointer and op in ("+", "-"):
                rhs = self._scale(rhs, target_type.element.width)
            value = self._binop(op, current, rhs)

        if isinstance(target, ast.VarRef):
            var = self.resolved[id(target)]
            if not var.type.is_array:
                self._emit(ir.SetVar(var, value))
                return value
        addr, offset, element = self._gen_lvalue(target)
        self._emit(ir.Store(addr, value, element.width, offset=offset))
        return value

    def _gen_incdec(self, expr: ast.IncDec, need: bool) -> ir.Operand:
        target_type = expr.target.type
        delta = 1
        if target_type and target_type.is_pointer:
            delta = target_type.element.width
        op = "+" if expr.op == "++" else "-"

        if isinstance(expr.target, ast.VarRef):
            var = self.resolved[id(expr.target)]
            old = None
            if need and not expr.prefix:
                old = self._as_temp(var)
            new = self._binop(op, var, delta)
            self._emit(ir.SetVar(var, new))
            if need:
                return old if old is not None else new
            return 0
        # memory lvalue
        addr, offset, element = self._gen_lvalue(expr.target)
        addr = self._as_temp(addr)
        old = self._temp()
        signed = element.base is ast.BaseType.CHAR and not element.is_pointer
        self._emit(ir.Load(old, addr, element.width, signed=signed, offset=offset))
        new = self._binop(op, old, delta)
        self._emit(ir.Store(addr, new, element.width, offset=offset))
        if need:
            return new if expr.prefix else old
        return 0

    # -- calls --------------------------------------------------------------------

    def _gen_call(self, expr: ast.Call, need: bool) -> ir.Operand:
        self._emit(ir.Marker("call"))
        args = [self._gen_expr(arg) for arg in expr.args]
        returns_value = expr.type is not None and expr.type != ast.VOID
        dst = self._temp() if (need and returns_value) else None
        self._emit(ir.Call(dst, expr.name, args))
        return dst if dst is not None else 0


def _fold_rel(op: str, a: int, b: int) -> bool:
    return {
        "==": a == b,
        "!=": a != b,
        "<": a < b,
        "<=": a <= b,
        ">": a > b,
        ">=": a >= b,
    }[op]


def generate_ir(info: ProgramInfo, analyzer: Analyzer) -> ir.IRProgram:
    """Lower an analyzed translation unit to IR."""
    return IRGenerator(info, analyzer).generate()
