"""RISC I runtime library, in assembly.

RISC I has no multiply or divide instruction — the paper's machine relied
on software routines, and so does this backend.  The routines use the
standard calling convention (arguments in the callee's HIGH registers
r26/r27, result back through the caller's r10) plus one runtime-internal
extension: ``__udivmod`` returns the remainder as a *second* result in
r27/r11, which ``__div`` and ``__mod`` exploit.
"""

from __future__ import annotations

MUL = """
; __mul: r26 * r27 -> r26 (low 32 bits; sign-agnostic shift-and-add)
__mul:	;@fn __mul
    add r16, r0, #0          ; product
    add r17, r26, #0         ; multiplicand
    add r18, r27, #0         ; multiplier
__mul_loop:
    cmp r18, r0
    jeq __mul_done
    nop
    and r19, r18, #1
    cmp r19, r0
    jeq __mul_skip
    nop
    add r16, r16, r17
__mul_skip:
    sll r17, r17, #1
    jmp __mul_loop
    srl r18, r18, #1
__mul_done:
    add r26, r16, #0
    ret
    nop
"""

UDIVMOD = """
; __udivmod: unsigned r26 / r27 -> quotient r26, remainder r27
; Normalization pre-loops skip the dividend's leading zero bits (first by
; bytes, then by bits) so small dividends don't pay for 32 iterations.
__udivmod:	;@fn __udivmod
    add r16, r0, #0          ; quotient
    add r17, r0, #0          ; remainder
    add r18, r0, #32         ; bit counter
__udm_norm8:
    srl r19, r26, #24
    cmp r19, r0
    jne __udm_norm1
    nop
    cmp r26, r0
    jeq __udm_done           ; dividend is zero: q = 0, r = 0
    nop
    sll r26, r26, #8
    jmp __udm_norm8
    sub r18, r18, #8
__udm_norm1:
    cmp r26, r0
    jlt __udm_loop           ; top bit reached: start dividing
    nop
    sll r26, r26, #1
    jmp __udm_norm1
    sub r18, r18, #1
__udm_loop:
    sll r16, r16, #1
    sll r17, r17, #1
    srl r19, r26, #31
    or  r17, r17, r19
    sll r26, r26, #1
    cmp r17, r27
    jlo __udm_next           ; remainder < divisor (unsigned)
    nop
    sub r17, r17, r27
    or  r16, r16, #1
__udm_next:
    sub! r18, r18, #1
    jne __udm_loop
    nop
__udm_done:
    add r26, r16, #0
    add r27, r17, #0
    ret
    nop
"""

DIV = """
; __div: signed r26 / r27 -> r26 (truncating toward zero)
__div:	;@fn __div
    xor r20, r26, r27        ; quotient sign in bit 31
    cmp r26, r0
    jge __div_apos
    nop
    subr r26, r26, #0
__div_apos:
    cmp r27, r0
    jge __div_bpos
    nop
    subr r27, r27, #0
__div_bpos:
    add r10, r26, #0
    add r11, r27, #0
    call __udivmod
    nop                      ; call delay slot runs in the NEW window
    cmp r20, r0
    jge __div_pos
    nop
    subr r10, r10, #0
__div_pos:
    add r26, r10, #0
    ret
    nop
"""

MOD = """
; __mod: signed r26 % r27 -> r26 (sign follows the dividend)
__mod:	;@fn __mod
    add r20, r26, #0         ; remainder sign = dividend sign
    cmp r26, r0
    jge __mod_apos
    nop
    subr r26, r26, #0
__mod_apos:
    cmp r27, r0
    jge __mod_bpos
    nop
    subr r27, r27, #0
__mod_bpos:
    add r10, r26, #0
    add r11, r27, #0
    call __udivmod
    nop                      ; call delay slot runs in the NEW window
    cmp r20, r0
    jge __mod_pos
    nop
    subr r11, r11, #0
__mod_pos:
    add r26, r11, #0
    ret
    nop
"""

PUTS = """
; __puts: write the NUL-terminated string at r26 to the console
__puts:	;@fn __puts
    add r16, r26, #0
__puts_loop:
    ldbu r17, 0(r16)
    cmp r17, r0
    jeq __puts_done
    nop
    putc r17
    jmp __puts_loop
    add r16, r16, #1         ; delay slot: advance pointer
__puts_done:
    ret
    nop
"""

#: routine name -> (assembly text, direct dependencies)
ROUTINES: dict[str, tuple[str, tuple[str, ...]]] = {
    "__mul": (MUL, ()),
    "__udivmod": (UDIVMOD, ()),
    "__div": (DIV, ("__udivmod",)),
    "__mod": (MOD, ("__udivmod",)),
    "__puts": (PUTS, ()),
}


def runtime_text(used: set[str]) -> str:
    """Assembly for the transitively required runtime routines."""
    needed: set[str] = set()
    stack = [name for name in used if name in ROUTINES]
    while stack:
        name = stack.pop()
        if name in needed:
            continue
        needed.add(name)
        stack.extend(ROUTINES[name][1])
    # stable order for deterministic output
    return "\n".join(ROUTINES[name][0] for name in sorted(needed))
