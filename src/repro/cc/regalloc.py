"""Linear-scan register allocation over IR temporaries.

Temps get live ranges from their definition/use positions; ranges that
cross a backward branch are widened to the branch, which makes the simple
linear scan safe in the presence of loops.  When the pool runs dry the
range with the farthest end is spilled to a stack slot; backends stage
spilled temps through scratch registers at each use.
"""

from __future__ import annotations

import dataclasses

from repro.cc import ir


def defs_uses(instr: ir.Instr) -> tuple[list[ir.Temp], list[ir.Temp]]:
    """(defined temps, used temps) of one IR instruction."""

    def temps(*ops: ir.Operand | None) -> list[ir.Temp]:
        return [op for op in ops if isinstance(op, ir.Temp)]

    if isinstance(instr, ir.Const):
        return [instr.dst], []
    if isinstance(instr, ir.Move):
        return [instr.dst], temps(instr.src)
    if isinstance(instr, ir.UnOp):
        return [instr.dst], temps(instr.src)
    if isinstance(instr, (ir.BinOp, ir.SetCmp)):
        return [instr.dst], temps(instr.a, instr.b)
    if isinstance(instr, ir.Load):
        return [instr.dst], temps(instr.addr)
    if isinstance(instr, ir.Store):
        return [], temps(instr.addr, instr.src)
    if isinstance(instr, (ir.AddrVar, ir.GetVar)):
        return [instr.dst], []
    if isinstance(instr, ir.SetVar):
        return [], temps(instr.src)
    if isinstance(instr, ir.Call):
        return ([instr.dst] if instr.dst else []), temps(*instr.args)
    if isinstance(instr, ir.CBranch):
        return [], temps(instr.a, instr.b)
    if isinstance(instr, ir.Ret):
        return [], temps(instr.src)
    return [], []


@dataclasses.dataclass
class LiveRange:
    temp: ir.Temp
    start: int
    end: int


@dataclasses.dataclass
class Allocation:
    """Result of register allocation for one function."""

    #: temp -> register number
    registers: dict[ir.Temp, int]
    #: temp -> spill slot index (0, 1, 2, ...)
    spills: dict[ir.Temp, int]

    @property
    def num_spill_slots(self) -> int:
        return len(set(self.spills.values()))


def live_ranges(instrs: list[ir.Instr]) -> list[LiveRange]:
    """Compute loop-safe live ranges for every temp."""
    start: dict[ir.Temp, int] = {}
    end: dict[ir.Temp, int] = {}
    label_pos: dict[str, int] = {}
    for pos, instr in enumerate(instrs):
        if isinstance(instr, ir.Label):
            label_pos[instr.name] = pos
    for pos, instr in enumerate(instrs):
        defined, used = defs_uses(instr)
        for temp in defined + used:
            start.setdefault(temp, pos)
            end[temp] = max(end.get(temp, pos), pos)

    # widen ranges across backward branches until stable
    back_edges = []
    for pos, instr in enumerate(instrs):
        target = None
        if isinstance(instr, ir.Jump):
            target = instr.target
        elif isinstance(instr, ir.CBranch):
            target = instr.target
        if target is not None and label_pos.get(target, pos + 1) <= pos:
            back_edges.append((label_pos[target], pos))
    changed = True
    while changed:
        changed = False
        for head, tail in back_edges:
            for temp in start:
                if start[temp] <= tail and end[temp] >= head and end[temp] < tail:
                    end[temp] = tail
                    changed = True

    ranges = [LiveRange(temp, start[temp], end[temp]) for temp in start]
    ranges.sort(key=lambda r: (r.start, r.end))
    return ranges


def allocate(instrs: list[ir.Instr], pool: list[int]) -> Allocation:
    """Linear scan with farthest-end spilling.

    ``pool`` lists the register numbers available for temps, in preference
    order.  Returns register and spill-slot assignments covering every temp.
    """
    ranges = live_ranges(instrs)
    free = list(reversed(pool))  # pop() takes the highest-preference reg
    active: list[LiveRange] = []
    registers: dict[ir.Temp, int] = {}
    spills: dict[ir.Temp, int] = {}
    next_slot = 0

    for rng in ranges:
        # expire finished ranges
        still_active = []
        for act in active:
            if act.end < rng.start:
                free.append(registers[act.temp])
            else:
                still_active.append(act)
        active = still_active

        if free:
            registers[rng.temp] = free.pop()
            active.append(rng)
            continue

        # spill the range that ends farthest away
        victim = max(active + [rng], key=lambda r: r.end)
        if victim is rng:
            spills[rng.temp] = next_slot
            next_slot += 1
        else:
            registers[rng.temp] = registers.pop(victim.temp)
            spills[victim.temp] = next_slot
            next_slot += 1
            active.remove(victim)
            active.append(rng)

    return Allocation(registers, spills)
