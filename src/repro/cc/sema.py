"""Semantic analysis for mini-C.

Builds symbol tables, checks types and lvalues, annotates every expression
with its type, and records per-variable facts the backends need — most
importantly whether a local variable has its address taken (such variables
must live in the stack frame, not a register).
"""

from __future__ import annotations

import dataclasses

from repro.cc import ast_nodes as ast
from repro.cc.errors import CompileError

#: Functions the compiler knows intrinsically.  ``putchar``/``putint`` map
#: to the MMIO console, ``puts`` is provided by the runtime library, and
#: multiplication/division lower to runtime calls on RISC I.
BUILTINS: dict[str, tuple[ast.Type, tuple[ast.Type, ...]]] = {
    "putchar": (ast.VOID, (ast.INT,)),
    "putint": (ast.VOID, (ast.INT,)),
    "puts": (ast.VOID, (ast.Type(ast.BaseType.CHAR, pointers=1),)),
}


@dataclasses.dataclass(eq=False)
class VarInfo:
    """What the backends need to know about one variable.

    Identity semantics (``eq=False``): two distinct declarations are two
    distinct variables even if every field matches, and backends key
    placement tables by the VarInfo object itself.
    """

    name: str
    type: ast.Type
    is_param: bool = False
    is_global: bool = False
    addressed: bool = False
    param_index: int = -1
    #: unique id distinguishing shadowed locals of the same name
    uid: int = 0


@dataclasses.dataclass
class FuncInfo:
    name: str
    return_type: ast.Type
    params: list[VarInfo]
    #: every local (including shadowed ones), in declaration order
    locals: list[VarInfo] = dataclasses.field(default_factory=list)
    #: does this function call anything? (leaf functions matter to E7)
    makes_calls: bool = False


@dataclasses.dataclass
class ProgramInfo:
    functions: dict[str, FuncInfo]
    globals: dict[str, VarInfo]
    unit: ast.TranslationUnit


class _Scope:
    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.vars: dict[str, VarInfo] = {}

    def define(self, info: VarInfo, line: int) -> None:
        if info.name in self.vars:
            raise CompileError(f"redefinition of {info.name!r}", line)
        self.vars[info.name] = info

    def lookup(self, name: str) -> VarInfo | None:
        scope: _Scope | None = self
        while scope:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None


class Analyzer:
    """Type checker and annotator.  Mutates the AST in place."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.globals: dict[str, VarInfo] = {}
        self.functions: dict[str, FuncInfo] = {}
        self._current: FuncInfo | None = None
        self._loop_depth = 0
        self._uid = 0
        #: VarRef -> resolved VarInfo, attached for the IR generator.
        self.resolved: dict[int, VarInfo] = {}

    def analyze(self) -> ProgramInfo:
        for gvar in self.unit.globals:
            if gvar.name in self.globals:
                raise CompileError(f"redefinition of global {gvar.name!r}", gvar.line)
            if gvar.type.base is ast.BaseType.VOID and not gvar.type.is_pointer:
                raise CompileError("global cannot have type void", gvar.line)
            if gvar.init is not None and not isinstance(
                gvar.init, (ast.NumberLit, ast.StringLit, ast.Unary)
            ):
                raise CompileError(
                    f"global initializer for {gvar.name!r} must be a constant", gvar.line
                )
            self.globals[gvar.name] = VarInfo(gvar.name, gvar.type, is_global=True)

        defined: set[str] = set()
        for func in self.unit.functions:
            if func.name in BUILTINS:
                raise CompileError(f"redefinition of function {func.name!r}", func.line)
            if func.name in self.globals:
                raise CompileError(
                    f"{func.name!r} is both a global and a function", func.line
                )
            if func.name in self.functions:
                if func.body is not None and func.name in defined:
                    raise CompileError(
                        f"redefinition of function {func.name!r}", func.line
                    )
                self._check_signature_matches(func)
            else:
                params = [
                    VarInfo(p.name, p.type, is_param=True, param_index=i)
                    for i, p in enumerate(func.params)
                ]
                self.functions[func.name] = FuncInfo(func.name, func.return_type, params)
            if func.body is not None:
                defined.add(func.name)

        for func in self.unit.functions:
            if func.body is not None:
                self._check_function(func)
        for name, info in self.functions.items():
            if name not in defined:
                raise CompileError(f"function {name!r} declared but never defined")
        return ProgramInfo(self.functions, self.globals, self.unit)

    def _check_signature_matches(self, func: ast.FuncDef) -> None:
        info = self.functions[func.name]
        expected = [p.type for p in info.params]
        actual = [p.type for p in func.params]
        if info.return_type != func.return_type or expected != actual:
            raise CompileError(
                f"conflicting declaration of function {func.name!r}", func.line
            )
        if func.body is not None:
            # the definition's parameter names win (the body refers to them)
            info.params = [
                VarInfo(p.name, p.type, is_param=True, param_index=i)
                for i, p in enumerate(func.params)
            ]

    # -- functions ------------------------------------------------------------

    def _check_function(self, func: ast.FuncDef) -> None:
        info = self.functions[func.name]
        self._current = info
        scope = _Scope()
        for param in info.params:
            scope.define(param, func.line)
        self._check_block(func.body, _Scope(scope))
        self._current = None

    # -- statements --------------------------------------------------------------

    def _check_block(self, block: ast.Block, scope: _Scope) -> None:
        for stmt in block.body:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, _Scope(scope))
        elif isinstance(stmt, ast.Decl):
            self._check_decl(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            self._check_expr(stmt.cond, scope)
            self._loop_depth += 1
            self._check_stmt(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init:
                self._check_stmt(stmt.init, inner)
            if stmt.cond:
                self._check_expr(stmt.cond, inner)
            if stmt.step:
                self._check_expr(stmt.step, inner)
            self._loop_depth += 1
            self._check_stmt(stmt.body, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt, scope)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                keyword = "break" if isinstance(stmt, ast.Break) else "continue"
                raise CompileError(f"{keyword} outside a loop", stmt.line)
        else:
            raise CompileError(f"unhandled statement {type(stmt).__name__}", stmt.line)

    def _check_decl(self, decl: ast.Decl, scope: _Scope) -> None:
        if decl.var_type.base is ast.BaseType.VOID and not decl.var_type.is_pointer:
            raise CompileError(f"variable {decl.name!r} cannot be void", decl.line)
        self._uid += 1
        info = VarInfo(decl.name, decl.var_type, uid=self._uid)
        scope.define(info, decl.line)
        assert self._current is not None
        self._current.locals.append(info)
        self.resolved[id(decl)] = info
        if decl.init:
            init_type = self._check_expr(decl.init, scope)
            self._check_assignable(decl.var_type, init_type, decl.line)

    def _check_return(self, stmt: ast.Return, scope: _Scope) -> None:
        assert self._current is not None
        expected = self._current.return_type
        if stmt.value is None:
            if expected != ast.VOID:
                raise CompileError(
                    f"{self._current.name} must return {expected}", stmt.line
                )
            return
        if expected == ast.VOID:
            raise CompileError(f"{self._current.name} returns void", stmt.line)
        actual = self._check_expr(stmt.value, scope)
        self._check_assignable(expected, actual, stmt.line)

    # -- expressions ---------------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> ast.Type:
        expr.type = self._infer(expr, scope)
        return expr.type

    def _infer(self, expr: ast.Expr, scope: _Scope) -> ast.Type:
        if isinstance(expr, ast.NumberLit):
            return ast.INT
        if isinstance(expr, ast.StringLit):
            return ast.Type(ast.BaseType.CHAR, pointers=1)
        if isinstance(expr, ast.VarRef):
            info = scope.lookup(expr.name) or self.globals.get(expr.name)
            if info is None:
                raise CompileError(f"undefined variable {expr.name!r}", expr.line)
            self.resolved[id(expr)] = info
            return info.type
        if isinstance(expr, ast.Unary):
            return self._infer_unary(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._infer_binary(expr, scope)
        if isinstance(expr, ast.Assign):
            return self._infer_assign(expr, scope)
        if isinstance(expr, ast.IncDec):
            target_type = self._check_expr(expr.target, scope)
            self._require_lvalue(expr.target)
            if target_type.is_array:
                raise CompileError("cannot increment an array", expr.line)
            return target_type
        if isinstance(expr, ast.Index):
            base_type = self._check_expr(expr.base, scope)
            index_type = self._check_expr(expr.index, scope)
            if not (base_type.is_array or base_type.is_pointer):
                raise CompileError(f"cannot index {base_type}", expr.line)
            self._require_arithmetic(index_type, expr.line)
            return base_type.element
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, scope)
        raise CompileError(f"unhandled expression {type(expr).__name__}", expr.line)

    def _infer_unary(self, expr: ast.Unary, scope: _Scope) -> ast.Type:
        operand_type = self._check_expr(expr.operand, scope)
        if expr.op == "&":
            self._require_lvalue(expr.operand)
            self._mark_addressed(expr.operand)
            if operand_type.is_array:
                # &arr is treated as a pointer to the first element, the
                # usual 1981-vintage C behaviour.
                return operand_type.decay()
            return ast.Type(operand_type.base, operand_type.pointers + 1)
        if expr.op == "*":
            decayed = operand_type.decay()
            if not decayed.is_pointer:
                raise CompileError(f"cannot dereference {operand_type}", expr.line)
            return decayed.element
        self._require_arithmetic(operand_type, expr.line)
        return ast.INT

    def _infer_binary(self, expr: ast.Binary, scope: _Scope) -> ast.Type:
        left = self._check_expr(expr.left, scope).decay()
        right = self._check_expr(expr.right, scope).decay()
        op = expr.op
        if op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
            return ast.INT
        if op == "+":
            if left.is_pointer and not right.is_pointer:
                return left
            if right.is_pointer and not left.is_pointer:
                return right
            if left.is_pointer and right.is_pointer:
                raise CompileError("cannot add two pointers", expr.line)
            return ast.INT
        if op == "-":
            if left.is_pointer and right.is_pointer:
                return ast.INT  # pointer difference, in elements
            if left.is_pointer:
                return left
            if right.is_pointer:
                raise CompileError("cannot subtract pointer from integer", expr.line)
            return ast.INT
        self._require_arithmetic(left, expr.line)
        self._require_arithmetic(right, expr.line)
        return ast.INT

    def _infer_assign(self, expr: ast.Assign, scope: _Scope) -> ast.Type:
        target_type = self._check_expr(expr.target, scope)
        value_type = self._check_expr(expr.value, scope)
        self._require_lvalue(expr.target)
        if target_type.is_array:
            raise CompileError("cannot assign to an array", expr.line)
        if expr.op == "=":
            self._check_assignable(target_type, value_type, expr.line)
        elif expr.op in ("+=", "-="):
            if target_type.is_pointer:
                self._require_arithmetic(value_type.decay(), expr.line)
            else:
                self._require_arithmetic(target_type, expr.line)
        else:
            self._require_arithmetic(target_type, expr.line)
            self._require_arithmetic(value_type.decay(), expr.line)
        return target_type

    def _infer_call(self, expr: ast.Call, scope: _Scope) -> ast.Type:
        if expr.name in self.functions:
            info = self.functions[expr.name]
            expected = [p.type for p in info.params]
            return_type = info.return_type
        elif expr.name in BUILTINS:
            return_type, params = BUILTINS[expr.name]
            expected = list(params)
        else:
            raise CompileError(f"undefined function {expr.name!r}", expr.line)
        if len(expr.args) != len(expected):
            raise CompileError(
                f"{expr.name} expects {len(expected)} argument(s), got {len(expr.args)}",
                expr.line,
            )
        for arg, want in zip(expr.args, expected):
            got = self._check_expr(arg, scope)
            self._check_assignable(want, got, expr.line)
        if self._current is not None:
            self._current.makes_calls = True
        return return_type

    # -- helpers -----------------------------------------------------------------

    def _require_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.VarRef):
            return
        if isinstance(expr, ast.Index):
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return
        raise CompileError("expression is not an lvalue", expr.line)

    def _mark_addressed(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.VarRef):
            info = self.resolved.get(id(expr))
            if info is not None:
                info.addressed = True

    def _require_arithmetic(self, type_: ast.Type, line: int) -> None:
        if type_.is_pointer or type_.is_array:
            raise CompileError(f"arithmetic on non-scalar type {type_}", line)

    def _check_assignable(self, target: ast.Type, value: ast.Type, line: int) -> None:
        value = value.decay()
        if target.is_pointer or value.is_pointer:
            # Permissive pointer compatibility (this is 1981-vintage C):
            # any pointer converts to any pointer; integers convert too.
            return
        if target.base is ast.BaseType.VOID or value.base is ast.BaseType.VOID:
            raise CompileError("void value not ignorable here", line)


def analyze(unit: ast.TranslationUnit) -> tuple[ProgramInfo, Analyzer]:
    """Run semantic analysis; returns program info and the analyzer (whose
    ``resolved`` map the IR generator consumes)."""
    analyzer = Analyzer(unit)
    info = analyzer.analyze()
    return info, analyzer
