"""Lexer for the mini-C dialect."""

from __future__ import annotations

import dataclasses
import enum

from repro.cc.errors import CompileError

KEYWORDS = {
    "int",
    "char",
    "void",
    "if",
    "else",
    "while",
    "for",
    "do",
    "return",
    "break",
    "continue",
}

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "~",
    "&",
    "|",
    "^",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
]


class TokenKind(enum.Enum):
    IDENT = "identifier"
    NUMBER = "number"
    CHAR = "char literal"
    STRING = "string literal"
    KEYWORD = "keyword"
    OP = "operator"
    EOF = "end of input"


@dataclasses.dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    value: int = 0  # numeric value for NUMBER/CHAR tokens

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> list[Token]:
    """Turn mini-C source text into a token list ending with EOF."""
    tokens: list[Token] = []
    line = 1
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = length if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            i = _lex_number(source, i, line, tokens)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line))
            continue
        if ch == "'":
            i = _lex_char(source, i, line, tokens)
            continue
        if ch == '"':
            i = _lex_string(source, i, line, tokens)
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, line))
                i += len(op)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line)
    tokens.append(Token(TokenKind.EOF, "", line))
    return tokens


def _lex_number(source: str, i: int, line: int, tokens: list[Token]) -> int:
    start = i
    if source.startswith(("0x", "0X"), i):
        i += 2
        while i < len(source) and source[i] in "0123456789abcdefABCDEF":
            i += 1
        value = int(source[start:i], 16)
    else:
        while i < len(source) and source[i].isdigit():
            i += 1
        value = int(source[start:i])
    tokens.append(Token(TokenKind.NUMBER, source[start:i], line, value=value))
    return i


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", "'": "'", '"': '"'}


def _lex_char(source: str, i: int, line: int, tokens: list[Token]) -> int:
    i += 1  # opening quote
    if i >= len(source):
        raise CompileError("unterminated character literal", line)
    if source[i] == "\\":
        if i + 1 >= len(source) or source[i + 1] not in _ESCAPES:
            raise CompileError("bad escape in character literal", line)
        ch = _ESCAPES[source[i + 1]]
        i += 2
    else:
        ch = source[i]
        i += 1
    if i >= len(source) or source[i] != "'":
        raise CompileError("unterminated character literal", line)
    tokens.append(Token(TokenKind.CHAR, ch, line, value=ord(ch)))
    return i + 1


def _lex_string(source: str, i: int, line: int, tokens: list[Token]) -> int:
    i += 1
    chars: list[str] = []
    while i < len(source) and source[i] != '"':
        if source[i] == "\n":
            raise CompileError("newline in string literal", line)
        if source[i] == "\\":
            if i + 1 >= len(source) or source[i + 1] not in _ESCAPES:
                raise CompileError("bad escape in string literal", line)
            chars.append(_ESCAPES[source[i + 1]])
            i += 2
        else:
            chars.append(source[i])
            i += 1
    if i >= len(source):
        raise CompileError("unterminated string literal", line)
    tokens.append(Token(TokenKind.STRING, "".join(chars), line))
    return i + 1
