"""VAX-like (CISC) code generator.

Lowering decisions, in the idiom of a 1981 CISC compiler:

* every variable lives in memory — parameters in the CALLS argument list
  (``4+4i(ap)``), locals in the stack frame at negative FP offsets,
  globals at absolute addresses — and instructions operate on those memory
  operands directly (``addl3 4(ap), -4(fp), r2``), which is exactly the
  memory-traffic profile the paper attributes to CISC compilers;
* only expression temporaries use registers (r2..r5, declared in the
  procedure's CALLS entry mask; r0/r1 are caller-trashed staging and the
  return-value register);
* multiply and divide use the hardware instructions (the CISC advantage);
  ``%`` lowers to the div/mul/sub triple since the baseline has no EDIV;
* procedure linkage is CALLS/RET with argument pushes — the expensive
  mechanism the register-window comparison (E7) measures.

Byte-width memory accesses always stage values through a register: the
shared simulator memory is big-endian, so a ``movb`` from a word-sized
slot would read the wrong byte.
"""

from __future__ import annotations

from repro.cc import ir
from repro.cc.errors import CompileError
from repro.cc.regalloc import allocate
from repro.cc.sema import VarInfo

MMIO_PUTCHAR = "@#0x7F000000"
MMIO_PUTINT = "@#0x7F000004"
MMIO_HALT = "@#0x7F00000C"

_TEMP_POOL = [2, 3, 4, 5]

_BINOP3 = {"+": "addl3", "&": "andl3", "|": "bisl3", "^": "xorl3", "*": "mull3"}
_REL_BRANCH = {"==": "beql", "!=": "bneq", "<": "blss", "<=": "bleq", ">": "bgtr", ">=": "bgeq"}
_REL_INVERSE = {"==": "bneq", "!=": "beql", "<": "bgeq", "<=": "bgtr", ">": "bleq", ">=": "blss"}

PUTS_RUNTIME = """__puts:\t;@fn __puts
    .entry 0x000C
    movl 4(ap), r2
__puts_loop:
    movzbl (r2), r3
    tstl r3
    beql __puts_done
    movl r3, @#0x7F000000
    incl r2
    brw __puts_loop
__puts_done:
    ret
"""


class _FunctionCodegen:
    def __init__(self, func: ir.IRFunction, used_runtime: set[str]):
        self.func = func
        self.used_runtime = used_runtime
        self.lines: list[str] = []
        self.var_text: dict[VarInfo, str] = {}
        self._label_count = 0
        self.frame_size = 0
        self._cur_line = func.line
        self._place_variables()

    # -- placement ---------------------------------------------------------

    def _place_variables(self) -> None:
        for i, param in enumerate(self.func.params):
            self.var_text[param] = f"{4 + 4 * i}(ap)"
        offset = 0
        for var in self.func.locals:
            size = (var.type.size + 3) & ~3
            offset += size
            self.var_text[var] = f"{-offset}(fp)"
        self.alloc = allocate(self.func.instrs, _TEMP_POOL)
        self._locals_size = offset
        offset += 4 * self.alloc.num_spill_slots
        self.frame_size = (offset + 3) & ~3

    def _var_address_base(self, var: VarInfo) -> tuple[str, int]:
        """(base register, offset) for AddrVar of a frame variable."""
        text = self.var_text[var]
        offset, reg = text.split("(")
        return reg.rstrip(")"), int(offset)

    # -- emission -------------------------------------------------------------

    def emit(self, text: str) -> None:
        if self._cur_line:
            self.lines.append(f"    {text}\t;@{self._cur_line}")
        else:
            self.lines.append(f"    {text}")

    def emit_label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def _local_label(self, hint: str) -> str:
        self._label_count += 1
        return f".{hint}_{self.func.name}_{self._label_count}"

    # -- operands -----------------------------------------------------------------

    def operand(self, op: ir.Operand) -> str:
        """Operand text, folding memory and immediate operands directly."""
        if isinstance(op, int):
            return f"#{op}"
        if isinstance(op, ir.Temp):
            if op in self.alloc.registers:
                return f"r{self.alloc.registers[op]}"
            slot = self._locals_size + 4 + 4 * self.alloc.spills[op]
            return f"{-slot}(fp)"
        if op in self.var_text:
            return self.var_text[op]
        return f"@#{op.name}"  # global

    def reg_operand(self, op: ir.Operand, scratch: str) -> str:
        """Force an operand into a register (needed for byte stores etc.)."""
        text = self.operand(op)
        if text.startswith("r") and text[1:].isdigit():
            return text
        self.emit(f"movl {text}, {scratch}")
        return scratch

    def dest(self, dst: ir.Temp) -> str:
        return self.operand(dst)

    # -- body -----------------------------------------------------------------------

    def generate(self) -> list[str]:
        body: list[str] = []
        saved_lines = self.lines
        self.lines = body
        for instr in self.func.instrs:
            self._gen(instr)
        self.lines = saved_lines

        mask = 0
        for reg in set(self.alloc.registers.values()):
            mask |= 1 << reg
        self._cur_line = self.func.line  # prologue belongs to the definition line
        self.lines.append(f"{self.func.name}:\t;@fn {self.func.name}")
        self.emit(f".entry {mask:#06x}")
        if self.frame_size:
            self.emit(f"subl2 #{self.frame_size}, sp")
        self.lines.extend(body)
        return self.lines

    def _gen(self, instr: ir.Instr) -> None:
        if isinstance(instr, ir.Marker):
            return  # statement markers are profiling-only
        if isinstance(instr, ir.SrcLoc):
            self._cur_line = instr.line
            return
        if isinstance(instr, ir.Label):
            self.emit_label(instr.name)
        elif isinstance(instr, ir.Const):
            self.emit(f"movl #{instr.value}, {self.dest(instr.dst)}")
        elif isinstance(instr, (ir.Move, ir.GetVar)):
            src = instr.src if isinstance(instr, ir.Move) else instr.var
            self.emit(f"movl {self.operand(src)}, {self.dest(instr.dst)}")
        elif isinstance(instr, ir.SetVar):
            self.emit(f"movl {self.operand(instr.src)}, {self.operand(instr.var)}")
        elif isinstance(instr, ir.AddrVar):
            self._gen_addrvar(instr)
        elif isinstance(instr, ir.UnOp):
            self._gen_unop(instr)
        elif isinstance(instr, ir.BinOp):
            self._gen_binop(instr)
        elif isinstance(instr, ir.SetCmp):
            self._gen_setcmp(instr)
        elif isinstance(instr, ir.Load):
            self._gen_load(instr)
        elif isinstance(instr, ir.Store):
            self._gen_store(instr)
        elif isinstance(instr, ir.Call):
            self._gen_call(instr)
        elif isinstance(instr, ir.Jump):
            self.emit(f"brw {instr.target}")
        elif isinstance(instr, ir.CBranch):
            self.emit(f"cmpl {self.operand(instr.a)}, {self.operand(instr.b)}")
            self.emit(f"{_REL_BRANCH[instr.op]} {instr.target}")
        elif isinstance(instr, ir.Ret):
            if instr.src is not None:
                self.emit(f"movl {self.operand(instr.src)}, r0")
            self.emit("ret")
        else:
            raise CompileError(f"ciscgen: unhandled IR {type(instr).__name__}")

    def _gen_addrvar(self, instr: ir.AddrVar) -> None:
        var = instr.var
        if var in self.var_text:
            self.emit(f"moval {self.var_text[var]}, {self.dest(instr.dst)}")
        elif var.is_global:
            self.emit(f"moval @#{var.name}, {self.dest(instr.dst)}")
        else:
            raise CompileError(f"ciscgen: address of unknown variable {var.name!r}")

    def _gen_unop(self, instr: ir.UnOp) -> None:
        dst = self.dest(instr.dst)
        src = self.operand(instr.src)
        if instr.op == "neg":
            self.emit(f"mnegl {src}, {dst}")
        elif instr.op == "bnot":
            self.emit(f"mcoml {src}, {dst}")
        else:  # lnot
            done = self._local_label("lnot")
            self.emit(f"clrl {dst}")
            self.emit(f"tstl {src}")
            self.emit(f"bneq {done}")
            self.emit(f"incl {dst}")
            self.emit_label(done)

    def _gen_binop(self, instr: ir.BinOp) -> None:
        dst = self.dest(instr.dst)
        a, b = self.operand(instr.a), self.operand(instr.b)
        op = instr.op
        if op in _BINOP3:
            self.emit(f"{_BINOP3[op]} {b}, {a}, {dst}")
        elif op == "-":
            self.emit(f"subl3 {b}, {a}, {dst}")  # dif = min - sub
        elif op == "/":
            self.emit(f"divl3 {b}, {a}, {dst}")  # quo = dividend / divisor
        elif op == "%":
            # no EDIV in the baseline: r = a - (a/b)*b
            self.emit(f"divl3 {b}, {a}, r0")
            self.emit(f"mull3 r0, {b}, r1")
            self.emit(f"subl3 r1, {a}, {dst}")
        elif op == "<<":
            self._gen_shift(instr, left=True)
        elif op == ">>":
            self._gen_shift(instr, left=False)
        else:
            raise CompileError(f"ciscgen: unhandled operator {op!r}")

    def _gen_shift(self, instr: ir.BinOp, left: bool) -> None:
        dst = self.dest(instr.dst)
        src = self.operand(instr.a)
        if isinstance(instr.b, int):
            # C-level shift counts follow the RISC I shifter: 5 bits only
            count = instr.b & 31
            if not left:
                count = -count
            self.emit(f"ashl #{count & 0xFF}, {src}, {dst}")
            return
        # the count operand is byte-width: stage memory-resident counts in a
        # register so the low byte read picks up the right end of the word.
        # Mask to 5 bits *before* negating — ashl reads a signed byte, so an
        # unmasked count outside [0, 127] (or negative) would change both
        # magnitude and direction and diverge from the RISC I shifter.
        count = self.reg_operand(instr.b, "r0")
        self.emit(f"andl3 #31, {count}, r0")
        if left:
            self.emit(f"ashl r0, {src}, {dst}")
        else:
            self.emit(f"mnegl r0, r0")
            self.emit(f"ashl r0, {src}, {dst}")

    def _gen_setcmp(self, instr: ir.SetCmp) -> None:
        dst = self.dest(instr.dst)
        done = self._local_label("scc")
        self.emit(f"clrl {dst}")
        self.emit(f"cmpl {self.operand(instr.a)}, {self.operand(instr.b)}")
        self.emit(f"{_REL_INVERSE[instr.op]} {done}")
        self.emit(f"incl {dst}")
        self.emit_label(done)

    def _mem_operand(self, addr: ir.Operand, offset: int) -> str:
        """Memory operand text for a computed address plus constant offset."""
        if isinstance(addr, ir.Temp) and addr in self.alloc.registers:
            reg = f"r{self.alloc.registers[addr]}"
        else:
            reg = self.reg_operand(addr, "r1")
        return f"({reg})" if offset == 0 else f"{offset}({reg})"

    def _gen_load(self, instr: ir.Load) -> None:
        dst = self.dest(instr.dst)
        mem = self._mem_operand(instr.addr, instr.offset)
        if instr.width == 4:
            self.emit(f"movl {mem}, {dst}")
        elif instr.width == 2:
            self.emit(f"{'cvtwl' if instr.signed else 'movzwl'} {mem}, {dst}")
        else:
            self.emit(f"{'cvtbl' if instr.signed else 'movzbl'} {mem}, {dst}")

    def _gen_store(self, instr: ir.Store) -> None:
        mem = self._mem_operand(instr.addr, instr.offset)
        if instr.width == 4:
            self.emit(f"movl {self.operand(instr.src)}, {mem}")
            return
        value = self.reg_operand(instr.src, "r0")
        self.emit(f"{'movb' if instr.width == 1 else 'movw'} {value}, {mem}")

    def _gen_call(self, instr: ir.Call) -> None:
        if instr.name == "putchar":
            self.emit(f"movl {self.operand(instr.args[0])}, {MMIO_PUTCHAR}")
            return
        if instr.name == "putint":
            self.emit(f"movl {self.operand(instr.args[0])}, {MMIO_PUTINT}")
            return
        name = "__puts" if instr.name == "puts" else instr.name
        if name == "__puts":
            self.used_runtime.add(name)
        for arg in reversed(instr.args):
            self.emit(f"pushl {self.operand(arg)}")
        self.emit(f"calls #{len(instr.args)}, {name}")
        if instr.dst is not None:
            self.emit(f"movl r0, {self.dest(instr.dst)}")


class CiscCodegen:
    """Generates a complete VAX-like assembly module from an IR program."""

    def __init__(self, program: ir.IRProgram):
        self.program = program
        self.used_runtime: set[str] = set()

    def generate(self) -> str:
        lines: list[str] = ["; generated by rcc (VAX-like CISC backend)", "    .text"]
        lines += [
            "__start:\t;@fn __start",
            "    calls #0, main",
            f"    movl r0, {MMIO_HALT}",
        ]
        for func in self.program.functions:
            codegen = _FunctionCodegen(func, self.used_runtime)
            lines.extend(codegen.generate())
        if "__puts" in self.used_runtime:
            lines.append(PUTS_RUNTIME)
        lines.extend(self._data_section())
        return "\n".join(lines) + "\n"

    def _data_section(self) -> list[str]:
        lines: list[str] = []
        if not self.program.globals and not self.program.strings:
            return lines
        lines.append("    .data")
        for gdef in self.program.globals:
            var = gdef.var
            lines.append("    .align 4")
            if var.type.is_array:
                lines.append(f"{var.name}: .space {var.type.size}")
            elif gdef.init_string is not None:
                lines.append(f"{var.name}: .long {gdef.init_string}")
            else:
                lines.append(f"{var.name}: .long {gdef.init_value or 0}")
        for label, text in self.program.strings.items():
            escaped = (
                text.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
                .replace("\t", "\\t")
                .replace("\r", "\\r")
                .replace("\0", "\\0")
            )
            lines.append(f'{label}: .asciiz "{escaped}"')
        return lines


def generate_cisc_assembly(program: ir.IRProgram) -> str:
    """IR program -> VAX-like assembly text."""
    return CiscCodegen(program).generate()
