"""Compiler diagnostics."""

from __future__ import annotations


class CompileError(Exception):
    """A lexical, syntactic or semantic error in mini-C source."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)
