"""Compiler driver: mini-C source to a runnable program image.

Targets:

* ``"risc1"`` — the paper's machine (assembled by :mod:`repro.asm`);
* ``"cisc"`` — the VAX-like baseline (assembled by
  :mod:`repro.baselines.vax.assembler`).
"""

from __future__ import annotations

import dataclasses
import pickle
from typing import Optional

from repro.cc.delay import DelayStats, optimize
from repro.cc.errors import CompileError
from repro.cc.ir import IRProgram
from repro.cc.irgen import generate_ir
from repro.cc.parser import parse
from repro.cc.riscgen import generate_risc_assembly
from repro.cc.sema import analyze
from repro.core.program import Program
from repro.obs.profiling import span

TARGETS = ("risc1", "cisc")


@dataclasses.dataclass
class CompiledProgram:
    """Everything the experiments need from one compilation."""

    target: str
    assembly: str
    program: Program
    ir: IRProgram
    delay_stats: Optional[DelayStats] = None
    #: the mini-C source text, kept so the profiler can annotate it
    source: str = ""

    @property
    def code_size(self) -> int:
        """Code bytes — the paper's program-size metric."""
        return self.program.code_size

    #: All compiled-program constituents are plain dataclasses of
    #: primitives, so the whole artifact is pickle-stable across worker
    #: processes and cache generations (protocol pinned for portability).
    PICKLE_PROTOCOL = 4

    def to_blob(self) -> bytes:
        """Serialize for the farm's content-addressed artifact cache."""
        return pickle.dumps(self, protocol=self.PICKLE_PROTOCOL)

    @classmethod
    def from_blob(cls, blob: bytes) -> "CompiledProgram":
        value = pickle.loads(blob)
        if not isinstance(value, cls):
            raise TypeError(f"blob decodes to {type(value).__name__}, not {cls.__name__}")
        return value


def compile_to_ir(source: str, tracer=None) -> IRProgram:
    """Front half of the compiler: source -> IR."""
    with span(tracer, "cc.parse"):
        unit = parse(source)
    with span(tracer, "cc.sema"):
        info, analyzer = analyze(unit)
    with span(tracer, "cc.irgen"):
        return generate_ir(info, analyzer)


def compile_to_assembly(source: str, target: str = "risc1") -> str:
    """Compile mini-C to assembly text for the chosen target."""
    return compile_program(source, target).assembly


def compile_program(
    source: str,
    target: str = "risc1",
    fill_delay_slots: bool = True,
    tracer=None,
    filename: str = "<source>",
) -> CompiledProgram:
    """Compile mini-C to a loadable program image for the chosen target.

    An optional ``tracer`` records each compiler phase as a timed PHASE
    event (parse, sema, irgen, codegen, delay-slot fill, assemble).
    ``filename`` names the source in the program's line table (profiler
    reports only; nothing is read from disk).
    """
    if target not in TARGETS:
        raise CompileError(f"unknown target {target!r}; expected one of {TARGETS}")
    ir_program = compile_to_ir(source, tracer)

    if target == "risc1":
        from repro.asm.assembler import assemble

        with span(tracer, "cc.riscgen", target=target):
            asm = generate_risc_assembly(ir_program)
        delay_stats = None
        if fill_delay_slots:
            with span(tracer, "cc.delay"):
                asm, delay_stats = optimize(asm)
        with span(tracer, "asm.assemble", target=target):
            program = assemble(asm)
        program = dataclasses.replace(program, source_file=filename)
        return CompiledProgram(
            "risc1", asm, program, ir_program, delay_stats, source=source
        )

    from repro.baselines.vax.assembler import assemble_vax
    from repro.cc.ciscgen import generate_cisc_assembly

    with span(tracer, "cc.ciscgen", target=target):
        asm = generate_cisc_assembly(ir_program)
    with span(tracer, "asm.assemble", target=target):
        program = assemble_vax(asm)
    program = dataclasses.replace(program, source_file=filename)
    return CompiledProgram("cisc", asm, program, ir_program, None, source=source)


def run_compiled(
    compiled: CompiledProgram,
    max_instructions: int | None = None,
    *,
    max_steps: int | None = None,
    tracer=None,
    metrics=None,
    engine: str | None = None,
    record=None,
    uarch=None,
):
    """Execute a compiled program on its target's simulator.

    Returns the unified :class:`repro.core.api.RunResult` for either
    target; ``tracer``/``metrics`` are handed to the machine.  ``engine``
    picks the execution path (``None`` defers to ``$REPRO_ENGINE``, then
    the fast default); both engines are differentially identical.
    ``record`` opts the run into the persistent run ledger (``None``
    defers to ``$REPRO_LEDGER``; see :mod:`repro.obs.ledger`).  ``uarch``
    opts the run into the pipeline timing model (a spec string, ``True``
    for the default configuration, or a ``UarchConfig``); the resulting
    ``PipelineStats`` lands on ``result.pipeline``.
    """
    if compiled.target == "risc1":
        from repro.core.cpu import CPU

        cpu = CPU(tracer=tracer, metrics=metrics)
    else:
        from repro.baselines.vax.cpu import VaxCPU

        cpu = VaxCPU(tracer=tracer, metrics=metrics)
    cpu.load(compiled.program)
    return cpu.run(
        max_instructions, max_steps=max_steps, engine=engine, record=record, uarch=uarch
    )
