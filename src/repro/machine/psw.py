"""The RISC I processor status word.

The PSW gathers the condition-code bits (Z, N, C, V), the interrupt-enable
bit, and the current-window pointer.  GETPSW/PUTPSW move it to and from a
general register, so the PSW defines a packed 32-bit representation::

    31 .. 12   11..8   7    6..4     3..0
    reserved    CWP    I   reserved  VCNZ
"""

from __future__ import annotations

import dataclasses

from repro.isa.conditions import ConditionCodes


@dataclasses.dataclass
class PSW:
    """Mutable processor status word."""

    cc: ConditionCodes = dataclasses.field(default_factory=ConditionCodes)
    interrupts_enabled: bool = True
    cwp: int = 0

    def pack(self) -> int:
        """Pack into the 32-bit GETPSW representation."""
        word = 0
        word |= 1 if self.cc.z else 0
        word |= (1 if self.cc.n else 0) << 1
        word |= (1 if self.cc.c else 0) << 2
        word |= (1 if self.cc.v else 0) << 3
        word |= (1 if self.interrupts_enabled else 0) << 7
        word |= (self.cwp & 0xF) << 8
        return word

    def unpack(self, word: int) -> None:
        """Load state from a PUTPSW operand.

        The CWP bits are copied as given; the CPU validates them against
        the register file's real window pointer before calling this (a
        mismatch traps rather than desynchronizing the two).
        """
        self.cc = ConditionCodes(
            z=bool(word & 1),
            n=bool(word & 2),
            c=bool(word & 4),
            v=bool(word & 8),
        )
        self.interrupts_enabled = bool(word & 0x80)
        self.cwp = (word >> 8) & 0xF
