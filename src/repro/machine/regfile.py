"""The windowed physical register file.

RISC I's central mechanism: a file of ``10 + 16 * W`` physical registers
(138 for the paper's ``W = 8``) organized as ``W`` overlapping windows.  A
CALL rotates the current-window pointer (CWP) forward so the caller's LOW
registers become the callee's HIGH registers; a RETURN rotates it back.

Because the windows form a circle, at most ``W - 1`` procedure frames can
be resident at once (a ``W``-th frame's LOW registers would alias the
oldest frame's HIGH registers).  A CALL past that limit raises a *window
overflow*: the oldest window's 16 registers must be spilled to the
register-save stack in memory.  A RETURN to a spilled frame raises a
*window underflow* and the registers are filled back.  The register file
itself only detects these conditions; the memory traffic is performed and
accounted by the CPU runtime (:mod:`repro.core.cpu`), because that traffic
is precisely what the paper's procedure-call experiments measure.
"""

from __future__ import annotations

from repro.isa.registers import (
    NUM_WINDOWS,
    REGS_PER_WINDOW,
    physical_index,
    total_physical_regs,
)
from repro.machine.traps import Trap, TrapKind

_WORD_MASK = 0xFFFFFFFF


class WindowOverflow(Trap):
    """Raised internally when a CALL finds no free window."""

    def __init__(self, spill_window: int):
        super().__init__(TrapKind.WINDOW_OVERFLOW, f"spill window {spill_window}")
        self.spill_window = spill_window


class WindowUnderflow(Trap):
    """Raised internally when a RETURN targets a spilled window."""

    def __init__(self, fill_window: int):
        super().__init__(TrapKind.WINDOW_UNDERFLOW, f"fill window {fill_window}")
        self.fill_window = fill_window


class RegisterFile:
    """Physical register file with overlapping windows.

    The file is parameterized by the number of windows so the paper's
    window-count sensitivity experiment (2, 4, 8 windows) can reuse it.
    """

    def __init__(self, num_windows: int = NUM_WINDOWS, spill_batch: int = 1):
        if num_windows < 2:
            raise ValueError(f"need at least 2 windows, got {num_windows}")
        if spill_batch < 1:
            raise ValueError(f"spill batch must be positive, got {spill_batch}")
        self.num_windows = num_windows
        #: windows reclaimed per overflow trap.  1 is the classic
        #: demand policy; larger batches trade spill traffic for fewer
        #: traps on deeply recursive code (experiment E14).
        self.spill_batch = spill_batch
        self._regs = [0] * total_physical_regs(num_windows)
        self.cwp = 0
        #: Number of procedure frames currently resident in the file.
        self.resident = 1
        #: Total call-nesting depth, which may exceed the file capacity.
        self.depth = 1
        #: Event counters for the evaluation.
        self.overflows = 0
        self.underflows = 0
        self.calls = 0
        self.returns = 0

    # -- visible-register access ------------------------------------------

    def read(self, reg: int) -> int:
        """Read visible register ``reg`` in the current window (r0 is 0)."""
        if reg == 0:
            return 0
        return self._regs[physical_index(self.cwp, reg, self.num_windows)]

    def write(self, reg: int, value: int) -> None:
        """Write visible register ``reg``; writes to r0 are discarded."""
        if reg == 0:
            return
        self._regs[physical_index(self.cwp, reg, self.num_windows)] = value & _WORD_MASK

    # -- physical access (spill/fill and inspection) ------------------------

    def read_physical(self, index: int) -> int:
        return self._regs[index]

    def write_physical(self, index: int, value: int) -> None:
        self._regs[index] = value & _WORD_MASK

    def window_slots(self, window: int) -> list[int]:
        """The 16 physical indices private to ``window`` (HIGH + LOCAL).

        These are exactly the registers that must be spilled when the
        window is reclaimed: the window's LOW registers are shared with a
        younger frame that is still resident, so they stay.
        """
        base = 10 + REGS_PER_WINDOW * (window % self.num_windows)
        return list(range(base, base + REGS_PER_WINDOW))

    # -- window rotation -----------------------------------------------------

    @property
    def max_resident(self) -> int:
        """Maximum frames resident at once (one window is always free)."""
        return self.num_windows - 1

    def call_advance(self) -> list[int]:
        """Rotate to the next window for a CALL.

        Returns the window indices (oldest first) whose registers must be
        spilled if this call overflows, else an empty list.  The caller
        (CPU runtime) performs the spills before using the new window.
        With the default ``spill_batch`` of 1 exactly one window is
        reclaimed per overflow.
        """
        self.calls += 1
        self.depth += 1
        spills: list[int] = []
        if self.resident == self.max_resident:
            batch = min(self.spill_batch, self.resident)
            oldest = (self.cwp - (self.resident - 1)) % self.num_windows
            spills = [(oldest + i) % self.num_windows for i in range(batch)]
            self.overflows += 1
            self.resident -= batch - 1
        else:
            self.resident += 1
        self.cwp = (self.cwp + 1) % self.num_windows
        return spills

    def ret_retreat(self) -> int | None:
        """Rotate back to the previous window for a RETURN.

        Returns the window index whose registers must be filled from memory
        if this return underflows, else ``None``.
        """
        if self.depth == 1:
            raise Trap(TrapKind.WINDOW_UNDERFLOW, "return from the outermost frame")
        self.returns += 1
        self.depth -= 1
        self.cwp = (self.cwp - 1) % self.num_windows
        if self.resident == 1:
            self.underflows += 1
            return self.cwp
        self.resident -= 1
        return None

    def note_fill(self) -> None:
        """Record that an underflow fill completed (frame is resident again)."""
        # resident stays 1: the filled frame replaces the one just left.

    def snapshot_visible(self) -> dict[int, int]:
        """Return {visible reg number: value} for the current window."""
        return {reg: self.read(reg) for reg in range(32)}
