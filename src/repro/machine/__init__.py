"""Machine-state substrate shared by the RISC I simulator.

This package holds the stateful hardware models: byte-addressable memory
(:mod:`repro.machine.memory`), the windowed physical register file
(:mod:`repro.machine.regfile`), the processor status word
(:mod:`repro.machine.psw`) and the trap taxonomy
(:mod:`repro.machine.traps`).
"""

from repro.machine.memory import Memory, MemoryError_, MemoryStats
from repro.machine.psw import PSW
from repro.machine.regfile import RegisterFile, WindowOverflow, WindowUnderflow
from repro.machine.traps import Trap, TrapKind

__all__ = [
    "Memory",
    "MemoryError_",
    "MemoryStats",
    "PSW",
    "RegisterFile",
    "Trap",
    "TrapKind",
    "WindowOverflow",
    "WindowUnderflow",
]
