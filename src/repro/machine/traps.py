"""Trap taxonomy of the RISC I machine.

RISC I keeps exceptional control flow simple: a trap freezes the pipeline
and transfers to a software handler through CALLINT.  The simulator models
traps as Python exceptions carrying a :class:`TrapKind`; window
overflow/underflow is handled transparently by the runtime (with its memory
traffic accounted), while the others terminate execution unless a handler
is installed.
"""

from __future__ import annotations

import enum


class TrapKind(enum.Enum):
    """The causes of a RISC I trap."""

    WINDOW_OVERFLOW = "register-window overflow"
    WINDOW_UNDERFLOW = "register-window underflow"
    ILLEGAL_INSTRUCTION = "illegal instruction"
    ALIGNMENT = "misaligned memory access"
    BUS_ERROR = "access outside physical memory"
    HALT = "halt requested"


class Trap(Exception):
    """A machine trap, raised during simulation."""

    def __init__(self, kind: TrapKind, detail: str = "", pc: int | None = None):
        self.kind = kind
        self.detail = detail
        self.pc = pc
        location = f" at pc={pc:#010x}" if pc is not None else ""
        message = f"{kind.value}{location}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
