"""Byte-addressable main memory.

RISC I is a big-endian, byte-addressable machine with 32-bit words.  Loads
and stores of shorts and longs must be naturally aligned; a misaligned
access raises an alignment trap, as on the real chip.

The memory keeps separate counters for instruction fetches and data
references because the paper's evaluation leans on *memory traffic* as a
first-class metric (it is how register windows beat conventional calling
conventions).
"""

from __future__ import annotations

import dataclasses

from repro.machine.traps import Trap, TrapKind


class MemoryError_(Trap):
    """A memory trap (alignment or bus error)."""


@dataclasses.dataclass
class MemoryStats:
    """Traffic counters, in units of accesses (not bytes)."""

    inst_fetches: int = 0
    data_reads: int = 0
    data_writes: int = 0

    @property
    def data_references(self) -> int:
        return self.data_reads + self.data_writes

    @property
    def total(self) -> int:
        return self.inst_fetches + self.data_references

    def reset(self) -> None:
        self.inst_fetches = 0
        self.data_reads = 0
        self.data_writes = 0


class Memory:
    """Big-endian byte-addressable memory of a fixed size.

    ``check_alignment`` is on for RISC I (misaligned access traps, as on
    the chip) and off for the VAX-like baseline (VAX hardware allowed
    unaligned operands).
    """

    def __init__(self, size: int = 1 << 20, check_alignment: bool = True):
        if size <= 0 or size % 4:
            raise ValueError(f"memory size must be a positive multiple of 4: {size}")
        self.size = size
        self.check_alignment = check_alignment
        self._bytes = bytearray(size)
        self.stats = MemoryStats()
        #: Optional ``fn(address, width)`` called after every accounted
        #: write.  Execution engines that predecode instruction memory
        #: install an invalidator here so stores into code (self-modifying
        #: programs, window spills over code, ...) flush stale decodings.
        self.write_watch = None

    # -- raw access (no traffic accounting; used by loaders/tests) -----

    def load_image(self, address: int, data: bytes) -> None:
        """Copy ``data`` into memory at ``address`` without accounting."""
        self._bounds(address, len(data))
        self._bytes[address : address + len(data)] = data

    def dump(self, address: int, length: int) -> bytes:
        """Read raw bytes without accounting."""
        self._bounds(address, length)
        return bytes(self._bytes[address : address + length])

    # -- accounted accesses --------------------------------------------

    def fetch_word(self, address: int) -> int:
        """Fetch an instruction word (counted as an instruction fetch)."""
        value = self._read(address, 4)
        self.stats.inst_fetches += 1
        return value

    def read(self, address: int, width: int, signed: bool = False) -> int:
        """Data read of 1, 2 or 4 bytes, optionally sign-extended."""
        value = self._read(address, width)
        self.stats.data_reads += 1
        if signed:
            sign = 1 << (width * 8 - 1)
            value = (value & (sign - 1)) - (value & sign)
        return value

    def write(self, address: int, value: int, width: int) -> None:
        """Data write of 1, 2 or 4 bytes (value taken modulo the width)."""
        self._check(address, width)
        value &= (1 << (width * 8)) - 1
        self._bytes[address : address + width] = value.to_bytes(width, "big")
        self.stats.data_writes += 1
        if self.write_watch is not None:
            self.write_watch(address, width)

    # -- helpers ---------------------------------------------------------

    def _read(self, address: int, width: int) -> int:
        self._check(address, width)
        return int.from_bytes(self._bytes[address : address + width], "big")

    def _check(self, address: int, width: int) -> None:
        if width not in (1, 2, 4):
            raise ValueError(f"unsupported access width: {width}")
        if self.check_alignment and address % width:
            raise MemoryError_(
                TrapKind.ALIGNMENT, f"{width}-byte access at {address:#x}"
            )
        self._bounds(address, width)

    def _bounds(self, address: int, length: int) -> None:
        if address < 0 or address + length > self.size:
            raise MemoryError_(
                TrapKind.BUS_ERROR,
                f"access of {length} byte(s) at {address:#x} exceeds {self.size:#x}",
            )
