"""Register-window overflow analysis (experiment E6).

Replays the call/return trace of a real program run against register files
with different window counts and reports how often a call overflows (and a
return underflows), plus the spill traffic in registers.  This is the
measurement behind the paper's choice of eight windows: with enough
windows, the call-depth *excursions* of real programs almost never leave
the file.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

#: A call trace: ("call" | "ret", depth-after-event), as produced by
#: ``CPU(trace_calls=True)``.
Trace = Sequence[tuple[str, int]]


@dataclasses.dataclass(frozen=True)
class WindowStats:
    """Outcome of replaying one trace against one window count."""

    num_windows: int
    calls: int
    returns: int
    overflows: int
    underflows: int
    registers_spilled: int
    max_depth: int

    @property
    def overflow_rate(self) -> float:
        """Fraction of calls that caused a window overflow."""
        return self.overflows / self.calls if self.calls else 0.0

    @property
    def spill_words_per_call(self) -> float:
        return self.registers_spilled / self.calls if self.calls else 0.0


def replay(trace: Trace, num_windows: int, regs_per_window: int = 16) -> WindowStats:
    """Replay a call trace against a ``num_windows``-window file."""
    if num_windows < 2:
        raise ValueError("need at least 2 windows")
    max_resident = num_windows - 1
    resident = 1
    calls = returns = overflows = underflows = 0
    spilled = 0
    max_depth = depth = 1
    for event, _depth in trace:
        if event == "call":
            calls += 1
            depth += 1
            max_depth = max(max_depth, depth)
            if resident == max_resident:
                overflows += 1
                spilled += regs_per_window
            else:
                resident += 1
        elif event == "ret":
            returns += 1
            depth -= 1
            if resident == 1:
                underflows += 1
            else:
                resident -= 1
        else:
            raise ValueError(f"unknown trace event {event!r}")
    return WindowStats(
        num_windows=num_windows,
        calls=calls,
        returns=returns,
        overflows=overflows,
        underflows=underflows,
        registers_spilled=spilled,
        max_depth=max_depth,
    )


def sweep(trace: Trace, window_counts: Iterable[int] = (2, 4, 6, 8, 12, 16)) -> list[WindowStats]:
    """Replay one trace across several window counts."""
    return [replay(trace, count) for count in window_counts]
