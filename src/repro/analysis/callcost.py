"""Differential measurement of procedure-call cost (experiment E7).

Runs the null-call microbenchmark at two call counts on the same machine
and divides the difference by the extra calls.  Every per-run fixed cost
(startup, loop setup, I/O) cancels, leaving the marginal cost of one
call/return pair: instructions, cycles, data-memory references, and
nanoseconds.  The same subtraction applied to the VAX-like baseline prices
CALLS/RET; the conventional-convention model of
:mod:`repro.baselines.conventional` prices a windowless RISC.
"""

from __future__ import annotations

import dataclasses

from repro.baselines.conventional import ConventionalCallModel
from repro.cc.driver import compile_program, run_compiled
from repro.workloads import ALL_WORKLOADS


@dataclasses.dataclass(frozen=True)
class CallCost:
    """Marginal cost of one call/return pair on one machine."""

    machine: str
    instructions: float
    cycles: float
    data_refs: float
    nanoseconds: float


def _run(target: str, calls: int):
    workload = ALL_WORKLOADS["call_overhead"]
    compiled = compile_program(workload.source(CALLS=calls), target=target)
    return run_compiled(compiled)


def measure(target: str, base_calls: int = 500, extra_calls: int = 1500) -> CallCost:
    """Measure per-call cost on a simulated machine differentially."""
    small = _run(target, base_calls)
    large = _run(target, base_calls + extra_calls)
    instructions = (large.stats.instructions - small.stats.instructions) / extra_calls
    cycles = (large.stats.cycles - small.stats.cycles) / extra_calls
    refs = (large.stats.data_references - small.stats.data_references) / extra_calls
    cycle_ns = 400.0 if target == "risc1" else 200.0
    name = "RISC I (register windows)" if target == "risc1" else "VAX-like (CALLS/RET)"
    return CallCost(name, instructions, cycles, refs, cycles * cycle_ns)


def conventional_cost(saved_registers: int = 8) -> CallCost:
    """Per-call cost of the windowless RISC I projection.

    Starts from the measured windowed cost and adds the conventional
    convention's save/restore traffic.
    """
    windowed = measure("risc1")
    model = ConventionalCallModel(saved_registers=saved_registers)
    cycles = windowed.cycles + model.extra_cycles_per_call
    refs = windowed.data_refs + model.extra_memory_refs_per_call
    instructions = windowed.instructions + 2 * saved_registers + model.bookkeeping_instructions
    return CallCost(
        f"RISC I w/o windows (save {saved_registers} regs)",
        instructions,
        cycles,
        refs,
        cycles * 400.0,
    )
