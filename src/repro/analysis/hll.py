"""High-level-language statement profiling (experiment E2).

Reproduces the paper's Table II argument: procedure CALL/RETURN is a small
fraction of *executed* statements but dominates once each statement class
is weighted by the machine instructions and memory references it costs —
which is why RISC I spends its transistors on register windows.

Dynamic statement counts come from the IR interpreter's statement markers
(:class:`repro.cc.ir.Marker`).  Per-class machine weights are *measured*,
not assumed: each class has a microbenchmark pair differing only in the
number of statements of that class executed, and the marginal cost per
statement on each machine falls out of the difference.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

from repro.cc.driver import compile_program, run_compiled
from repro.cc.irvm import run_ir
from repro.workloads import ALL_WORKLOADS, BENCHMARK_SUITE

STATEMENT_CLASSES = ("assignment", "if", "loop", "call", "return")


def dynamic_statement_counts(workload_names: list[str] | None = None) -> Counter:
    """Executed HLL statements by class, summed over the benchmark suite."""
    names = workload_names if workload_names is not None else BENCHMARK_SUITE
    totals: Counter = Counter()
    for name in names:
        workload = ALL_WORKLOADS[name]
        compiled = compile_program(workload.source(), target="risc1")
        result = run_ir(compiled.ir)
        for key, count in result.counts.ops.items():
            if key.startswith("stmt:"):
                totals[key.removeprefix("stmt:")] += count
    return totals


# -- per-class weight microbenchmarks ------------------------------------------------
#
# Each template runs a loop of KAPPA iterations whose body executes REPS
# statements of exactly one class; the marginal cost of the class is
# (cost(2*REPS) - cost(REPS)) / (KAPPA * REPS).

_KAPPA = 200


def _assign_body(reps: int) -> str:
    lines = "\n".join("        sink = source + 1;" for _ in range(reps))
    return f"""
    int sink; int source;
    int main() {{
        source = 3;
        for (int i = 0; i < {_KAPPA}; i++) {{
{lines}
        }}
        return sink;
    }}
    """


def _if_body(reps: int) -> str:
    lines = "\n".join("        if (source == 12345) return 1;" for _ in range(reps))
    return f"""
    int source;
    int main() {{
        source = 3;
        for (int i = 0; i < {_KAPPA}; i++) {{
{lines}
        }}
        return 0;
    }}
    """


def _loop_body(reps: int) -> str:
    lines = "\n".join(
        f"        for (int j{k} = 0; j{k} < 1; j{k}++) ;" for k in range(reps)
    )
    return f"""
    int source;
    int main() {{
        for (int i = 0; i < {_KAPPA}; i++) {{
{lines}
        }}
        return 0;
    }}
    """


def _call_body(reps: int) -> str:
    lines = "\n".join("        sink = leaf(sink);" for _ in range(reps))
    return f"""
    int sink;
    int leaf(int x) {{ return x; }}
    int main() {{
        for (int i = 0; i < {_KAPPA}; i++) {{
{lines}
        }}
        return 0;
    }}
    """


_TEMPLATES = {
    "assignment": _assign_body,
    "if": _if_body,
    "loop": _loop_body,
    # a call statement includes the matching return
    "call": _call_body,
}


@dataclasses.dataclass(frozen=True)
class ClassWeight:
    """Marginal machine cost of one executed statement of a class."""

    instructions: float
    memory_refs: float
    cycles: float


def statement_weights(target: str, reps: int = 4) -> dict[str, ClassWeight]:
    """Measure per-statement-class machine weights on one target."""
    weights: dict[str, ClassWeight] = {}
    for cls, template in _TEMPLATES.items():
        small = _measure(template(reps), target)
        large = _measure(template(2 * reps), target)
        denom = _KAPPA * reps
        weights[cls] = ClassWeight(
            instructions=(large[0] - small[0]) / denom,
            memory_refs=(large[1] - small[1]) / denom,
            cycles=(large[2] - small[2]) / denom,
        )
    # a return executes as part of its call's cost; attribute it jointly
    weights["return"] = ClassWeight(0.0, 0.0, 0.0)
    return weights


def _measure(source: str, target: str) -> tuple[int, int, int]:
    compiled = compile_program(source, target=target)
    result = run_compiled(compiled)
    return result.stats.instructions, result.stats.data_references, result.stats.cycles


@dataclasses.dataclass
class WeightedRow:
    statement: str
    executed_pct: float
    instruction_weighted_pct: float
    memref_weighted_pct: float


def weighted_statement_table(
    target: str = "risc1", workload_names: list[str] | None = None
) -> list[WeightedRow]:
    """The Table II reproduction: frequencies vs. weighted frequencies.

    CALL's share must grow dramatically from the raw column to the
    weighted columns — that growth *is* the paper's motivation.
    """
    counts = Counter(dynamic_statement_counts(workload_names))
    weights = statement_weights(target)
    # a return's cost is bundled into its call's measured weight, so the
    # return rows fold away rather than double-count
    counts.pop("return", None)

    total = sum(counts.values()) or 1
    instr_mass = {
        cls: counts.get(cls, 0) * max(weights[cls].instructions, 0.0)
        for cls in _TEMPLATES
    }
    ref_mass = {
        cls: counts.get(cls, 0) * max(weights[cls].memory_refs, 0.0)
        for cls in _TEMPLATES
    }
    instr_total = sum(instr_mass.values()) or 1.0
    ref_total = sum(ref_mass.values()) or 1.0

    rows = []
    for cls in _TEMPLATES:
        rows.append(
            WeightedRow(
                statement=cls,
                executed_pct=100.0 * counts.get(cls, 0) / total,
                instruction_weighted_pct=100.0 * instr_mass[cls] / instr_total,
                memref_weighted_pct=100.0 * ref_mass[cls] / ref_total,
            )
        )
    return rows
