"""Plain-text table rendering for experiment output.

Every experiment produces one or more :class:`Table` objects so the
benchmark harnesses can both print paper-style rows and assert on the
underlying values.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence


@dataclasses.dataclass
class Table:
    """A titled table with typed cell access for assertions."""

    title: str
    headers: list[str]
    rows: list[list[Any]] = dataclasses.field(default_factory=list)
    notes: list[str] = dataclasses.field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"{self.title}: row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, header: str) -> list[Any]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def cell(self, row_key: Any, header: str) -> Any:
        """Look up a cell by first-column value and column header."""
        index = self.headers.index(header)
        for row in self.rows:
            if row[0] == row_key:
                return row[index]
        raise KeyError(f"{self.title}: no row {row_key!r}")

    def to_dict(self) -> dict:
        """JSON-safe form used by ``risc1-experiments --format json``."""
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[_json_cell(c) for c in row] for row in self.rows],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        cells = [[_format(c) for c in row] for row in self.rows]
        widths = [
            max([len(h)] + [len(row[i]) for row in cells])
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _format(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _json_cell(cell: Any) -> Any:
    if isinstance(cell, (int, float, str, bool)) or cell is None:
        return cell
    return str(cell)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the right average for ratio columns."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
