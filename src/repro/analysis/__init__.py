"""Analysis tools behind the paper's evaluation tables.

* :mod:`repro.analysis.report` — table rendering shared by every
  experiment;
* :mod:`repro.analysis.hll` — high-level-language statement profiling
  (Table II's CALL-dominates argument);
* :mod:`repro.analysis.windows` — register-window overflow analysis as a
  function of window count;
* :mod:`repro.analysis.callcost` — differential measurement of pure
  procedure-call cost on each machine.
"""

from repro.analysis.report import Table

__all__ = ["Table"]
