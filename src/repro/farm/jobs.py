"""The farm's job model.

A :class:`Job` is one cell of the paper's evaluation grid: compile a
workload for a target, execute it on that target's simulator, or profile
it at the IR level.  Jobs are plain frozen dataclasses of primitives so
they pickle cheaply across process boundaries, and each job has a
deterministic content-addressed :func:`job_key` covering

* the workload's mini-C source text at the requested scale,
* the target backend and simulator configuration, and
* a per-module version stamp of the toolchain (a hash of each relevant
  ``repro`` subpackage's source), so editing the compiler or a simulator
  invalidates exactly the artifacts it could change.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
from pathlib import Path

from repro.workloads import ALL_WORKLOADS

#: Bump when the job/artifact encoding changes shape.
JOB_SCHEMA_VERSION = 1

#: Default instruction budget for farm execution jobs — matches what the
#: experiment harnesses use.
MAX_INSTRUCTIONS = 500_000_000

#: Which toolchain modules each job kind depends on.  A compile artifact
#: is invalidated by compiler/assembler changes; an execution artifact
#: additionally by its simulator.
_MODULES_BY_KIND = {
    "compile": ("isa", "machine", "asm", "cc", "baselines", "core"),
    "execute": ("isa", "machine", "asm", "cc", "baselines", "core"),
    "ir": ("isa", "machine", "asm", "cc", "baselines", "core"),
    # differential fuzz jobs run every engine, so every module matters —
    # plus the generator itself (a grammar change renames every artifact)
    "fuzz": ("isa", "machine", "asm", "cc", "baselines", "core", "fuzz"),
}


@functools.lru_cache(maxsize=1)
def toolchain_fingerprint() -> dict[str, str]:
    """Per-module version stamps: subpackage name -> sha256 of its sources.

    Hashes every ``.py`` source (and workload program) under each
    ``repro`` subpackage, so any code change produces new cache keys
    without anyone remembering to bump a version constant.
    """
    import repro

    root = Path(repro.__file__).parent
    stamps: dict[str, str] = {"repro": _package_version()}
    for module in ("isa", "machine", "core", "asm", "cc", "baselines", "workloads", "fuzz"):
        digest = hashlib.sha256()
        base = root / module
        for path in sorted(base.rglob("*")):
            if path.suffix in (".py", ".rc", ".s") and path.is_file():
                digest.update(path.relative_to(base).as_posix().encode())
                digest.update(path.read_bytes())
        stamps[module] = digest.hexdigest()[:16]
    return stamps


def _package_version() -> str:
    import repro

    return getattr(repro, "__version__", "0")


@dataclasses.dataclass(frozen=True)
class Job:
    """One unit of farm work.  Hash- and pickle-stable by construction."""

    kind: str  # "compile" | "execute" | "ir"
    workload: str
    target: str  # "risc1" | "cisc" ("risc1" for IR jobs)
    scale: str = "default"
    #: extra simulator configuration, sorted (name, value) pairs
    config: tuple[tuple[str, int], ...] = ()
    #: ``PARAM_*`` overrides from a ``NAME:ARG`` workload spec, sorted
    #: (name, value) pairs applied on top of the scale's parameters
    params: tuple[tuple[str, int], ...] = ()
    #: inline mini-C source (fuzz-generated or user-supplied).  When set,
    #: ``workload`` is a free-form label, not a curated-workload name, and
    #: there is no expected-output oracle to verify against.
    source: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("compile", "execute", "ir", "fuzz"):
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.source is not None:
            if self.kind == "fuzz":
                raise ValueError("fuzz jobs carry a seed, not inline source")
            if not isinstance(self.source, str) or not self.source.strip():
                raise ValueError("inline job source must be non-empty text")
            return
        if self.kind == "fuzz":
            # fuzz jobs name a generator profile, not a curated workload:
            # workload is "fuzz:<profile>", the seed rides in config
            from repro.fuzz.gen import PROFILES

            prefix, _, profile = self.workload.partition(":")
            if prefix != "fuzz" or profile not in PROFILES:
                raise ValueError(
                    f"fuzz job workload must be 'fuzz:<profile>', got {self.workload!r}"
                )
            if "seed" not in dict(self.config):
                raise ValueError("fuzz job config must carry a 'seed'")
            return
        workload = ALL_WORKLOADS.get(self.workload)
        if workload is None:
            raise KeyError(f"unknown workload {self.workload!r}")
        for name, _ in self.params:
            if name not in workload.default_params:
                raise KeyError(
                    f"workload {self.workload!r} has no parameter {name!r} "
                    f"(has: {sorted(workload.default_params)})"
                )

    @property
    def key(self) -> str:
        return job_key(self)

    def describe(self) -> str:
        base = f"{self.kind}:{self.workload}:{self.target}:{self.scale}"
        if self.params:
            base += ":" + ",".join(f"{k}={v}" for k, v in self.params)
        return base

    def to_dict(self) -> dict:
        payload = {
            "kind": self.kind,
            "workload": self.workload,
            "target": self.target,
            "scale": self.scale,
            "config": [list(pair) for pair in self.config],
            "params": [list(pair) for pair in self.params],
            "key": self.key,
        }
        if self.source is not None:
            payload["source"] = self.source
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Job":
        """Rebuild a job from its :meth:`to_dict` form (``key`` is rederived)."""
        return cls(
            kind=payload["kind"],
            workload=payload["workload"],
            target=payload["target"],
            scale=payload.get("scale", "default"),
            config=tuple((str(k), int(v)) for k, v in payload.get("config", ())),
            params=tuple((str(k), int(v)) for k, v in payload.get("params", ())),
            source=payload.get("source"),
        )


def workload_source(name: str, scale: str, params: tuple = ()) -> str:
    """The workload's mini-C source at the requested scale plus overrides."""
    workload = ALL_WORKLOADS[name]
    merged = dict(workload.bench_params) if scale == "bench" else {}
    merged.update(dict(params))
    return workload.source(**merged)


@functools.lru_cache(maxsize=None)
def _source_digest(name: str, scale: str, params: tuple = ()) -> str:
    return hashlib.sha256(workload_source(name, scale, params).encode()).hexdigest()[:16]


def _fuzz_source_digest(job: Job) -> str:
    from repro.fuzz.gen import generate_source

    profile = job.workload.partition(":")[2]
    seed = dict(job.config)["seed"]
    return hashlib.sha256(generate_source(seed, profile).encode()).hexdigest()[:16]


def job_key(job: Job) -> str:
    """Deterministic content hash naming this job's cache artifact."""
    stamps = toolchain_fingerprint()
    material = {
        "schema": JOB_SCHEMA_VERSION,
        "kind": job.kind,
        "workload": job.workload,
        "target": job.target,
        "scale": job.scale,
        "config": [list(pair) for pair in sorted(job.config)],
        # params reach the key through the source digest: overriding a
        # PARAM_* global changes the source text, hence the artifact —
        # and overriding a parameter to its current value correctly
        # shares the existing artifact
        "source": hashlib.sha256(job.source.encode()).hexdigest()[:16]
        if job.source is not None
        else _fuzz_source_digest(job)
        if job.kind == "fuzz"
        else _source_digest(job.workload, job.scale, job.params),
        "toolchain": {m: stamps[m] for m in ("repro", *_MODULES_BY_KIND[job.kind])},
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# -- job builders -------------------------------------------------------------------


def _normalize_params(params) -> tuple[tuple[str, int], ...]:
    if not params:
        return ()
    if isinstance(params, dict):
        params = params.items()
    return tuple(sorted((str(k), int(v)) for k, v in params))


def compile_job(workload: str, target: str, scale: str = "default", params=None) -> Job:
    return Job("compile", workload, target, scale, params=_normalize_params(params))


def execute_job(
    workload: str,
    target: str,
    scale: str = "default",
    max_instructions: int = MAX_INSTRUCTIONS,
    params=None,
) -> Job:
    return Job(
        "execute",
        workload,
        target,
        scale,
        config=(("max_instructions", max_instructions),),
        params=_normalize_params(params),
    )


def ir_job(workload: str, scale: str = "default", params=None) -> Job:
    return Job("ir", workload, "risc1", scale, params=_normalize_params(params))


def fuzz_job(seed: int, profile: str = "default", max_steps: int | None = None) -> Job:
    """One differential-fuzz cell: generate seed's program, cross-check it.

    The target is tagged ``cross`` because the job runs *both* machine
    backends (plus the IR interpreter) and compares them.
    """
    if max_steps is None:
        from repro.fuzz.crosscheck import DEFAULT_MAX_STEPS

        max_steps = DEFAULT_MAX_STEPS
    return Job(
        "fuzz",
        f"fuzz:{profile}",
        "cross",
        config=(("max_steps", int(max_steps)), ("seed", int(seed))),
    )


def source_job(
    source: str,
    target: str = "risc1",
    label: str = "inline",
    max_instructions: int = MAX_INSTRUCTIONS,
) -> Job:
    """An execute job over inline mini-C source (no curated workload)."""
    return Job(
        "execute",
        label,
        target,
        config=(("max_instructions", max_instructions),),
        source=source,
    )


def dependency(job: Job) -> Job | None:
    """The job that must (logically) run first, or None.

    Execution and IR jobs consume the compile job's artifact.  The
    dependency is *soft* — a worker recompiles on a cache miss — but the
    scheduler uses it to order waves so compiled programs are built once.
    """
    if job.kind in ("execute", "ir"):
        return Job(
            "compile",
            job.workload,
            "risc1" if job.kind == "ir" else job.target,
            job.scale,
            params=job.params,
            source=job.source,
        )
    return None


def sweep_jobs(
    workloads=None,
    targets=("risc1", "cisc"),
    scale: str = "default",
    with_ir: bool = True,
) -> list[Job]:
    """The full evaluation grid: compile + execute per target, plus IR profiles.

    ``workloads`` entries are workload *specs* in the shared
    ``NAME[:ARG]`` grammar (:func:`repro.workloads.parse_workload_spec`);
    bare names behave exactly as before.  Raises :class:`ValueError` on
    an unknown name or malformed argument.
    """
    from repro.workloads import parse_workload_spec

    specs = list(workloads) if workloads else list(ALL_WORKLOADS)
    jobs: list[Job] = []
    for spec in specs:
        name, overrides = parse_workload_spec(spec)
        params = _normalize_params(overrides)
        for target in targets:
            jobs.append(compile_job(name, target, scale, params=params))
            jobs.append(execute_job(name, target, scale, params=params))
        if with_ir:
            jobs.append(ir_job(name, scale, params=params))
    return jobs
