"""The farm's job model.

A :class:`Job` is one cell of the paper's evaluation grid: compile a
workload for a target, execute it on that target's simulator, or profile
it at the IR level.  Jobs are plain frozen dataclasses of primitives so
they pickle cheaply across process boundaries, and each job has a
deterministic content-addressed :func:`job_key` covering

* the workload's mini-C source text at the requested scale,
* the target backend and simulator configuration, and
* a per-module version stamp of the toolchain (a hash of each relevant
  ``repro`` subpackage's source), so editing the compiler or a simulator
  invalidates exactly the artifacts it could change.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
from pathlib import Path

from repro.workloads import ALL_WORKLOADS

#: Bump when the job/artifact encoding changes shape.
JOB_SCHEMA_VERSION = 1

#: Default instruction budget for farm execution jobs — matches what the
#: experiment harnesses use.
MAX_INSTRUCTIONS = 500_000_000

#: Which toolchain modules each job kind depends on.  A compile artifact
#: is invalidated by compiler/assembler changes; an execution artifact
#: additionally by its simulator.
_MODULES_BY_KIND = {
    "compile": ("isa", "machine", "asm", "cc", "baselines", "core"),
    "execute": ("isa", "machine", "asm", "cc", "baselines", "core"),
    "ir": ("isa", "machine", "asm", "cc", "baselines", "core"),
}


@functools.lru_cache(maxsize=1)
def toolchain_fingerprint() -> dict[str, str]:
    """Per-module version stamps: subpackage name -> sha256 of its sources.

    Hashes every ``.py`` source (and workload program) under each
    ``repro`` subpackage, so any code change produces new cache keys
    without anyone remembering to bump a version constant.
    """
    import repro

    root = Path(repro.__file__).parent
    stamps: dict[str, str] = {"repro": _package_version()}
    for module in ("isa", "machine", "core", "asm", "cc", "baselines", "workloads"):
        digest = hashlib.sha256()
        base = root / module
        for path in sorted(base.rglob("*")):
            if path.suffix in (".py", ".rc", ".s") and path.is_file():
                digest.update(path.relative_to(base).as_posix().encode())
                digest.update(path.read_bytes())
        stamps[module] = digest.hexdigest()[:16]
    return stamps


def _package_version() -> str:
    import repro

    return getattr(repro, "__version__", "0")


@dataclasses.dataclass(frozen=True)
class Job:
    """One unit of farm work.  Hash- and pickle-stable by construction."""

    kind: str  # "compile" | "execute" | "ir"
    workload: str
    target: str  # "risc1" | "cisc" ("risc1" for IR jobs)
    scale: str = "default"
    #: extra simulator configuration, sorted (name, value) pairs
    config: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("compile", "execute", "ir"):
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.workload not in ALL_WORKLOADS:
            raise KeyError(f"unknown workload {self.workload!r}")

    @property
    def key(self) -> str:
        return job_key(self)

    def describe(self) -> str:
        return f"{self.kind}:{self.workload}:{self.target}:{self.scale}"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "workload": self.workload,
            "target": self.target,
            "scale": self.scale,
            "config": [list(pair) for pair in self.config],
            "key": self.key,
        }


def workload_source(name: str, scale: str) -> str:
    """The workload's mini-C source at the requested scale."""
    workload = ALL_WORKLOADS[name]
    params = workload.bench_params if scale == "bench" else {}
    return workload.source(**params)


@functools.lru_cache(maxsize=None)
def _source_digest(name: str, scale: str) -> str:
    return hashlib.sha256(workload_source(name, scale).encode()).hexdigest()[:16]


def job_key(job: Job) -> str:
    """Deterministic content hash naming this job's cache artifact."""
    stamps = toolchain_fingerprint()
    material = {
        "schema": JOB_SCHEMA_VERSION,
        "kind": job.kind,
        "workload": job.workload,
        "target": job.target,
        "scale": job.scale,
        "config": [list(pair) for pair in sorted(job.config)],
        "source": _source_digest(job.workload, job.scale),
        "toolchain": {m: stamps[m] for m in ("repro", *_MODULES_BY_KIND[job.kind])},
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# -- job builders -------------------------------------------------------------------


def compile_job(workload: str, target: str, scale: str = "default") -> Job:
    return Job("compile", workload, target, scale)


def execute_job(
    workload: str,
    target: str,
    scale: str = "default",
    max_instructions: int = MAX_INSTRUCTIONS,
) -> Job:
    return Job(
        "execute",
        workload,
        target,
        scale,
        config=(("max_instructions", max_instructions),),
    )


def ir_job(workload: str, scale: str = "default") -> Job:
    return Job("ir", workload, "risc1", scale)


def dependency(job: Job) -> Job | None:
    """The job that must (logically) run first, or None.

    Execution and IR jobs consume the compile job's artifact.  The
    dependency is *soft* — a worker recompiles on a cache miss — but the
    scheduler uses it to order waves so compiled programs are built once.
    """
    if job.kind in ("execute", "ir"):
        return compile_job(job.workload, "risc1" if job.kind == "ir" else job.target, job.scale)
    return None


def sweep_jobs(
    workloads=None,
    targets=("risc1", "cisc"),
    scale: str = "default",
    with_ir: bool = True,
) -> list[Job]:
    """The full evaluation grid: compile + execute per target, plus IR profiles."""
    names = list(workloads) if workloads else list(ALL_WORKLOADS)
    jobs: list[Job] = []
    for name in names:
        for target in targets:
            jobs.append(compile_job(name, target, scale))
            jobs.append(execute_job(name, target, scale))
        if with_ir:
            jobs.append(ir_job(name, scale))
    return jobs
