"""``repro.farm`` — a parallel simulation farm for the paper's evaluation grid.

The paper's tables are produced from a grid of (workload x target x scale)
simulation jobs.  This package turns that grid into explicit, hashable
:class:`~repro.farm.jobs.Job` objects and provides:

* a content-addressed on-disk artifact cache (:mod:`repro.farm.cache`) so
  compiled programs and execution statistics survive across invocations;
* a persistent worker pool (:mod:`repro.farm.pool`) forked once per client
  lifetime, preloading the toolchain and pulling batched job dispatches
  off a queue, with crash detection, one retry, and serial fallback;
* the unified submission API (:mod:`repro.farm.api`):
  :class:`FarmClient` with ``submit(JobSpec) -> FarmFuture`` and
  ``sweep(jobs) -> FarmReport``, plus versioned JSON-round-trippable
  :class:`JobSpec` / :class:`JobStatus` records;
* an async HTTP/JSON front door (:mod:`repro.farm.serve`,
  ``python -m repro.farm serve``) that dedupes in-flight submissions
  against the content-addressed cache;
* an append-only structured result store (:mod:`repro.farm.results`)
  recording every sweep as a JSONL manifest;
* a command line (``python -m repro.farm run / status / gc / serve``).

``repro.experiments.common`` routes its compilation/simulation helpers
through :mod:`repro.farm.runner`, keeping its per-process ``lru_cache`` as
the L1 layer on top of the farm's on-disk L2 cache.
"""

from __future__ import annotations

from repro.farm.api import (
    API_SCHEMA_VERSION,
    FarmClient,
    FarmFuture,
    JobFailed,
    JobSpec,
    JobStatus,
    SpecError,
    shared_client,
)
from repro.farm.cache import ArtifactCache, CacheStats, default_cache_root
from repro.farm.jobs import (
    Job,
    compile_job,
    execute_job,
    ir_job,
    sweep_jobs,
    toolchain_fingerprint,
)
from repro.farm.pool import PoolBroken, PoolOutcome, WorkerPool, default_batch_size
from repro.farm.results import ResultStore
from repro.farm.runner import run_job
from repro.farm.scheduler import FarmReport, JobOutcome, run_sweep

__all__ = [
    "API_SCHEMA_VERSION",
    "ArtifactCache",
    "CacheStats",
    "FarmClient",
    "FarmFuture",
    "FarmReport",
    "Job",
    "JobFailed",
    "JobOutcome",
    "JobSpec",
    "JobStatus",
    "PoolBroken",
    "PoolOutcome",
    "ResultStore",
    "SpecError",
    "WorkerPool",
    "compile_job",
    "default_batch_size",
    "default_cache_root",
    "execute_job",
    "ir_job",
    "run_job",
    "run_sweep",
    "shared_client",
    "sweep_jobs",
    "toolchain_fingerprint",
]
