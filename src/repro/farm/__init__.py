"""``repro.farm`` — a parallel simulation farm for the paper's evaluation grid.

The paper's tables are produced from a grid of (workload x target x scale)
simulation jobs.  This package turns that grid into explicit, hashable
:class:`~repro.farm.jobs.Job` objects and provides:

* a content-addressed on-disk artifact cache (:mod:`repro.farm.cache`) so
  compiled programs and execution statistics survive across invocations;
* a multiprocess scheduler (:mod:`repro.farm.scheduler`) that fans jobs
  across worker processes with compile-before-run ordering and graceful
  fallback to in-process execution;
* an append-only structured result store (:mod:`repro.farm.results`)
  recording every sweep as a JSONL manifest;
* a command line (``python -m repro.farm run / status / gc``).

``repro.experiments.common`` routes its compilation/simulation helpers
through :mod:`repro.farm.runner`, keeping its per-process ``lru_cache`` as
the L1 layer on top of the farm's on-disk L2 cache.
"""

from __future__ import annotations

from repro.farm.cache import ArtifactCache, CacheStats, default_cache_root
from repro.farm.jobs import (
    Job,
    compile_job,
    execute_job,
    ir_job,
    sweep_jobs,
    toolchain_fingerprint,
)
from repro.farm.results import ResultStore
from repro.farm.runner import run_job
from repro.farm.scheduler import FarmReport, JobOutcome, run_sweep

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "FarmReport",
    "Job",
    "JobOutcome",
    "ResultStore",
    "compile_job",
    "default_cache_root",
    "execute_job",
    "ir_job",
    "run_job",
    "run_sweep",
    "sweep_jobs",
    "toolchain_fingerprint",
]
