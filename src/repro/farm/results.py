"""Structured result store: an append-only JSONL run manifest.

Every farm sweep appends exactly one record to ``runs.jsonl`` under the
cache root.  Records are self-describing (``schema`` version) so later
tooling can evolve the format without breaking old manifests, and the
query helpers are what the experiment CLI and tests use to check cache
behaviour (e.g. "the second warm run performed zero recomputes").
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.farm.cache import default_cache_root

#: Bump on any backwards-incompatible manifest record change.
MANIFEST_SCHEMA_VERSION = 1


class ResultStore:
    """Reader/writer for the farm's append-only run manifest."""

    def __init__(self, path: Path | str | None = None):
        self.path = Path(path) if path is not None else default_cache_root() / "runs.jsonl"

    # -- writing ----------------------------------------------------------------

    def append_run(self, report) -> dict:
        """Record one completed sweep (a :class:`~repro.farm.scheduler.FarmReport`)."""
        record = {
            "schema": MANIFEST_SCHEMA_VERSION,
            "timestamp": time.time(),
            "mode": report.mode,
            "workers": report.workers,
            "wall_s": round(report.wall_s, 6),
            "cache": report.cache_stats.to_dict(),
            "jobs": [
                {
                    "key": outcome.key,
                    "job": outcome.job.describe(),
                    "status": outcome.status,
                    "wall_s": round(outcome.wall_s, 6),
                    "worker": outcome.worker,
                    **({"error": outcome.error} if outcome.error else {}),
                    **({"metrics": outcome.metrics} if outcome.metrics else {}),
                }
                for outcome in report.outcomes
            ],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    # -- querying ---------------------------------------------------------------

    def records(self) -> list[dict]:
        """All parseable manifest records, oldest first (bad lines skipped)."""
        if not self.path.is_file():
            return []
        records = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    def last_run(self) -> dict | None:
        records = self.records()
        return records[-1] if records else None

    @staticmethod
    def computed_jobs(record: dict) -> list[dict]:
        """Jobs in a record that actually recomputed (cache misses)."""
        return [j for j in record.get("jobs", []) if j.get("status") == "computed"]

    @staticmethod
    def hit_rate(record: dict) -> float:
        jobs = record.get("jobs", [])
        if not jobs:
            return 0.0
        hits = sum(1 for j in jobs if j.get("status") == "hit")
        return hits / len(jobs)
