"""The farm's one submission surface: ``FarmClient.submit(spec) -> future``.

Every way into the farm — ``run_sweep``, the ``risc1-farm`` CLI, the
``repro.farm serve`` HTTP server, the experiment harnesses — goes
through this module:

* :class:`JobSpec` / :class:`JobStatus` are the wire types.  Both are
  plain dataclasses with versioned JSON round-trips (like
  :class:`~repro.core.api.RunResult`), so a spec POSTed to the server,
  printed by the CLI, or stored in a manifest is the same document.
  Workload names use the shared ``NAME[:ARG]`` grammar
  (:func:`repro.workloads.parse_workload_spec`); every validation
  failure raises :class:`SpecError`, which carries a structured
  ``payload`` suitable for an HTTP 400 body — never a traceback.
* :class:`FarmClient` owns the execution strategy: serial in-process
  for ``workers <= 1``, a persistent :class:`~repro.farm.pool.WorkerPool`
  otherwise (forked once per client lifetime, batched dispatch), with
  automatic serial fallback when the pool cannot run.  ``submit`` is
  deduplicated in flight: two submissions of the same content-addressed
  key share one execution and one future.
* :meth:`FarmClient.sweep` is the batch entry point that
  ``repro.farm.scheduler.run_sweep`` (now a thin deprecation shim) and
  the CLIs call; it preserves the old scheduler's semantics exactly —
  dependency waves, serial fallback, manifest record, tracer events,
  bit-identical cache behaviour.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
import warnings

from repro.farm.cache import ArtifactCache, CacheStats, default_cache_root
from repro.farm.jobs import (
    MAX_INSTRUCTIONS,
    Job,
    _normalize_params,
    compile_job,
    execute_job,
    ir_job,
)
from repro.farm.pool import PoolBroken, WorkerPool, default_batch_size
from repro.farm.runner import cache_enabled, job_metrics, run_job

__all__ = [
    "API_SCHEMA_VERSION",
    "FarmClient",
    "FarmFuture",
    "JobFailed",
    "JobSpec",
    "JobStatus",
    "SpecError",
    "shared_client",
]

#: Bump on any backwards-incompatible JobSpec/JobStatus change.
API_SCHEMA_VERSION = 1

_KINDS = ("compile", "execute", "ir")
_TARGETS = ("risc1", "cisc")
_SCALES = ("default", "bench")

#: If a pool produces no outcome for this long while jobs are missing,
#: the sweep assumes the pool is wedged and falls back to serial.
_POOL_STALL_S = 300.0


class SpecError(ValueError):
    """An invalid job spec, with a structured JSON-able ``payload``."""

    def __init__(self, message: str, field: str | None = None, value=None):
        super().__init__(message)
        self.payload = {
            "error": {
                "message": message,
                **({"field": field} if field else {}),
                **({"value": value} if value is not None else {}),
            }
        }


class JobFailed(RuntimeError):
    """Raised by :meth:`FarmFuture.result` when the job failed."""

    def __init__(self, status: "JobStatus"):
        super().__init__(status.error or f"job {status.key} failed")
        self.status = status


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One unit of requested work, in the shared workload-spec grammar.

    ``workload`` is a ``NAME[:ARG]`` spec (``towers``, ``towers:12``,
    ``bit_matrix_k:N=8,REPS=2``).  The other fields mirror the farm's
    :class:`~repro.farm.jobs.Job` model.
    """

    workload: str
    kind: str = "execute"
    target: str = "risc1"
    scale: str = "default"
    max_instructions: int = MAX_INSTRUCTIONS
    #: inline mini-C source (e.g. fuzz-generated).  When set, ``workload``
    #: is a free-form label and the source must compile under RCC —
    #: checked here at the front door, so a bad program is a structured
    #: 400 (:class:`SpecError`), never a 500 from deep inside a worker.
    source: str | None = None

    def validate(self) -> "JobSpec":
        from repro.workloads import parse_workload_spec

        if self.kind not in _KINDS:
            raise SpecError(
                f"unknown job kind {self.kind!r} (choose from: {', '.join(_KINDS)})",
                field="kind",
                value=self.kind,
            )
        if self.target not in _TARGETS:
            raise SpecError(
                f"unknown target {self.target!r} (choose from: {', '.join(_TARGETS)})",
                field="target",
                value=self.target,
            )
        if self.scale not in _SCALES:
            raise SpecError(
                f"unknown scale {self.scale!r} (choose from: {', '.join(_SCALES)})",
                field="scale",
                value=self.scale,
            )
        if not isinstance(self.max_instructions, int) or self.max_instructions <= 0:
            raise SpecError(
                "max_instructions must be a positive integer",
                field="max_instructions",
                value=self.max_instructions,
            )
        if self.source is not None:
            if not isinstance(self.source, str) or not self.source.strip():
                raise SpecError(
                    "inline source must be non-empty text", field="source"
                )
            from repro.cc.driver import CompileError, compile_program

            try:
                compile_program(
                    self.source, target=self.target, filename=f"{self.workload}.c"
                )
            except CompileError as exc:
                raise SpecError(
                    f"inline source does not compile: {exc}",
                    field="source",
                    value=str(exc),
                ) from None
            return self
        try:
            parse_workload_spec(self.workload)
        except ValueError as exc:
            raise SpecError(str(exc), field="workload", value=self.workload) from None
        return self

    def to_job(self) -> Job:
        """The content-addressed farm job this spec names."""
        from repro.workloads import parse_workload_spec

        self.validate()
        if self.source is not None:
            return Job(
                self.kind,
                self.workload,
                self.target,
                self.scale,
                config=(("max_instructions", self.max_instructions),)
                if self.kind == "execute"
                else (),
                source=self.source,
            )
        name, overrides = parse_workload_spec(self.workload)
        params = _normalize_params(overrides)
        if self.kind == "compile":
            return compile_job(name, self.target, self.scale, params=params)
        if self.kind == "ir":
            return ir_job(name, self.scale, params=params)
        return execute_job(
            name,
            self.target,
            self.scale,
            max_instructions=self.max_instructions,
            params=params,
        )

    def to_dict(self) -> dict:
        payload = {
            "schema": API_SCHEMA_VERSION,
            "workload": self.workload,
            "kind": self.kind,
            "target": self.target,
            "scale": self.scale,
            "max_instructions": self.max_instructions,
        }
        if self.source is not None:
            payload["source"] = self.source
        return payload

    @classmethod
    def from_dict(cls, payload) -> "JobSpec":
        """Parse and validate an incoming JSON document into a spec."""
        if not isinstance(payload, dict):
            raise SpecError("job spec must be a JSON object", value=payload)
        schema = payload.get("schema", API_SCHEMA_VERSION)
        if schema != API_SCHEMA_VERSION:
            raise SpecError(
                f"unsupported spec schema {schema!r} "
                f"(this server speaks {API_SCHEMA_VERSION})",
                field="schema",
                value=schema,
            )
        unknown = set(payload) - {
            "schema", "workload", "kind", "target", "scale", "max_instructions",
            "source",
        }
        if unknown:
            raise SpecError(
                f"unknown spec field(s): {', '.join(sorted(unknown))}",
                field=sorted(unknown)[0],
            )
        if "workload" not in payload or not isinstance(payload["workload"], str):
            raise SpecError("spec requires a string 'workload'", field="workload")
        try:
            max_instructions = int(payload.get("max_instructions", MAX_INSTRUCTIONS))
        except (TypeError, ValueError):
            raise SpecError(
                "max_instructions must be an integer",
                field="max_instructions",
                value=payload.get("max_instructions"),
            ) from None
        source = payload.get("source")
        if source is not None and not isinstance(source, str):
            raise SpecError("source must be a string", field="source")
        return cls(
            workload=payload["workload"],
            kind=payload.get("kind", "execute"),
            target=payload.get("target", "risc1"),
            scale=payload.get("scale", "default"),
            max_instructions=max_instructions,
            source=source,
        ).validate()

    @classmethod
    def from_job(cls, job: Job) -> "JobSpec":
        workload = job.workload
        if job.params:
            workload += ":" + ",".join(f"{k}={v}" for k, v in job.params)
        return cls(
            workload=workload,
            kind=job.kind,
            target=job.target,
            scale=job.scale,
            max_instructions=dict(job.config).get("max_instructions", MAX_INSTRUCTIONS),
            source=job.source,
        )


@dataclasses.dataclass
class JobStatus:
    """Where one submission stands; JSON round-trips for the HTTP API."""

    key: str
    state: str  # "queued" | "running" | "done" | "failed"
    spec: dict | None = None  # the JobSpec.to_dict() that produced it
    status: str | None = None  # terminal disposition: "hit" | "computed" | "failed"
    wall_s: float | None = None
    worker: str | None = None
    error: str | None = None
    metrics: dict | None = None
    attempts: int = 1
    deduped: bool = False

    def to_dict(self) -> dict:
        return {"schema": API_SCHEMA_VERSION, **dataclasses.asdict(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "JobStatus":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})


class FarmFuture:
    """Completion handle for one submitted job."""

    def __init__(self, job: Job, spec: JobSpec | None = None):
        self.job = job
        self._event = threading.Event()
        self._callbacks: list = []
        self._lock = threading.Lock()
        self._status = JobStatus(
            key=job.key,
            state="queued",
            spec=(spec or JobSpec.from_job(job)).to_dict(),
        )
        self._value = None
        self._has_value = False
        self._cache_root = None

    def done(self) -> bool:
        return self._event.is_set()

    def status(self) -> JobStatus:
        """A snapshot of the job's current status."""
        with self._lock:
            return dataclasses.replace(self._status)

    def add_done_callback(self, fn) -> None:
        """``fn(future)`` on completion (immediately if already done)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def result(self, timeout: float | None = None):
        """The job's artifact value (blocks), or raises :class:`JobFailed`.

        For pool-executed jobs the value is read back from the
        content-addressed cache (a guaranteed hit for a finished job);
        when caching is disabled the job recomputes in-process.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(f"job {self.job.describe()} still {self._status.state}")
        if self._status.state == "failed":
            raise JobFailed(self.status())
        if not self._has_value:
            cache = ArtifactCache(self._cache_root) if self._cache_root else None
            self._value, _ = run_job(self.job, cache)
            self._has_value = True
        return self._value

    # -- resolution (client / pool side) ---------------------------------------

    def _mark_running(self, worker: str | None = None) -> None:
        with self._lock:
            if not self._event.is_set():
                self._status.state = "running"
                if worker:
                    self._status.worker = worker

    def _resolve(self, status, wall_s, worker, error=None, metrics=None, attempts=1,
                 value=None, has_value=False, cache_root=None) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._status.state = "failed" if status == "failed" else "done"
            self._status.status = status
            self._status.wall_s = round(wall_s, 6) if wall_s is not None else None
            self._status.worker = worker
            self._status.error = error
            self._status.metrics = metrics
            self._status.attempts = attempts
            self._value = value
            self._has_value = has_value
            self._cache_root = cache_root
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for fn in callbacks:
            try:
                fn(self)
            except Exception:
                import traceback

                traceback.print_exc()


class FarmClient:
    """The farm's front door: submit specs, collect futures, run sweeps.

    ``workers <= 1`` executes submissions serially in-process (the exact
    old serial path).  ``workers > 1`` lazily starts one persistent
    :class:`WorkerPool`, reused for every subsequent ``submit``/``sweep``
    until :meth:`close`; if the pool cannot start, the client falls back
    to serial execution and says so in sweep reports
    (``parallel+fallback``), never failing the work.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ArtifactCache | None = None,
        batch_size: int | None = None,
        retries: int = 1,
    ):
        self.workers = max(1, int(workers))
        if cache is None and cache_enabled():
            cache = ArtifactCache(default_cache_root())
        self.cache = cache
        self.batch_size = batch_size
        self.retries = retries
        self._pool: WorkerPool | None = None
        self._pool_broken = False
        self._lock = threading.Lock()
        self._inflight: dict[str, FarmFuture] = {}
        self.dedupe_hits = 0
        self._closed = False

    # -- pool management ---------------------------------------------------------

    @property
    def cache_root(self) -> str | None:
        return str(self.cache.root) if self.cache is not None else None

    def _ensure_pool(self) -> WorkerPool | None:
        """The running pool, or None when executing serially."""
        if self.workers <= 1 or self._pool_broken or self._closed:
            return None
        with self._lock:
            if self._pool is None:
                pool = WorkerPool(
                    self.workers,
                    cache_root=self.cache_root,
                    batch_size=self.batch_size,
                    retries=self.retries,
                )
                try:
                    pool.start()
                except Exception:
                    self._pool_broken = True
                    return None
                self._pool = pool
            return self._pool

    @property
    def mode(self) -> str:
        """How submissions execute right now: ``serial`` or ``pool``."""
        if self.workers <= 1 or self._pool_broken:
            return "serial"
        return "pool"

    def status(self) -> dict:
        """Machine-readable client/pool state (the serve /status payload)."""
        pool = self._pool
        return {
            "workers": self.workers,
            "mode": self.mode,
            "in_flight": len(self._inflight),
            "dedupe_hits": self.dedupe_hits,
            "cache_root": self.cache_root,
            "cache": self.cache.stats.to_dict() if self.cache else None,
            "pool": (
                {
                    "alive_workers": pool.alive_workers,
                    "batch_size": pool.batch_size,
                    "in_flight": pool.in_flight,
                    **pool.stats,
                }
                if pool is not None and pool._started
                else None
            ),
        }

    # -- single submission -------------------------------------------------------

    def submit(self, item: "JobSpec | Job | str") -> FarmFuture:
        """Submit one job; returns its future (shared if already in flight).

        ``item`` may be a :class:`JobSpec`, a raw :class:`Job`, or a
        bare ``NAME[:ARG]`` workload spec string (an execute job on
        RISC I).  Invalid specs raise :class:`SpecError` immediately.
        """
        if self._closed:
            raise RuntimeError("client is closed")
        if isinstance(item, str):
            item = JobSpec(workload=item)
        if isinstance(item, JobSpec):
            spec, job = item, item.to_job()
        else:
            spec, job = JobSpec.from_job(item), item
        with self._lock:
            existing = self._inflight.get(job.key)
            if existing is not None and not existing.done():
                self.dedupe_hits += 1
                existing._status.deduped = True
                return existing
            future = FarmFuture(job, spec)
            self._inflight[job.key] = future
        pool = self._ensure_pool()
        if pool is None:
            self._run_serial(future)
            return future
        try:
            future._mark_running()
            pool.submit([job], self._pool_callback(future), batch_size=1)
        except PoolBroken:
            self._pool_broken = True
            self._run_serial(future)
        return future

    def _pool_callback(self, future: FarmFuture):
        def callback(outcome) -> None:
            if self.cache is not None and outcome.cache:
                self.cache.stats.merge(CacheStats(**outcome.cache))
            future._resolve(
                outcome.status,
                outcome.wall_s,
                outcome.worker,
                error=outcome.error,
                metrics=outcome.metrics,
                attempts=outcome.attempts,
                cache_root=self.cache_root,
            )
            with self._lock:
                if self._inflight.get(future.job.key) is future:
                    del self._inflight[future.job.key]

        return callback

    def _run_serial(self, future: FarmFuture) -> None:
        job = future.job
        future._mark_running("serial")
        started = time.perf_counter()
        try:
            value, hit = run_job(job, self.cache)
            future._resolve(
                "hit" if hit else "computed",
                time.perf_counter() - started,
                "serial",
                metrics=job_metrics(job, value),
                value=value,
                has_value=True,
            )
        except Exception as exc:
            future._resolve(
                "failed",
                time.perf_counter() - started,
                "serial",
                error=f"{type(exc).__name__}: {exc}",
            )
        with self._lock:
            if self._inflight.get(job.key) is future:
                del self._inflight[job.key]

    # -- batch sweeps ------------------------------------------------------------

    def sweep(
        self,
        jobs: list[Job],
        manifest: bool = True,
        store=None,
        tracer=None,
        batch_size: int | None = None,
    ):
        """Run a dependency-ordered sweep; returns a ``FarmReport``.

        Semantics are identical to the historical ``run_sweep``: compile
        waves precede the runs that read them, outcomes stream through
        the optional ``tracer``, the report lands in the manifest, and
        any pool failure degrades to serial execution of whatever has
        not finished (``mode="parallel+fallback"``).
        """
        from repro.farm.results import ResultStore
        from repro.farm.scheduler import FarmReport, JobOutcome, _job_waves, _serial_outcome

        if tracer is not None and not getattr(tracer, "enabled", True):
            tracer = None
        started = time.perf_counter()
        outcomes: list[JobOutcome] = []
        totals = CacheStats()
        mode = "serial" if self.workers <= 1 else "parallel"

        for wave in _job_waves(jobs):
            pool = self._ensure_pool() if mode == "parallel" else None
            if pool is None:
                if mode == "parallel":
                    mode = "parallel+fallback"
                for job in wave:
                    if tracer is not None:
                        tracer.job_start(job.key, job.describe())
                    outcome = _serial_outcome(job, self.cache)
                    if tracer is not None:
                        tracer.job_finish(
                            outcome.key, job.describe(), outcome.status, outcome.wall_s
                        )
                    outcomes.append(outcome)
                continue

            incoming: "queue.Queue" = queue.Queue()
            by_key = {job.key: job for job in wave}
            try:
                pool.submit(
                    list(by_key.values()),
                    incoming.put,
                    batch_size=batch_size or self.batch_size,
                )
            except PoolBroken:
                self._pool_broken = True
                mode = "parallel+fallback"
                for job in wave:
                    if tracer is not None:
                        tracer.job_start(job.key, job.describe())
                    outcome = _serial_outcome(job, self.cache)
                    if tracer is not None:
                        tracer.job_finish(
                            outcome.key, job.describe(), outcome.status, outcome.wall_s
                        )
                    outcomes.append(outcome)
                continue
            if tracer is not None:
                for job in wave:
                    tracer.job_start(job.key, job.describe())
            pending = set(by_key)
            last_progress = time.monotonic()
            while pending:
                try:
                    result = incoming.get(timeout=0.5)
                except queue.Empty:
                    if time.monotonic() - last_progress > _POOL_STALL_S:
                        # wedged pool: finish the stragglers serially
                        self._pool_broken = True
                        mode = "parallel+fallback"
                        for key in sorted(pending):
                            outcome = _serial_outcome(by_key[key], self.cache)
                            if tracer is not None:
                                tracer.job_finish(
                                    outcome.key,
                                    by_key[key].describe(),
                                    outcome.status,
                                    outcome.wall_s,
                                )
                            outcomes.append(outcome)
                        pending.clear()
                    continue
                last_progress = time.monotonic()
                if result.key not in pending:
                    continue
                pending.discard(result.key)
                job = by_key[result.key]
                outcome = JobOutcome(
                    job,
                    result.key,
                    result.status,
                    result.wall_s,
                    result.worker,
                    result.error,
                    result.metrics,
                )
                outcomes.append(outcome)
                if tracer is not None:
                    tracer.job_finish(
                        outcome.key, job.describe(), outcome.status, outcome.wall_s
                    )
                if result.cache:
                    totals.merge(CacheStats(**result.cache))

        if self.cache is not None:
            totals.merge(self.cache.stats)
        report = FarmReport(
            mode, self.workers, time.perf_counter() - started, outcomes, totals
        )
        if manifest and (store is not None or self.cache is not None):
            if store is None:
                store = ResultStore(self.cache.root / "runs.jsonl")
            try:
                store.append_run(report)
            except OSError:
                pass  # an unwritable manifest must not fail a finished sweep
        return report

    # -- lifecycle ---------------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for in-flight pool work to finish (used by serve shutdown)."""
        pool = self._pool
        if pool is None:
            return True
        return pool.drain(timeout)

    def close(self) -> None:
        """Shut the pool down (merging ledger shards) and refuse new work."""
        self._closed = True
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "FarmClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


_shared: FarmClient | None = None
_shared_lock = threading.Lock()


def shared_client(workers: int = 1) -> FarmClient:
    """One process-wide serial-or-better client, grown on demand.

    The experiment harnesses route their compile/execute/IR helpers
    through this client so every in-process consumer shares the same
    in-flight dedupe map; asking for more workers than the current
    shared client has replaces it with a bigger one.
    """
    global _shared
    with _shared_lock:
        if _shared is None or _shared._closed or _shared.workers < workers:
            previous, _shared = _shared, FarmClient(workers=workers)
            if previous is not None:
                previous.close()
        return _shared
