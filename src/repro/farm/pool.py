"""Persistent worker pool: fork once, dispatch batches, survive crashes.

The old scheduler paid a :class:`~concurrent.futures.ProcessPoolExecutor`
per sweep and a pickled future round-trip per job — on ~2s workloads the
overhead swamped the parallelism (``BENCH_farm.json`` recorded a 0.93×
"speedup").  This pool inverts the cost model:

* **Workers are forked once per pool lifetime** (one ``run_sweep``, or
  the whole life of a ``repro.farm serve`` process).  Before forking,
  the parent *preloads* the toolchain — compiler, both simulators, the
  IR VM, the content-addressed toolchain fingerprint and every workload
  source — so each child inherits warm module state and read-only
  program artifacts through copy-on-write pages instead of re-importing
  and re-hashing per process.
* **Jobs travel in batches.**  One queue message carries many jobs; one
  small outcome record returns per job as it finishes (so progress
  streams), plus a batch-completion marker.  Queue round-trips are paid
  per batch, not per job.
* **Crashes are survivable.**  Each worker's stderr is redirected to a
  per-worker file.  If a worker dies mid-batch, the parent re-enqueues
  the batch's unfinished jobs (once, by default), respawns a
  replacement worker, and — when the retry budget is exhausted —
  reports the job *failed cleanly* with the dead worker's stderr tail
  attached, never raising out of the sweep.
* **The run ledger shards per worker.**  When ``$REPRO_LEDGER`` is
  active each worker appends to its own ``shards/<worker>.jsonl``
  (no cross-process interleaving, no per-record fsync contention); the
  parent merges the shards into the main ledger on :meth:`close` —
  idempotently, so a crash between merges never duplicates records.

The pool degrades gracefully: if ``multiprocessing`` cannot start at
all, :meth:`start` raises and callers (``FarmClient``) fall back to
serial in-process execution, exactly like the old scheduler.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import sys
import tempfile
import threading
import time
import traceback
from pathlib import Path

__all__ = ["PoolBroken", "PoolOutcome", "WorkerPool", "default_batch_size"]

#: How long the collector waits on the result queue before checking
#: worker liveness (seconds).
_POLL_S = 0.1

#: How many trailing stderr bytes a crash report carries.
_STDERR_TAIL = 2000


class PoolBroken(RuntimeError):
    """The pool cannot execute jobs (failed start or no live workers)."""


@dataclasses.dataclass
class PoolOutcome:
    """One job's result as reported by (or synthesized for) a worker."""

    key: str
    status: str  # "hit" | "computed" | "failed"
    wall_s: float
    worker: str  # "pool:<id>" or "pool" for synthesized crash failures
    error: str | None = None
    metrics: dict | None = None
    #: per-job cache accounting delta (CacheStats.to_dict form) or None
    cache: dict | None = None
    #: 1 for a first-try result, 2+ after crash retries
    attempts: int = 1


def default_batch_size(jobs: int, workers: int) -> int:
    """Batch so each worker sees ~2 dispatches per wave, bounded [1, 8].

    Two dispatches per worker keeps the tail balanced (a straggler batch
    costs at most half a worker's share) while paying queue round-trips
    per *batch* rather than per job.
    """
    if jobs <= 0 or workers <= 0:
        return 1
    return max(1, min(8, (jobs + 2 * workers - 1) // (2 * workers)))


def _preload_toolchain() -> None:
    """Warm everything a worker needs before (or right after) forking.

    Imports the compiler driver, both simulators and the IR VM, then
    computes the toolchain fingerprint and every workload's source
    digest — the expensive per-process set-up the old executor paid in
    every worker, every sweep.
    """
    import repro.baselines.vax.cpu  # noqa: F401
    import repro.cc.driver  # noqa: F401
    import repro.cc.irvm  # noqa: F401
    import repro.core.cpu  # noqa: F401
    import repro.core.engine  # noqa: F401
    from repro.farm.jobs import _source_digest, toolchain_fingerprint
    from repro.workloads import ALL_WORKLOADS

    toolchain_fingerprint()
    for name in ALL_WORKLOADS:
        try:
            _source_digest(name, "default")
        except Exception:  # a missing program file fails the job, not the pool
            pass


def _maybe_test_crash(job) -> None:
    """Test-only crash injection, gated by ``$REPRO_FARM_TEST_CRASH``.

    The value is a substring matched against ``job.describe()``; a match
    kills the worker with ``os._exit`` (no cleanup — a real crash).  If
    ``$REPRO_FARM_TEST_CRASH_ONCE`` names a marker path, the crash
    happens only while the marker does not exist (crash once, then
    succeed on retry).
    """
    needle = os.environ.get("REPRO_FARM_TEST_CRASH")
    if not needle or needle not in job.describe():
        return
    marker = os.environ.get("REPRO_FARM_TEST_CRASH_ONCE")
    if marker:
        if os.path.exists(marker):
            return
        Path(marker).write_text("crashed once\n", encoding="utf-8")
    print(f"simulated worker crash while running {job.describe()}", file=sys.stderr)
    sys.stderr.flush()
    os._exit(66)


def _worker_main(worker_id, task_q, result_q, cache_root, stderr_path, shard):
    """Worker process entry: pull batches until the stop sentinel."""
    try:
        handle = open(stderr_path, "a", buffering=1, encoding="utf-8")
        os.dup2(handle.fileno(), 2)
        sys.stderr = handle
    except OSError:
        pass  # no stderr capture, but the worker still works
    if shard:
        # every ledger append in this process lands in our own shard
        os.environ["REPRO_LEDGER_SHARD"] = shard
    _preload_toolchain()  # no-op under fork (inherited warm), real under spawn

    from repro.farm.cache import ArtifactCache, CacheStats
    from repro.farm.runner import job_metrics, run_job

    cache = ArtifactCache(cache_root) if cache_root is not None else None
    result_q.put(("ready", None, worker_id, None, None))
    while True:
        message = task_q.get()
        if message is None:
            break
        batch_id, jobs = message
        result_q.put(("taken", batch_id, worker_id, None, None))
        for job in jobs:
            _maybe_test_crash(job)
            before = dataclasses.replace(cache.stats) if cache is not None else None
            started = time.perf_counter()
            metrics = error = None
            try:
                value, hit = run_job(job, cache)
                status = "hit" if hit else "computed"
                metrics = job_metrics(job, value)
            except Exception:
                status = "failed"
                error = traceback.format_exc(limit=4)
            delta = None
            if cache is not None:
                delta = CacheStats(
                    *(
                        getattr(cache.stats, f.name) - getattr(before, f.name)
                        for f in dataclasses.fields(CacheStats)
                    )
                ).to_dict()
            record = {
                "status": status,
                "wall_s": time.perf_counter() - started,
                "error": error,
                "metrics": metrics,
                "cache": delta,
            }
            result_q.put(("outcome", batch_id, worker_id, job.key, record))
        result_q.put(("batch_done", batch_id, worker_id, None, None))
    result_q.put(("bye", None, worker_id, None, None))


class _Batch:
    """Parent-side bookkeeping for one dispatched batch."""

    __slots__ = ("id", "jobs", "callback", "taken_by", "done", "attempts")

    def __init__(self, batch_id, jobs, callback, attempts):
        self.id = batch_id
        self.jobs = {job.key: job for job in jobs}
        self.callback = callback
        self.taken_by = None  # worker id once a worker announces it
        self.done: set[str] = set()
        self.attempts = attempts  # key -> attempt count for these jobs

    @property
    def complete(self) -> bool:
        return self.done >= set(self.jobs)


class WorkerPool:
    """A persistent, crash-tolerant pool of preloaded farm workers."""

    def __init__(
        self,
        workers: int,
        cache_root: str | None = None,
        batch_size: int | None = None,
        retries: int = 1,
        ledger_shards: bool = True,
    ):
        self.workers = max(1, int(workers))
        self.cache_root = cache_root
        self.batch_size = batch_size
        self.retries = max(0, int(retries))
        self.ledger_shards = ledger_shards
        self._context = None
        self._task_q = None
        self._result_q = None
        self._procs: dict[int, multiprocessing.Process] = {}
        self._stderr: dict[int, Path] = {}
        self._stderr_dir: tempfile.TemporaryDirectory | None = None
        self._batches: dict[int, _Batch] = {}
        self._next_batch = 0
        self._next_worker = 0
        self._lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        self._collector: threading.Thread | None = None
        self._closing = False
        self._started = False
        #: pool-lifetime accounting, surfaced by /status
        self.stats = {
            "batches_dispatched": 0,
            "jobs_dispatched": 0,
            "jobs_completed": 0,
            "jobs_retried": 0,
            "worker_crashes": 0,
            "workers_respawned": 0,
        }

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Preload the toolchain, fork the workers, start the collector.

        Raises (so callers can fall back to serial) if the platform
        cannot start worker processes at all.
        """
        if self._started:
            return self
        _preload_toolchain()  # children inherit all of this through fork
        method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        self._context = multiprocessing.get_context(method)
        # SimpleQueue writes synchronously to the pipe (no feeder thread),
        # so a worker's "taken" announcement is on the wire before it runs
        # the batch — a hard crash can never hide which batch it owned
        self._task_q = self._context.SimpleQueue()
        self._result_q = self._context.SimpleQueue()
        self._stderr_dir = tempfile.TemporaryDirectory(prefix="repro-farm-pool-")
        ready = []
        for _ in range(self.workers):
            self._spawn_worker()
        # wait for every worker to check in, so a broken multiprocessing
        # setup surfaces here, not mid-sweep
        deadline = time.monotonic() + 30.0
        while len(ready) < self.workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._terminate_all()
                raise PoolBroken("workers failed to start in time")
            message = self._result_get(timeout=min(remaining, 0.5))
            if message is None:
                if not any(p.is_alive() for p in self._procs.values()):
                    self._terminate_all()
                    raise PoolBroken("workers died during startup")
                continue
            if message[0] == "ready":
                ready.append(message[2])
        self._started = True
        self._collector = threading.Thread(
            target=self._collect, name="farm-pool-collector", daemon=True
        )
        self._collector.start()
        return self

    def _spawn_worker(self) -> int:
        worker_id = self._next_worker
        self._next_worker += 1
        stderr_path = Path(self._stderr_dir.name) / f"worker-{worker_id}.stderr"
        shard = f"worker-{worker_id}" if self.ledger_shards else None
        proc = self._context.Process(
            target=_worker_main,
            args=(
                worker_id,
                self._task_q,
                self._result_q,
                self.cache_root,
                str(stderr_path),
                shard,
            ),
            daemon=True,
            name=f"farm-worker-{worker_id}",
        )
        proc.start()
        self._procs[worker_id] = proc
        self._stderr[worker_id] = stderr_path
        return worker_id

    @property
    def alive_workers(self) -> int:
        return sum(1 for p in self._procs.values() if p.is_alive())

    # -- submission --------------------------------------------------------------

    def submit(self, jobs, callback, batch_size: int | None = None) -> int:
        """Dispatch ``jobs`` in batches; ``callback(PoolOutcome)`` per job.

        Callbacks fire on the collector thread as outcomes stream back.
        Returns the number of batches dispatched.
        """
        if not self._started or self._closing:
            raise PoolBroken("pool is not running")
        jobs = list(jobs)
        if not jobs:
            return 0
        size = batch_size or self.batch_size or default_batch_size(
            len(jobs), self.workers
        )
        dispatched = 0
        with self._lock:
            self._idle.clear()
            for start in range(0, len(jobs), size):
                chunk = jobs[start : start + size]
                self._enqueue_batch(chunk, callback, {j.key: 1 for j in chunk})
                dispatched += 1
        return dispatched

    def _enqueue_batch(self, jobs, callback, attempts) -> None:
        """Must hold ``self._lock``."""
        batch = _Batch(self._next_batch, jobs, callback, attempts)
        self._next_batch += 1
        self._batches[batch.id] = batch
        self.stats["batches_dispatched"] += 1
        self.stats["jobs_dispatched"] += len(jobs)
        self._task_q.put((batch.id, list(jobs)))

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until every dispatched batch has completed."""
        return self._idle.wait(timeout)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return sum(
                len(b.jobs) - len(b.done) for b in self._batches.values()
            )

    # -- the collector thread ----------------------------------------------------

    def _result_get(self, timeout: float):
        """One result message, or None after ``timeout`` seconds.

        ``SimpleQueue`` has no timed ``get``; its reader connection does
        expose ``poll``, and this pool is the queue's only reader, so a
        positive poll guarantees a non-blocking ``get``.
        """
        try:
            if not self._result_q._reader.poll(timeout):
                return None
        except (OSError, ValueError):
            return None
        return self._result_q.get()

    def _collect(self) -> None:
        while True:
            message = self._result_get(_POLL_S)
            if message is None:
                if self._closing and not self._batches:
                    return
                self._reap_crashed_workers()
                continue
            kind, batch_id, worker_id, key, record = message
            if kind == "bye":
                if self._closing and self._all_stopped():
                    return
                continue
            if kind == "ready":
                continue
            with self._lock:
                batch = self._batches.get(batch_id)
                if batch is None:
                    continue
                if kind == "taken":
                    batch.taken_by = worker_id
                    continue
                if kind == "outcome":
                    if key in batch.done:
                        continue  # duplicate after a retry race
                    batch.done.add(key)
                    outcome = PoolOutcome(
                        key=key,
                        status=record["status"],
                        wall_s=record["wall_s"],
                        worker=f"pool:{worker_id}",
                        error=record["error"],
                        metrics=record["metrics"],
                        cache=record["cache"],
                        attempts=batch.attempts.get(key, 1),
                    )
                    callback = batch.callback
                elif kind == "batch_done":
                    if batch.complete:
                        del self._batches[batch_id]
                    if not self._batches:
                        self._idle.set()
                    continue
                else:
                    continue
            # fire outside the lock: callbacks may touch the pool
            self.stats["jobs_completed"] += 1
            try:
                callback(outcome)
            except Exception:
                traceback.print_exc()

    def _all_stopped(self) -> bool:
        return all(not p.is_alive() for p in self._procs.values())

    def _reap_crashed_workers(self) -> None:
        """Detect dead workers; requeue or fail their lost jobs; respawn."""
        crashed = [
            (wid, proc)
            for wid, proc in list(self._procs.items())
            if not proc.is_alive() and proc.exitcode not in (0, None)
        ]
        if not crashed:
            return
        for worker_id, proc in crashed:
            del self._procs[worker_id]
            self.stats["worker_crashes"] += 1
            tail = self._stderr_tail(worker_id)
            failures = []
            with self._lock:
                for batch in [
                    b for b in self._batches.values() if b.taken_by == worker_id
                ]:
                    del self._batches[batch.id]
                    if batch.complete:  # died between the last outcome and
                        continue        # its batch_done marker — nothing lost
                    lost = [
                        (key, job)
                        for key, job in batch.jobs.items()
                        if key not in batch.done
                    ]
                    retry_jobs, retry_attempts = [], {}
                    for key, job in lost:
                        attempt = batch.attempts.get(key, 1)
                        if attempt <= self.retries:
                            retry_jobs.append(job)
                            retry_attempts[key] = attempt + 1
                            self.stats["jobs_retried"] += 1
                        else:
                            failures.append(
                                (
                                    batch.callback,
                                    PoolOutcome(
                                        key=key,
                                        status="failed",
                                        wall_s=0.0,
                                        worker="pool",
                                        error=(
                                            f"worker {worker_id} crashed "
                                            f"(exit code {proc.exitcode}) while "
                                            f"running {job.describe()} "
                                            f"(attempt {attempt}); stderr tail:\n"
                                            f"{tail}"
                                        ),
                                        attempts=attempt,
                                    ),
                                )
                            )
                    if retry_jobs:
                        self._enqueue_batch(retry_jobs, batch.callback, retry_attempts)
                if not self._batches:
                    self._idle.set()
            if not self._closing:
                self._spawn_worker()
                self.stats["workers_respawned"] += 1
            for callback, outcome in failures:
                self.stats["jobs_completed"] += 1
                try:
                    callback(outcome)
                except Exception:
                    traceback.print_exc()

    def _stderr_tail(self, worker_id: int) -> str:
        path = self._stderr.get(worker_id)
        try:
            data = path.read_bytes() if path is not None else b""
        except OSError:
            data = b""
        return data[-_STDERR_TAIL:].decode("utf-8", "replace").strip() or "(empty)"

    # -- shutdown ----------------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Stop accepting work and wait for in-flight batches to finish."""
        self._closing = True
        return self.wait_idle(timeout)

    def close(self, timeout: float = 10.0) -> None:
        """Drain, stop the workers, merge ledger shards, release resources."""
        if not self._started:
            return
        self.drain(timeout)
        self._closing = True
        for _ in self._procs:
            try:
                self._task_q.put(None)
            except (OSError, ValueError):
                break
        deadline = time.monotonic() + timeout
        for proc in self._procs.values():
            proc.join(max(0.0, deadline - time.monotonic()))
        self._terminate_all()
        if self._collector is not None:
            self._collector.join(timeout=1.0)
        self._merge_ledger_shards()
        if self._stderr_dir is not None:
            self._stderr_dir.cleanup()
            self._stderr_dir = None
        for q in (self._task_q, self._result_q):
            try:
                q.close()
            except (OSError, AttributeError):
                pass
        self._started = False

    def _terminate_all(self) -> None:
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs.clear()

    def _merge_ledger_shards(self) -> None:
        """Fold per-worker ledger shards into the main ledger (idempotent)."""
        if not self.ledger_shards:
            return
        try:
            from repro.obs.ledger import resolve_ledger

            ledger = resolve_ledger()
            if ledger is not None:
                ledger.merge_shards()
        except Exception as exc:
            print(f"warning: ledger shard merge failed: {exc}", file=sys.stderr)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
