"""Sweep orchestration types and the legacy ``run_sweep`` entry point.

The scheduling itself now lives in :class:`repro.farm.api.FarmClient`
(persistent worker pool, batched dispatch, serial fallback); this module
keeps the report types every manifest/test/benchmark consumes —
:class:`JobOutcome` and :class:`FarmReport` — plus the dependency-wave
ordering and the in-process serial executor the client shares.

:func:`run_sweep` survives as a thin compatibility shim that constructs
a one-shot client, emits a :class:`DeprecationWarning`, and preserves
the historical semantics exactly (dependency waves, content-addressed
cache behaviour, manifest record, ``parallel+fallback`` degradation).
New code should hold a :class:`~repro.farm.api.FarmClient` instead — it
keeps its worker pool alive across sweeps and exposes ``submit`` for
single jobs.
"""

from __future__ import annotations

import dataclasses
import time
import warnings

from repro.farm.cache import ArtifactCache, CacheStats
from repro.farm.jobs import Job, dependency
from repro.farm.runner import job_metrics, run_job


@dataclasses.dataclass
class JobOutcome:
    """What happened to one job during a sweep."""

    job: Job
    key: str
    status: str  # "hit" | "computed" | "failed"
    wall_s: float
    worker: str  # "serial", or "pool:<worker id>" for pool execution
    error: str | None = None
    #: small per-job measurement record (cycles, instructions, code size)
    metrics: dict | None = None


@dataclasses.dataclass
class FarmReport:
    """Everything one sweep invocation did."""

    mode: str  # "serial" | "parallel" | "parallel+fallback"
    workers: int
    wall_s: float
    outcomes: list[JobOutcome]
    cache_stats: CacheStats

    @property
    def counts(self) -> dict[str, int]:
        counts = {"hit": 0, "computed": 0, "failed": 0}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    def summary(self) -> str:
        c = self.counts
        return (
            f"{len(self.outcomes)} jobs in {self.wall_s:.2f}s "
            f"({self.mode}, {self.workers} worker{'s' if self.workers != 1 else ''}): "
            f"{c['hit']} cache hits, {c['computed']} computed, {c['failed']} failed"
        )


def _job_waves(jobs: list[Job]) -> list[list[Job]]:
    """Dependency-ordered waves: producers before the jobs that read them."""
    remaining = list(dict.fromkeys(jobs))  # preserve order, drop duplicates
    keys = {job.key for job in remaining}
    waves: list[list[Job]] = []
    done: set[str] = set()
    while remaining:
        wave = []
        for job in remaining:
            dep = dependency(job)
            if dep is None or dep.key in done or dep.key not in keys:
                wave.append(job)
        if not wave:  # cycle cannot happen with this job model, but stay safe
            wave = remaining[:]
        done.update(job.key for job in wave)
        remaining = [job for job in remaining if job.key not in done]
        waves.append(wave)
    return waves


def _serial_outcome(job: Job, cache: ArtifactCache | None) -> JobOutcome:
    started = time.perf_counter()
    metrics = None
    try:
        value, hit = run_job(job, cache)
        status, error = ("hit" if hit else "computed"), None
        metrics = job_metrics(job, value)
    except Exception as exc:
        status, error = "failed", f"{type(exc).__name__}: {exc}"
    return JobOutcome(
        job, job.key, status, time.perf_counter() - started, "serial", error, metrics
    )


def run_sweep(
    jobs: list[Job],
    workers: int = 1,
    cache: ArtifactCache | None = None,
    manifest: bool = True,
    store=None,
    tracer=None,
) -> FarmReport:
    """Run a batch of jobs, optionally in parallel, and record the manifest.

    .. deprecated::
        ``run_sweep`` constructs (and tears down) a fresh worker pool
        per call.  Hold a :class:`repro.farm.api.FarmClient` instead —
        its pool is forked once and reused across sweeps and single
        submissions — and call :meth:`FarmClient.sweep`.
    """
    from repro.farm.api import FarmClient

    warnings.warn(
        "run_sweep() is deprecated; use repro.farm.api.FarmClient.sweep() "
        "(a persistent client reuses its worker pool across sweeps)",
        DeprecationWarning,
        stacklevel=2,
    )
    with FarmClient(workers=workers, cache=cache) as client:
        return client.sweep(jobs, manifest=manifest, store=store, tracer=tracer)
