"""Multiprocess job scheduler for the simulation farm.

Jobs are fanned across a :class:`concurrent.futures.ProcessPoolExecutor`
in dependency order — all compile jobs first, then the execution/IR jobs
that consume their artifacts through the shared on-disk cache.  Workers
return small outcome records (status + wall time + cache accounting), not
the artifacts themselves; the artifacts land in the content-addressed
cache where the parent (and every later process) reads them back.

If the pool cannot be used at all — a sandbox without working
``multiprocessing``, a broken worker, an unpicklable job — the scheduler
degrades gracefully: every job not yet completed runs serially in-process
and the report says so, rather than the sweep failing.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import time
import traceback

from repro.farm.cache import ArtifactCache, CacheStats, default_cache_root
from repro.farm.jobs import Job, dependency
from repro.farm.results import ResultStore
from repro.farm.runner import cache_enabled, job_metrics, run_job


@dataclasses.dataclass
class JobOutcome:
    """What happened to one job during a sweep."""

    job: Job
    key: str
    status: str  # "hit" | "computed" | "failed"
    wall_s: float
    worker: str  # "serial" or "pool"
    error: str | None = None
    #: small per-job measurement record (cycles, instructions, code size)
    metrics: dict | None = None


@dataclasses.dataclass
class FarmReport:
    """Everything one :func:`run_sweep` invocation did."""

    mode: str  # "serial" | "parallel" | "parallel+fallback"
    workers: int
    wall_s: float
    outcomes: list[JobOutcome]
    cache_stats: CacheStats

    @property
    def counts(self) -> dict[str, int]:
        counts = {"hit": 0, "computed": 0, "failed": 0}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    def summary(self) -> str:
        c = self.counts
        return (
            f"{len(self.outcomes)} jobs in {self.wall_s:.2f}s "
            f"({self.mode}, {self.workers} worker{'s' if self.workers != 1 else ''}): "
            f"{c['hit']} cache hits, {c['computed']} computed, {c['failed']} failed"
        )


def _job_waves(jobs: list[Job]) -> list[list[Job]]:
    """Dependency-ordered waves: producers before the jobs that read them."""
    remaining = list(dict.fromkeys(jobs))  # preserve order, drop duplicates
    keys = {job.key for job in remaining}
    waves: list[list[Job]] = []
    done: set[str] = set()
    while remaining:
        wave = []
        for job in remaining:
            dep = dependency(job)
            if dep is None or dep.key in done or dep.key not in keys:
                wave.append(job)
        if not wave:  # cycle cannot happen with this job model, but stay safe
            wave = remaining[:]
        done.update(job.key for job in wave)
        remaining = [job for job in remaining if job.key not in done]
        waves.append(wave)
    return waves


def _worker_execute(job: Job, cache_root: str | None) -> dict:
    """Pool entry point: run one job, report outcome + cache accounting."""
    cache = ArtifactCache(cache_root) if cache_root is not None else None
    started = time.perf_counter()
    metrics = None
    try:
        value, hit = run_job(job, cache)
        status = "hit" if hit else "computed"
        error = None
        metrics = job_metrics(job, value)
    except Exception:
        status = "failed"
        error = traceback.format_exc(limit=4)
    return {
        "status": status,
        "wall_s": time.perf_counter() - started,
        "error": error,
        "metrics": metrics,
        "cache": cache.stats.to_dict() if cache is not None else None,
    }


def _serial_outcome(job: Job, cache: ArtifactCache | None) -> JobOutcome:
    started = time.perf_counter()
    metrics = None
    try:
        value, hit = run_job(job, cache)
        status, error = ("hit" if hit else "computed"), None
        metrics = job_metrics(job, value)
    except Exception as exc:
        status, error = "failed", f"{type(exc).__name__}: {exc}"
    return JobOutcome(
        job, job.key, status, time.perf_counter() - started, "serial", error, metrics
    )


def run_sweep(
    jobs: list[Job],
    workers: int = 1,
    cache: ArtifactCache | None = None,
    manifest: bool = True,
    store: ResultStore | None = None,
    tracer=None,
) -> FarmReport:
    """Run a batch of jobs, optionally in parallel, and record the manifest.

    ``workers <= 1`` runs everything serially in-process.  With more
    workers, jobs fan across a process pool in dependency waves; any pool
    failure falls back to serial execution of the unfinished jobs.

    An optional ``tracer`` records JOB_START/JOB_FINISH events in the
    parent process (workers never see it — it is not sent across the
    pool), giving a wall-clock timeline of the sweep.
    """
    if cache is None and cache_enabled():
        cache = ArtifactCache(default_cache_root())
    cache_root = str(cache.root) if cache is not None else None
    if tracer is not None and not getattr(tracer, "enabled", True):
        tracer = None

    started = time.perf_counter()
    outcomes: list[JobOutcome] = []
    totals = CacheStats()
    mode = "serial" if workers <= 1 else "parallel"

    pool: concurrent.futures.ProcessPoolExecutor | None = None
    try:
        for wave in _job_waves(jobs):
            if workers <= 1 or mode == "parallel+fallback":
                for job in wave:
                    if tracer is not None:
                        tracer.job_start(job.key, job.describe())
                    outcome = _serial_outcome(job, cache)
                    if tracer is not None:
                        tracer.job_finish(
                            outcome.key, job.describe(), outcome.status, outcome.wall_s
                        )
                    outcomes.append(outcome)
                continue
            try:
                if pool is None:
                    pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
                futures = {pool.submit(_worker_execute, job, cache_root): job for job in wave}
                if tracer is not None:
                    for job in wave:
                        tracer.job_start(job.key, job.describe())
                for future in concurrent.futures.as_completed(futures):
                    job = futures[future]
                    record = future.result()
                    outcome = JobOutcome(
                        job,
                        job.key,
                        record["status"],
                        record["wall_s"],
                        "pool",
                        record["error"],
                        record.get("metrics"),
                    )
                    outcomes.append(outcome)
                    if tracer is not None:
                        tracer.job_finish(
                            outcome.key, job.describe(), outcome.status, outcome.wall_s
                        )
                    if record["cache"]:
                        totals.merge(CacheStats(**record["cache"]))
            except Exception:
                # pool machinery itself failed — finish this wave (and the
                # rest of the sweep) serially rather than losing the run
                mode = "parallel+fallback"
                finished = {outcome.key for outcome in outcomes}
                for job in wave:
                    if job.key in finished:
                        continue
                    outcome = _serial_outcome(job, cache)
                    if tracer is not None:
                        tracer.job_finish(
                            outcome.key, job.describe(), outcome.status, outcome.wall_s
                        )
                    outcomes.append(outcome)
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    if cache is not None:
        totals.merge(cache.stats)
    report = FarmReport(mode, workers, time.perf_counter() - started, outcomes, totals)

    if manifest and (store is not None or cache is not None):
        if store is None:
            store = ResultStore(cache.root / "runs.jsonl")
        try:
            store.append_run(report)
        except OSError:
            pass  # an unwritable manifest must not fail a finished sweep
    return report
