"""``python -m repro.farm`` — drive the simulation farm from the shell.

Subcommands::

    run     execute a (workload x target x scale) sweep, parallel and cached
    serve   async HTTP/JSON front door sharing one warm worker pool
    status  show cache contents and the most recent run manifest record
    gc      evict least-recently-used artifacts down to a size budget
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.farm.api import FarmClient, SpecError
from repro.farm.cache import ArtifactCache, default_cache_root
from repro.farm.jobs import sweep_jobs
from repro.farm.results import ResultStore
from repro.workloads import ALL_WORKLOADS, parse_workload_spec


def _cmd_run(args) -> int:
    import os

    if args.engine:
        # the environment propagates to spawned worker processes, so every
        # simulated run in the sweep uses the requested engine
        os.environ["REPRO_ENGINE"] = args.engine
    if args.ledger:
        # same propagation trick: workers see $REPRO_LEDGER and append
        # their own records, so a parallel sweep still lands in one ledger
        os.environ["REPRO_LEDGER"] = (
            "1" if args.ledger is True else str(args.ledger)
        )
    workloads = args.workloads or None
    if workloads:
        # full NAME[:ARG] spec grammar, same as serve and the experiment CLI;
        # a bad spec is a structured JSON error on stderr, never a traceback
        for spec in workloads:
            try:
                parse_workload_spec(spec)
            except ValueError as exc:
                print(
                    json.dumps(
                        SpecError(str(exc), field="workload", value=spec).payload,
                        sort_keys=True,
                    ),
                    file=sys.stderr,
                )
                return 2
    jobs = sweep_jobs(
        workloads=workloads,
        targets=tuple(args.targets.split(",")),
        scale=args.scale,
        with_ir=not args.no_ir,
    )
    cache = ArtifactCache(args.cache_dir) if args.cache_dir else None
    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    with FarmClient(
        workers=args.jobs, cache=cache, batch_size=args.batch_size
    ) as client:
        report = client.sweep(jobs, tracer=tracer)
    if tracer is not None:
        from repro.obs import write_chrome_trace

        write_chrome_trace(tracer.events, args.trace)
        print(f"[trace: {len(tracer.events)} events -> {args.trace}]", file=sys.stderr)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "mode": report.mode,
                    "workers": report.workers,
                    "wall_s": round(report.wall_s, 6),
                    "counts": report.counts,
                    "cache": report.cache_stats.to_dict(),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(report.summary())
        for outcome in report.outcomes:
            if outcome.status == "failed":
                print(f"FAILED {outcome.job.describe()}:\n{outcome.error}", file=sys.stderr)
    return 1 if report.counts["failed"] else 0


def _cmd_serve(args) -> int:
    from repro.farm import serve

    return serve.main(args)


def _cmd_status(args) -> int:
    cache = ArtifactCache(args.cache_dir or default_cache_root())
    entries = cache.entries()
    print(f"cache root    : {cache.root}")
    print(f"artifacts     : {len(entries)}")
    print(f"total bytes   : {cache.total_bytes()}")
    store = ResultStore(cache.root / "runs.jsonl")
    last = store.last_run()
    if last is None:
        print("last run      : (none)")
        return 0
    jobs = last.get("jobs", [])
    print(
        f"last run      : {len(jobs)} jobs, mode={last.get('mode')}, "
        f"workers={last.get('workers')}, wall={last.get('wall_s'):.2f}s"
    )
    print(
        f"  outcomes    : {sum(1 for j in jobs if j['status'] == 'hit')} hit / "
        f"{len(store.computed_jobs(last))} computed / "
        f"{sum(1 for j in jobs if j['status'] == 'failed')} failed "
        f"(hit rate {store.hit_rate(last):.0%})"
    )
    return 0


def _cmd_gc(args) -> int:
    cache = ArtifactCache(args.cache_dir or default_cache_root())
    before = cache.total_bytes()
    evicted = cache.gc(max_bytes=args.max_mb * 1024 * 1024)
    print(f"evicted {len(evicted)} artifacts ({before - cache.total_bytes()} bytes)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.farm", description="the parallel simulation farm"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="execute a simulation sweep")
    run_parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    run_parser.add_argument("--scale", choices=("default", "bench"), default="default")
    run_parser.add_argument(
        "--targets", default="risc1,cisc", help="comma-separated targets"
    )
    run_parser.add_argument(
        "--workloads",
        nargs="*",
        help="NAME[:ARG] workload specs (e.g. towers towers:12 "
        f"bit_matrix_k:N=8); names: {', '.join(ALL_WORKLOADS)}",
    )
    run_parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="jobs per worker dispatch (default: adaptive)",
    )
    run_parser.add_argument("--no-ir", action="store_true", help="skip IR profile jobs")
    run_parser.add_argument(
        "--engine",
        choices=("fast", "reference"),
        help="execution engine for every simulated run (default: fast; "
        "cache keys are engine-free because both engines are "
        "differentially identical)",
    )
    run_parser.add_argument("--format", choices=("text", "json"), default="text")
    run_parser.add_argument(
        "--trace", metavar="PATH", help="write a Chrome trace of the sweep's job timeline"
    )
    run_parser.add_argument(
        "--ledger",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="append every computed execution job to the persistent run "
        "ledger (default root .repro-ledger, or PATH)",
    )
    run_parser.set_defaults(func=_cmd_run)

    serve_parser = sub.add_parser(
        "serve", help="async HTTP/JSON front door (POST /jobs, GET /status)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8421)
    serve_parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    serve_parser.add_argument(
        "--batch-size", type=int, default=None, help="jobs per worker dispatch"
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=60.0,
        help="seconds to wait for in-flight jobs on SIGTERM",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    status_parser = sub.add_parser("status", help="show cache and last-run state")
    status_parser.set_defaults(func=_cmd_status)

    gc_parser = sub.add_parser("gc", help="evict artifacts down to a size budget")
    gc_parser.add_argument("--max-mb", type=float, default=0.0, help="keep at most this many MiB")
    gc_parser.set_defaults(func=_cmd_gc)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
