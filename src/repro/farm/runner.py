"""Execute a single farm job against the artifact cache.

This is the layer both the multiprocess scheduler's workers and the
in-process experiment helpers share: check the content-addressed cache,
compute on a miss, verify the workload's output against its reference
oracle, and store the artifact.  Because cache keys cover the workload
source and the toolchain fingerprint, a cached artifact is by
construction the result the computation would produce.

Set ``REPRO_FARM_CACHE=0`` to bypass the on-disk layer entirely (every
job recomputes; useful for timing and for hermetic tests).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.cc.driver import CompiledProgram, compile_program, run_compiled
from repro.cc.irvm import IRResult, run_ir
from repro.core.api import RunResult
from repro.farm.cache import ArtifactCache, default_cache_root
from repro.farm.jobs import (
    MAX_INSTRUCTIONS,
    Job,
    compile_job,
    execute_job,
    ir_job,
    workload_source,
)
from repro.workloads import ALL_WORKLOADS


def _decode_result(payload: dict):
    """Rebuild a cached execution/IR artifact from its JSON payload.

    New artifacts are machine-tagged :class:`RunResult` payloads; legacy
    (pre-unification) ones carry only the farm's target tag, which maps
    straight onto the machine name.
    """
    tag = payload["type"]
    if tag == "ir":
        return IRResult.from_dict(payload["result"])
    if tag == "fuzz":
        from repro.fuzz.crosscheck import CrossCheckReport

        return CrossCheckReport.from_dict(payload["result"])
    return RunResult.from_dict(payload["result"], default_machine=tag)

_caches: dict[Path, ArtifactCache] = {}


def cache_enabled() -> bool:
    return os.environ.get("REPRO_FARM_CACHE", "1").lower() not in ("0", "off", "no")


def shared_cache() -> ArtifactCache:
    """One :class:`ArtifactCache` per cache root, shared within the process."""
    root = default_cache_root()
    key = root.resolve() if root.is_absolute() else (Path.cwd() / root).resolve()
    if key not in _caches:
        _caches[key] = ArtifactCache(root)
    return _caches[key]


def _expected_output(name: str, scale: str, params: tuple = ()) -> str:
    workload = ALL_WORKLOADS[name]
    merged = dict(workload.bench_params) if scale == "bench" else {}
    merged.update(dict(params))
    return workload.expected_output(**merged)


def _verify(job: Job, output: str) -> None:
    expected = _expected_output(job.workload, job.scale, job.params)
    if output != expected:
        raise AssertionError(
            f"{job.describe()}: output {output!r} != expected {expected!r}"
        )


def run_job(job: Job, cache: ArtifactCache | None = None):
    """Run one job, cache-first.  Returns ``(value, hit)``."""
    if cache is None and cache_enabled():
        cache = shared_cache()

    if job.kind == "compile":
        if cache is not None:
            blob = cache.load_blob(job.key, "pkl")
            if blob is not None:
                try:
                    return CompiledProgram.from_blob(blob), True
                except Exception:
                    cache.stats.hits -= 1
                    cache.discard_corrupt(cache.path_for(job.key, "pkl"))
        value = compile_program(
            job.source
            if job.source is not None
            else workload_source(job.workload, job.scale, job.params),
            target=job.target,
            filename=f"{job.workload}.c",
        )
        if cache is not None:
            cache.store_blob(job.key, "pkl", value.to_blob())
        return value, False

    if job.kind == "fuzz":
        if cache is not None:
            payload = cache.load_json(job.key)
            if payload is not None:
                try:
                    return _decode_result(payload), True
                except Exception:
                    cache.stats.hits -= 1
                    cache.discard_corrupt(cache.path_for(job.key, "json"))
        from repro.fuzz.crosscheck import crosscheck_seed

        config = dict(job.config)
        value = crosscheck_seed(
            config["seed"],
            job.workload.partition(":")[2],
            max_steps=config["max_steps"],
        )
        # no _verify: the cross-check IS the verification — the report
        # records agreement or divergence, and the campaign layer triages
        if cache is not None:
            cache.store_json(job.key, {"type": "fuzz", "result": value.to_dict()})
        return value, False

    # execute / ir jobs store their results as typed JSON payloads
    tag = "ir" if job.kind == "ir" else job.target
    if cache is not None:
        payload = cache.load_json(job.key)
        if payload is not None:
            try:
                return _decode_result(payload), True
            except Exception:
                cache.stats.hits -= 1
                cache.discard_corrupt(cache.path_for(job.key, "json"))

    from repro.farm.jobs import dependency

    program, _ = run_job(dependency(job), cache)
    if job.kind == "ir":
        value = run_ir(program.ir)
    else:
        limit = dict(job.config).get("max_instructions", MAX_INSTRUCTIONS)
        # the engine (resolved from $REPRO_ENGINE inside run_compiled, so
        # it reaches worker processes) is deliberately NOT part of the
        # cache key: both engines are differentially identical, so their
        # results are interchangeable artifacts
        from repro.obs.ledger import ledger_context

        # a cache hit never re-simulates, so only computed execute jobs
        # reach the machines' $REPRO_LEDGER hook — exactly the runs whose
        # wall time means something
        with ledger_context(workload=job.workload, scale=job.scale, source="farm"):
            value = run_compiled(program, max_steps=limit)
    if job.source is None:
        # inline-source jobs have no expected-output oracle to check
        _verify(job, value.output)
    if cache is not None:
        cache.store_json(job.key, {"type": tag, "result": value.to_dict()})
    return value, False


def job_metrics(job: Job, value) -> dict:
    """The small metrics record a finished job contributes to the manifest.

    These land in ``runs.jsonl`` next to the job's status/wall time, so a
    sweep's manifest answers "how much work did each cell do" without
    reopening any artifact.
    """
    if job.kind == "execute":
        return {
            "instructions": value.stats.instructions,
            "cycles": value.stats.cycles,
            "data_refs": value.stats.data_references,
            "exit_code": value.exit_code,
        }
    if job.kind == "compile":
        return {"code_size": value.code_size}
    if job.kind == "ir":
        return {"ir_ops": value.counts.total, "calls": value.counts.calls}
    if job.kind == "fuzz":
        return {
            "status": value.status,
            "divergences": len(value.divergences),
            "source_sha": value.source_sha,
        }
    return {}


# -- convenience entry points used by repro.experiments.common ----------------------


def compiled(name: str, target: str, scale: str = "default") -> CompiledProgram:
    return run_job(compile_job(name, target, scale))[0]


def executed(name: str, target: str, scale: str = "default"):
    return run_job(execute_job(name, target, scale))[0]


def ir_profile(name: str, scale: str = "default") -> IRResult:
    return run_job(ir_job(name, scale))[0]
