"""Entry point for ``python -m repro.farm``."""

from repro.farm.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
