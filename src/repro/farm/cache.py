"""Content-addressed on-disk artifact cache.

Layout (default root ``.repro-cache/``, override with ``REPRO_CACHE_DIR``)::

    .repro-cache/
      objects/ab/abcdef....json   execution / IR results (JSON)
      objects/ab/abcdef....pkl    compiled programs (pickle)
      runs.jsonl                  the result store's run manifest

Writes are atomic (temp file + ``os.replace``) so a crashed or concurrent
worker can never leave a half-written artifact under its final name, and
loads are corruption-safe: any unreadable blob is counted, deleted, and
treated as a miss so the scheduler simply recomputes.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import tempfile
from pathlib import Path

#: Pickle protocol pinned so artifacts written by one Python 3.10+ worker
#: load in any other.
PICKLE_PROTOCOL = 4


def default_cache_root() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``.repro-cache`` under the cwd."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.evictions += other.evictions
        self.corrupt += other.corrupt


class ArtifactCache:
    """A content-addressed blob store keyed by :func:`repro.farm.jobs.job_key`."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.stats = CacheStats()

    # -- paths ------------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def path_for(self, key: str, ext: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.{ext}"

    def contains(self, key: str, ext: str) -> bool:
        """Pure existence probe — touches no hit/miss accounting.

        Used by the serve front door to answer duplicate submissions
        straight from the content-addressed store without dispatching.
        """
        return self.path_for(key, ext).is_file()

    # -- raw blobs --------------------------------------------------------------

    def load_blob(self, key: str, ext: str) -> bytes | None:
        path = self.path_for(key, ext)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.discard_corrupt(path)
            return None
        self.stats.hits += 1
        return data

    def store_blob(self, key: str, ext: str, data: bytes) -> Path:
        path = self.path_for(key, ext)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=f".{ext}")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    def discard_corrupt(self, path: Path) -> None:
        """A blob exists but cannot be used: delete it and count a miss."""
        self.stats.corrupt += 1
        self.stats.misses += 1
        try:
            path.unlink()
        except OSError:
            pass

    # -- typed artifacts --------------------------------------------------------

    def load_json(self, key: str):
        """A stored JSON artifact, or None on miss/corruption."""
        data = self.load_blob(key, "json")
        if data is None:
            return None
        try:
            return json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self.stats.hits -= 1  # it was not a usable hit after all
            self.discard_corrupt(self.path_for(key, "json"))
            return None

    def store_json(self, key: str, payload) -> Path:
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return self.store_blob(key, "json", blob.encode("utf-8"))

    def load_pickle(self, key: str):
        """A stored pickled artifact, or None on miss/corruption."""
        data = self.load_blob(key, "pkl")
        if data is None:
            return None
        try:
            return pickle.loads(data)
        except Exception:
            self.stats.hits -= 1
            self.discard_corrupt(self.path_for(key, "pkl"))
            return None

    def store_pickle(self, key: str, value) -> Path:
        return self.store_blob(key, "pkl", pickle.dumps(value, protocol=PICKLE_PROTOCOL))

    # -- inventory / eviction ---------------------------------------------------

    def entries(self) -> list[Path]:
        if not self.objects_dir.is_dir():
            return []
        return sorted(p for p in self.objects_dir.rglob("*.*") if p.is_file())

    def total_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def gc(self, max_bytes: int = 0) -> list[Path]:
        """Evict least-recently-used artifacts until at most ``max_bytes`` remain.

        ``max_bytes=0`` clears the cache.  Returns the evicted paths.
        """
        entries = [(p, p.stat()) for p in self.entries()]
        entries.sort(key=lambda item: item[1].st_mtime)  # oldest first
        total = sum(stat.st_size for _, stat in entries)
        evicted: list[Path] = []
        for path, stat in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= stat.st_size
            evicted.append(path)
            self.stats.evictions += 1
        return evicted
