"""``python -m repro.farm serve`` — the farm's async HTTP/JSON front door.

A zero-dependency asyncio server that exposes the :class:`FarmClient`
submission surface over HTTP so many concurrent clients (sweep drivers,
CI shards, notebook users) can share one warm worker pool and one
content-addressed cache:

* ``POST /jobs`` — submit one spec, or ``{"jobs": [spec, ...]}``.
  Responds ``202`` with one :class:`~repro.farm.api.JobStatus` document
  per spec.  Invalid specs get a structured ``400`` (the
  :class:`~repro.farm.api.SpecError` payload), never a traceback.
  Duplicate submissions are answered without re-dispatch: an in-flight
  key shares the existing future, a completed key is answered straight
  from the server's registry / the content-addressed cache.
* ``GET /jobs/<key>`` — the job's status document.  ``?wait=SECONDS``
  blocks until terminal (or the deadline), ``?stream=1`` streams
  newline-delimited status snapshots until the job finishes.
* ``GET /status`` — server counters plus the client/pool/cache state.
* ``GET /healthz`` — liveness (``draining`` flips during shutdown).

On boot the server prints one machine-readable line to stdout::

    {"serving": {"host": "127.0.0.1", "port": 8421, "workers": 4}}

``SIGTERM``/``SIGINT`` triggers a graceful drain: new ``POST``s get a
``503``, in-flight jobs run to completion, worker ledger shards merge
into the main ledger, and the process exits 0 after printing a final
``{"drained": ...}`` line.

The protocol layer is deliberately minimal HTTP/1.1 with persistent
connections: a client may pipeline many requests over one socket
(``Connection: keep-alive`` semantics — the HTTP/1.1 default), and the
server closes only on ``Connection: close``, a protocol error, or the
idle timeout.  Streaming responses (``?stream=1``) still end their
connection — they have no length framing.  The farm's job payloads are
tiny JSON documents and the interesting concurrency lives in the pool,
not the socket handling.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import json
import signal
import sys
import time

from repro.farm.api import FarmClient, FarmFuture, JobSpec, SpecError

__all__ = ["FarmServer", "main", "run"]

#: Cap on buffered request head + body; farm specs are tiny documents.
_MAX_HEAD = 64 * 1024
_MAX_BODY = 1024 * 1024

#: Default ceiling on a ``?wait=`` / ``?stream=`` long poll.
_MAX_WAIT_S = 300.0

#: Completed registry entries kept for ``GET /jobs/<key>`` answers.
_REGISTRY_LIMIT = 8192

#: A keep-alive connection with no next request within this window is
#: closed (frees sockets held by clients that wandered off).
_IDLE_TIMEOUT_S = 75.0


def _ext_for(spec_dict: dict | None) -> str:
    """Artifact extension for a spec's cached result (compile = pickle)."""
    return "pkl" if (spec_dict or {}).get("kind") == "compile" else "json"


@dataclasses.dataclass
class _Entry:
    """One known job key: its farm future plus an asyncio-side event."""

    future: FarmFuture
    event: asyncio.Event


class FarmServer:
    """The HTTP front door around one shared :class:`FarmClient`."""

    def __init__(
        self,
        client: FarmClient,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_timeout: float = 60.0,
        idle_timeout: float = _IDLE_TIMEOUT_S,
    ):
        self.client = client
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self.idle_timeout = idle_timeout
        self.draining = False
        self._started = time.monotonic()
        self.counters = {
            "requests": 0,
            "specs_submitted": 0,
            "specs_dispatched": 0,
            "deduped_inflight": 0,
            "deduped_registry": 0,
            "cache_probe_hits": 0,
            "bad_requests": 0,
            "server_errors": 0,
        }
        self._registry: dict[str, _Entry] = {}
        #: keys claimed for dispatch but not yet in the registry — duplicate
        #: POSTs arriving in that window await the claimant instead of
        #: re-dispatching
        self._pending: dict[str, asyncio.Future] = {}
        self._lock = asyncio.Lock()
        self._server: asyncio.base_events.Server | None = None
        self._shutdown = asyncio.Event()
        #: open connection writers — force-closed after drain so idle
        #: keep-alive sockets can't stall ``Server.wait_closed()``
        self._connections: set[asyncio.StreamWriter] = set()
        # Submissions run off-loop: a serial client executes the job inside
        # submit(), and even the pool path does blocking queue writes.
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(4, client.workers * 2), thread_name_prefix="farm-submit"
        )

    # -- registry ----------------------------------------------------------------

    def _remember(self, future: FarmFuture) -> _Entry:
        loop = asyncio.get_running_loop()
        entry = _Entry(future=future, event=asyncio.Event())
        future.add_done_callback(
            lambda _f: loop.call_soon_threadsafe(entry.event.set)
        )
        self._registry[future.job.key] = entry
        if len(self._registry) > _REGISTRY_LIMIT:
            for key in [
                k for k, e in self._registry.items() if e.event.is_set()
            ][: len(self._registry) - _REGISTRY_LIMIT]:
                del self._registry[key]
        return entry

    @staticmethod
    def _deduped_status(entry: _Entry) -> dict:
        status = entry.future.status()
        status.deduped = True
        return status.to_dict()

    async def _submit_spec(self, payload) -> dict:
        """One spec document -> one JobStatus document (deduped)."""
        spec = JobSpec.from_dict(payload)  # SpecError -> 400 at the call site
        job = spec.to_job()
        self.counters["specs_submitted"] += 1
        loop = asyncio.get_running_loop()
        async with self._lock:
            entry = self._registry.get(job.key)
            if entry is not None:
                self.counters[
                    "deduped_registry" if entry.event.is_set() else "deduped_inflight"
                ] += 1
                return self._deduped_status(entry)
            waiter = self._pending.get(job.key)
            if waiter is None:
                # this coroutine owns the dispatch; duplicates await below
                self._pending[job.key] = loop.create_future()
                cache = self.client.cache
                if cache is not None and cache.contains(
                    job.key, _ext_for(spec.to_dict())
                ):
                    self.counters["cache_probe_hits"] += 1
            else:
                self.counters["deduped_inflight"] += 1
        if waiter is not None:
            entry = await asyncio.shield(waiter)
            return self._deduped_status(entry)
        self.counters["specs_dispatched"] += 1
        try:
            future = await loop.run_in_executor(
                self._executor, self.client.submit, spec
            )
        except BaseException as exc:
            async with self._lock:
                pending = self._pending.pop(job.key, None)
            if pending is not None and not pending.done():
                pending.set_exception(exc)
                pending.exception()  # consumed; awaiters re-raise their own copy
            raise
        async with self._lock:
            entry = self._remember(future)
            pending = self._pending.pop(job.key, None)
        if pending is not None and not pending.done():
            pending.set_result(entry)
        return entry.future.status().to_dict()

    # -- handlers ----------------------------------------------------------------

    async def _handle_post_jobs(self, body: bytes) -> tuple[int, dict]:
        if self.draining:
            return 503, {"error": {"message": "server is draining; retry elsewhere"}}
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError):
            self.counters["bad_requests"] += 1
            return 400, {"error": {"message": "request body is not valid JSON"}}
        if isinstance(payload, dict) and isinstance(payload.get("jobs"), list):
            specs = payload["jobs"]
        elif isinstance(payload, dict):
            specs = [payload]
        else:
            self.counters["bad_requests"] += 1
            return 400, {
                "error": {
                    "message": "POST /jobs expects a spec object or {\"jobs\": [...]}"
                }
            }
        statuses = []
        for spec_payload in specs:
            try:
                statuses.append(await self._submit_spec(spec_payload))
            except SpecError as exc:
                self.counters["bad_requests"] += 1
                return 400, exc.payload
        return 202, {"jobs": statuses} if "jobs" in (payload or {}) else statuses[0]

    async def _handle_get_job(
        self, key: str, query: dict
    ) -> tuple[int, dict] | None:
        entry = self._registry.get(key)
        if entry is None:
            return 404, {"error": {"message": f"unknown job key {key!r}"}}
        wait_s = 0.0
        if "wait" in query:
            try:
                wait_s = min(float(query["wait"]), _MAX_WAIT_S)
            except ValueError:
                return 400, {"error": {"message": "wait must be a number of seconds"}}
        if wait_s > 0 and not entry.event.is_set():
            try:
                await asyncio.wait_for(entry.event.wait(), wait_s)
            except asyncio.TimeoutError:
                pass
        return 200, entry.future.status().to_dict()

    async def _stream_job(self, writer: asyncio.StreamWriter, key: str, query: dict):
        """``?stream=1``: newline-delimited status snapshots until terminal."""
        entry = self._registry.get(key)
        if entry is None:
            await self._respond(
                writer, 404, {"error": {"message": f"unknown job key {key!r}"}}
            )
            return
        deadline = asyncio.get_running_loop().time() + min(
            float(query.get("wait", _MAX_WAIT_S) or _MAX_WAIT_S), _MAX_WAIT_S
        )
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        last = None
        while True:
            snapshot = entry.future.status().to_dict()
            if snapshot != last:
                writer.write(json.dumps(snapshot, sort_keys=True).encode() + b"\n")
                await writer.drain()
                last = snapshot
            if entry.event.is_set():
                break
            if asyncio.get_running_loop().time() >= deadline:
                break
            try:
                await asyncio.wait_for(entry.event.wait(), 0.2)
            except asyncio.TimeoutError:
                pass

    def _status_payload(self) -> dict:
        submitted = self.counters["specs_submitted"]
        deduped = (
            self.counters["deduped_inflight"] + self.counters["deduped_registry"]
        )
        return {
            "server": {
                **self.counters,
                "draining": self.draining,
                "registry_size": len(self._registry),
                "dedupe_hit_rate": round(deduped / submitted, 6) if submitted else 0.0,
                "uptime_s": round(time.monotonic() - self._started, 3),
                "jobs_in_flight": sum(
                    1 for e in self._registry.values() if not e.event.is_set()
                ),
                "open_connections": len(self._connections),
            },
            "client": self.client.status(),
        }

    # -- protocol ----------------------------------------------------------------

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        code: int,
        payload: dict,
        keep_alive: bool = False,
    ) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed",
                   500: "Internal Server Error", 503: "Service Unavailable"}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        writer.write(
            f"HTTP/1.1 {code} {reasons.get(code, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n".encode("ascii") + body
        )
        await writer.drain()

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter, head: bytes
    ) -> bool:
        """Serve one parsed-head request; returns whether the connection
        may carry another (HTTP/1.1 keep-alive semantics)."""
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, target, version = request_line.split(" ", 2)
        headers = {}
        for line in header_lines:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        connection = headers.get("connection", "").lower()
        keep_alive = (
            connection != "close"
            if version.strip() == "HTTP/1.1"
            else connection == "keep-alive"
        )
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length:
            if length > _MAX_BODY:
                # the unread body makes the socket unusable for a next request
                await self._respond(
                    writer, 400, {"error": {"message": "request body too large"}}
                )
                return False
            body = await reader.readexactly(length)
        path, _, query_string = target.partition("?")
        query = {}
        for pair in query_string.split("&"):
            if pair:
                name, _, value = pair.partition("=")
                query[name] = value

        if method == "GET" and path == "/healthz":
            await self._respond(
                writer, 200, {"ok": True, "draining": self.draining}, keep_alive
            )
        elif method == "GET" and path == "/status":
            await self._respond(writer, 200, self._status_payload(), keep_alive)
        elif method == "GET" and path.startswith("/jobs/"):
            key = path[len("/jobs/"):]
            if query.get("stream") in ("1", "true"):
                # ndjson has no length framing; the stream ends the connection
                await self._stream_job(writer, key, query)
                return False
            code, payload = await self._handle_get_job(key, query)
            await self._respond(writer, code, payload, keep_alive)
        elif method == "POST" and path == "/jobs":
            code, payload = await self._handle_post_jobs(body)
            await self._respond(writer, code, payload, keep_alive)
        else:
            await self._respond(
                writer,
                404 if method in ("GET", "POST") else 405,
                {"error": {"message": f"no route for {method} {path}"}},
                keep_alive,
            )
        return keep_alive

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"), self.idle_timeout
                    )
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    asyncio.TimeoutError,
                    OSError,
                ):
                    break
                self.counters["requests"] += 1
                try:
                    keep_alive = await self._handle_one(reader, writer, head)
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                except Exception as exc:  # a handler bug must answer 500, not hang
                    self.counters["server_errors"] += 1
                    try:
                        await self._respond(
                            writer,
                            500,
                            {"error": {"message": f"{type(exc).__name__}: {exc}"}},
                        )
                    except Exception:
                        pass
                    break
                if not keep_alive or self.draining:
                    break
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, backlog=2048
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent; signal-handler safe)."""
        self.draining = True
        self._shutdown.set()

    async def _drain(self) -> dict:
        """Wait out in-flight jobs, then fold worker shards into the ledger."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        waited = 0
        for entry in list(self._registry.values()):
            if entry.event.is_set():
                continue
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            try:
                await asyncio.wait_for(entry.event.wait(), remaining)
                waited += 1
            except asyncio.TimeoutError:
                break
        await loop.run_in_executor(
            self._executor, self.client.drain, max(0.0, deadline - loop.time())
        )
        await loop.run_in_executor(self._executor, self.client.close)
        incomplete = sum(
            1 for entry in self._registry.values() if not entry.event.is_set()
        )
        return {"waited_jobs": waited, "incomplete": incomplete, "ok": incomplete == 0}

    async def serve_until_shutdown(self) -> dict:
        """Run until :meth:`request_shutdown`, then drain; returns the summary."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.start_serving()
            await self._shutdown.wait()
            # stop accepting, finish what is in flight
            self._server.close()
            summary = await self._drain()
            # idle keep-alive sockets would stall wait_closed(); drop them
            for connection in list(self._connections):
                try:
                    connection.close()
                except Exception:
                    pass
        self._executor.shutdown(wait=False)
        return summary


async def run(
    host: str = "127.0.0.1",
    port: int = 8421,
    workers: int = 1,
    batch_size: int | None = None,
    drain_timeout: float = 60.0,
    ready=None,
) -> dict:
    """Start a server, install signal handlers, serve until drained.

    ``ready(server)`` — if given — is called once listening (used by the
    in-process load tests to learn the ephemeral port).
    """
    client = FarmClient(workers=workers, batch_size=batch_size)
    # Fork the pool BEFORE the listening socket exists: workers must never
    # inherit client connections (a forked duplicate of an accepted socket
    # would hold it open past our close, stalling EOF-delimited readers).
    client._ensure_pool()
    server = FarmServer(client, host=host, port=port, drain_timeout=drain_timeout)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.request_shutdown)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or platform without signal support
    print(
        json.dumps(
            {
                "serving": {
                    "host": server.host,
                    "port": server.port,
                    "workers": workers,
                    "mode": client.mode,
                }
            },
            sort_keys=True,
        ),
        flush=True,
    )
    if ready is not None:
        ready(server)
    summary = await server.serve_until_shutdown()
    print(json.dumps({"drained": summary}, sort_keys=True), flush=True)
    return summary


def main(args) -> int:
    """The ``python -m repro.farm serve`` entry point (argparse namespace)."""
    summary = asyncio.run(
        run(
            host=args.host,
            port=args.port,
            workers=args.jobs,
            batch_size=getattr(args, "batch_size", None),
            drain_timeout=args.drain_timeout,
        )
    )
    return 0 if summary.get("ok", False) else 1


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    import argparse

    parser = argparse.ArgumentParser(description="farm HTTP front door")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8421)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--drain-timeout", type=float, default=60.0)
    sys.exit(main(parser.parse_args()))
