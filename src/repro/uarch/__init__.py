"""repro.uarch — the 5-stage pipeline timing model.

A cycle-accounting microarchitectural layer over the architectural
simulators: RAW hazards against a configurable forwarding matrix,
load-use interlocks, delayed-branch slot accounting, register-window
drain cycles, and pluggable branch predictors with misprediction flush
costs.  It observes the retired-instruction stream through the machines'
per-instruction hooks and never executes anything itself — semantics
stay in one place, and the engine differential harness remains the
correctness gate.

Entry points: ``cpu.run(uarch="bht2/full")`` attaches one model and
returns its :class:`PipelineStats` on ``result.pipeline``;
:func:`run_with_pipeline` measures several configurations in a single
run.  See ``docs/PIPELINE.md`` for the model semantics and a worked CPI
example.
"""

from repro.uarch.config import (
    DEFAULT_UARCH,
    FORWARDING_MODES,
    PREDICTORS,
    UarchConfig,
    parse_uarch_config,
    resolve_uarch,
)
from repro.uarch.adapters import attach_pipeline, detach_pipeline
from repro.uarch.harness import run_with_pipeline, standard_sweep
from repro.uarch.pipeline import PipelineModel, PipelineStats, STALL_KINDS
from repro.uarch.predictors import (
    AlwaysNotTaken,
    BackwardTaken,
    TwoBitBHT,
    make_predictor,
)

__all__ = [
    "AlwaysNotTaken",
    "BackwardTaken",
    "DEFAULT_UARCH",
    "FORWARDING_MODES",
    "PREDICTORS",
    "PipelineModel",
    "PipelineStats",
    "STALL_KINDS",
    "TwoBitBHT",
    "UarchConfig",
    "attach_pipeline",
    "detach_pipeline",
    "make_predictor",
    "parse_uarch_config",
    "resolve_uarch",
    "run_with_pipeline",
    "standard_sweep",
]
