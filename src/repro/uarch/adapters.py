"""Machine adapters: retired-instruction streams → pipeline model feed.

The pipeline model (:mod:`repro.uarch.pipeline`) is machine-agnostic; the
adapters here translate each machine's per-instruction hook into
:meth:`~repro.uarch.pipeline.PipelineModel.observe` calls.  One adapter
can feed any number of models at once, so comparing N configurations
costs one architectural run, not N.

**RISC I** (:class:`RiscPipelineAdapter`) hangs off ``CPU.on_execute``,
which fires identically in the reference ``step()`` loop and the fast
engine's exact loop — pipeline stats are therefore engine-independent by
the same mechanism that makes the engines bit-identical.  Register
operands are resolved to *physical* indices through the same window maps
the fast engine uses, so the CALL/RETURN overlap (caller LOW = callee
HIGH) aliases correctly and cross-call hazards through shared registers
are seen.  A CALL's return-address write lands in the *next* window
(rotation happens under its delay slot).  Window overflow/underflow
drain cycles are picked up as deltas of the architectural
``stats.overflow_cycles`` counter.  Branch outcomes are read from the
retired PC stream: a conditional jump at ``P`` was taken iff the second
retire after it (branch, slot, then resolved path) is not at ``P + 8``.

**VAX** (:class:`VaxPipelineAdapter`) hangs off ``VaxCPU.on_execute``
and feeds the model *lag-one*: instruction ``i`` is observed when
``i + 1``'s hook fires, because only then is ``i``'s exact cycle cost
(base + specifier + memory-traffic cycles) known — that cost becomes the
EX/MEM occupancy, modelling the microcode serializing the pipe.
Conditional branches resolve one retire later against the recorded
fall-through PC.  Register reads/writes come from pairing operand access
codes (``r``/``w``/``m``) with register-mode operands; memory operands'
address registers were consumed by the specifier evaluators and are not
re-derived (address-generation hazards are out of scope for a baseline
whose pipe is already serialized by microcode occupancy).

Approximations shared by both adapters (documented in
``docs/PIPELINE.md``): condition codes are always forwarded, and an
interrupt arriving exactly in a branch's resolution shadow perturbs that
one branch's taken/not-taken reading — both engines perturb it
identically, so differential parity holds.
"""

from __future__ import annotations

from repro.isa.conditions import Cond
from repro.isa.opcodes import Opcode

__all__ = [
    "RiscPipelineAdapter",
    "VaxPipelineAdapter",
    "attach_pipeline",
    "detach_pipeline",
]

_ARITH_OPS = frozenset(
    {
        Opcode.ADD, Opcode.ADDC, Opcode.SUB, Opcode.SUBC, Opcode.SUBR,
        Opcode.SUBCR, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SLL,
        Opcode.SRL, Opcode.SRA,
    }
)
_LOAD_OPS = frozenset(
    {Opcode.LDL, Opcode.LDSU, Opcode.LDSS, Opcode.LDBU, Opcode.LDBS}
)
_STORE_OPS = frozenset({Opcode.STL, Opcode.STS, Opcode.STB})
#: conditions that make a jump genuinely conditional: ALW always takes,
#: NOP never does — neither needs a predictor
_UNCONDITIONAL = frozenset({Cond.ALW, Cond.NOP})


class RiscPipelineAdapter:
    """Feeds one RISC I run's retired stream to one or more models.

    Installed as (or chained into) ``cpu.on_execute``; per-PC operand
    classification is cached, keyed on the decoded instruction's
    identity, so self-modifying code reclassifies automatically (the
    decode cache interns instruction objects per word).
    """

    def __init__(self, cpu, models):
        from repro.core.engine import _window_maps

        self.cpu = cpu
        self.models = list(models)
        self.prev = None
        self._maps = _window_maps(cpu.regs.num_windows)
        self._nwindows = cpu.regs.num_windows
        self._overflow_seen = cpu.stats.overflow_cycles
        #: pc -> (inst, visible reads, visible writes, call-dest or None,
        #:        is_load, is_mem, delayed, conditional, target, is_nop)
        self._cache: dict = {}

    def _classify(self, pc: int, inst) -> tuple:
        op = inst.opcode
        reads: tuple = ()
        writes: tuple = ()
        call_dest = None
        is_load = is_mem = delayed = conditional = is_nop = False
        target = None
        if op in _ARITH_OPS:
            reads = self._operand_reads(inst)
            if inst.dest:
                writes = (inst.dest,)
            elif op is Opcode.ADD and not inst.scc:
                is_nop = True  # add r0, ... — the canonical slot filler
        elif op in _LOAD_OPS:
            reads = self._operand_reads(inst)
            if inst.dest:
                writes = (inst.dest,)
            is_load = is_mem = True
        elif op in _STORE_OPS:
            reads = self._operand_reads(inst, extra=inst.dest)
            is_mem = True
        elif op is Opcode.JMP:
            reads = self._operand_reads(inst)
            delayed = True
            conditional = inst.cond not in _UNCONDITIONAL
        elif op is Opcode.JMPR:
            delayed = True
            conditional = inst.cond not in _UNCONDITIONAL
            target = (pc + inst.y) & 0xFFFFFFFF
        elif op is Opcode.CALL:
            reads = self._operand_reads(inst)
            call_dest = inst.dest or None
            delayed = True
        elif op is Opcode.CALLR:
            call_dest = inst.dest or None
            delayed = True
        elif op in (Opcode.RET, Opcode.RETINT):
            reads = self._operand_reads(inst)
            delayed = True
        elif op is Opcode.CALLINT:
            call_dest = inst.dest or None
        elif op in (Opcode.LDHI, Opcode.GTLPC, Opcode.GETPSW):
            if inst.dest:
                writes = (inst.dest,)
        elif op is Opcode.PUTPSW:
            if inst.dest:
                reads = (inst.dest,)
        return (
            inst, reads, writes, call_dest, is_load, is_mem, delayed,
            conditional, target, is_nop,
        )

    @staticmethod
    def _operand_reads(inst, extra: int = 0) -> tuple:
        reads = []
        if inst.rs1:
            reads.append(inst.rs1)
        if not inst.imm and inst.s2:
            reads.append(inst.s2)
        if extra:
            reads.append(extra)
        return tuple(reads)

    def __call__(self, pc: int, inst) -> None:
        if self.prev is not None:
            self.prev(pc, inst)
        stats = self.cpu.stats
        drained = stats.overflow_cycles - self._overflow_seen
        if drained:
            self._overflow_seen = stats.overflow_cycles
            for model in self.models:
                model.note_window_cycles(drained)
        entry = self._cache.get(pc)
        if entry is None or entry[0] is not inst:
            entry = self._classify(pc, inst)
            self._cache[pc] = entry
        (_, vreads, vwrites, call_dest, is_load, is_mem, delayed,
         conditional, target, is_nop) = entry
        maps = self._maps
        cwp = self.cpu.regs.cwp
        reads = tuple(maps[reg][cwp] for reg in vreads)
        if call_dest is not None:
            # CALL writes the return address in the window it rotates into
            writes = (maps[call_dest][(cwp + 1) % self._nwindows],)
        else:
            writes = tuple(maps[reg][cwp] for reg in vwrites)
        fallthrough = (pc + 8) & 0xFFFFFFFF if conditional else None
        for model in self.models:
            model.observe(
                pc,
                reads,
                writes,
                is_load=is_load,
                occupancy=model.config.mem_port_cycles if is_mem else 1,
                delayed=delayed,
                conditional=conditional,
                static_target=target,
                fallthrough=fallthrough,
                resolve_after=2,
                is_nop=is_nop,
            )

    def finalize(self):
        return [model.finalize() for model in self.models]


class VaxPipelineAdapter:
    """Feeds one VAX run's retired stream to one or more models, lag-one."""

    def __init__(self, cpu, models):
        from repro.baselines.vax.isa import BRANCH_CONDITIONS

        self.cpu = cpu
        self.models = list(models)
        self.prev = None
        self._conditional = frozenset(BRANCH_CONDITIONS) - {"brb", "brw"}
        self._cycles_seen = cpu.stats.cycles
        #: the not-yet-observed previous instruction:
        #: (pc, reads, writes, conditional, target, fallthrough)
        self._held: tuple | None = None

    def __call__(self, pc: int, info, operands, branch_disp) -> None:
        if self.prev is not None:
            self.prev(pc, info, operands, branch_disp)
        cpu = self.cpu
        held = self._held
        if held is not None:
            # the previous instruction's exact cycles are now booked
            occupancy = max(cpu.stats.cycles - self._cycles_seen, 1)
            self._cycles_seen = cpu.stats.cycles
            self._feed(held, occupancy)

        reads: list = []
        writes: list = []
        specs = [spec for spec in info.operands if spec.access != "b"]
        for spec, operand in zip(specs, operands):
            if operand.kind != "reg":
                continue
            if spec.access in ("r", "m"):
                reads.append(operand.value)
            if spec.access in ("w", "m"):
                writes.append(operand.value)
        if info.kind in ("push", "calls", "ret"):
            from repro.baselines.vax.isa import SP

            reads.append(SP)
            writes.append(SP)
        conditional = info.mnemonic in self._conditional
        # cpu.pc already points past this instruction (the fall-through)
        fallthrough = cpu.pc
        target = (cpu.pc + branch_disp) & 0xFFFFFFFF if branch_disp is not None else None
        self._held = (pc, tuple(reads), tuple(writes), conditional, target, fallthrough)

    def _feed(self, held: tuple, occupancy: int) -> None:
        pc, reads, writes, conditional, target, fallthrough = held
        for model in self.models:
            model.observe(
                pc,
                reads,
                writes,
                is_load=False,
                occupancy=occupancy,
                delayed=False,
                conditional=conditional,
                static_target=target,
                fallthrough=fallthrough,
                resolve_after=1,
            )

    def finalize(self):
        held = self._held
        if held is not None:
            self._held = None
            occupancy = max(self.cpu.stats.cycles - self._cycles_seen, 1)
            self._cycles_seen = self.cpu.stats.cycles
            self._feed(held, occupancy)
        return [model.finalize() for model in self.models]


def attach_pipeline(cpu, models):
    """Chain the right adapter for ``cpu`` into its ``on_execute`` hook.

    ``models`` is one :class:`~repro.uarch.pipeline.PipelineModel` or a
    list of them.  Returns the adapter; call ``finalize()`` for the
    finished stats and ``detach(cpu, adapter)`` to restore the hook.
    """
    from repro.uarch.pipeline import PipelineModel

    if isinstance(models, PipelineModel):
        models = [models]
    adapter = (
        RiscPipelineAdapter(cpu, models)
        if cpu.name == "risc1"
        else VaxPipelineAdapter(cpu, models)
    )
    adapter.prev = cpu.on_execute
    cpu.on_execute = adapter
    return adapter


def detach_pipeline(cpu, adapter) -> None:
    """Undo :func:`attach_pipeline`, restoring any chained hook."""
    if cpu.on_execute is adapter:
        cpu.on_execute = adapter.prev
