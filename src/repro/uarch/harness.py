"""Multi-configuration measurement harness for the pipeline model.

Comparing N pipeline configurations needs only one architectural run:
the adapters fan each retired instruction out to every attached model,
so a predictor × forwarding sweep costs one simulation plus N cheap
accounting passes — the shape every pipeline experiment here uses.
"""

from __future__ import annotations

from repro.uarch.adapters import attach_pipeline, detach_pipeline
from repro.uarch.config import PREDICTORS, UarchConfig
from repro.uarch.pipeline import PipelineModel, PipelineStats

__all__ = ["run_with_pipeline", "standard_sweep"]


def run_with_pipeline(cpu, configs, **run_kwargs):
    """Run ``cpu`` once, measuring it under every configuration.

    ``cpu`` is a loaded RISC I ``CPU`` or ``VaxCPU``; ``configs`` is one
    :class:`UarchConfig` or a sequence of them.  Returns
    ``(result, stats)`` where ``stats`` is a list of
    :class:`PipelineStats` parallel to ``configs``.  The instrumentation
    hook is detached afterwards even if the run raises.
    """
    if isinstance(configs, UarchConfig):
        configs = [configs]
    models = [PipelineModel(config, machine=cpu.name) for config in configs]
    adapter = attach_pipeline(cpu, models)
    try:
        result = cpu.run(**run_kwargs)
    finally:
        detach_pipeline(cpu, adapter)
    return result, adapter.finalize()


def standard_sweep(base: UarchConfig | None = None) -> list[UarchConfig]:
    """The canonical experiment sweep: predictors, then forwarding.

    All three predictors under the base forwarding matrix, then the two
    degraded forwarding matrices under the base predictor — five
    configurations isolating each axis against the ``base`` (default:
    ``bht2/full``).
    """
    base = base or UarchConfig()
    sweep = [
        UarchConfig(
            predictor=predictor,
            forwarding=base.forwarding,
            bht_entries=base.bht_entries,
            mispredict_penalty=base.mispredict_penalty,
            mem_port_cycles=base.mem_port_cycles,
            depth=base.depth,
        )
        for predictor in PREDICTORS
    ]
    for forwarding in ("none", "ex"):
        if forwarding != base.forwarding:
            sweep.append(
                UarchConfig(
                    predictor=base.predictor,
                    forwarding=forwarding,
                    bht_entries=base.bht_entries,
                    mispredict_penalty=base.mispredict_penalty,
                    mem_port_cycles=base.mem_port_cycles,
                    depth=base.depth,
                )
            )
    return sweep
