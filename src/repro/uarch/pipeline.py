"""The 5-stage pipeline cycle-accounting model.

This is a *timing* model layered over the architectural simulator's
retired-instruction stream — it never executes anything, so the
bit-identical differential harness (``tests/test_engine_diff.py``)
remains the correctness gate while this module answers the paper's
microarchitectural question: does one instruction really leave the
pipeline every cycle?

The model is the classic in-order single-issue IF/ID/EX/MEM/WB pipe
(the modern RV32 blueprint of RVCoreP / basic_RV32s, which is also the
paper's own three-stage machine grown to the textbook five stages):

* instruction ``i`` enters EX at cycle ``e_i = max(next_free, ready)``
  where ``next_free`` covers the previous instruction's EX/MEM occupancy
  (a load or store holds the single memory port for
  ``mem_port_cycles``), plus any control-flush or window-drain cycles;
* ``ready`` is the RAW-hazard constraint: a consumer may enter EX no
  earlier than ``producer_ex + latency``, with latency set by the
  forwarding matrix (see :class:`~repro.uarch.config.UarchConfig`):

  ============  =========  ==========
  forwarding    ALU lat    load lat
  ============  =========  ==========
  ``none``      3 (WB)     3 (WB)
  ``ex``        1 (EX→EX)  3 (WB)
  ``full``      1 (EX→EX)  2 (MEM→EX)
  ============  =========  ==========

  so under ``full`` the only data stall is the one-bubble load-use
  interlock, and the no-bypass pipe pays up to two bubbles per
  dependent pair;
* delayed control transfers always execute their slot (RISC I
  semantics); the model scores each dynamic slot as *filled* (useful
  work) or a *nop* (the bubble the optimizer failed to hide);
* conditional branches are predicted at fetch and resolved two retires
  later (branch, slot, then the first instruction on the resolved
  path); a misprediction squashes ``mispredict_penalty`` wrong-path
  fetch cycles.  Unconditional transfers need no prediction: their
  targets are computed by the address adder during decode and the delay
  slot hides the fetch bubble — exactly the paper's delayed-jump
  argument;
* register-window overflow/underflow handlers drain the pipe for the
  handler cycles the architectural model already charges
  (``stats.overflow_cycles``), reported in the ``window`` stall bucket.

Condition codes are assumed always forwarded (the PSW bits ride the
ALU's bypass paths for free in all three matrices); only register
operands create hazards.
"""

from __future__ import annotations

import dataclasses

from repro.obs.events import EventKind
from repro.uarch.config import UarchConfig
from repro.uarch.predictors import make_predictor

__all__ = ["PipelineModel", "PipelineStats", "STALL_KINDS"]

#: RAW latencies (ALU, load) per forwarding mode, in EX-to-EX cycles.
_LATENCIES = {
    "none": (3, 3),
    "ex": (1, 3),
    "full": (1, 2),
}

#: The stall buckets, in reporting order.
STALL_KINDS = ("raw", "load_use", "control", "window", "structural")


@dataclasses.dataclass
class PipelineStats:
    """Cycle accounting for one run through the pipeline model."""

    machine: str = "risc1"
    config: dict = dataclasses.field(default_factory=dict)
    instructions: int = 0
    #: total pipeline cycles (fill + issue + every stall below)
    cycles: int = 0
    #: pipeline fill (depth - 1 cycles to first retire)
    fill_cycles: int = 0
    #: RAW-hazard bubbles whose binding producer was an ALU result
    raw_stalls: int = 0
    #: RAW-hazard bubbles whose binding producer was a load
    load_use_stalls: int = 0
    #: wrong-path fetch cycles squashed on branch mispredictions
    control_stalls: int = 0
    #: pipeline-drain cycles for window overflow/underflow handlers
    window_stalls: int = 0
    #: extra EX/MEM occupancy of multi-cycle instructions (the memory
    #: port for RISC I loads/stores; microcode iteration for the VAX)
    structural_stalls: int = 0
    #: conditional branches resolved / predicted correctly / taken
    branches: int = 0
    branch_hits: int = 0
    branches_taken: int = 0
    #: conditional branches still unresolved when the run halted
    branches_unresolved: int = 0
    #: dynamic delayed-branch slots: total, carrying useful work, nops
    delay_slots: int = 0
    delay_slots_filled: int = 0
    delay_slot_nops: int = 0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def mispredicts(self) -> int:
        return self.branches - self.branch_hits

    @property
    def predictor_accuracy(self) -> float:
        return self.branch_hits / self.branches if self.branches else 1.0

    @property
    def stall_cycles(self) -> int:
        return (
            self.raw_stalls
            + self.load_use_stalls
            + self.control_stalls
            + self.window_stalls
            + self.structural_stalls
        )

    @property
    def slot_fill_rate(self) -> float:
        return self.delay_slots_filled / self.delay_slots if self.delay_slots else 0.0

    def stall_breakdown(self) -> dict[str, int]:
        """Stall cycles per bucket, in :data:`STALL_KINDS` order."""
        return {
            "raw": self.raw_stalls,
            "load_use": self.load_use_stalls,
            "control": self.control_stalls,
            "window": self.window_stalls,
            "structural": self.structural_stalls,
        }

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        # derived values are serialized too so ledger records and
        # BENCH_*.json files are self-describing without this class
        payload["cpi"] = round(self.cpi, 4)
        payload["mispredicts"] = self.mispredicts
        payload["predictor_accuracy"] = round(self.predictor_accuracy, 4)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "PipelineStats":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})

    def summary(self) -> str:
        """A human-readable block, in the style of ``ExecutionStats.summary``."""
        config = UarchConfig.from_dict(self.config) if self.config else UarchConfig()
        lines = [
            f"pipeline model        : {config.depth}-stage, {config.label}",
            f"pipeline cycles       : {self.cycles}",
            f"pipeline CPI          : {self.cpi:.3f}",
            "stalls                : "
            f"raw {self.raw_stalls}, load-use {self.load_use_stalls}, "
            f"control {self.control_stalls}, window {self.window_stalls}, "
            f"structural {self.structural_stalls}",
            f"cond branches         : {self.branches} "
            f"({self.branches_taken} taken, {self.mispredicts} mispredicted, "
            f"{100.0 * self.predictor_accuracy:.1f}% accuracy)",
            f"delay slots           : {self.delay_slots} "
            f"({self.delay_slots_filled} filled, {self.delay_slot_nops} nops)",
        ]
        return "\n".join(lines)


class PipelineModel:
    """Cycle accounting for one run, fed one retired instruction at a time.

    Adapters (:mod:`repro.uarch.adapters`) translate each machine's
    retired stream into :meth:`observe` calls using abstract register
    ids (physical indices for RISC I so window overlap aliases
    correctly, architectural numbers for the VAX).  The model never
    touches machine state.
    """

    def __init__(self, config: UarchConfig | None = None, machine: str = "risc1",
                 tracer=None):
        self.config = config or UarchConfig()
        self.machine = machine
        self.predictor = make_predictor(self.config)
        self.stats = PipelineStats(machine=machine, config=self.config.to_dict())
        self._alu_lat, self._load_lat = _LATENCIES[self.config.forwarding]
        #: EX cycle of the previous issue; first instruction's EX is 2
        self._next_free = 2
        self._issued = 0
        #: reg id -> (producer EX cycle, producer was a load)
        self._avail: dict[int, tuple[int, bool]] = {}
        #: unresolved conditional branches: [retires left, pc, predicted
        #: taken, fall-through pc]
        self._pending: list[list] = []
        self._in_delay_slot = False
        self._tracer = tracer
        self._trace_stall = tracer is not None and tracer.wants(EventKind.PIPE_STALL)

    # -- feeding -----------------------------------------------------------

    def note_window_cycles(self, cycles: int) -> None:
        """Charge a window overflow/underflow handler's drain cycles."""
        if cycles > 0:
            self._next_free += cycles
            self.stats.window_stalls += cycles
            if self._trace_stall:
                self._tracer.pipe_stall(self._next_free, 0, "window", cycles)

    def observe(
        self,
        pc: int,
        reads: tuple,
        writes: tuple,
        *,
        is_load: bool = False,
        occupancy: int = 1,
        delayed: bool = False,
        conditional: bool = False,
        static_target: int | None = None,
        fallthrough: int | None = None,
        resolve_after: int = 2,
        is_nop: bool = False,
    ) -> None:
        """Account one retired instruction.

        ``reads``/``writes`` are abstract register ids; ``occupancy`` is
        the EX/MEM cycles the instruction holds the pipe (loads/stores
        hold the memory port, VAX instructions their microcode);
        ``delayed`` marks a control transfer with a delay slot;
        ``conditional`` opts the transfer into branch prediction, with
        the outcome read from the retired PC stream ``resolve_after``
        retires later (2 for delayed-branch machines: slot, then the
        resolved-path instruction).
        """
        stats = self.stats
        stats.instructions += 1

        # resolve conditional branches whose outcome this pc reveals
        if self._pending:
            still = []
            for entry in self._pending:
                entry[0] -= 1
                if entry[0] > 0:
                    still.append(entry)
                    continue
                taken = pc != entry[3]
                self.predictor.update(entry[1], taken)
                stats.branches += 1
                if taken:
                    stats.branches_taken += 1
                if entry[2] == taken:
                    stats.branch_hits += 1
                else:
                    penalty = self.config.mispredict_penalty
                    self._next_free += penalty
                    stats.control_stalls += penalty
                    if self._trace_stall and penalty:
                        self._tracer.pipe_stall(self._next_free, entry[1], "control", penalty)
            self._pending = still

        # delayed-branch slot accounting
        if self._in_delay_slot:
            self._in_delay_slot = False
            stats.delay_slots += 1
            if is_nop:
                stats.delay_slot_nops += 1
            else:
                stats.delay_slots_filled += 1

        # RAW hazards against the forwarding matrix
        earliest = self._next_free
        ex = earliest
        if reads:
            avail = self._avail
            binding_load = False
            for reg in reads:
                producer = avail.get(reg)
                if producer is None:
                    continue
                ready = producer[0] + (self._load_lat if producer[1] else self._alu_lat)
                if ready > ex:
                    ex = ready
                    binding_load = producer[1]
            stall = ex - earliest
            if stall:
                if binding_load:
                    stats.load_use_stalls += stall
                else:
                    stats.raw_stalls += stall
                if self._trace_stall:
                    self._tracer.pipe_stall(
                        ex, pc, "load_use" if binding_load else "raw", stall
                    )

        # issue: occupy EX/MEM for this instruction's cycles
        self._issued += 1
        self._next_free = ex + occupancy
        if occupancy > 1:
            stats.structural_stalls += occupancy - 1

        for reg in writes:
            self._avail[reg] = (ex, is_load)

        if delayed:
            self._in_delay_slot = True
        if conditional:
            predicted = self.predictor.predict(pc, static_target)
            self._pending.append([resolve_after, pc, predicted, fallthrough])

    # -- finishing ---------------------------------------------------------

    def finalize(self) -> PipelineStats:
        """Close the run and return the finished :class:`PipelineStats`.

        Branches whose outcome the halt cut off are counted as
        unresolved, not guessed.
        """
        stats = self.stats
        stats.branches_unresolved = len(self._pending)
        self._pending = []
        if self._issued:
            depth = self.config.depth
            stats.fill_cycles = depth - 1
            # last EX cycle was _next_free - occupancy; the last
            # instruction leaves the pipe (depth - 2) cycles after its
            # EX-completion cycle, and cycle indices start at 0
            stats.cycles = self._next_free + depth - 3
        return stats
