"""Configuration of the 5-stage pipeline timing model.

One frozen :class:`UarchConfig` names everything the model can vary —
the forwarding matrix, the branch predictor and its table size, the
misprediction flush cost, and the memory-port occupancy of a load or
store — so a configuration is hashable (usable as a cache or table key)
and serializes to the one-line ``KEY=VALUE,...`` spec the ``--uarch``
CLI flags accept.
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "DEFAULT_UARCH",
    "FORWARDING_MODES",
    "PREDICTORS",
    "UarchConfig",
    "parse_uarch_config",
    "resolve_uarch",
]

#: Forwarding matrix settings, from no bypass network to a full one:
#:
#: * ``none``  — every result reaches consumers through the register file
#:   (written in WB, read in ID with write-first/read-second semantics);
#: * ``ex``    — the EX→EX ALU bypass only; load results still wait for WB;
#: * ``full``  — ALU EX→EX plus the MEM→EX load path (the classic
#:   interlock: one bubble only when a load's value is used by the very
#:   next instruction).
FORWARDING_MODES = ("none", "ex", "full")

#: Branch predictor hierarchy, weakest to strongest.
PREDICTORS = ("not_taken", "backward", "bht2")


@dataclasses.dataclass(frozen=True)
class UarchConfig:
    """One pipeline-model configuration (hashable, serializable)."""

    #: forwarding matrix, one of :data:`FORWARDING_MODES`
    forwarding: str = "full"
    #: branch predictor, one of :data:`PREDICTORS`
    predictor: str = "bht2"
    #: entries in the 2-bit branch history table (power of two)
    bht_entries: int = 256
    #: cycles squashed when a conditional branch was predicted wrong
    #: (the wrong-path fetches between IF and the EX resolution)
    mispredict_penalty: int = 2
    #: EX/MEM occupancy of a load or store — 2 matches the machine's
    #: two-cycle memory instructions (one memory port, no cache)
    mem_port_cycles: int = 2
    #: pipeline depth; 5 is IF/ID/EX/MEM/WB
    depth: int = 5

    def __post_init__(self):
        if self.forwarding not in FORWARDING_MODES:
            raise ValueError(
                f"unknown forwarding mode {self.forwarding!r}; "
                f"expected one of {', '.join(FORWARDING_MODES)}"
            )
        if self.predictor not in PREDICTORS:
            raise ValueError(
                f"unknown predictor {self.predictor!r}; "
                f"expected one of {', '.join(PREDICTORS)}"
            )
        if self.bht_entries < 1 or self.bht_entries & (self.bht_entries - 1):
            raise ValueError(f"bht_entries must be a power of two, got {self.bht_entries}")
        if self.mispredict_penalty < 0:
            raise ValueError("mispredict_penalty must be >= 0")
        if self.mem_port_cycles < 1:
            raise ValueError("mem_port_cycles must be >= 1")
        if self.depth < 3:
            raise ValueError("the model needs at least IF/ID/EX stages")

    @property
    def label(self) -> str:
        """Short display name, e.g. ``bht2/full``."""
        return f"{self.predictor}/{self.forwarding}"

    def spec(self) -> str:
        """The canonical ``KEY=VALUE,...`` form :func:`parse_uarch_config` reads."""
        return (
            f"predictor={self.predictor},forwarding={self.forwarding},"
            f"bht={self.bht_entries},mispredict={self.mispredict_penalty}"
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "UarchConfig":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})


#: The configuration a bare ``--uarch`` means.
DEFAULT_UARCH = UarchConfig()

_KEY_ALIASES = {
    "predictor": "predictor",
    "pred": "predictor",
    "forwarding": "forwarding",
    "fwd": "forwarding",
    "bht": "bht_entries",
    "bht_entries": "bht_entries",
    "mispredict": "mispredict_penalty",
    "mispredict_penalty": "mispredict_penalty",
    "mem": "mem_port_cycles",
    "mem_port_cycles": "mem_port_cycles",
    "depth": "depth",
}

_INT_FIELDS = ("bht_entries", "mispredict_penalty", "mem_port_cycles", "depth")


def parse_uarch_config(spec: str) -> UarchConfig:
    """Parse a ``--uarch`` spec into a :class:`UarchConfig`.

    Accepts comma- (or slash-) separated tokens; each is either a
    ``key=value`` pair (keys: ``predictor``, ``forwarding``, ``bht``,
    ``mispredict``, ``mem``, ``depth``) or a bare predictor / forwarding
    name.  ``"base"``, ``"default"`` and the empty string name the
    default configuration::

        parse_uarch_config("bht2/full")
        parse_uarch_config("predictor=backward,mispredict=3")
    """
    text = (spec or "").strip().lower()
    if text in ("", "base", "default", "on", "1", "true"):
        return DEFAULT_UARCH
    values: dict = {}
    for token in text.replace("/", ",").split(","):
        token = token.strip()
        if not token:
            continue
        if "=" in token:
            key, _, value = token.partition("=")
            field = _KEY_ALIASES.get(key.strip())
            if field is None:
                raise ValueError(
                    f"unknown uarch key {key.strip()!r} in {spec!r} "
                    f"(known: {', '.join(sorted(set(_KEY_ALIASES)))})"
                )
            value = value.strip()
            if field in _INT_FIELDS:
                try:
                    values[field] = int(value)
                except ValueError:
                    raise ValueError(f"uarch key {key!r} needs an integer, got {value!r}")
            else:
                values[field] = value
        elif token in PREDICTORS:
            values["predictor"] = token
        elif token in FORWARDING_MODES:
            values["forwarding"] = token
        else:
            raise ValueError(
                f"unknown uarch token {token!r} in {spec!r} (expected KEY=VALUE, "
                f"a predictor: {', '.join(PREDICTORS)}, "
                f"or a forwarding mode: {', '.join(FORWARDING_MODES)})"
            )
    return UarchConfig(**values)


def resolve_uarch(uarch) -> UarchConfig | None:
    """Normalize a ``run(uarch=...)`` argument.

    ``None``/``False`` mean off; ``True`` means the default configuration;
    strings go through :func:`parse_uarch_config`; a :class:`UarchConfig`
    passes through.
    """
    if uarch is None or uarch is False:
        return None
    if uarch is True:
        return DEFAULT_UARCH
    if isinstance(uarch, UarchConfig):
        return uarch
    if isinstance(uarch, str):
        return parse_uarch_config(uarch)
    raise TypeError(f"uarch must be None, bool, str or UarchConfig, not {type(uarch)!r}")
