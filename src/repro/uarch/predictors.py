"""The branch predictor hierarchy of the pipeline timing model.

Three predictors, in increasing strength, all sharing one two-method
interface — ``predict(pc, static_target)`` before the branch resolves and
``update(pc, taken)`` after — so the pipeline model is predictor-agnostic:

* **always-not-taken** — what a pipeline with no prediction hardware
  does: keep fetching sequentially and squash on a taken branch;
* **static backward-taken** — the classic compile-time heuristic: a
  branch whose target lies *behind* it closes a loop and is predicted
  taken; forward (and register-indirect, target-unknown) branches are
  predicted not taken;
* **2-bit BHT** — a direct-mapped table of two-bit saturating counters
  indexed by the branch PC, the paper-era dynamic predictor (Smith 1981,
  contemporaneous with RISC I itself).

Predictors are pure decision state; hit/miss accounting lives in the
pipeline model so every predictor is scored identically.
"""

from __future__ import annotations

from repro.uarch.config import UarchConfig

__all__ = [
    "AlwaysNotTaken",
    "BackwardTaken",
    "TwoBitBHT",
    "make_predictor",
]


class AlwaysNotTaken:
    """Predict fall-through for every conditional branch."""

    name = "not_taken"

    def predict(self, pc: int, static_target: int | None) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass


class BackwardTaken:
    """Static heuristic: backward branches (loops) taken, forward not.

    Register-indirect branches have no static target and predict not
    taken.
    """

    name = "backward"

    def predict(self, pc: int, static_target: int | None) -> bool:
        return static_target is not None and static_target < pc

    def update(self, pc: int, taken: bool) -> None:
        pass


class TwoBitBHT:
    """Direct-mapped branch history table of 2-bit saturating counters.

    Counter states 0/1 predict not taken, 2/3 taken; one mispredict from
    a saturated state only weakens the prediction, so a loop-closing
    branch survives its single exit mispredict per trip.  Counters start
    at 1 (weakly not taken).  Word-aligned PCs index the table with the
    low bits above the alignment.
    """

    name = "bht2"

    def __init__(self, entries: int = 256):
        if entries < 1 or entries & (entries - 1):
            raise ValueError(f"BHT entries must be a power of two, got {entries}")
        self.entries = entries
        self.table = [1] * entries
        self._mask = entries - 1

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int, static_target: int | None) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self.table[index]
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        elif counter > 0:
            self.table[index] = counter - 1


def make_predictor(config: UarchConfig):
    """Instantiate the predictor a configuration names."""
    if config.predictor == "not_taken":
        return AlwaysNotTaken()
    if config.predictor == "backward":
        return BackwardTaken()
    if config.predictor == "bht2":
        return TwoBitBHT(config.bht_entries)
    raise ValueError(f"unknown predictor {config.predictor!r}")
