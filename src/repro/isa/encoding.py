"""Binary instruction encoding for RISC I.

Every RISC I instruction is exactly 32 bits.  There are two layouts:

Short-immediate format (most instructions)::

    31       25  24  23    19  18    14  13  12            0
    +----------+---+--------+--------+---+-----------------+
    |  opcode  |scc|  dest  |  rs1   |imm|       s2        |
    +----------+---+--------+--------+---+-----------------+
       7 bits    1    5        5       1       13 bits

    imm = 0: s2<4:0> names a register; imm = 1: s2 is a sign-extended
    13-bit immediate.

Long-immediate format (LDHI, JMPR, CALLR)::

    31       25  24  23    19  18                          0
    +----------+---+--------+-----------------------------+
    |  opcode  |scc|  dest  |              Y              |
    +----------+---+--------+-----------------------------+
       7 bits    1    5                19 bits

Conditional jumps reuse the ``dest`` field to hold the 4-bit condition.
"""

from __future__ import annotations

import dataclasses

from repro.isa.conditions import Cond
from repro.isa.opcodes import Format, Opcode, opcode_info

#: Instruction width in bytes; fixed, one of the core RISC I design rules.
INSTRUCTION_BYTES = 4

S2_BITS = 13
Y_BITS = 19
S2_MIN = -(1 << (S2_BITS - 1))
S2_MAX = (1 << (S2_BITS - 1)) - 1
Y_MIN = -(1 << (Y_BITS - 1))
Y_MAX = (1 << (Y_BITS - 1)) - 1


class EncodingError(ValueError):
    """Raised when an instruction's fields do not fit its format."""


def _check_range(name: str, value: int, lo: int, hi: int) -> None:
    if not lo <= value <= hi:
        raise EncodingError(f"{name}={value} out of range [{lo}, {hi}]")


@dataclasses.dataclass(frozen=True)
class Instruction:
    """A decoded RISC I instruction.

    ``dest`` holds the destination register for most instructions, the
    source register for stores/PUTPSW, and the jump condition for JMP/JMPR.
    For the short format, ``s2`` is a register number when ``imm`` is False
    and a signed 13-bit immediate when ``imm`` is True.  For the long
    format, ``y`` is the signed 19-bit immediate and the other operand
    fields are ignored.
    """

    opcode: Opcode
    dest: int = 0
    rs1: int = 0
    s2: int = 0
    imm: bool = False
    y: int = 0
    scc: bool = False

    @property
    def format(self) -> Format:
        return opcode_info(self.opcode).format

    @property
    def cond(self) -> Cond:
        """The jump condition (only meaningful for JMP/JMPR)."""
        return Cond(self.dest & 0xF)

    @classmethod
    def short(
        cls,
        opcode: Opcode,
        dest: int = 0,
        rs1: int = 0,
        s2: int = 0,
        imm: bool = False,
        scc: bool = False,
    ) -> "Instruction":
        """Build and validate a short-format instruction."""
        inst = cls(opcode=opcode, dest=dest, rs1=rs1, s2=s2, imm=imm, scc=scc)
        inst.validate()
        return inst

    @classmethod
    def long(cls, opcode: Opcode, dest: int = 0, y: int = 0, scc: bool = False) -> "Instruction":
        """Build and validate a long-format instruction."""
        inst = cls(opcode=opcode, dest=dest, y=y, scc=scc)
        inst.validate()
        return inst

    def validate(self) -> None:
        """Raise :class:`EncodingError` if any field is out of range."""
        info = opcode_info(self.opcode)
        _check_range("dest", self.dest, 0, 31)
        if info.format is Format.LONG:
            _check_range("y", self.y, Y_MIN, Y_MAX)
            return
        _check_range("rs1", self.rs1, 0, 31)
        if self.imm:
            _check_range("s2", self.s2, S2_MIN, S2_MAX)
        else:
            _check_range("s2 (register)", self.s2, 0, 31)


def encode(inst: Instruction) -> int:
    """Encode an instruction into its 32-bit binary word."""
    inst.validate()
    word = (int(inst.opcode) & 0x7F) << 25
    word |= (1 if inst.scc else 0) << 24
    word |= (inst.dest & 0x1F) << 19
    if inst.format is Format.LONG:
        word |= inst.y & ((1 << Y_BITS) - 1)
    else:
        word |= (inst.rs1 & 0x1F) << 14
        word |= (1 if inst.imm else 0) << 13
        word |= inst.s2 & ((1 << S2_BITS) - 1)
    return word


def _sign_extend(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def decode(word: int) -> Instruction:
    """Decode a 32-bit binary word into an :class:`Instruction`.

    Raises :class:`EncodingError` for an opcode that is not one of the 31
    RISC I instructions (this models the illegal-instruction trap).
    """
    if not 0 <= word <= 0xFFFFFFFF:
        raise EncodingError(f"instruction word out of 32-bit range: {word:#x}")
    opcode_num = (word >> 25) & 0x7F
    try:
        opcode = Opcode(opcode_num)
    except ValueError:
        raise EncodingError(f"illegal opcode {opcode_num:#04x} in word {word:#010x}") from None

    scc = bool((word >> 24) & 1)
    dest = (word >> 19) & 0x1F
    if opcode_info(opcode).format is Format.LONG:
        return Instruction(opcode=opcode, dest=dest, scc=scc, y=_sign_extend(word, Y_BITS))

    rs1 = (word >> 14) & 0x1F
    imm = bool((word >> 13) & 1)
    raw_s2 = word & ((1 << S2_BITS) - 1)
    s2 = _sign_extend(raw_s2, S2_BITS) if imm else raw_s2 & 0x1F
    return Instruction(opcode=opcode, dest=dest, rs1=rs1, s2=s2, imm=imm, scc=scc)


def format_fields(fmt: Format) -> tuple[tuple[str, int], ...]:
    """Return the (name, width) bit-field layout of a format, MSB first.

    Used by the Figure-2 (instruction formats) reproduction.
    """
    if fmt is Format.SHORT:
        return (("opcode", 7), ("scc", 1), ("dest", 5), ("rs1", 5), ("imm", 1), ("s2", 13))
    return (("opcode", 7), ("scc", 1), ("dest", 5), ("y", 19))
