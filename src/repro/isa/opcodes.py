"""The 31 instructions of RISC I.

The paper's Table III lists the complete instruction set: 12 arithmetic and
logical instructions, 8 memory-access instructions (five loads, three
stores), 7 control-transfer instructions, and 4 miscellaneous instructions.
This module is the single source of truth for the instruction set; the
assembler, disassembler, simulator, code generator and the Table III
reproduction all derive from :data:`INSTRUCTION_SET_TABLE`.
"""

from __future__ import annotations

import dataclasses
import enum


class Category(enum.Enum):
    """Instruction category, matching the grouping in the paper's table."""

    ARITH = "arithmetic/logical"
    MEMORY = "memory access"
    CONTROL = "control transfer"
    MISC = "miscellaneous"


class Format(enum.Enum):
    """Instruction encoding format.

    RISC I has a single 32-bit instruction size with two layouts:

    * ``SHORT``: ``opcode(7) | scc(1) | dest(5) | rs1(5) | imm(1) | s2(13)``
      where ``s2`` is a register number when ``imm`` is 0 and a
      sign-extended 13-bit immediate when ``imm`` is 1.
    * ``LONG``: ``opcode(7) | scc(1) | dest(5) | y(19)`` with a 19-bit
      immediate (used by LDHI and the PC-relative jump and call).
    """

    SHORT = "short"
    LONG = "long"


class Opcode(enum.IntEnum):
    """Machine opcodes (7-bit field).

    The concrete numeric assignment below is our own (the paper does not
    publish the opcode map); what matters architecturally is that there are
    31 instructions and the opcode field is 7 bits wide.
    """

    # -- arithmetic / logical (12) ------------------------------------
    ADD = 0x01
    ADDC = 0x02
    SUB = 0x03
    SUBC = 0x04
    SUBR = 0x05
    SUBCR = 0x06
    AND = 0x07
    OR = 0x08
    XOR = 0x09
    SLL = 0x0A
    SRL = 0x0B
    SRA = 0x0C
    # -- memory access (8) --------------------------------------------
    LDL = 0x10
    LDSU = 0x11
    LDSS = 0x12
    LDBU = 0x13
    LDBS = 0x14
    STL = 0x18
    STS = 0x19
    STB = 0x1A
    # -- control transfer (7) -----------------------------------------
    JMP = 0x20
    JMPR = 0x21
    CALL = 0x22
    CALLR = 0x23
    RET = 0x24
    CALLINT = 0x25
    RETINT = 0x26
    # -- miscellaneous (4) ----------------------------------------------
    LDHI = 0x30
    GTLPC = 0x31
    GETPSW = 0x32
    PUTPSW = 0x33


@dataclasses.dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one instruction (one row of Table III)."""

    opcode: Opcode
    mnemonic: str
    category: Category
    format: Format
    operands: str
    semantics: str
    comment: str
    #: Execution time in processor cycles (1 for register ops, 2 for
    #: instructions that make a data-memory access).
    cycles: int
    #: Whether the instruction reads or writes data memory.
    memory_access: bool = False
    #: Whether the instruction is a delayed control transfer.
    delayed: bool = False
    #: Whether the SCC (set condition codes) bit is meaningful.
    may_set_cc: bool = False


def _arith(op: Opcode, sem: str, comment: str) -> OpcodeInfo:
    return OpcodeInfo(
        opcode=op,
        mnemonic=op.name.lower(),
        category=Category.ARITH,
        format=Format.SHORT,
        operands="Rs,S2,Rd",
        semantics=sem,
        comment=comment,
        cycles=1,
        may_set_cc=True,
    )


def _load(op: Opcode, sem: str, comment: str) -> OpcodeInfo:
    return OpcodeInfo(
        opcode=op,
        mnemonic=op.name.lower(),
        category=Category.MEMORY,
        format=Format.SHORT,
        operands="(Rs)S2,Rd",
        semantics=sem,
        comment=comment,
        cycles=2,
        memory_access=True,
    )


def _store(op: Opcode, sem: str, comment: str) -> OpcodeInfo:
    return OpcodeInfo(
        opcode=op,
        mnemonic=op.name.lower(),
        category=Category.MEMORY,
        format=Format.SHORT,
        operands="Rm,(Rs)S2",
        semantics=sem,
        comment=comment,
        cycles=2,
        memory_access=True,
    )


#: The complete RISC I instruction set — exactly 31 instructions.
INSTRUCTION_SET_TABLE: tuple[OpcodeInfo, ...] = (
    _arith(Opcode.ADD, "Rd := Rs + S2", "integer add"),
    _arith(Opcode.ADDC, "Rd := Rs + S2 + carry", "add with carry"),
    _arith(Opcode.SUB, "Rd := Rs - S2", "integer subtract"),
    _arith(Opcode.SUBC, "Rd := Rs - S2 - ~carry", "subtract with carry"),
    _arith(Opcode.SUBR, "Rd := S2 - Rs", "integer subtract, reversed"),
    _arith(Opcode.SUBCR, "Rd := S2 - Rs - ~carry", "subtract with carry, reversed"),
    _arith(Opcode.AND, "Rd := Rs & S2", "logical AND"),
    _arith(Opcode.OR, "Rd := Rs | S2", "logical OR"),
    _arith(Opcode.XOR, "Rd := Rs xor S2", "logical EXCLUSIVE OR"),
    _arith(Opcode.SLL, "Rd := Rs shifted by S2", "shift left logical"),
    _arith(Opcode.SRL, "Rd := Rs shifted by S2", "shift right logical"),
    _arith(Opcode.SRA, "Rd := Rs shifted by S2", "shift right arithmetic"),
    _load(Opcode.LDL, "Rd := M[Rs + S2]", "load long (32-bit word)"),
    _load(Opcode.LDSU, "Rd := M[Rs + S2]", "load short unsigned (16-bit)"),
    _load(Opcode.LDSS, "Rd := M[Rs + S2]", "load short signed (16-bit)"),
    _load(Opcode.LDBU, "Rd := M[Rs + S2]", "load byte unsigned"),
    _load(Opcode.LDBS, "Rd := M[Rs + S2]", "load byte signed"),
    _store(Opcode.STL, "M[Rs + S2] := Rm", "store long (32-bit word)"),
    _store(Opcode.STS, "M[Rs + S2] := Rm", "store short (16-bit)"),
    _store(Opcode.STB, "M[Rs + S2] := Rm", "store byte"),
    OpcodeInfo(
        opcode=Opcode.JMP,
        mnemonic="jmp",
        category=Category.CONTROL,
        format=Format.SHORT,
        operands="COND,S2(Rs)",
        semantics="pc := Rs + S2",
        comment="conditional jump, delayed",
        cycles=1,
        delayed=True,
    ),
    OpcodeInfo(
        opcode=Opcode.JMPR,
        mnemonic="jmpr",
        category=Category.CONTROL,
        format=Format.LONG,
        operands="COND,Y",
        semantics="pc := pc + Y",
        comment="conditional relative jump, delayed",
        cycles=1,
        delayed=True,
    ),
    OpcodeInfo(
        opcode=Opcode.CALL,
        mnemonic="call",
        category=Category.CONTROL,
        format=Format.SHORT,
        operands="Rd,S2(Rs)",
        semantics="Rd := pc; pc := Rs + S2; CWP := CWP + 1",
        comment="call procedure and change window, delayed",
        cycles=1,
        delayed=True,
    ),
    OpcodeInfo(
        opcode=Opcode.CALLR,
        mnemonic="callr",
        category=Category.CONTROL,
        format=Format.LONG,
        operands="Rd,Y",
        semantics="Rd := pc; pc := pc + Y; CWP := CWP + 1",
        comment="call relative and change window, delayed",
        cycles=1,
        delayed=True,
    ),
    OpcodeInfo(
        opcode=Opcode.RET,
        mnemonic="ret",
        category=Category.CONTROL,
        format=Format.SHORT,
        operands="Rm,S2",
        semantics="pc := Rm + S2; CWP := CWP - 1",
        comment="return and restore window, delayed",
        cycles=1,
        delayed=True,
    ),
    OpcodeInfo(
        opcode=Opcode.CALLINT,
        mnemonic="callint",
        category=Category.CONTROL,
        format=Format.SHORT,
        operands="Rd",
        semantics="Rd := last pc; CWP := CWP + 1",
        comment="disable interrupts, enter trap window",
        cycles=1,
    ),
    OpcodeInfo(
        opcode=Opcode.RETINT,
        mnemonic="retint",
        category=Category.CONTROL,
        format=Format.SHORT,
        operands="Rm,S2",
        semantics="pc := Rm + S2; CWP := CWP - 1",
        comment="enable interrupts, exit trap window, delayed",
        cycles=1,
        delayed=True,
    ),
    OpcodeInfo(
        opcode=Opcode.LDHI,
        mnemonic="ldhi",
        category=Category.MISC,
        format=Format.LONG,
        operands="Rd,Y",
        semantics="Rd<31:13> := Y; Rd<12:0> := 0",
        comment="load immediate high (build 32-bit constants)",
        cycles=1,
    ),
    OpcodeInfo(
        opcode=Opcode.GTLPC,
        mnemonic="gtlpc",
        category=Category.MISC,
        format=Format.SHORT,
        operands="Rd",
        semantics="Rd := last pc",
        comment="restart delayed jump after interrupt",
        cycles=1,
    ),
    OpcodeInfo(
        opcode=Opcode.GETPSW,
        mnemonic="getpsw",
        category=Category.MISC,
        format=Format.SHORT,
        operands="Rd",
        semantics="Rd := PSW",
        comment="read processor status word",
        cycles=1,
    ),
    OpcodeInfo(
        opcode=Opcode.PUTPSW,
        mnemonic="putpsw",
        category=Category.MISC,
        format=Format.SHORT,
        operands="Rm",
        semantics="PSW := Rm",
        comment="write processor status word",
        cycles=1,
    ),
)

#: All opcodes, in table order.
ALL_OPCODES: tuple[Opcode, ...] = tuple(info.opcode for info in INSTRUCTION_SET_TABLE)

_BY_OPCODE: dict[Opcode, OpcodeInfo] = {info.opcode: info for info in INSTRUCTION_SET_TABLE}
_BY_MNEMONIC: dict[str, OpcodeInfo] = {
    info.mnemonic: info for info in INSTRUCTION_SET_TABLE
}


def opcode_info(key: "Opcode | str | int") -> OpcodeInfo:
    """Look up instruction metadata by :class:`Opcode`, mnemonic or number."""
    if isinstance(key, str):
        try:
            return _BY_MNEMONIC[key.lower()]
        except KeyError:
            raise KeyError(f"unknown mnemonic: {key!r}") from None
    try:
        return _BY_OPCODE[Opcode(key)]
    except ValueError:
        raise KeyError(f"unknown opcode: {key!r}") from None
