"""Condition codes and jump conditions of RISC I.

RISC I carries four condition-code bits in the PSW — Z (zero), N (negative),
C (carry) and V (overflow) — set optionally by ALU instructions whose SCC
bit is on.  Conditional jumps select one of 16 conditions encoded in the
DEST field of the instruction.
"""

from __future__ import annotations

import dataclasses
import enum


@dataclasses.dataclass(frozen=True)
class ConditionCodes:
    """An immutable snapshot of the four PSW condition-code bits."""

    z: bool = False
    n: bool = False
    c: bool = False
    v: bool = False

    @classmethod
    def from_result(
        cls, result: int, carry: bool = False, overflow: bool = False
    ) -> "ConditionCodes":
        """Build condition codes from a 32-bit ALU result."""
        masked = result & 0xFFFFFFFF
        return cls(
            z=masked == 0,
            n=bool(masked & 0x80000000),
            c=carry,
            v=overflow,
        )


class Cond(enum.IntEnum):
    """The 16 jump conditions (4-bit encoding in the DEST field)."""

    NOP = 0  # never
    GT = 1  # greater (signed)
    LE = 2  # less or equal (signed)
    GE = 3  # greater or equal (signed)
    LT = 4  # less (signed)
    HI = 5  # higher (unsigned)
    LOS = 6  # lower or same (unsigned)
    LONC = 7  # lower / no carry (unsigned)
    HISC = 8  # higher or same / carry (unsigned)
    PL = 9  # plus (N clear)
    MI = 10  # minus (N set)
    NE = 11  # not equal
    EQ = 12  # equal
    NV = 13  # no overflow
    V = 14  # overflow
    ALW = 15  # always


#: Assembly mnemonics for each condition, as used in jump suffixes.
COND_MNEMONICS: dict[Cond, str] = {
    Cond.NOP: "nop",
    Cond.GT: "gt",
    Cond.LE: "le",
    Cond.GE: "ge",
    Cond.LT: "lt",
    Cond.HI: "hi",
    Cond.LOS: "los",
    Cond.LONC: "lo",
    Cond.HISC: "hs",
    Cond.PL: "pl",
    Cond.MI: "mi",
    Cond.NE: "ne",
    Cond.EQ: "eq",
    Cond.NV: "nv",
    Cond.V: "v",
    Cond.ALW: "alw",
}

MNEMONIC_CONDS: dict[str, Cond] = {name: cond for cond, name in COND_MNEMONICS.items()}


def cond_holds(cond: Cond, cc: ConditionCodes) -> bool:
    """Evaluate a jump condition against condition codes.

    The signed comparisons follow the standard two's-complement recipes,
    e.g. LT is ``N xor V`` and LE is ``Z or (N xor V)``.
    """
    if cond is Cond.NOP:
        return False
    if cond is Cond.ALW:
        return True
    if cond is Cond.EQ:
        return cc.z
    if cond is Cond.NE:
        return not cc.z
    if cond is Cond.MI:
        return cc.n
    if cond is Cond.PL:
        return not cc.n
    if cond is Cond.V:
        return cc.v
    if cond is Cond.NV:
        return not cc.v
    if cond is Cond.LT:
        return cc.n != cc.v
    if cond is Cond.GE:
        return cc.n == cc.v
    if cond is Cond.GT:
        return not cc.z and cc.n == cc.v
    if cond is Cond.LE:
        return cc.z or cc.n != cc.v
    if cond is Cond.HI:
        return cc.c and not cc.z
    if cond is Cond.LOS:
        return not cc.c or cc.z
    if cond is Cond.HISC:
        return cc.c
    if cond is Cond.LONC:
        return not cc.c
    raise ValueError(f"unknown condition: {cond!r}")
