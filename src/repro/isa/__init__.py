"""The RISC I instruction set architecture.

This package defines the architecture exactly as described in the ISCA 1981
paper: the 31 instructions, the two 32-bit instruction formats
(short-immediate and long-immediate), the condition-code model, and the
register-window visibility map (10 GLOBAL, 6 HIGH, 10 LOCAL, 6 LOW registers
visible at any time, with HIGH/LOW overlap between adjacent windows).

The definitions here are pure data plus encode/decode logic; the machine
state lives in :mod:`repro.machine` and execution semantics in
:mod:`repro.core`.
"""

from repro.isa.conditions import Cond, cond_holds
from repro.isa.encoding import (
    Format,
    Instruction,
    decode,
    encode,
)
from repro.isa.opcodes import (
    ALL_OPCODES,
    INSTRUCTION_SET_TABLE,
    Category,
    Opcode,
    OpcodeInfo,
    opcode_info,
)
from repro.isa.registers import (
    GLOBAL_REGS,
    HIGH_REGS,
    LOCAL_REGS,
    LOW_REGS,
    NUM_VISIBLE_REGS,
    NUM_WINDOWS,
    REGS_PER_WINDOW,
    TOTAL_PHYSICAL_REGS,
    WINDOW_OVERLAP,
    RegisterClass,
    classify_register,
    physical_index,
)

__all__ = [
    "ALL_OPCODES",
    "Category",
    "Cond",
    "Format",
    "GLOBAL_REGS",
    "HIGH_REGS",
    "INSTRUCTION_SET_TABLE",
    "Instruction",
    "LOCAL_REGS",
    "LOW_REGS",
    "NUM_VISIBLE_REGS",
    "NUM_WINDOWS",
    "Opcode",
    "OpcodeInfo",
    "REGS_PER_WINDOW",
    "RegisterClass",
    "TOTAL_PHYSICAL_REGS",
    "WINDOW_OVERLAP",
    "classify_register",
    "cond_holds",
    "decode",
    "encode",
    "opcode_info",
    "physical_index",
]
