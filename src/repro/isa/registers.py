"""Register-window organization of RISC I.

At any moment a RISC I program sees 32 registers, r0..r31, partitioned as:

======== ========= =====================================================
Visible  Class     Purpose
======== ========= =====================================================
r0..r9   GLOBAL    shared by all procedures; r0 is hard-wired to zero
r10..r15 LOW       outgoing parameters (the callee sees them as HIGH)
r16..r25 LOCAL     scratch registers private to the current procedure
r26..r31 HIGH      incoming parameters (the caller's LOW registers)
======== ========= =====================================================

A CALL advances the current window pointer (CWP) so that the caller's six
LOW registers become the callee's six HIGH registers; nothing is copied.
The physical register file therefore holds ``10 global + windows * 16``
registers — 138 for the 8-window design of the paper.

This module holds only the *mapping* from (window, visible register) to a
physical register index; the stateful register file lives in
:mod:`repro.machine.regfile`.
"""

from __future__ import annotations

import enum

#: Number of registers visible to a procedure at any time.
NUM_VISIBLE_REGS = 32

#: Number of overlapping register windows in the RISC I design.
NUM_WINDOWS = 8

#: Registers shared between adjacent windows (caller LOW == callee HIGH).
WINDOW_OVERLAP = 6

#: Non-overlapping registers contributed by each window (10 LOCAL + 6).
REGS_PER_WINDOW = 16

#: Visible register ranges, inclusive.
GLOBAL_REGS = range(0, 10)
LOW_REGS = range(10, 16)
LOCAL_REGS = range(16, 26)
HIGH_REGS = range(26, 32)

#: Size of the physical register file (138 in the paper's 8-window design).
TOTAL_PHYSICAL_REGS = len(GLOBAL_REGS) + NUM_WINDOWS * REGS_PER_WINDOW


class RegisterClass(enum.Enum):
    """Architectural class of a visible register number."""

    GLOBAL = "global"
    LOW = "low"
    LOCAL = "local"
    HIGH = "high"


def classify_register(reg: int) -> RegisterClass:
    """Return the :class:`RegisterClass` of visible register ``reg``.

    >>> classify_register(0)
    <RegisterClass.GLOBAL: 'global'>
    >>> classify_register(31)
    <RegisterClass.HIGH: 'high'>
    """
    if reg in GLOBAL_REGS:
        return RegisterClass.GLOBAL
    if reg in LOW_REGS:
        return RegisterClass.LOW
    if reg in LOCAL_REGS:
        return RegisterClass.LOCAL
    if reg in HIGH_REGS:
        return RegisterClass.HIGH
    raise ValueError(f"register number out of range 0..31: {reg}")


def physical_index(window: int, reg: int, num_windows: int = NUM_WINDOWS) -> int:
    """Map a visible register in a given window to its physical index.

    Physical indices 0..9 are the globals.  The windowed portion of the file
    is a circular buffer of ``num_windows * 16`` registers laid out so that
    window ``w``'s LOW registers coincide with window ``w+1``'s HIGH
    registers (a CALL increments CWP modulo ``num_windows``).

    Layout per window ``w`` (base ``B = 10 + 16*w``):

    * HIGH r26..r31  -> ``B + 0 .. B + 5``
    * LOCAL r16..r25 -> ``B + 6 .. B + 15``
    * LOW r10..r15   -> ``B + 16 .. B + 21`` (mod window span), i.e. the
      HIGH slots of window ``w + 1``.

    The overlap invariant — caller's ``r10+i`` is the same physical register
    as callee's ``r26+i`` — is what makes parameter passing free.
    """
    if not 0 <= reg < NUM_VISIBLE_REGS:
        raise ValueError(f"register number out of range 0..31: {reg}")
    if not 0 <= window < num_windows:
        raise ValueError(f"window out of range 0..{num_windows - 1}: {window}")

    cls = classify_register(reg)
    if cls is RegisterClass.GLOBAL:
        return reg

    span = num_windows * REGS_PER_WINDOW
    base = REGS_PER_WINDOW * window
    if cls is RegisterClass.HIGH:
        offset = base + (reg - HIGH_REGS.start)
    elif cls is RegisterClass.LOCAL:
        offset = base + WINDOW_OVERLAP + (reg - LOCAL_REGS.start)
    else:  # LOW: overlaps the next window's HIGH slots
        offset = base + REGS_PER_WINDOW + (reg - LOW_REGS.start)
    return len(GLOBAL_REGS) + offset % span


def total_physical_regs(num_windows: int) -> int:
    """Physical register-file size for a design with ``num_windows`` windows."""
    return len(GLOBAL_REGS) + num_windows * REGS_PER_WINDOW
