"""The time-travel debug session: seek, step, breakpoints, watchpoints.

A :class:`DebugSession` wraps one :class:`~repro.obs.record.Recording`
and maintains a live machine positioned at some *step index* — the count
of retired instructions, ``0`` at entry, ``recording.steps`` at the end
of the recorded span.  Motion primitives:

* forward: single ``step()`` calls (the reference path, bit-identical to
  the fast engine by the differential contract), with breakpoint checks
  before and watchpoint checks during each instruction;
* backward / ``seek``: restore the nearest checkpoint at or below the
  target and re-execute forward with chunked fast-engine runs;
* ``reverse_continue`` / ``last_write``: scan checkpoint regions
  backward, replaying each region forward on a scratch machine to
  collect hits, and land on the latest hit before the current position.

Everything is deterministic — the same session driven by the same
commands produces byte-identical output, which is what makes the
``--script`` transcripts diffable in CI.
"""

from __future__ import annotations

import dataclasses

from repro.core.api import MachineHalted
from repro.machine.traps import Trap
from repro.obs.record import Recording, advance
from repro.obs.symbols import Symbolizer

__all__ = ["Breakpoint", "DebugSession", "SpecError", "StopReason", "Watchpoint", "parse_breakpoint"]


class SpecError(ValueError):
    """A malformed breakpoint/watchpoint spec (user error, not a bug)."""


@dataclasses.dataclass
class Breakpoint:
    """One breakpoint: the user's spec and the PC set it resolved to."""

    number: int
    spec: str
    kind: str  # "pc" | "symbol" | "line"
    pcs: frozenset[int]

    def describe(self) -> str:
        pcs = ", ".join(f"{pc:#x}" for pc in sorted(self.pcs))
        return f"#{self.number} {self.kind} {self.spec} -> {pcs}"


@dataclasses.dataclass
class Watchpoint:
    """One watchpoint on a memory address range ``[address, address+length)``."""

    number: int
    spec: str
    address: int
    length: int

    def describe(self) -> str:
        label = f"#{self.number} " if self.number else ""
        return (
            f"{label}watch {self.spec} -> "
            f"[{self.address:#x}, {self.address + self.length:#x})"
        )

    def overlaps(self, address: int, width: int) -> bool:
        return address < self.address + self.length and self.address < address + width


@dataclasses.dataclass
class StopReason:
    """Why a motion command stopped: kind + human detail."""

    kind: str  # "step" | "breakpoint" | "watchpoint" | "halt" | "trap" | "end" | "begin"
    detail: str = ""

    def describe(self) -> str:
        return f"{self.kind}: {self.detail}" if self.detail else self.kind


def _parse_int(text: str) -> int | None:
    try:
        return int(text, 0)
    except ValueError:
        return None


def parse_breakpoint(
    spec: str, program, symbolizer: Symbolizer, machine: str = "risc1"
) -> tuple[str, frozenset[int]]:
    """Resolve a breakpoint spec to ``(kind, pcs)``.

    Accepted forms: a PC (``0x2048`` or decimal), a symbol/function name
    (``tower`` — breaks at its entry), or a C source line (``:12`` or
    ``line:12`` — breaks at the first instruction of every run of that
    line).  Raises :class:`SpecError` with an actionable message.
    """
    spec = spec.strip()
    if not spec:
        raise SpecError("empty breakpoint spec")
    line_text = None
    if spec.startswith(":"):
        line_text = spec[1:]
    elif spec.lower().startswith("line:"):
        line_text = spec[5:]
    if line_text is not None:
        line = _parse_int(line_text)
        if line is None or line < 1:
            raise SpecError(f"bad source line in breakpoint spec {spec!r}")
        pcs = set()
        previous = None
        for address in sorted(program.line_table):
            entry = program.line_table[address]
            if entry[1] == line and previous != line:
                pcs.add(address)
            previous = entry[1]
        if not pcs:
            raise SpecError(f"no code at source line {line}")
        return "line", frozenset(pcs)
    value = _parse_int(spec)
    if value is not None:
        return "pc", frozenset([value])
    # prefer the line table's first-instruction address: on the VAX-like
    # baseline a CALLS lands *past* the 2-byte entry mask, so the raw
    # symbol address is never an executed pc
    address = None
    for start, name in symbolizer._func_starts.items():
        if name == spec:
            address = start
            break
    if address is None:
        address = program.symbols.get(spec)
    if address is None:
        known = ", ".join(sorted(symbolizer.functions())) or "none"
        raise SpecError(f"unknown symbol {spec!r} (functions: {known})")
    pcs = {address}
    if machine == "cisc":
        # CALLS transfers to entry+2, past the 2-byte register-save mask
        pcs.add(address + 2)
    return "symbol", frozenset(pcs)


def parse_watch(spec: str, program) -> tuple[int, int]:
    """Resolve a watch spec ``ADDR[/LEN]`` or ``symbol[/LEN]`` to a range."""
    spec = spec.strip()
    if not spec:
        raise SpecError("empty watch spec")
    addr_text, _, len_text = spec.partition("/")
    length = 4
    if len_text:
        parsed = _parse_int(len_text)
        if parsed is None or parsed < 1:
            raise SpecError(f"bad length in watch spec {spec!r}")
        length = parsed
    address = _parse_int(addr_text)
    if address is None:
        address = program.symbols.get(addr_text)
    if address is None:
        raise SpecError(f"bad address or unknown symbol in watch spec {spec!r}")
    return address, length


class DebugSession:
    """Time-travel debugging over one recording."""

    def __init__(self, recording: Recording, *, engine: str | None = None):
        self.recording = recording
        self.engine = engine
        self.program = recording.program
        self.symbolizer = Symbolizer(recording.program)
        self.machine = recording.spawn(0, engine=engine)
        self.breakpoints: dict[int, Breakpoint] = {}
        self.watchpoints: dict[int, Watchpoint] = {}
        self._next_number = 1

    # -- position -------------------------------------------------------------

    @property
    def step_index(self) -> int:
        return self.machine.stats.instructions

    @property
    def steps(self) -> int:
        return self.recording.steps

    @property
    def at_end(self) -> bool:
        return self.step_index >= self.steps

    @property
    def pc(self) -> int:
        return self.machine.pc

    # -- breakpoints / watchpoints --------------------------------------------

    def add_breakpoint(self, spec: str) -> Breakpoint:
        kind, pcs = parse_breakpoint(
            spec, self.program, self.symbolizer, self.machine.name
        )
        bp = Breakpoint(self._next_number, spec, kind, pcs)
        self._next_number += 1
        self.breakpoints[bp.number] = bp
        return bp

    def add_watchpoint(self, spec: str) -> Watchpoint:
        address, length = parse_watch(spec, self.program)
        wp = Watchpoint(self._next_number, spec, address, length)
        self._next_number += 1
        self.watchpoints[wp.number] = wp
        return wp

    def delete(self, number: int) -> bool:
        return (
            self.breakpoints.pop(number, None) is not None
            or self.watchpoints.pop(number, None) is not None
        )

    def _breakpoint_at(self, pc: int) -> Breakpoint | None:
        for bp in self.breakpoints.values():
            if pc in bp.pcs:
                return bp
        return None

    # -- motion ---------------------------------------------------------------

    def _step_watched(self, machine, watchpoints) -> list[tuple[Watchpoint, int, int]]:
        """One ``step()`` with watchpoints armed; returns the writes hit.

        The machine's existing ``write_watch`` (the VAX chains its code
        cache invalidation there) is preserved by wrapping, and always
        reinstalled.  :class:`MachineHalted` is swallowed — the halting
        instruction retires and ``halted`` flips, matching ``run()``.
        """
        hits: list[tuple[Watchpoint, int, int]] = []
        previous = machine.memory.write_watch

        def watch(address: int, width: int = 4) -> None:
            if previous is not None:
                previous(address, width)
            for wp in watchpoints:
                if wp.overlaps(address, width):
                    hits.append((wp, address, width))

        machine.memory.write_watch = watch if watchpoints else previous
        try:
            machine.step()
        except MachineHalted:
            pass
        finally:
            machine.memory.write_watch = previous
        return hits

    def step_forward(self, count: int = 1) -> StopReason:
        """Retire up to ``count`` instructions; stop early on any event."""
        watchpoints = list(self.watchpoints.values())
        for i in range(count):
            if self.at_end or self.machine.halted:
                return self._end_reason()
            if i > 0:
                bp = self._breakpoint_at(self.machine.pc)
                if bp is not None:
                    return StopReason("breakpoint", bp.describe())
            try:
                hits = self._step_watched(self.machine, watchpoints)
            except Trap as trap:
                return StopReason("trap", str(trap))
            if hits:
                wp, address, width = hits[-1]
                value = self._peek(address, width)
                return StopReason(
                    "watchpoint",
                    f"{wp.describe()} wrote {value} at step {self.step_index - 1}",
                )
        if self.machine.halted:
            return self._end_reason()
        return StopReason("step", f"now at step {self.step_index}")

    def step_back(self, count: int = 1) -> StopReason:
        """Reverse single-step: land ``count`` steps earlier."""
        target = max(0, self.step_index - count)
        self.seek(target)
        if target == 0:
            return StopReason("begin", "at step 0 (entry)")
        return StopReason("step", f"now at step {self.step_index}")

    def seek(self, step: int) -> int:
        """Position the session at an exact step index (clamped to range)."""
        step = max(0, min(step, self.steps))
        if step < self.step_index:
            machine = self.recording.make_machine()
            machine.restore(self.recording.nearest(step)["state"])
            self.machine = machine
        advance(self.machine, step, engine=self.engine)
        return self.step_index

    def continue_forward(self) -> StopReason:
        """Run until a breakpoint, watchpoint, trap, halt or recorded end."""
        watchpoints = list(self.watchpoints.values())
        first = True
        while not (self.at_end or self.machine.halted):
            if not first:
                bp = self._breakpoint_at(self.machine.pc)
                if bp is not None:
                    return StopReason("breakpoint", bp.describe())
            first = False
            try:
                hits = self._step_watched(self.machine, watchpoints)
            except Trap as trap:
                return StopReason("trap", str(trap))
            if hits:
                wp, address, width = hits[-1]
                value = self._peek(address, width)
                return StopReason(
                    "watchpoint",
                    f"{wp.describe()} wrote {value} at step {self.step_index - 1}",
                )
        return self._end_reason()

    def reverse_continue(self) -> StopReason:
        """Run *backward* to the most recent breakpoint/watchpoint hit."""
        hit = self._latest_hit_before(
            self.step_index,
            pcs=frozenset().union(*(bp.pcs for bp in self.breakpoints.values()))
            if self.breakpoints
            else frozenset(),
            watchpoints=list(self.watchpoints.values()),
        )
        if hit is None:
            self.seek(0)
            return StopReason("begin", "no earlier hit; at step 0 (entry)")
        step, kind, detail = hit
        self.seek(step)
        return StopReason(kind, detail)

    def last_write(self, spec: str) -> StopReason:
        """Reverse-continue to just after the last write to an address."""
        address, length = parse_watch(spec, self.program)
        probe = Watchpoint(0, spec, address, length)
        hit = self._latest_hit_before(
            self.step_index, pcs=frozenset(), watchpoints=[probe]
        )
        if hit is None:
            return StopReason(
                "begin", f"no write to {spec} before step {self.step_index}"
            )
        step, _kind, detail = hit
        self.seek(step)
        return StopReason("watchpoint", detail)

    def _latest_hit_before(
        self, before: int, *, pcs: frozenset[int], watchpoints
    ) -> tuple[int, str, str] | None:
        """Scan backward for the last event strictly before state ``before``.

        Breakpoint hits are reported *at* the matching state (about to
        execute the breakpointed instruction); watchpoint hits land just
        *after* the writing instruction, so the written value is visible.
        Regions between checkpoints are replayed forward on a scratch
        machine, newest region first.
        """
        if not pcs and not watchpoints:
            return None
        boundaries = [cp["step"] for cp in self.recording.checkpoints]
        regions = []
        for index, low in enumerate(boundaries):
            high = boundaries[index + 1] if index + 1 < len(boundaries) else before
            if low < before:
                regions.append((low, min(high, before)))
        for low, high in reversed(regions):
            hits = self._scan_region(low, high, before, pcs, watchpoints)
            if hits:
                return hits[-1]
        return None

    def _scan_region(self, low, high, before, pcs, watchpoints):
        machine = self.recording.spawn(low, engine=self.engine)
        hits: list[tuple[int, str, str]] = []
        while machine.stats.instructions < high and not machine.halted:
            state = machine.stats.instructions
            if pcs and state < before and machine.pc in pcs:
                bp = self._breakpoint_at(machine.pc)
                detail = bp.describe() if bp else f"pc {machine.pc:#x}"
                hits.append((state, "breakpoint", detail))
            pc = machine.pc
            try:
                wh = self._step_watched(machine, watchpoints)
            except Trap:
                break
            if wh and state + 1 < before:
                wp, address, width = wh[-1]
                value = int.from_bytes(
                    machine.memory.dump(address, width), "big"
                )
                hits.append(
                    (
                        state + 1,
                        "watchpoint",
                        f"{wp.describe()} written by pc {pc:#x} "
                        f"at step {state} (value now {value})",
                    )
                )
        return hits

    # -- inspection -----------------------------------------------------------

    def _peek(self, address: int, width: int) -> int:
        try:
            return int.from_bytes(self.machine.memory.dump(address, width), "big")
        except Exception:
            return 0

    def _end_reason(self) -> StopReason:
        outcome = self.recording.outcome
        if self.machine.halted and outcome["outcome"] == "halt":
            code = outcome["result"]["exit_code"]
            return StopReason("halt", f"exit code {code} at step {self.step_index}")
        if outcome["outcome"] == "trap" and self.at_end:
            trap = outcome["trap"] or {}
            where = f" at pc {trap['pc']:#x}" if trap.get("pc") is not None else ""
            return StopReason(
                "trap",
                f"recorded trap {trap.get('kind')} ({trap.get('detail')}){where}",
            )
        if outcome["outcome"] == "limit" and self.at_end:
            return StopReason("end", f"recorded step limit at step {self.step_index}")
        return StopReason("end", f"end of recorded span (step {self.step_index})")

    def location(self) -> str:
        """``pc 0x2048 in towers (line 12)`` for the current position."""
        function, line = self.symbolizer.location_at(self.pc)
        where = f"pc {self.pc:#010x} in {function}"
        if line:
            where += f" (line {line})"
        return where

    def disassemble_at(self, address: int, count: int = 1) -> list[str]:
        """``count`` instructions starting at ``address``, either ISA."""
        lines = []
        if self.machine.name == "risc1":
            from repro.asm.disasm import disassemble

            for index in range(count):
                pc = address + 4 * index
                try:
                    # dump() is the unaccounted path: inspection must not
                    # perturb the traffic counters replay depends on
                    word = int.from_bytes(self.machine.memory.dump(pc, 4), "big")
                except Exception:
                    lines.append(f"  {pc:#010x}  <unmapped>")
                    break
                lines.append(f"  {pc:#010x}  {disassemble(word, pc=pc)}")
        else:
            from repro.baselines.vax.disasm import disassemble_one

            data = bytes(self.machine.memory._bytes)
            pc = address
            for _ in range(count):
                if pc >= len(data):
                    break
                try:
                    text, length = disassemble_one(data, pc, pc)
                except Exception:
                    lines.append(f"  {pc:#010x}  <undecodable>")
                    break
                lines.append(f"  {pc:#010x}  {text}")
                pc += length
        return lines
