"""``python -m repro.dbg`` — record, replay and debug simulated runs.

Subcommands::

    run WORKLOAD[:ARG]     record a workload, then debug it
    replay RUN_ID|PATH     debug an existing recording (ledger ids work)
    record WORKLOAD[:ARG]  record and save without entering the debugger
    list                   recordings under the record root

``--script FILE`` executes debugger commands non-interactively and
prints a deterministic transcript (the CI smoke job runs one twice and
byte-compares).  Without a script: a curses UI on a terminal, a plain
line-oriented REPL when stdin is a pipe.  Exit codes are structured —
0 success, 1 runtime failure (missing recording, unreadable script),
2 usage error (unknown workload, malformed breakpoint spec) — and user
errors never print tracebacks.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.dbg.commands import CommandError, CommandInterpreter, QuitDebugger
from repro.dbg.session import DebugSession, SpecError
from repro.obs.record import (
    DEFAULT_INTERVAL,
    Recording,
    default_record_root,
    list_recordings,
    record_run,
)

__all__ = ["main", "run_commands"]


def run_commands(session: DebugSession, lines, out=None, *, echo: bool = True) -> int:
    """Drive a session with an iterable of command lines; returns exit code.

    Each command is echoed as ``(dbg) <command>`` before its output, so
    the transcript reads like the interactive session it replays.
    Command errors are reported inline and execution continues — a typo
    mid-script must not discard the session.
    """
    out = out or sys.stdout
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if echo:
            print(f"(dbg) {line}", file=out)
        interp = CommandInterpreter(session)
        try:
            for text in interp.execute(line):
                print(text, file=out)
        except CommandError as error:
            print(f"error: {error}", file=out)
        except QuitDebugger:
            break
    return 0


def _enter_debugger(session: DebugSession, script: str | None) -> int:
    if script is not None:
        try:
            lines = Path(script).read_text(encoding="utf-8").splitlines()
        except OSError as error:
            print(f"error: cannot read script: {error}", file=sys.stderr)
            return 1
        return run_commands(session, lines)
    if sys.stdin.isatty() and sys.stdout.isatty():
        from repro.dbg.ui import run_ui

        return run_ui(session)
    # piped stdin: the same command language, line by line
    return run_commands(session, sys.stdin)


def apply_breakpoints(session: DebugSession, specs) -> None:
    """Install ``--break`` specs; raises :class:`SpecError` on a bad one."""
    for spec in specs or ():
        session.add_breakpoint(spec)


def _compile_workload(parser, spec: str, machine: str):
    from repro.cc.driver import compile_program
    from repro.workloads import ALL_WORKLOADS, parse_workload_spec

    try:
        name, overrides = parse_workload_spec(spec)
    except ValueError as error:
        parser.error(str(error))
    source = ALL_WORKLOADS[name].source(**overrides)
    target = "risc1" if machine == "risc1" else "cisc"
    return name, compile_program(source, target=target).program


def _make_machine(args):
    if args.machine == "risc1":
        from repro.core.cpu import CPU

        return CPU(num_windows=args.windows)
    from repro.baselines.vax.cpu import VaxCPU

    return VaxCPU()


def _record(args, parser) -> Recording:
    name, program = _compile_workload(parser, args.workload, args.machine)
    recording = record_run(
        _make_machine(args),
        program,
        interval=args.interval,
        max_steps=args.max_steps,
        engine=args.engine,
        workload=args.workload,
    )
    return recording


def _session(recording: Recording, args, parser) -> DebugSession:
    session = DebugSession(recording, engine=args.engine)
    try:
        apply_breakpoints(session, getattr(args, "breakpoints", None))
    except SpecError as error:
        parser.error(f"bad breakpoint spec: {error}")
    return session


def _cmd_run(args, parser) -> int:
    recording = _record(args, parser)
    if args.save:
        path = recording.save(root=args.root)
        print(f"recording saved: {path}", file=sys.stderr)
    return _enter_debugger(_session(recording, args, parser), args.script)


def _cmd_record(args, parser) -> int:
    recording = _record(args, parser)
    path = recording.save(root=args.root)
    print(f"{recording.run_id}  steps={recording.steps}  "
          f"checkpoints={len(recording.checkpoints)}  "
          f"outcome={recording.outcome['outcome']}  -> {path}")
    return 0


def _cmd_replay(args, parser) -> int:
    run_id = args.run_id
    try:
        if run_id.endswith(".jsonl") or "/" in run_id:
            recording = Recording.load(run_id)
        else:
            recording = Recording.find(run_id, root=args.root)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return _enter_debugger(_session(recording, args, parser), args.script)


def _cmd_list(args, parser) -> int:
    headers = list_recordings(args.root)
    if not headers:
        root = args.root or default_record_root()
        print(f"no recordings under {root}")
        return 0
    for header in headers:
        workload = header.get("workload") or "-"
        print(
            f"{header.get('run_id')}  {header.get('machine'):<5}  "
            f"{workload:<16}  interval={header.get('interval')}"
        )
    return 0


def _add_debug_options(sub, *, breaks: bool = True) -> None:
    sub.add_argument(
        "--script",
        metavar="FILE",
        help="execute debugger commands from FILE and print the transcript",
    )
    if breaks:
        sub.add_argument(
            "--break",
            dest="breakpoints",
            action="append",
            metavar="SPEC",
            help="set a breakpoint at start (PC, symbol, or :LINE); repeatable",
        )


def _add_record_options(sub) -> None:
    sub.add_argument("workload", help="workload spec, NAME[:ARG] (e.g. towers:6)")
    sub.add_argument(
        "--machine", choices=("risc1", "cisc"), default="risc1", help="target machine"
    )
    sub.add_argument(
        "--windows", type=int, default=8, help="RISC register windows (default 8)"
    )
    sub.add_argument(
        "--interval",
        type=int,
        default=DEFAULT_INTERVAL,
        metavar="N",
        help=f"steps between checkpoints (default {DEFAULT_INTERVAL})",
    )
    sub.add_argument("--max-steps", type=int, default=None, help="step budget")
    sub.add_argument(
        "--engine", choices=("fast", "reference"), default=None, help="execution engine"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dbg",
        description="time-travel debugger over recorded simulator runs",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="recording directory (default .repro-dbg or $REPRO_DBG_ROOT)",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    sub = subs.add_parser("run", help="record a workload, then debug it")
    _add_record_options(sub)
    _add_debug_options(sub)
    sub.add_argument(
        "--save", action="store_true", help="also save the recording for later replay"
    )
    sub.set_defaults(func=_cmd_run)

    sub = subs.add_parser("replay", help="debug an existing recording")
    sub.add_argument("run_id", help="recording run id (prefix ok) or file path")
    sub.add_argument(
        "--engine", choices=("fast", "reference"), default=None, help="execution engine"
    )
    _add_debug_options(sub)
    sub.set_defaults(func=_cmd_replay)

    sub = subs.add_parser("record", help="record a workload without debugging")
    _add_record_options(sub)
    sub.set_defaults(func=_cmd_record)

    sub = subs.add_parser("list", help="list saved recordings")
    sub.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    if getattr(args, "interval", 1) < 1:
        parser.error("--interval must be positive")
    return args.func(args, parser)


if __name__ == "__main__":
    raise SystemExit(main())
