"""The curses front end of the time-travel debugger.

A thin painting loop over the same :class:`CommandInterpreter` the
scripted mode uses: single keys map to debugger commands, ``:`` opens a
command line accepting the full language, and the screen shows position,
the register-window pane, disassembly around the PC, and the scrollback
of command output.  All rendering is done by the pure functions in
:mod:`repro.dbg.windows` / the interpreter, so the curses layer stays
dumb and the interesting output stays testable.
"""

from __future__ import annotations

from repro.dbg.commands import CommandError, CommandInterpreter, QuitDebugger

__all__ = ["run_ui"]

_KEY_COMMANDS = {
    ord("s"): "step",
    ord("r"): "rstep",
    ord("c"): "continue",
    ord("C"): "rcontinue",
    ord("w"): "windows",
    ord("o"): "output",
    ord("i"): "info",
}

_FOOTER = "s step  r rstep  c cont  C rcont  g seek  b break  w windows  : cmd  q quit"


def run_ui(session) -> int:
    """Run the interactive curses debugger; returns a process exit code."""
    import curses

    interp = CommandInterpreter(session)
    scrollback: list[str] = interp.execute("info") + [""]

    def prompt(stdscr, label: str) -> str:
        height, width = stdscr.getmaxyx()
        stdscr.addnstr(height - 1, 0, (label + " " * width)[: width - 1], width - 1)
        stdscr.refresh()
        curses.echo()
        try:
            text = stdscr.getstr(height - 1, len(label) + 1, 120).decode(
                "utf-8", "replace"
            )
        finally:
            curses.noecho()
        return text.strip()

    def run_command(line: str) -> None:
        if not line:
            return
        scrollback.append(f"(dbg) {line}")
        try:
            scrollback.extend(interp.execute(line))
        except CommandError as error:
            scrollback.append(f"error: {error}")

    def paint(stdscr) -> None:
        stdscr.erase()
        height, width = stdscr.getmaxyx()

        def put(row: int, text: str, attr: int = 0) -> None:
            if 0 <= row < height - 1:
                stdscr.addnstr(row, 0, text[: width - 1], width - 1, attr)

        recording = session.recording
        put(
            0,
            f" repro.dbg  {recording.run_id}  step {session.step_index}/{session.steps}"
            f"  {session.location()}",
            curses.A_REVERSE,
        )
        row = 2
        from repro.dbg.windows import render_windows

        for line in render_windows(session.machine):
            put(row, line)
            row += 1
        row += 1
        put(row, "disassembly:", curses.A_BOLD)
        row += 1
        for line in session.disassemble_at(session.pc, 6):
            put(row, line)
            row += 1
        row += 1
        put(row, "log:", curses.A_BOLD)
        row += 1
        visible = max(0, height - 2 - row)
        for line in scrollback[-visible:]:
            put(row, line)
            row += 1
        put(height - 2, _FOOTER, curses.A_DIM)
        stdscr.refresh()

    def loop(stdscr) -> None:
        curses.curs_set(0)
        while True:
            paint(stdscr)
            key = stdscr.getch()
            if key in (ord("q"), 27):
                return
            if key == ord("g"):
                run_command(f"seek {prompt(stdscr, 'seek to step:')}")
            elif key == ord("b"):
                run_command(f"break {prompt(stdscr, 'breakpoint (pc, symbol, :line):')}")
            elif key == ord(":"):
                try:
                    run_command(prompt(stdscr, ":"))
                except QuitDebugger:
                    return
            elif key in _KEY_COMMANDS:
                run_command(_KEY_COMMANDS[key])

    import curses as _curses

    _curses.wrapper(loop)
    return 0
