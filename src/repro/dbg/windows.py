"""Register and register-window rendering for the debugger.

Pure text: every function returns a list of lines, so the same renderers
back the curses panes, the ``--script`` transcripts and the tests.  The
centerpiece is :func:`render_windows` — the overlapping window file as
the paper draws it: which windows are resident, where CWP and SWP point,
and how close the file is to its next overflow or underflow trap.
"""

from __future__ import annotations

from repro.isa.registers import (
    GLOBAL_REGS,
    HIGH_REGS,
    LOCAL_REGS,
    LOW_REGS,
    physical_index,
)

__all__ = ["render_regs", "render_windows"]


def _row(label: str, machine, regs) -> str:
    values = " ".join(f"{machine.regs.read(r):08x}" for r in regs)
    return f"  {label:<18}{values}"


def render_regs(machine) -> list[str]:
    """The visible architectural registers, one dump for either machine."""
    if machine.name == "risc1":
        lines = [
            _row("GLOBAL r0-r4", machine, range(0, 5)),
            _row("GLOBAL r5-r9", machine, range(5, 10)),
            _row("LOW    r10-r15", machine, LOW_REGS),
            _row("LOCAL  r16-r20", machine, range(16, 21)),
            _row("LOCAL  r21-r25", machine, range(21, 26)),
            _row("HIGH   r26-r31", machine, HIGH_REGS),
        ]
        psw = machine.psw
        lines.append(
            f"  psw  Z={int(psw.cc.z)} N={int(psw.cc.n)} C={int(psw.cc.c)} "
            f"V={int(psw.cc.v)} ie={int(psw.interrupts_enabled)}"
        )
        return lines
    # the VAX-like baseline: a flat 16-register file
    lines = []
    for base in range(0, 16, 4):
        cells = "  ".join(
            f"r{reg:<2}={machine.regs[reg]:08x}" for reg in range(base, base + 4)
        )
        lines.append(f"  {cells}")
    lines.append(
        f"  flags  N={int(machine.n)} Z={int(machine.z)} "
        f"V={int(machine.v)} C={int(machine.c)}"
    )
    return lines


def render_windows(machine) -> list[str]:
    """The overlapping register-window file, CWP/SWP and trap pressure.

    For the VAX-like baseline (no windows) this degrades to a note plus
    the flat register dump, so ``windows`` is never an error.
    """
    if machine.name != "risc1":
        return [f"  machine {machine.name!r} has no register windows"] + render_regs(
            machine
        )
    regs = machine.regs
    w = regs.num_windows
    cwp = regs.cwp
    resident = regs.resident
    # the window the next overflow would spill (oldest resident frame)
    swp = (cwp - (resident - 1)) % w
    lines = [
        f"  windows W={w}  CWP=w{cwp}  SWP=w{swp}  "
        f"resident={resident}/{regs.max_resident}  depth={regs.depth}",
        f"  pressure [{'#' * resident}{'.' * (regs.max_resident - resident)}]  "
        f"overflows={regs.overflows}  underflows={regs.underflows}  "
        f"calls={regs.calls}  returns={regs.returns}",
    ]
    resident_set = {(cwp - i) % w for i in range(resident)}
    for window in range(w):
        if window == cwp:
            marker, state = "->", "current"
        elif window in resident_set:
            marker, state = "  ", "resident"
        else:
            marker, state = "  ", "free"
        if window == swp and resident == regs.max_resident:
            state += ", next spill"
        base = 10 + 16 * window
        locals_ = " ".join(
            f"{regs.read_physical(physical_index(window, r, w)):08x}"
            for r in range(16, 20)
        )
        lines.append(
            f"  {marker} w{window} [phys {base:>3}-{base + 15:>3}] "
            f"{state:<20} local16-19: {locals_}"
        )
    lines.append("  current window (caller LOW == callee HIGH):")
    lines.append(_row("GLOBAL r0-r9", machine, GLOBAL_REGS))
    lines.append(
        _row(f"HIGH   r26-r31", machine, HIGH_REGS)
        + f"   (= w{(cwp - 1) % w} LOW)"
    )
    lines.append(_row("LOCAL  r16-r25", machine, LOCAL_REGS))
    lines.append(
        _row("LOW    r10-r15", machine, LOW_REGS) + f"   (= w{(cwp + 1) % w} HIGH)"
    )
    return lines
