"""The debugger command language.

One :class:`CommandInterpreter` backs every front end — the ``--script``
batch mode, the plain REPL, and the curses UI all feed lines through
:meth:`execute` and render the returned text.  Output is strictly
deterministic (no timestamps, no wall-clock, no ids that vary run to
run), so two executions of the same script over the same recording are
byte-identical — the property the CI smoke job ``cmp``'s.
"""

from __future__ import annotations

from repro.dbg.session import DebugSession, SpecError
from repro.dbg.windows import render_regs, render_windows

__all__ = ["CommandError", "CommandInterpreter", "QuitDebugger"]

HELP = """\
commands (aliases in parentheses):
  help (h)             this text
  info (i)             recording summary and current position
  where (w)            current pc, function, source line, instruction
  step (s) [N]         execute N instructions forward (default 1)
  rstep (rs) [N]       reverse-step N instructions (default 1)
  seek STEP|end        jump to an exact step index
  continue (c)         run forward to breakpoint/watchpoint/end
  rcontinue (rc)       run backward to the previous hit
  break (b) SPEC       set breakpoint: PC, symbol, or :LINE
  watch ADDR[/LEN]     set watchpoint on a memory range
  lastwrite ADDR[/LEN] reverse to just after the last write
  breaks               list breakpoints and watchpoints
  delete N             remove breakpoint/watchpoint #N
  regs (r)             architectural register dump
  windows (win)        register-window file, CWP/SWP, trap pressure
  disasm (d) [ADDR [N]]  disassemble N instructions (default pc, 8)
  mem ADDR [LEN]       hex dump of memory (default 64 bytes)
  output               program console output so far
  quit (q)             leave the debugger"""


class CommandError(Exception):
    """A bad command or argument; the message is shown to the user."""


class QuitDebugger(Exception):
    """Raised by ``quit`` to unwind whatever front end is driving."""


def _int_arg(text: str, what: str) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise CommandError(f"bad {what}: {text!r}") from None


class CommandInterpreter:
    """Parse and execute debugger commands against one session."""

    def __init__(self, session: DebugSession):
        self.session = session

    def execute(self, line: str) -> list[str]:
        """Run one command line; returns the output lines."""
        parts = line.strip().split()
        if not parts:
            return []
        name, args = parts[0].lower(), parts[1:]
        handler = _DISPATCH.get(name)
        if handler is None:
            raise CommandError(f"unknown command {name!r} (try 'help')")
        return handler(self, args)

    # -- inspection -----------------------------------------------------------

    def _cmd_help(self, args: list[str]) -> list[str]:
        return HELP.splitlines()

    def _cmd_info(self, args: list[str]) -> list[str]:
        session = self.session
        recording = session.recording
        meta = recording.meta
        outcome = recording.outcome
        lines = [
            f"recording {recording.run_id}",
            f"  machine {meta['machine']}  engine {meta['engine']}  "
            f"interval {meta['interval']}  checkpoints {len(recording.checkpoints)}",
        ]
        if meta.get("workload"):
            lines.append(f"  workload {meta['workload']}")
        end = outcome["outcome"]
        if end == "halt":
            end = f"halt (exit code {outcome['result']['exit_code']})"
        elif end == "trap" and outcome.get("trap"):
            end = f"trap ({outcome['trap']['kind']})"
        lines.append(f"  span 0..{recording.steps} steps, ends in {end}")
        lines.append(f"  at step {session.step_index}, {session.location()}")
        return lines

    def _cmd_where(self, args: list[str]) -> list[str]:
        session = self.session
        lines = [f"step {session.step_index}/{session.steps}  {session.location()}"]
        if not session.machine.halted:
            lines.extend(session.disassemble_at(session.pc, 1))
        else:
            lines.append("  (halted)")
        return lines

    def _cmd_regs(self, args: list[str]) -> list[str]:
        return render_regs(self.session.machine)

    def _cmd_windows(self, args: list[str]) -> list[str]:
        return render_windows(self.session.machine)

    def _cmd_disasm(self, args: list[str]) -> list[str]:
        if len(args) > 2:
            raise CommandError("usage: disasm [ADDR [COUNT]]")
        address = self.session.pc
        count = 8
        if args and args[0] != ".":
            address = _int_arg(args[0], "address")
        if len(args) == 2:
            count = _int_arg(args[1], "count")
        return self.session.disassemble_at(address, max(1, count))

    def _cmd_mem(self, args: list[str]) -> list[str]:
        if not args or len(args) > 2:
            raise CommandError("usage: mem ADDR [LEN]")
        address = _int_arg(args[0], "address")
        length = _int_arg(args[1], "length") if len(args) == 2 else 64
        memory = self.session.machine.memory
        if address < 0 or address + length > memory.size:
            raise CommandError(
                f"range [{address:#x}, {address + length:#x}) outside "
                f"{memory.size:#x}-byte memory"
            )
        data = memory.dump(address, length)
        lines = []
        for offset in range(0, len(data), 16):
            chunk = data[offset : offset + 16]
            hexed = " ".join(f"{b:02x}" for b in chunk)
            text = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
            lines.append(f"  {address + offset:#010x}  {hexed:<47}  {text}")
        return lines

    def _cmd_output(self, args: list[str]) -> list[str]:
        text = "".join(self.session.machine._console)
        if not text:
            return ["  (no output yet)"]
        return [f"  {line}" for line in text.splitlines()]

    # -- motion ---------------------------------------------------------------

    def _stop(self, reason) -> list[str]:
        lines = [f"stopped ({reason.describe()})"]
        lines.extend(self._cmd_where([]))
        return lines

    def _cmd_step(self, args: list[str]) -> list[str]:
        count = _int_arg(args[0], "step count") if args else 1
        if count < 1:
            raise CommandError("step count must be positive")
        return self._stop(self.session.step_forward(count))

    def _cmd_rstep(self, args: list[str]) -> list[str]:
        count = _int_arg(args[0], "step count") if args else 1
        if count < 1:
            raise CommandError("step count must be positive")
        return self._stop(self.session.step_back(count))

    def _cmd_seek(self, args: list[str]) -> list[str]:
        if len(args) != 1:
            raise CommandError("usage: seek STEP|end")
        target = (
            self.session.steps if args[0] == "end" else _int_arg(args[0], "step index")
        )
        landed = self.session.seek(target)
        lines = [f"at step {landed}"]
        lines.extend(self._cmd_where([]))
        return lines

    def _cmd_continue(self, args: list[str]) -> list[str]:
        return self._stop(self.session.continue_forward())

    def _cmd_rcontinue(self, args: list[str]) -> list[str]:
        return self._stop(self.session.reverse_continue())

    def _cmd_lastwrite(self, args: list[str]) -> list[str]:
        if len(args) != 1:
            raise CommandError("usage: lastwrite ADDR[/LEN]")
        try:
            return self._stop(self.session.last_write(args[0]))
        except SpecError as error:
            raise CommandError(str(error)) from None

    # -- breakpoints ----------------------------------------------------------

    def _cmd_break(self, args: list[str]) -> list[str]:
        if len(args) != 1:
            raise CommandError("usage: break SPEC  (PC, symbol, or :LINE)")
        try:
            bp = self.session.add_breakpoint(args[0])
        except SpecError as error:
            raise CommandError(str(error)) from None
        return [f"breakpoint {bp.describe()}"]

    def _cmd_watch(self, args: list[str]) -> list[str]:
        if len(args) != 1:
            raise CommandError("usage: watch ADDR[/LEN]")
        try:
            wp = self.session.add_watchpoint(args[0])
        except SpecError as error:
            raise CommandError(str(error)) from None
        return [f"watchpoint {wp.describe()}"]

    def _cmd_breaks(self, args: list[str]) -> list[str]:
        session = self.session
        if not session.breakpoints and not session.watchpoints:
            return ["  (none)"]
        lines = [f"  {bp.describe()}" for bp in session.breakpoints.values()]
        lines.extend(f"  {wp.describe()}" for wp in session.watchpoints.values())
        return lines

    def _cmd_delete(self, args: list[str]) -> list[str]:
        if len(args) != 1:
            raise CommandError("usage: delete NUMBER")
        number = _int_arg(args[0], "breakpoint number")
        if not self.session.delete(number):
            raise CommandError(f"no breakpoint or watchpoint #{number}")
        return [f"deleted #{number}"]

    def _cmd_quit(self, args: list[str]) -> list[str]:
        raise QuitDebugger()


_DISPATCH = {
    "help": CommandInterpreter._cmd_help,
    "h": CommandInterpreter._cmd_help,
    "?": CommandInterpreter._cmd_help,
    "info": CommandInterpreter._cmd_info,
    "i": CommandInterpreter._cmd_info,
    "where": CommandInterpreter._cmd_where,
    "w": CommandInterpreter._cmd_where,
    "step": CommandInterpreter._cmd_step,
    "s": CommandInterpreter._cmd_step,
    "rstep": CommandInterpreter._cmd_rstep,
    "rs": CommandInterpreter._cmd_rstep,
    "seek": CommandInterpreter._cmd_seek,
    "continue": CommandInterpreter._cmd_continue,
    "c": CommandInterpreter._cmd_continue,
    "rcontinue": CommandInterpreter._cmd_rcontinue,
    "rc": CommandInterpreter._cmd_rcontinue,
    "break": CommandInterpreter._cmd_break,
    "b": CommandInterpreter._cmd_break,
    "watch": CommandInterpreter._cmd_watch,
    "lastwrite": CommandInterpreter._cmd_lastwrite,
    "breaks": CommandInterpreter._cmd_breaks,
    "delete": CommandInterpreter._cmd_delete,
    "regs": CommandInterpreter._cmd_regs,
    "r": CommandInterpreter._cmd_regs,
    "windows": CommandInterpreter._cmd_windows,
    "win": CommandInterpreter._cmd_windows,
    "disasm": CommandInterpreter._cmd_disasm,
    "d": CommandInterpreter._cmd_disasm,
    "mem": CommandInterpreter._cmd_mem,
    "output": CommandInterpreter._cmd_output,
    "quit": CommandInterpreter._cmd_quit,
    "q": CommandInterpreter._cmd_quit,
    "exit": CommandInterpreter._cmd_quit,
}
