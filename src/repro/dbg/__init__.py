"""``repro.dbg`` — the time-travel debugger.

Built on two contracts the rest of the codebase already proves: the
:meth:`~repro.core.api.Machine.snapshot` /
:meth:`~repro.core.api.Machine.restore` bit-exact state API, and the
differential bit-identity of the ``fast`` and ``reference`` engines.  A
:class:`~repro.obs.record.Recording` (program + config + periodic
checkpoints) makes every step index of a finished run addressable —
restore the nearest checkpoint, re-execute the remainder — and
:class:`DebugSession` turns that into forward/reverse stepping, ``seek``,
breakpoints on PC/symbol/C-line, watchpoints with
reverse-continue-to-last-write, and the register-window pane.

Front ends: ``python -m repro.dbg run|replay|record|list`` (curses when
interactive, a deterministic ``--script`` / piped-REPL mode otherwise)
and ``risc1-run --dbg``.  See ``docs/DEBUGGER.md``.
"""

from repro.dbg.commands import CommandError, CommandInterpreter, QuitDebugger
from repro.dbg.session import (
    Breakpoint,
    DebugSession,
    SpecError,
    StopReason,
    Watchpoint,
    parse_breakpoint,
)
from repro.dbg.windows import render_regs, render_windows

__all__ = [
    "Breakpoint",
    "CommandError",
    "CommandInterpreter",
    "DebugSession",
    "QuitDebugger",
    "SpecError",
    "StopReason",
    "Watchpoint",
    "parse_breakpoint",
    "render_regs",
    "render_windows",
]
