"""Two-pass assembler and disassembler for RISC I assembly language.

The assembler turns human-readable RISC I assembly into a loadable
:class:`repro.core.program.Program`.  It supports labels, a text and a data
section, data directives, and a small set of pseudo-instructions (``set``,
``mov``, ``cmp``, ``nop``, ``halt``, ``putc``, ``puti``) that expand to real
RISC I instructions — including the LDHI+ADD idiom the paper prescribes for
synthesizing 32-bit constants.
"""

from repro.asm.assembler import AssemblerError, assemble
from repro.asm.disasm import disassemble, disassemble_program

__all__ = ["AssemblerError", "assemble", "disassemble", "disassemble_program"]
