"""The RISC I two-pass assembler.

Syntax overview (see README for the full reference)::

    ; comment                         -- also "#" and "//" comments
            .text                     -- switch to the code section
            .data                     -- switch to the data section
    label:  add   r3, r1, r2          -- rd, rs1, s2 (register form)
            add!  r3, r1, #10         -- "!" sets the condition codes
            ldl   r4, 8(r1)           -- load word at r1+8
            stl   r4, 0(r2)           -- store word at r2+0
            jeq   done                 -- conditional relative jump (delayed)
            jmp   somewhere            -- unconditional jump (delayed)
            call  proc                 -- call, return address in callee r31
            ret                        -- return past call + delay slot
            set   r5, counter          -- 32-bit constant via LDHI+ADD
            mov   r5, r6               -- register copy
            cmp   r1, r2               -- compare (SUB with SCC, result dropped)
            nop                        -- ADD r0,r0,r0
            halt                       -- exit with code 0 (MMIO store)
    counter:
            .word 0

Registers ``r8`` and ``r9`` are reserved as assembler scratch for the
``set``-style pseudo expansions of ``halt``/``putc``/``puti``; user code and
the compiler never hold live values there across those pseudos.
"""

from __future__ import annotations

import dataclasses
import re

from repro.isa.conditions import MNEMONIC_CONDS, Cond
from repro.isa.encoding import Instruction, S2_MAX, S2_MIN, encode
from repro.isa.opcodes import Opcode, opcode_info
from repro.core.program import DEFAULT_CODE_BASE, Program, Segment

MMIO_PUTCHAR = 0x7F000000
MMIO_PUTINT = 0x7F000004
MMIO_HALT = 0x7F00000C

#: Scratch registers used by pseudo-instruction expansions.
SCRATCH = 8

_ALU_OPS = {
    "add": Opcode.ADD,
    "addc": Opcode.ADDC,
    "sub": Opcode.SUB,
    "subc": Opcode.SUBC,
    "subr": Opcode.SUBR,
    "subcr": Opcode.SUBCR,
    "and": Opcode.AND,
    "or": Opcode.OR,
    "xor": Opcode.XOR,
    "sll": Opcode.SLL,
    "srl": Opcode.SRL,
    "sra": Opcode.SRA,
}
_LOAD_OPS = {
    "ldl": Opcode.LDL,
    "ldsu": Opcode.LDSU,
    "ldss": Opcode.LDSS,
    "ldbu": Opcode.LDBU,
    "ldbs": Opcode.LDBS,
}
_STORE_OPS = {"stl": Opcode.STL, "sts": Opcode.STS, "stb": Opcode.STB}

_REG_RE = re.compile(r"^r(\d{1,2})$", re.IGNORECASE)
_MEM_RE = re.compile(r"^(?P<off>[^()]*)\(\s*(?P<reg>r\d{1,2})\s*\)$", re.IGNORECASE)
#: Register-indexed effective address ``(rB)rX`` — base register plus an
#: index register in the S2 field (``imm=0`` encoding of loads/stores/jumps).
_IDX_RE = re.compile(r"^\(\s*(?P<reg>r\d{1,2})\s*\)\s*(?P<idx>r\d{1,2})$", re.IGNORECASE)
_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_NAME_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
#: Profiler markers, extracted from the *comment* region of a line (so a
#: ``;@`` inside a string literal can never match): ``;@42`` stamps the
#: instruction with source line 42; ``;@fn name`` on a label line marks a
#: function entry.
_LINE_MARKER_RE = re.compile(r";@(\d+)")
_FN_MARKER_RE = re.compile(r";@fn\s+(\S+)")
_EXPR_RE = re.compile(
    r"^(?P<sym>[A-Za-z_.$][\w.$]*)?\s*(?:(?P<op>[+-])\s*(?P<num>\w+))?$"
)


class AssemblerError(Exception):
    """A syntax or semantic error in assembly source."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)


@dataclasses.dataclass
class _Item:
    """One statement after pass 1: knows its size and how to emit itself."""

    kind: str  # "inst", "pseudo", "data"
    mnemonic: str
    operands: list[str]
    line: int
    source: str
    section: str
    offset: int = 0
    size: int = 0
    #: enclosing function and high-level source line (profiler line table)
    func: str = ""
    src_line: int = 0


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, code_base: int = DEFAULT_CODE_BASE):
        self.code_base = code_base
        self.symbols: dict[str, int] = {}
        self._sym_sections: dict[str, tuple[str, int]] = {}
        self.equates: dict[str, int] = {}
        self._items: list[_Item] = []
        self._globals: set[str] = set()

    # -- public API --------------------------------------------------------------

    def assemble(self, source: str) -> Program:
        self._pass1(source)
        code_size = self._section_size("text")
        data_base = _align(self.code_base + code_size, 256)
        bases = {"text": self.code_base, "data": data_base}
        for name, (section, offset) in self._sym_sections.items():
            self.symbols[name] = bases[section] + offset
        self.symbols.update(self.equates)
        code, data, source_map, line_table = self._pass2(bases)
        segments = [Segment(self.code_base, bytes(code), name="code")]
        if data:
            segments.append(Segment(data_base, bytes(data), name="data"))
        entry = self.symbols.get("_start", self.symbols.get("main"))
        if entry is None:
            raise AssemblerError("no entry point: define _start or main")
        return Program(
            segments=tuple(segments),
            entry=entry,
            symbols=dict(self.symbols),
            source_map=source_map,
            line_table=line_table,
        )

    def _section_size(self, section: str) -> int:
        ends = [
            item.offset + item.size for item in self._items if item.section == section
        ]
        label_ends = [
            offset for sec, offset in self._sym_sections.values() if sec == section
        ]
        return max(ends + label_ends, default=0)

    # -- pass 1: parse, size, place labels ----------------------------------------

    def _pass1(self, source: str) -> None:
        section = "text"
        offsets = {"text": 0, "data": 0}
        # When the source carries explicit ;@fn markers (compiler output),
        # they alone decide function boundaries; otherwise fall back to
        # treating every non-local .text label as a function entry.
        fn_markers = ";@fn" in source
        cur_func = ""
        for lineno, raw in enumerate(source.splitlines(), start=1):
            stripped = _strip_comment(raw)
            comment = raw[len(stripped) :]
            line = stripped.strip()
            fn = _FN_MARKER_RE.search(comment)
            if fn:
                cur_func = fn.group(1)
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                name = match.group(1)
                self._define_label(name, section, offsets[section], lineno)
                if not fn_markers and section == "text" and not name.startswith("."):
                    cur_func = name
                line = line[match.end() :].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operand_text = parts[1] if len(parts) > 1 else ""
            operands = _split_operands(operand_text)
            if mnemonic.startswith("."):
                section, grew = self._directive(
                    mnemonic, operands, section, offsets[section], lineno, line
                )
                offsets[section] += grew
                continue
            src = _LINE_MARKER_RE.search(comment)
            item = _Item(
                kind="inst",
                mnemonic=mnemonic,
                operands=operands,
                line=lineno,
                source=line,
                section=section,
                offset=offsets[section],
                func=cur_func,
                src_line=int(src.group(1)) if src else 0,
            )
            if section != "text":
                raise AssemblerError("instructions only allowed in .text", lineno)
            item.size = self._sizeof(item) * 4
            offsets[section] += item.size
            self._items.append(item)

    def _define_label(self, name: str, section: str, offset: int, lineno: int) -> None:
        if name in self._sym_sections or name in self.equates:
            raise AssemblerError(f"duplicate label {name!r}", lineno)
        self._sym_sections[name] = (section, offset)

    def _directive(
        self,
        mnemonic: str,
        operands: list[str],
        section: str,
        offset: int,
        lineno: int,
        line: str,
    ) -> tuple[str, int]:
        """Handle a directive; return (new section, bytes added)."""
        if mnemonic == ".text":
            return "text", 0
        if mnemonic == ".data":
            return "data", 0
        if mnemonic == ".global":
            self._globals.update(operands)
            return section, 0
        if mnemonic == ".equ":
            if len(operands) != 2:
                raise AssemblerError(".equ needs name, value", lineno)
            self.equates[operands[0]] = _parse_number(operands[1], lineno)
            return section, 0

        if section != "data":
            raise AssemblerError(
                f"data directive {mnemonic} only allowed in .data", lineno
            )
        item = _Item(
            kind="data",
            mnemonic=mnemonic,
            operands=operands,
            line=lineno,
            source=line,
            section=section,
            offset=offset,
        )
        item.size = self._data_size(item, offset)
        self._items.append(item)
        return section, item.size

    def _data_size(self, item: _Item, offset: int) -> int:
        m = item.mnemonic
        if m == ".word":
            return 4 * len(item.operands)
        if m == ".half":
            return 2 * len(item.operands)
        if m == ".byte":
            return len(item.operands)
        if m in (".ascii", ".asciiz"):
            text = _parse_string(item.operands, item.line)
            return len(text) + (1 if m == ".asciiz" else 0)
        if m == ".space":
            return _parse_number(item.operands[0], item.line)
        if m == ".align":
            boundary = _parse_number(item.operands[0], item.line)
            return (-offset) % boundary
        raise AssemblerError(f"unknown directive {m!r}", item.line)

    # -- instruction sizing --------------------------------------------------------

    def _sizeof(self, item: _Item) -> int:
        """Number of machine words an instruction/pseudo expands to."""
        m = item.mnemonic.rstrip("!")
        if m in ("halt", "putc", "puti"):
            return 3
        if m in ("set", "mov") and len(item.operands) == 2:
            src = item.operands[1]
            if _REG_RE.match(src):
                return 1
            value = self._try_const(src)
            if value is not None and S2_MIN <= value <= S2_MAX:
                return 1
            return 2
        return 1

    def _try_const(self, text: str) -> int | None:
        """Evaluate an operand as a pure constant, if possible now."""
        text = text.lstrip("#").strip()
        try:
            return _parse_number(text, 0)
        except AssemblerError:
            pass
        if text in self.equates:
            return self.equates[text]
        return None

    # -- pass 2: emit -------------------------------------------------------------

    def _pass2(
        self, bases: dict[str, int]
    ) -> tuple[bytearray, bytearray, dict[int, str], dict[int, tuple[str, int]]]:
        code = bytearray()
        data = bytearray()
        source_map: dict[int, str] = {}
        line_table: dict[int, tuple[str, int]] = {}
        for item in self._items:
            if item.kind == "data":
                self._emit_data(item, data)
                continue
            address = bases["text"] + item.offset
            source_map[address] = f"{item.line}: {item.source}"
            line_table[address] = (item.func, item.src_line)
            words = self._emit_instruction(item, address)
            expected = item.size // 4
            if len(words) != expected:
                words = _pad_words(words, expected, item)
            for word in words:
                code.extend(word.to_bytes(4, "big"))
        return code, data, source_map, line_table

    def _emit_data(self, item: _Item, out: bytearray) -> None:
        if len(out) != item.offset:
            out.extend(b"\0" * (item.offset - len(out)))
        m = item.mnemonic
        if m in (".word", ".half", ".byte"):
            width = {".word": 4, ".half": 2, ".byte": 1}[m]
            for operand in item.operands:
                value = self._eval(operand, item.line) & ((1 << (8 * width)) - 1)
                out.extend(value.to_bytes(width, "big"))
        elif m in (".ascii", ".asciiz"):
            text = _parse_string(item.operands, item.line)
            out.extend(text.encode("latin-1"))
            if m == ".asciiz":
                out.append(0)
        elif m == ".space":
            out.extend(b"\0" * item.size)
        elif m == ".align":
            out.extend(b"\0" * item.size)

    # -- instruction emission ------------------------------------------------------

    def _emit_instruction(self, item: _Item, address: int) -> list[int]:
        m = item.mnemonic
        scc = m.endswith("!")
        m = m.rstrip("!")
        ops = item.operands
        line = item.line
        try:
            return self._dispatch(m, scc, ops, address, line)
        except AssemblerError:
            raise
        except Exception as exc:  # encoding errors carry no line number
            raise AssemblerError(f"{exc} in {item.source!r}", line) from exc

    def _dispatch(
        self, m: str, scc: bool, ops: list[str], address: int, line: int
    ) -> list[int]:
        if m in _ALU_OPS:
            return [self._alu(_ALU_OPS[m], scc, ops, line)]
        if m in _LOAD_OPS:
            return [self._load(_LOAD_OPS[m], ops, line)]
        if m in _STORE_OPS:
            return [self._store(_STORE_OPS[m], ops, line)]
        if m == "jmp" or (m.startswith("j") and m[1:] in MNEMONIC_CONDS):
            return [self._jump(m, ops, address, line)]
        if m == "jmpr":
            return [self._jmpr_explicit(ops, address, line)]
        if m == "call":
            return [self._call(ops, address, line)]
        if m == "callr":
            dest = self._reg(ops[0], line) if len(ops) == 2 else 31
            target = self._eval(ops[-1], line)
            return [_enc(Instruction.long(Opcode.CALLR, dest=dest, y=target - address))]
        if m == "ret":
            return [self._ret(Opcode.RET, ops, line)]
        if m == "retint":
            return [self._ret(Opcode.RETINT, ops, line)]
        if m == "callint":
            dest = self._reg(ops[0], line) if ops else 31
            return [_enc(Instruction.short(Opcode.CALLINT, dest=dest))]
        if m == "ldhi":
            value = self._eval(ops[1].lstrip("#"), line)
            return [_enc(Instruction.long(Opcode.LDHI, dest=self._reg(ops[0], line), y=value))]
        if m == "gtlpc":
            return [_enc(Instruction.short(Opcode.GTLPC, dest=self._reg(ops[0], line)))]
        if m == "getpsw":
            return [_enc(Instruction.short(Opcode.GETPSW, dest=self._reg(ops[0], line)))]
        if m == "putpsw":
            return [_enc(Instruction.short(Opcode.PUTPSW, dest=self._reg(ops[0], line)))]
        # -- pseudo-instructions ------------------------------------------
        if m == "nop":
            return [NOP_WORD]
        if m == "cmp":
            word = self._alu(Opcode.SUB, True, ["r0", ops[0], ops[1]], line)
            return [word]
        if m in ("set", "mov"):
            return self._set(ops, line)
        if m == "halt":
            reg = self._reg(ops[0], line) if ops else 0
            return self._mmio_store(reg, MMIO_HALT)
        if m == "putc":
            return self._mmio_store(self._reg(ops[0], line), MMIO_PUTCHAR)
        if m == "puti":
            return self._mmio_store(self._reg(ops[0], line), MMIO_PUTINT)
        raise AssemblerError(f"unknown mnemonic {m!r}", line)

    def _alu(self, opcode: Opcode, scc: bool, ops: list[str], line: int) -> int:
        if len(ops) != 3:
            raise AssemblerError(f"{opcode.name} needs rd, rs1, s2", line)
        dest = self._reg(ops[0], line)
        rs1 = self._reg(ops[1], line)
        imm, s2 = self._s2(ops[2], line)
        return _enc(Instruction.short(opcode, dest=dest, rs1=rs1, s2=s2, imm=imm, scc=scc))

    def _load(self, opcode: Opcode, ops: list[str], line: int) -> int:
        dest = self._reg(ops[0], line)
        rs1, s2, imm = self._mem(ops[1], line)
        return _enc(Instruction.short(opcode, dest=dest, rs1=rs1, s2=s2, imm=imm))

    def _store(self, opcode: Opcode, ops: list[str], line: int) -> int:
        src = self._reg(ops[0], line)
        rs1, s2, imm = self._mem(ops[1], line)
        return _enc(Instruction.short(opcode, dest=src, rs1=rs1, s2=s2, imm=imm))

    def _jump(self, m: str, ops: list[str], address: int, line: int) -> int:
        cond = Cond.ALW if m == "jmp" else MNEMONIC_CONDS[m[1:]]
        target = ops[0]
        if _MEM_RE.match(target) or _IDX_RE.match(target):
            rs1, s2, imm = self._mem(target, line)
            return _enc(
                Instruction.short(Opcode.JMP, dest=int(cond), rs1=rs1, s2=s2, imm=imm)
            )
        if _REG_RE.match(target):
            rs1 = self._reg(target, line)
            return _enc(
                Instruction.short(Opcode.JMP, dest=int(cond), rs1=rs1, s2=0, imm=True)
            )
        value = self._eval(target, line)
        return _enc(Instruction.long(Opcode.JMPR, dest=int(cond), y=value - address))

    def _jmpr_explicit(self, ops: list[str], address: int, line: int) -> int:
        cond = MNEMONIC_CONDS[ops[0].lower()] if len(ops) == 2 else Cond.ALW
        target = self._eval(ops[-1], line)
        return _enc(Instruction.long(Opcode.JMPR, dest=int(cond), y=target - address))

    def _call(self, ops: list[str], address: int, line: int) -> int:
        # "call target" links through r31; "call rD, target" names the
        # link register explicitly (what the disassembler emits).
        if len(ops) == 1:
            dest, target = 31, ops[0]
        elif len(ops) == 2:
            dest, target = self._reg(ops[0], line), ops[1]
        else:
            raise AssemblerError(f"call needs [rd,] target, got {ops}", line)
        if _MEM_RE.match(target) or _IDX_RE.match(target):
            rs1, s2, imm = self._mem(target, line)
            return _enc(Instruction.short(Opcode.CALL, dest=dest, rs1=rs1, s2=s2, imm=imm))
        if _REG_RE.match(target):
            rs1 = self._reg(target, line)
            return _enc(Instruction.short(Opcode.CALL, dest=dest, rs1=rs1, s2=0, imm=True))
        value = self._eval(target, line)
        return _enc(Instruction.long(Opcode.CALLR, dest=dest, y=value - address))

    def _ret(self, opcode: Opcode, ops: list[str], line: int) -> int:
        if not ops:
            rs1, s2, imm = 31, 8, True
        else:
            rs1 = self._reg(ops[0], line)
            imm, s2 = self._s2(ops[1], line) if len(ops) > 1 else (True, 8)
        return _enc(Instruction.short(opcode, dest=0, rs1=rs1, s2=s2, imm=imm))

    def _set(self, ops: list[str], line: int) -> list[int]:
        dest = self._reg(ops[0], line)
        src = ops[1]
        if _REG_RE.match(src):
            rs = self._reg(src, line)
            return [_enc(Instruction.short(Opcode.ADD, dest=dest, rs1=rs, s2=0, imm=True))]
        value = self._eval(src.lstrip("#"), line)
        return self._const_words(dest, value, force_wide=self._sized_wide(src))

    def _sized_wide(self, src: str) -> bool:
        """Did pass 1 reserve two words for this operand?"""
        value = self._try_const(src)
        return value is None or not S2_MIN <= value <= S2_MAX

    def _const_words(self, dest: int, value: int, force_wide: bool = False) -> list[int]:
        """Synthesize a 32-bit constant: 1 word if it fits, else LDHI+ADD."""
        value &= 0xFFFFFFFF
        signed = value - (1 << 32) if value & 0x80000000 else value
        if not force_wide and S2_MIN <= signed <= S2_MAX:
            return [_enc(Instruction.short(Opcode.ADD, dest=dest, rs1=0, s2=signed, imm=True))]
        lo = value & 0x1FFF
        lo = lo - 0x2000 if lo & 0x1000 else lo
        hi = ((value - lo) >> 13) & 0x7FFFF
        hi_signed = hi - (1 << 19) if hi & (1 << 18) else hi
        return [
            _enc(Instruction.long(Opcode.LDHI, dest=dest, y=hi_signed)),
            _enc(Instruction.short(Opcode.ADD, dest=dest, rs1=dest, s2=lo, imm=True)),
        ]

    def _mmio_store(self, reg: int, mmio: int) -> list[int]:
        words = self._const_words(SCRATCH, mmio, force_wide=True)
        words.append(
            _enc(Instruction.short(Opcode.STL, dest=reg, rs1=SCRATCH, s2=0, imm=True))
        )
        return words

    # -- operand parsing -----------------------------------------------------------

    def _reg(self, text: str, line: int) -> int:
        match = _REG_RE.match(text.strip())
        if not match:
            raise AssemblerError(f"expected register, got {text!r}", line)
        number = int(match.group(1))
        if number > 31:
            raise AssemblerError(f"register out of range: {text}", line)
        return number

    def _s2(self, text: str, line: int) -> tuple[bool, int]:
        text = text.strip()
        if text.startswith("#"):
            return True, self._eval(text[1:], line)
        if _REG_RE.match(text):
            return False, self._reg(text, line)
        return True, self._eval(text, line)

    def _mem(self, text: str, line: int) -> tuple[int, int, bool]:
        """Parse an effective address; returns ``(rs1, s2, imm)``.

        ``offset(rB)`` is the immediate form; ``(rB)rX`` indexes by a
        register in the S2 field (``imm=0``).
        """
        text = text.strip()
        indexed = _IDX_RE.match(text)
        if indexed:
            rs1 = self._reg(indexed.group("reg"), line)
            return rs1, self._reg(indexed.group("idx"), line), False
        match = _MEM_RE.match(text)
        if not match:
            raise AssemblerError(f"expected offset(reg) or (reg)rX, got {text!r}", line)
        offset_text = match.group("off").strip().lstrip("#")
        offset = self._eval(offset_text, line) if offset_text else 0
        return self._reg(match.group("reg"), line), offset, True

    def _eval(self, text: str, line: int) -> int:
        """Evaluate ``number | symbol | symbol±number``."""
        text = text.strip()
        try:
            return _parse_number(text, line)
        except AssemblerError:
            pass
        match = _EXPR_RE.match(text)
        if not match or not match.group("sym"):
            raise AssemblerError(f"cannot evaluate expression {text!r}", line)
        name = match.group("sym")
        if name not in self.symbols:
            raise AssemblerError(f"undefined symbol {name!r}", line)
        value = self.symbols[name]
        if match.group("op"):
            delta = _parse_number(match.group("num"), line)
            value = value + delta if match.group("op") == "+" else value - delta
        return value


# -- module helpers ------------------------------------------------------------------

NOP_WORD = encode(Instruction.short(Opcode.ADD, dest=0, rs1=0, s2=0, imm=False))


def _enc(inst: Instruction) -> int:
    return encode(inst)


def _pad_words(words: list[int], expected: int, item: _Item) -> list[int]:
    if len(words) > expected:
        raise AssemblerError(
            f"internal sizing error for {item.source!r}: "
            f"{len(words)} words emitted, {expected} reserved",
            item.line,
        )
    return words + [NOP_WORD] * (expected - len(words))


def _align(value: int, boundary: int) -> int:
    return (value + boundary - 1) // boundary * boundary


def _strip_comment(line: str) -> str:
    in_string = False
    for i, ch in enumerate(line):
        if ch == '"':
            in_string = not in_string
        elif not in_string and (ch == ";" or line.startswith("//", i)):
            return line[:i]
    return line


def _split_operands(text: str) -> list[str]:
    """Split on commas that are not inside quotes or parentheses."""
    parts: list[str] = []
    depth = 0
    in_string = False
    current: list[str] = []
    for ch in text:
        if ch == '"':
            in_string = not in_string
        if not in_string:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            elif ch == "," and depth == 0:
                parts.append("".join(current).strip())
                current = []
                continue
        current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_number(text: str, line: int) -> int:
    text = text.strip()
    if len(text) >= 3 and text.startswith("'") and text.endswith("'"):
        body = text[1:-1]
        unescaped = body.encode().decode("unicode_escape")
        if len(unescaped) != 1:
            raise AssemblerError(f"bad character literal {text!r}", line)
        return ord(unescaped)
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"bad number {text!r}", line) from None


def _parse_string(operands: list[str], line: int) -> str:
    text = ",".join(operands).strip()
    if not (text.startswith('"') and text.endswith('"')):
        raise AssemblerError(f"expected string literal, got {text!r}", line)
    return text[1:-1].encode().decode("unicode_escape")


def assemble(source: str, code_base: int = DEFAULT_CODE_BASE) -> Program:
    """Assemble RISC I assembly source into a runnable program."""
    return Assembler(code_base).assemble(source)
