"""Command-line assembler: ``risc1-asm program.s``."""

from __future__ import annotations

import argparse
import sys

from repro.asm.assembler import AssemblerError, assemble
from repro.asm.disasm import disassemble_program


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="RISC I assembler")
    parser.add_argument("source", help="assembly source file")
    parser.add_argument(
        "-d", "--disassemble", action="store_true", help="print a disassembly listing"
    )
    args = parser.parse_args(argv)

    with open(args.source) as handle:
        text = handle.read()
    try:
        program = assemble(text)
    except AssemblerError as error:
        print(f"{args.source}: {error}", file=sys.stderr)
        return 1

    print(f"entry   : {program.entry:#010x}")
    print(f"code    : {program.code_size} bytes")
    print(f"total   : {program.total_size} bytes")
    if args.disassemble:
        print(disassemble_program(program))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
