"""RISC I disassembler.

Produces assembler-compatible text for any 32-bit instruction word; used
by the round-trip tests and the ``risc1-asm --disassemble`` tool.
"""

from __future__ import annotations

from repro.isa.conditions import COND_MNEMONICS, Cond
from repro.isa.encoding import Instruction, decode
from repro.isa.opcodes import Category, Format, Opcode, opcode_info
from repro.core.program import Program

_LOADS = {Opcode.LDL, Opcode.LDSU, Opcode.LDSS, Opcode.LDBU, Opcode.LDBS}
_STORES = {Opcode.STL, Opcode.STS, Opcode.STB}


def _s2_text(inst: Instruction) -> str:
    return f"#{inst.s2}" if inst.imm else f"r{inst.s2}"


def _mem_text(inst: Instruction) -> str:
    """Effective-address text: ``off(rB)`` immediate, ``(rB)rX`` indexed."""
    if inst.imm:
        return f"{inst.s2}(r{inst.rs1})"
    return f"(r{inst.rs1})r{inst.s2}"


def disassemble(word: int, pc: int | None = None) -> str:
    """Disassemble one instruction word.

    When ``pc`` is given, PC-relative targets are shown as absolute
    addresses; otherwise as ``.+offset``.
    """
    inst = decode(word)
    info = opcode_info(inst.opcode)
    mnemonic = info.mnemonic + ("!" if inst.scc and info.may_set_cc else "")
    op = inst.opcode

    if op in _LOADS or op in _STORES:
        return f"{mnemonic} r{inst.dest}, {_mem_text(inst)}"
    if op is Opcode.JMP:
        cond = COND_MNEMONICS[inst.cond]
        name = "jmp" if inst.cond is Cond.ALW else f"j{cond}"
        return f"{name} {_mem_text(inst)}"
    if op is Opcode.JMPR:
        cond = COND_MNEMONICS[inst.cond]
        name = "jmp" if inst.cond is Cond.ALW else f"j{cond}"
        target = f"{(pc + inst.y) & 0xFFFFFFFF:#x}" if pc is not None else f".{inst.y:+d}"
        return f"{name} {target}"
    if op is Opcode.CALL:
        return f"call r{inst.dest}, {_mem_text(inst)}"
    if op is Opcode.CALLR:
        target = f"{(pc + inst.y) & 0xFFFFFFFF:#x}" if pc is not None else f".{inst.y:+d}"
        return f"callr r{inst.dest}, {target}"
    if op in (Opcode.RET, Opcode.RETINT):
        return f"{mnemonic} r{inst.rs1}, {_s2_text(inst)}"
    if op is Opcode.CALLINT:
        return f"callint r{inst.dest}"
    if op is Opcode.LDHI:
        return f"ldhi r{inst.dest}, #{inst.y}"
    if op in (Opcode.GTLPC, Opcode.GETPSW):
        return f"{mnemonic} r{inst.dest}"
    if op is Opcode.PUTPSW:
        return f"putpsw r{inst.dest}"
    if info.category is Category.ARITH:
        return f"{mnemonic} r{inst.dest}, r{inst.rs1}, {_s2_text(inst)}"
    if info.format is Format.LONG:
        return f"{mnemonic} r{inst.dest}, #{inst.y}"
    return f"{mnemonic} r{inst.dest}, r{inst.rs1}, {_s2_text(inst)}"


def disassemble_program(program: Program) -> str:
    """Disassemble the code segment of a program, one line per word."""
    address_names = {addr: name for name, addr in program.symbols.items()}
    lines: list[str] = []
    for segment in program.segments:
        if segment.name != "code":
            continue
        for offset in range(0, len(segment.data), 4):
            address = segment.base + offset
            word = int.from_bytes(segment.data[offset : offset + 4], "big")
            label = address_names.get(address)
            if label:
                lines.append(f"{label}:")
            lines.append(f"  {address:#010x}:  {word:08x}  {disassemble(word, pc=address)}")
    return "\n".join(lines)
